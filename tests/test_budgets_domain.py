"""The machinery is domain-agnostic: the budgets (pivot) discrepancy.

Everything exercised on stocks — detection, higher-order queries,
unifying rules, higher-order views, update programs — replayed on a
completely different domain with a *mapping-mediated* attribute
dimension (year labels vs numeric years).
"""

from __future__ import annotations

import pytest

from repro import IdlEngine
from repro.multidb import detect_discrepancies
from repro.workloads.budgets import UNIFIED_RULES, BudgetWorkload
from tests.conftest import answers_set


@pytest.fixture(scope="module")
def workload():
    return BudgetWorkload(n_departments=3, n_years=4)


@pytest.fixture
def engine(workload):
    built = IdlEngine(universe=workload.universe())
    built.define(UNIFIED_RULES)
    return built


class TestDetection:
    def test_department_discrepancy_detected(self, workload):
        findings = detect_discrepancies(workload.universe())
        kinds = {(f.kind, f.source[0], f.target_db) for f in findings}
        # fin's dept values appear as acct's relation names.
        assert ("value-vs-relation", "fin", "acct") in kinds


class TestHigherOrderQueries:
    def test_same_intention_three_ways(self, engine, workload):
        amounts = [a for _, _, a in workload.entries()]
        threshold = sorted(amounts)[len(amounts) // 2]
        via_fin = answers_set(
            engine.query(f"?.fin.budget(.dept=D, .amount>{threshold})"), "D"
        )
        via_plan = answers_set(
            engine.query(
                f"?.plan.budget(.dept=D, .YL>{threshold}),"
                " .dbU.yearName(.label=YL)"
            ),
            "D",
        )
        via_acct = answers_set(
            engine.query(f"?.acct.D(.amount>{threshold})"), "D"
        )
        assert via_fin == via_plan == via_acct != set()

    def test_year_labels_translate(self, engine, workload):
        year = workload.years[0]
        label = workload.year_label(year)
        dept = workload.departments[0]
        expected = workload.amounts[(dept, year)]
        results = engine.query(f"?.plan.budget(.dept={dept}, .{label}=A)")
        assert answers_set(results, "A") == {expected}


class TestUnifiedView:
    def test_unified_content(self, engine, workload):
        results = engine.query("?.dbB.b(.dept=D, .year=Y, .amount=A)")
        assert answers_set(results, "D", "Y", "A") == set(workload.entries())

    def test_all_sources_agree_per_fact(self, engine, workload):
        # Each (dept, year) appears exactly once: all three members carry
        # identical amounts, so the set union collapses.
        results = engine.query("?.dbB.b(.dept=D, .year=Y)")
        assert len(results) == len(workload.departments) * len(workload.years)

    def test_customized_wide_view(self, engine, workload):
        # Rebuild a wide view FROM the unified one: pivot back out, with
        # the label mapping applied in reverse.
        engine.define(
            ".dbW.budget(.dept=D, .YL=A) <- .dbB.b(.dept=D, .year=Y, .amount=A),"
            " .dbU.yearName(.label=YL, .year=Y)",
            merge_on=("dept",),
        )
        dept = workload.departments[0]
        label = workload.year_label(workload.years[-1])
        expected = workload.amounts[(dept, workload.years[-1])]
        assert engine.ask(f"?.dbW.budget(.dept={dept}, .{label}={expected})")

    def test_customized_per_department_view(self, engine, workload):
        engine.define(
            ".dbA.D(.year=Y, .amount=A) <- .dbB.b(.dept=D, .year=Y, .amount=A)"
        )
        assert sorted(engine.overlay.get("dbA").attr_names()) == sorted(
            workload.departments
        )


class TestUpdatePrograms:
    def test_set_budget_everywhere(self, engine, workload):
        engine.define_update(
            ".dbU.setBudget(.dept=D, .year=Y, .amount=A) -> "
            ".fin.budget-(.dept=D, .year=Y), .fin.budget+(.dept=D, .year=Y, .amount=A)\n"
            ".dbU.setBudget(.dept=D, .year=Y, .amount=A) -> "
            ".dbU.yearName(.label=YL, .year=Y), .plan.budget(.dept=D, .YL+=A)\n"
            ".dbU.setBudget(.dept=D, .year=Y, .amount=A) -> "
            ".acct.D-(.year=Y), .acct.D+(.year=Y, .amount=A)"
        )
        dept = workload.departments[0]
        year = workload.years[0]
        engine.call("dbU", "setBudget", dept=dept, year=year, amount=999.0)
        label = workload.year_label(year)
        assert engine.ask(f"?.fin.budget(.dept={dept}, .year={year}, .amount=999.0)")
        assert engine.ask(f"?.plan.budget(.dept={dept}, .{label}=999.0)")
        assert engine.ask(f"?.acct.{dept}(.year={year}, .amount=999.0)")
        # The unified view reflects the one new amount everywhere.
        results = engine.query(f"?.dbB.b(.dept={dept}, .year={year}, .amount=A)")
        assert answers_set(results, "A") == {999.0}
