"""Failure injection: partial failures must never leave torn state.

The update pipeline has several places a request can die mid-flight —
an evaluation error after some conjuncts applied, a constraint check at
commit, a storage fault while flushing a member. Each must leave the
observable state exactly as before the request.
"""

from __future__ import annotations

import pytest

from repro import IdlEngine
from repro.errors import IdlError, IntegrityError, StorageError, UpdateError
from repro.multidb import Federation
from repro.objects import to_python
from repro.storage import StorageDatabase
from repro.workloads.stocks import StockWorkload


def snapshot(engine):
    return to_python(engine.universe)


class TestEngineAtomicity:
    @pytest.fixture
    def engine(self):
        built = IdlEngine()
        built.add_database("d", {"r": [{"k": 1, "v": 10}], "s": [{"x": 1}]})
        return built

    def test_error_after_partial_application_rolls_back(self, engine):
        before = snapshot(engine)
        with pytest.raises(UpdateError):
            # First two conjuncts apply, the third is a category error.
            engine.update(
                "?.d.r+(.k=2, .v=20), .d.s-(.x=1), .d.r(.k=2, .v(+.z=1))"
            )
        assert snapshot(engine) == before

    def test_constraint_failure_after_full_application(self, engine):
        engine.declare_key("d", "r", ("k",))
        before = snapshot(engine)
        with pytest.raises(IntegrityError):
            # Both inserts apply; validation then finds the duplicate.
            engine.update("?.d.r+(.k=9, .v=1), .d.r+(.k=9, .v=2)")
        assert snapshot(engine) == before

    def test_failure_inside_update_program_call(self, engine):
        engine.universe.add_database("u")
        engine.invalidate()
        engine.define_update(
            ".u.bad(.k=K) -> .d.r+(.k=K, .v=0)\n"
            ".u.bad(.k=K) -> .d.s(.x(+.boom=1))"  # category error
        )
        before = snapshot(engine)
        with pytest.raises(IdlError):
            engine.call("u", "bad", k=5)
        assert snapshot(engine) == before

    def test_non_atomic_failure_invalidates_view_cache(self, engine):
        engine.define(".v.p(.k=K) <- .d.r(.k=K)")
        assert not engine.ask("?.v.p(.k=2)")  # cache built
        with pytest.raises(UpdateError):
            engine.update("?.d.r+(.k=2, .v=1), .d.r+=5", atomic=False)
        # Partial work kept, and the view reflects it (no stale cache).
        assert engine.ask("?.d.r(.k=2)")
        assert engine.ask("?.v.p(.k=2)")

    def test_view_cache_consistent_after_rollback(self, engine):
        engine.define(".v.p(.k=K) <- .d.r(.k=K)")
        assert engine.ask("?.v.p(.k=1)")
        with pytest.raises(UpdateError):
            engine.update("?.d.r+(.k=2, .v=1), .d.r+=5")
        # The overlay must reflect the rolled-back base, not the partial.
        assert not engine.ask("?.v.p(.k=2)")
        assert engine.ask("?.v.p(.k=1)")


class _FaultyRelationProxy:
    """Wraps a StoredRelation, failing the nth insert."""

    def __init__(self, relation, fail_at):
        self._relation = relation
        self._fail_at = fail_at
        self._count = 0

    def __getattr__(self, name):
        return getattr(self._relation, name)

    def __len__(self):
        return len(self._relation)

    def insert(self, row):
        self._count += 1
        if self._count == self._fail_at:
            raise StorageError("injected fault")
        return self._relation.insert(row)


class TestStorageFaults:
    def test_transaction_survives_injected_insert_fault(self):
        storage = StorageDatabase("m")
        storage.create_relation("r", [("k", "int")])
        storage.insert("r", {"k": 0})
        real = storage._relations["r"]
        storage._relations["r"] = _FaultyRelationProxy(real, fail_at=3)
        with pytest.raises(StorageError):
            with storage.begin():
                storage.insert("r", {"k": 1})
                storage.insert("r", {"k": 2})
                storage.insert("r", {"k": 3})  # injected fault
        storage._relations["r"] = real
        assert storage.scan("r") == [{"k": 0}]

    def test_federation_storage_fault_leaves_member_clean(self):
        workload = StockWorkload(n_stocks=2, n_days=2, seed=1)
        storage = StorageDatabase("euter")
        storage.create_relation(
            "r",
            [("date", "str", False), ("stkCode", "str", False),
             ("clsPrice", "float")],
            key=("date", "stkCode"),
        )
        for day, symbol, price in workload.quotes():
            storage.insert("r", {"date": day, "stkCode": symbol,
                                 "clsPrice": price})
        federation = Federation()
        federation.add_member("euter", "euter", storage=storage)
        federation.install()

        rows_before = storage.scan("r")
        real = storage._relations["r"]
        storage._relations["r"] = _FaultyRelationProxy(real, fail_at=2)
        with pytest.raises(StorageError):
            federation.insert_quote("nova", "9/9/99", 1.0)
        storage._relations["r"] = real
        # The storage member rolled its flush back entirely.
        assert storage.scan("r") == rows_before


class TestFlushConditionalOnSuccess:
    """The member flush must not run when the engine update failed, nor
    when the request succeeded without changing anything."""

    def _federation(self):
        from repro.multidb import FaultyConnector, StorageConnector

        workload = StockWorkload(n_stocks=2, n_days=2, seed=1)
        storage = StorageDatabase("euter")
        storage.create_relation(
            "r",
            [("date", "str", False), ("stkCode", "str", False),
             ("clsPrice", "float")],
            key=("date", "stkCode"),
        )
        for day, symbol, price in workload.quotes():
            storage.insert("r", {"date": day, "stkCode": symbol,
                                 "clsPrice": price})
        # A fault-free FaultyConnector is a call counter.
        counter = FaultyConnector(StorageConnector(storage))
        federation = Federation()
        federation.add_member("euter", "euter", connector=counter)
        federation.install()
        return federation, storage, counter

    def test_no_flush_when_engine_update_raises(self):
        federation, storage, counter = self._federation()
        rows_before = storage.scan("r")
        calls_before = counter.calls
        with pytest.raises(UpdateError):
            # The insert applies, then the category error kills the
            # request mid-flight; nothing may reach the member.
            federation.update(
                "?.euter.r+(.date='9/9/99', .stkCode='nova', .clsPrice=1.0),"
                " .euter.r(.stkCode='nova', .date(+.z=1))"
            )
        assert counter.calls == calls_before
        assert storage.scan("r") == rows_before

    def test_no_flush_when_update_changes_nothing(self):
        federation, storage, counter = self._federation()
        calls_before = counter.calls
        result = federation.update("?.euter.r-(.stkCode='nosuchstock')")
        assert not result.changed
        assert counter.calls == calls_before

    def test_flush_happens_on_success(self):
        federation, storage, counter = self._federation()
        calls_before = counter.calls
        federation.insert_quote("nova", "9/9/99", 1.0)
        assert counter.calls == calls_before + 1
        assert storage.lookup("r", stkCode="nova")


class TestReplResilience:
    def test_repl_survives_every_error_kind(self):
        import io

        from repro.tools.repl import IdlRepl

        out = io.StringIO()
        console = IdlRepl(engine=IdlEngine(), out=out)
        console.run(
            [
                "?.nosuch.r(.x=1)",        # empty answer, fine
                "?.a.r(.x>",                # parse error
                "?.a.r(.x>P)",              # safety error
                ":open /nonexistent.json",  # OS error
                ":rels nosuchdb",           # unknown name
                "?.x.y+(.a=1)",             # update on missing db (fails)
            ]
        )
        assert console.running
        text = out.getvalue()
        assert text.count("error:") >= 3
