"""Tests for the Datalog concrete syntax."""

from __future__ import annotations

import pytest

from repro.core.terms import Const, Var
from repro.datalog import DatalogEngine
from repro.datalog.parser import load_program, parse_datalog
from repro.datalog.rules import Comparison
from repro.errors import DatalogError


class TestParsing:
    def test_facts(self):
        facts, rules, goals = parse_datalog("edge(1, 2). p('a b', x).")
        assert facts == [("edge", (1, 2)), ("p", ("a b", "x"))]
        assert rules == [] and goals == []

    def test_rules_and_variables(self):
        _, [rule], _ = parse_datalog("tc(X, Y) :- edge(X, Y).")
        assert rule.head.predicate == "tc"
        assert rule.head.args == (Var("X"), Var("Y"))

    def test_negation_and_comparison(self):
        _, [rule], _ = parse_datalog(
            "good(X) :- p(X), not bad(X), X >= 3."
        )
        literal = rule.body[1]
        assert literal.negated
        comparison = rule.body[2]
        assert isinstance(comparison, Comparison) and comparison.op == ">="
        assert comparison.right == Const(3)

    def test_goals(self):
        _, _, [goal] = parse_datalog("?- tc(1, Y), Y != 2.")
        assert len(goal) == 2

    def test_comments_and_whitespace(self):
        facts, _, _ = parse_datalog("% nothing\n  p(1). % trailing\n")
        assert facts == [("p", (1,))]

    def test_underscore_variables(self):
        _, [rule], _ = parse_datalog("has_edge(X) :- edge(X, _Y).")
        assert Var("_Y") in rule.body[0].args

    @pytest.mark.parametrize(
        "bad",
        [
            "p(X).",             # non-ground fact
            "not p(1).",         # negated fact
            "P(1).",             # uppercase predicate
            "p(1)",              # missing period
            "p(1) :- q(X.",      # broken body
            "p(@).",             # bad character
            "h(X) :- X > 1.",    # unsafe (comparison only)
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(DatalogError):
            parse_datalog(bad)


class TestLoadAndRun:
    def test_full_program(self):
        engine = DatalogEngine()
        goals = load_program(
            engine,
            """
            parent(ann, bob). parent(bob, cy). parent(cy, dee).
            anc(X, Y) :- parent(X, Y).
            anc(X, Y) :- anc(X, Z), parent(Z, Y).
            ?- anc(ann, W).
            """,
        )
        results = engine.query(goals[0])
        assert {row["W"] for row in results} == {"bob", "cy", "dee"}

    def test_unsafe_negation_rejected_at_load(self):
        engine = DatalogEngine()
        with pytest.raises(DatalogError):
            load_program(
                engine,
                "isolated(X) :- node(X), not edge(X, Y).",
            )
