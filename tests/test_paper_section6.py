"""E1: paper Section 6 and Figure 1 — higher-order views, unified and
customized, including the name-mapping variant."""

from __future__ import annotations

import pytest

from repro import IdlEngine
from repro.errors import SemanticError, StratificationError
from repro.workloads.stocks import StockWorkload
from tests.conftest import answers_set


class TestUnifiedView:
    """The dbI.p unified view: database transparency."""

    def test_unified_view_holds_every_quote(self, unified_engine):
        results = unified_engine.query("?.dbI.p(.date=D, .stk=S, .price=P)")
        assert answers_set(results, "D", "S", "P") == {
            ("3/3/85", "hp", 50),
            ("3/4/85", "hp", 65),
            ("3/3/85", "ibm", 160),
            ("3/4/85", "ibm", 155),
        }

    def test_unified_view_spans_members_with_disjoint_stocks(self):
        engine = IdlEngine()
        engine.add_database(
            "euter", {"r": [{"date": "d1", "stkCode": "hp", "clsPrice": 50}]}
        )
        engine.add_database("chwab", {"r": [{"date": "d1", "sun": 30}]})
        engine.add_database("ource", {"dec": [{"date": "d1", "clsPrice": 12}]})
        engine.define(
            ".dbI.p(.date=D,.stk=S,.price=P) <- .euter.r(.date=D,.stkCode=S,.clsPrice=P)\n"
            ".dbI.p(.date=D,.stk=S,.price=P) <- .chwab.r(.date=D,.S=P), S != date\n"
            ".dbI.p(.date=D,.stk=S,.price=P) <- .ource.S(.date=D,.clsPrice=P)"
        )
        results = engine.query("?.dbI.p(.stk=S)")
        assert answers_set(results, "S") == {"hp", "sun", "dec"}

    def test_query_above_200_once_against_unified_view(self, unified_engine):
        # Database transparency: one expression for all three databases.
        assert unified_engine.ask("?.dbI.p(.price>200)") is False
        assert unified_engine.ask("?.dbI.p(.price>150)") is True

    def test_value_discrepancies_keep_both_prices(self, universe):
        """Section 6: "If there is any value discrepancy amongst the
        prices ... then both prices are in the user's view"."""
        engine = IdlEngine(universe=universe)
        engine.update("?.chwab.r(.date=3/3/85, .hp+=52)", atomic=False)
        engine.define(
            ".dbI.p(.date=D,.stk=S,.price=P) <- .euter.r(.date=D,.stkCode=S,.clsPrice=P)\n"
            ".dbI.p(.date=D,.stk=S,.price=P) <- .chwab.r(.date=D,.S=P), S != date"
        )
        results = engine.query("?.dbI.p(.date=3/3/85, .stk=hp, .price=P)")
        assert answers_set(results, "P") == {50, 52}

    def test_pnew_reconciles_to_a_unique_price(self, universe):
        """The pnew redefinition: each stock gets a unique (here: the
        highest) price, chosen by the schema administrator."""
        engine = IdlEngine(universe=universe)
        engine.update("?.chwab.r(.date=3/3/85, .hp+=52)", atomic=False)
        engine.define(
            ".dbI.p(.date=D,.stk=S,.price=P) <- .euter.r(.date=D,.stkCode=S,.clsPrice=P)\n"
            ".dbI.p(.date=D,.stk=S,.price=P) <- .chwab.r(.date=D,.S=P), S != date\n"
            ".dbI.pnew(.date=D,.stk=S,.price=P) <- .dbI.p(.date=D,.stk=S,.price=P),"
            " .dbI.p~(.date=D,.stk=S,.price>P)"
        )
        results = engine.query("?.dbI.pnew(.date=3/3/85, .stk=hp, .price=P)")
        assert answers_set(results, "P") == {52}


class TestCustomizedViews:
    """Integration transparency: dbE, dbC and dbO mirror each user's
    pre-integration schema."""

    def test_dbE_has_the_euter_schema(self, unified_engine):
        results = unified_engine.query(
            "?.dbE.r(.date=3/3/85, .stkCode=S, .clsPrice=P)"
        )
        assert answers_set(results, "S", "P") == {("hp", 50), ("ibm", 160)}

    def test_dbC_has_the_chwab_schema(self, unified_engine):
        # One tuple per date, one attribute per stock (merge semantics).
        results = unified_engine.query("?.dbC.r(.date=3/3/85, .hp=P)")
        assert answers_set(results, "P") == {50}
        results = unified_engine.query("?.dbC.r(.date=3/3/85, .S=P), S != date")
        assert answers_set(results, "S", "P") == {("hp", 50), ("ibm", 160)}

    def test_dbO_defines_one_relation_per_stock(self, unified_engine):
        """The higher-order view: the *number of relations* is data
        dependent — as many relations as stocks in all three databases."""
        overlay = unified_engine.overlay
        assert sorted(overlay.get("dbO").attr_names()) == ["hp", "ibm"]
        results = unified_engine.query("?.dbO.hp(.date=D, .clsPrice=P)")
        assert answers_set(results, "D", "P") == {("3/3/85", 50), ("3/4/85", 65)}

    def test_dbO_relation_count_tracks_data(self, unified_engine):
        """Insert a brand-new stock into one member: the ource-style view
        grows a relation — no schema change, only data change."""
        unified_engine.update(
            "?.euter.r+(.date=3/3/85, .stkCode=sun, .clsPrice=30)"
        )
        overlay = unified_engine.overlay
        assert sorted(overlay.get("dbO").attr_names()) == ["hp", "ibm", "sun"]

    def test_round_trip_euter_to_dbE(self, unified_engine):
        """Figure 1 round trip: the euter user's customized view agrees
        exactly with the original euter database."""
        original = unified_engine.query("?.euter.r(.date=D, .stkCode=S, .clsPrice=P)")
        view = unified_engine.query("?.dbE.r(.date=D, .stkCode=S, .clsPrice=P)")
        assert answers_set(original, "D", "S", "P") == answers_set(
            view, "D", "S", "P"
        )

    def test_round_trip_at_scale(self):
        workload = StockWorkload(n_stocks=6, n_days=5, seed=3)
        engine = IdlEngine(universe=workload.universe())
        from tests.conftest import (
            CUSTOMIZED_VIEW_RULES,
            DBC_VIEW_RULE,
            UNIFIED_VIEW_RULES,
        )

        engine.define(UNIFIED_VIEW_RULES)
        engine.define(CUSTOMIZED_VIEW_RULES)
        engine.define(DBC_VIEW_RULE, merge_on=("date",))
        original = engine.query("?.euter.r(.date=D, .stkCode=S, .clsPrice=P)")
        view = engine.query("?.dbE.r(.date=D, .stkCode=S, .clsPrice=P)")
        assert answers_set(original, "D", "S", "P") == answers_set(
            view, "D", "S", "P"
        )
        assert sorted(engine.overlay.get("dbO").attr_names()) == sorted(
            workload.symbols
        )


class TestNameMappings:
    """Section 6's final example: explicit name mappings mapCE/mapOE."""

    def test_unified_view_through_mappings(self):
        workload = StockWorkload(n_stocks=3, n_days=2, seed=5)
        engine = IdlEngine(universe=workload.universe_with_name_conflicts())
        engine.define(
            ".dbI.p(.date=D,.stk=S,.price=P) <- .euter.r(.date=D,.stkCode=S,.clsPrice=P)\n"
            ".dbI.p(.date=D,.stk=S,.price=P) <-"
            " .chwab.r(.date=D,.SC=P), .dbU.mapCE(.c=SC,.e=S)\n"
            ".dbI.p(.date=D,.stk=S,.price=P) <-"
            " .ource.SO(.date=D,.clsPrice=P), .dbU.mapOE(.o=SO,.e=S)"
        )
        results = engine.query("?.dbI.p(.stk=S)")
        # All member-local names are reconciled to euter's codes.
        assert answers_set(results, "S") == set(workload.symbols)
        for symbol in workload.symbols:
            day = workload.days[0]
            prices = engine.query(
                f"?.dbI.p(.date={day}, .stk={symbol}, .price=P)"
            )
            assert answers_set(prices, "P") == {workload.price(day, symbol)}

    def test_mapping_filters_the_date_attribute_naturally(self):
        """With mappings, no ``S != date`` guard is needed: the join with
        mapCE admits only real stock codes."""
        workload = StockWorkload(n_stocks=3, n_days=2, seed=5)
        engine = IdlEngine(universe=workload.universe_with_name_conflicts())
        engine.define(
            ".dbI.p(.date=D,.stk=S,.price=P) <-"
            " .chwab.r(.date=D,.SC=P), .dbU.mapCE(.c=SC,.e=S)"
        )
        results = engine.query("?.dbI.p(.stk=S)")
        assert "date" not in answers_set(results, "S")


class TestRuleValidation:
    def test_head_variables_must_occur_in_body(self, engine):
        with pytest.raises(SemanticError):
            engine.define(".dbI.p(.x=X) <- .euter.r(.stkCode=S)")

    def test_head_cannot_contain_negation(self, engine):
        with pytest.raises(SemanticError):
            engine.define(".dbI.p(.x=S, ~.y(.z=S)) <- .euter.r(.stkCode=S)")

    def test_head_cannot_use_inequalities(self, engine):
        with pytest.raises(SemanticError):
            engine.define(".dbI.p(.x>S) <- .euter.r(.stkCode=S)")

    def test_negation_through_recursion_is_rejected(self, engine):
        engine.define(".dbI.a(.x=X) <- .euter.r(.stkCode=X), .dbI.b~(.x=X)")
        with pytest.raises(StratificationError):
            engine.define(".dbI.b(.x=X) <- .dbI.a(.x=X)")
            engine.materialized_view()

    def test_stratified_negation_works(self, engine):
        engine.define(".dbI.quoted(.stk=S) <- .euter.r(.stkCode=S)")
        engine.define(
            ".dbI.cheap(.stk=S) <- .dbI.quoted(.stk=S),"
            " .euter.r~(.stkCode=S, .clsPrice>100)"
        )
        results = engine.query("?.dbI.cheap(.stk=S)")
        assert answers_set(results, "S") == {"hp"}


class TestRecursion:
    def test_transitive_closure(self):
        engine = IdlEngine()
        engine.add_database(
            "g", {"edge": [{"a": i, "b": i + 1} for i in range(1, 6)]}
        )
        engine.define(
            ".g.tc(.a=X, .b=Y) <- .g.edge(.a=X, .b=Y)\n"
            ".g.tc(.a=X, .b=Y) <- .g.tc(.a=X, .b=Z), .g.edge(.a=Z, .b=Y)"
        )
        results = engine.query("?.g.tc(.a=1, .b=Y)")
        assert answers_set(results, "Y") == {2, 3, 4, 5, 6}

    def test_naive_and_seminaive_agree(self):
        edges = [{"a": i, "b": (i * 3) % 11} for i in range(11)]
        answers = {}
        for method in ("naive", "seminaive"):
            engine = IdlEngine(fixpoint_method=method)
            engine.add_database("g", {"edge": edges})
            engine.define(
                ".g.tc(.a=X, .b=Y) <- .g.edge(.a=X, .b=Y)\n"
                ".g.tc(.a=X, .b=Y) <- .g.tc(.a=X, .b=Z), .g.edge(.a=Z, .b=Y)"
            )
            answers[method] = answers_set(
                engine.query("?.g.tc(.a=X, .b=Y)"), "X", "Y"
            )
        assert answers["naive"] == answers["seminaive"]

    def test_recursive_higher_order_view(self):
        """A recursive rule whose head relation name is data-dependent:
        per-stock closure of same-price days."""
        engine = IdlEngine()
        engine.add_database(
            "euter",
            {
                "r": [
                    {"date": "d1", "stkCode": "hp", "clsPrice": 50},
                    {"date": "d2", "stkCode": "hp", "clsPrice": 50},
                    {"date": "d1", "stkCode": "ibm", "clsPrice": 9},
                ]
            },
        )
        engine.define(
            ".dbO.S(.date=D, .clsPrice=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P)"
        )
        overlay = engine.overlay
        assert sorted(overlay.get("dbO").attr_names()) == ["hp", "ibm"]
