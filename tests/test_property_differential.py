"""Differential property testing: two independent evaluation routes.

Random conjunctive queries over random universes are answered by

* the direct IDL interpreter (nested object model), and
* the Datalog compilation route (catalog reified into db/rel/cell).

The implementations share no evaluation code beyond the AST, so
agreement is strong evidence both are right.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.evaluator import answers
from repro.core.parser import parse_query
from repro.datalog.rewrite import answers_via_datalog, encode_universe
from repro.objects import Universe

# Universes: flat relations with scalar-only cells (the compilable
# fragment), names drawn from tiny pools to force collisions.
db_names = st.sampled_from(["d1", "d2"])
rel_names = st.sampled_from(["r", "s"])
attr_names = st.sampled_from(["a", "b", "c"])
cell_values = st.one_of(
    st.integers(min_value=0, max_value=4),
    st.sampled_from(["x", "y", "r", "a"]),  # values colliding with names
)


@st.composite
def universes(draw):
    data = {}
    for db in draw(st.lists(db_names, unique=True, min_size=1)):
        relations = {}
        for rel in draw(st.lists(rel_names, unique=True, min_size=1)):
            rows = draw(
                st.lists(
                    st.dictionaries(attr_names, cell_values, min_size=1),
                    max_size=6,
                )
            )
            relations[rel] = rows
        data[db] = relations
    return Universe.from_python(data)


# Queries: 1-2 path conjuncts with mixed constant/variable positions,
# plus optional constraints/negation over the introduced variables.
var_names = st.sampled_from(["X", "Y", "Z", "V", "W"])


@st.composite
def path_conjuncts(draw):
    db = draw(st.one_of(db_names, var_names))
    rel = draw(st.one_of(rel_names, var_names))
    items = []
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        attr = draw(st.one_of(attr_names, var_names))
        kind = draw(st.sampled_from(["bind", "const", "compare", "exists"]))
        if kind == "bind":
            items.append(f".{attr}={draw(var_names)}")
        elif kind == "const":
            value = draw(cell_values)
            rendered = f"'{value}'" if isinstance(value, str) else str(value)
            items.append(f".{attr}={rendered}")
        elif kind == "compare":
            items.append(f".{attr}>{draw(st.integers(0, 4))}")
        else:
            items.append(f".{attr}")
    body = f"({', '.join(items)})" if items else ""
    return f".{db}.{rel}{body}"


@st.composite
def queries(draw):
    conjuncts = draw(st.lists(path_conjuncts(), min_size=1, max_size=2))
    source = "?" + ", ".join(conjuncts)
    # Optionally negate the last conjunct (whole-conjunct negation keeps
    # the query safe: negation variables stay existential).
    if len(conjuncts) == 2 and draw(st.booleans()):
        shared = set()
        first = parse_query("?" + conjuncts[0]).expr
        second = parse_query("?" + conjuncts[1]).expr
        shared = first.variables() & second.variables()
        if not shared:
            source = "?" + conjuncts[0] + ", ~" + conjuncts[1]
    return source


def _idl_answers(query, universe):
    return {
        tuple(sorted((name, obj.value_key()) for name, obj in a.as_dict().items()))
        for a in answers(query, universe)
    }


def _datalog_answers(query, universe):
    from repro.objects import Atom

    out = set()
    for row in answers_via_datalog(query, universe):
        out.add(
            tuple(sorted((name, Atom(value).value_key()) for name, value in row.items()))
        )
    return out


@given(universes(), queries())
@settings(max_examples=200, deadline=None)
def test_interpreter_agrees_with_compiled(universe, source):
    query = parse_query(source)
    assert _idl_answers(query, universe) == _datalog_answers(query, universe)


@given(universes())
@settings(max_examples=60, deadline=None)
def test_encoding_size_invariant(universe):
    edb = encode_universe(universe)
    cells = edb.count("cell")
    expected = 0
    for db in universe.database_names():
        database = universe.database(db)
        for rel in database.attr_names():
            for element in database.get(rel).elements():
                expected += len(element.attr_names())
    assert cells == expected
