"""The write-ahead update journal: record codec, torn-tail handling,
protocol state, crash injection, and the storage backends.

Federation-level recovery behavior (replays, quarantine interplay, the
chaos property) lives in ``test_chaos.py``; this file pins the journal
itself.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import JournalError
from repro.multidb.journal import (
    CrashInjector,
    CrashPoint,
    FileJournal,
    InMemoryJournal,
    NullJournal,
    decode_record,
    encode_record,
)


# ---------------------------------------------------------------------------
# Record codec
# ---------------------------------------------------------------------------


class TestRecordCodec:
    def test_roundtrip(self):
        record = {"type": "intent", "update": 3, "members": {"a": {"r": []}}}
        assert decode_record(encode_record(record)) == record

    def test_truncated_line_decodes_to_none(self):
        line = encode_record({"type": "commit", "update": 1})
        assert decode_record(line[: len(line) // 2]) is None

    def test_corrupt_checksum_decodes_to_none(self):
        line = encode_record({"type": "commit", "update": 1})
        envelope = json.loads(line)
        envelope["rec"]["update"] = 2  # bit-flip the payload, keep the crc
        assert decode_record(json.dumps(envelope)) is None

    def test_non_envelope_json_decodes_to_none(self):
        assert decode_record("[1, 2, 3]") is None
        assert decode_record('"just a string"') is None
        assert decode_record("") is None

    def test_encoding_is_canonical(self):
        # Key order must not matter: the checksum is over canonical JSON.
        a = encode_record({"type": "commit", "update": 1})
        b = encode_record({"update": 1, "type": "commit"})
        assert a == b


# ---------------------------------------------------------------------------
# Crash injection
# ---------------------------------------------------------------------------


class TestCrashInjector:
    def test_arm_zero_crashes_at_first_visit(self):
        crash = CrashInjector().arm(0)
        with pytest.raises(CrashPoint) as excinfo:
            crash.visit("journal.append")
        assert excinfo.value.site == "journal.append"

    def test_armed_budget_lets_n_visits_pass(self):
        crash = CrashInjector().arm(2)
        crash.visit("a")
        crash.visit("b")
        assert crash.will_fire()
        with pytest.raises(CrashPoint) as excinfo:
            crash.visit("c")
        assert excinfo.value.op_index == 2

    def test_fired_injector_keeps_firing(self):
        crash = CrashInjector().arm(0)
        with pytest.raises(CrashPoint):
            crash.visit("a")
        with pytest.raises(CrashPoint):
            crash.visit("b")

    def test_unarmed_injector_only_records_sites(self):
        crash = CrashInjector()
        crash.visit("a")
        crash.visit("b")
        assert crash.sites == ["a", "b"]
        assert not crash.will_fire()

    def test_will_fire_is_non_consuming(self):
        crash = CrashInjector().arm(1)
        assert not crash.will_fire()
        assert not crash.will_fire()
        crash.visit("a")
        assert crash.will_fire()

    def test_crash_point_is_not_an_ordinary_exception(self):
        # Retry loops and cleanup layers catch Exception; a simulated
        # process death must sail through them.
        assert not issubclass(CrashPoint, Exception)
        assert issubclass(CrashPoint, BaseException)


# ---------------------------------------------------------------------------
# Protocol state (in-memory backend)
# ---------------------------------------------------------------------------


DESIRED = {
    "alpha": {"r": [{"x": 1}]},
    "beta": {"r": [{"x": 2}]},
}


class TestProtocol:
    def test_begin_assigns_monotonic_update_ids(self):
        journal = InMemoryJournal()
        assert journal.begin(DESIRED) == 1
        assert journal.begin(DESIRED) == 2
        assert journal.status()["next_update_id"] == 3

    def test_full_lifecycle_commits(self):
        journal = InMemoryJournal()
        uid = journal.begin(DESIRED)
        journal.record_member(uid, "alpha", "applied")
        journal.record_member(uid, "beta", "applied")
        journal.commit(uid)
        assert journal.is_committed(uid)
        assert journal.pending() == []
        kinds = [r["type"] for r in journal.records()]
        assert kinds == ["intent", "member", "member", "commit"]

    def test_intent_covers_exactly_the_staged_members(self):
        """Narrowed intents: the federation stages only an update's
        declared write set, and the journal must neither add members to
        the intent nor expect outcomes from anyone outside it."""
        journal = InMemoryJournal()
        uid = journal.begin({"alpha": {"r": [{"x": 1}]}})
        (intent,) = [r for r in journal.records() if r["type"] == "intent"]
        assert sorted(intent["members"]) == ["alpha"]
        (update,) = journal.pending()
        assert update.remaining == ["alpha"]
        journal.record_member(uid, "alpha", "applied")
        (update,) = journal.pending()
        assert update.complete

    def test_pending_reports_remaining_members(self):
        journal = InMemoryJournal()
        uid = journal.begin(DESIRED)
        journal.record_member(uid, "beta", "applied")
        (update,) = journal.pending()
        assert update.update_id == uid
        assert update.remaining == ["alpha"]
        assert update.applied == {"beta": "flush"}
        assert not update.complete

    def test_failed_outcome_keeps_member_owed(self):
        journal = InMemoryJournal()
        uid = journal.begin(DESIRED)
        journal.record_member(uid, "alpha", "failed")
        (update,) = journal.pending()
        assert "alpha" in update.remaining
        assert update.failed == {"alpha"}
        # A later successful apply clears the failure.
        journal.record_member(uid, "alpha", "applied", via="resync")
        (update,) = journal.pending()
        assert update.failed == set()
        assert update.remaining == ["beta"]

    def test_unknown_update_id_raises(self):
        journal = InMemoryJournal()
        with pytest.raises(JournalError):
            journal.commit(99)
        with pytest.raises(JournalError):
            journal.record_member(99, "alpha", "applied")

    def test_resolved_update_rejects_further_protocol(self):
        journal = InMemoryJournal()
        uid = journal.begin(DESIRED)
        journal.commit(uid)
        with pytest.raises(JournalError):
            journal.commit(uid)
        with pytest.raises(JournalError):
            journal.abort(uid)
        with pytest.raises(JournalError):
            journal.record_member(uid, "alpha", "applied")

    def test_abort_resolves_without_commit(self):
        journal = InMemoryJournal()
        uid = journal.begin(DESIRED)
        journal.abort(uid, "superseded")
        assert journal.pending() == []
        assert not journal.is_committed(uid)
        assert journal.status()["aborted"] == 1

    def test_resolve_member_settles_and_commits(self):
        journal = InMemoryJournal()
        first = journal.begin({"alpha": {"r": []}})
        second = journal.begin(DESIRED)
        journal.record_member(second, "beta", "applied")
        touched = journal.resolve_member("alpha", via="resync")
        assert touched == [first, second]
        # first owed only alpha -> committed; second still owes nothing
        # after alpha either -> committed too.
        assert journal.is_committed(first)
        assert journal.is_committed(second)
        assert journal.pending() == []

    def test_status_shape(self):
        journal = InMemoryJournal()
        uid = journal.begin(DESIRED)
        status = journal.status()
        assert status["backend"] == "InMemoryJournal"
        assert status["updates"] == 1
        assert status["pending"] == [uid]
        assert status["committed"] == 0
        assert status["truncated_tails"] == 0


class TestReopenAndTornTail:
    def test_reopen_restores_protocol_state(self):
        journal = InMemoryJournal()
        uid = journal.begin(DESIRED)
        journal.record_member(uid, "alpha", "applied")
        reopened = journal.reopen()
        (update,) = reopened.pending()
        assert update.update_id == uid
        assert update.remaining == ["beta"]
        # Counters continue, they do not restart.
        assert reopened.begin(DESIRED) == uid + 1

    def test_torn_tail_is_truncated_not_replayed(self):
        journal = InMemoryJournal()
        uid = journal.begin(DESIRED)
        journal.commit(uid)
        line = encode_record({"type": "intent", "update": 2, "members": {}})
        journal.buffer.append(line[: len(line) // 2])
        reopened = journal.reopen()
        assert reopened.truncated_tails == 1
        assert reopened.dropped_records == 1
        assert len(reopened.buffer) == 2  # the torn line is gone
        assert reopened.pending() == []
        assert reopened.status()["updates"] == 1

    def test_valid_records_after_corruption_raise(self):
        journal = InMemoryJournal()
        uid = journal.begin(DESIRED)
        journal.buffer.insert(0, "not json at all")
        with pytest.raises(JournalError):
            journal.reopen()
        del uid

    def test_compact_keeps_pending_updates_only(self):
        journal = InMemoryJournal()
        first = journal.begin(DESIRED)
        journal.record_member(first, "alpha", "applied")
        journal.record_member(first, "beta", "applied")
        journal.commit(first)
        second = journal.begin(DESIRED)
        journal.compact()
        assert [r["update"] for r in journal.records()] == [second]
        (update,) = journal.pending()
        assert update.update_id == second
        # Ids stay monotonic across compaction + reopen.
        assert journal.reopen().begin(DESIRED) == second + 1


class TestCrashDuringAppend:
    def test_crash_at_append_leaves_no_record(self):
        journal = InMemoryJournal()
        journal.crash = CrashInjector().arm(0)
        with pytest.raises(CrashPoint):
            journal.begin(DESIRED)
        assert journal.buffer == []
        assert journal.reopen().pending() == []

    def test_torn_crash_half_writes_the_line(self):
        journal = InMemoryJournal()
        journal.crash = CrashInjector().arm(0, torn=True)
        with pytest.raises(CrashPoint):
            journal.begin(DESIRED)
        assert len(journal.buffer) == 1
        assert decode_record(journal.buffer[0]) is None
        reopened = InMemoryJournal(buffer=journal.buffer)
        assert reopened.truncated_tails == 1
        assert reopened.pending() == []


# ---------------------------------------------------------------------------
# File backend
# ---------------------------------------------------------------------------


class TestFileJournal:
    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "updates.wal"
        journal = FileJournal(path, fsync=False)
        uid = journal.begin(DESIRED)
        journal.record_member(uid, "alpha", "applied")
        journal.close()
        reopened = FileJournal(path, fsync=False)
        (update,) = reopened.pending()
        assert update.remaining == ["beta"]
        assert reopened.begin(DESIRED) == uid + 1
        reopened.close()

    def test_torn_tail_is_physically_truncated(self, tmp_path):
        path = tmp_path / "updates.wal"
        journal = FileJournal(path, fsync=False)
        uid = journal.begin(DESIRED)
        journal.commit(uid)
        journal.close()
        intact = path.read_text()
        line = encode_record({"type": "intent", "update": 9, "members": {}})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(line[: len(line) // 2])
        reopened = FileJournal(path, fsync=False)
        assert reopened.truncated_tails == 1
        assert reopened.pending() == []
        reopened.close()
        assert path.read_text() == intact

    def test_missing_file_starts_empty(self, tmp_path):
        journal = FileJournal(tmp_path / "fresh.wal", fsync=False)
        assert journal.pending() == []
        assert journal.begin(DESIRED) == 1
        journal.close()


# ---------------------------------------------------------------------------
# Null backend
# ---------------------------------------------------------------------------


class TestNullJournal:
    def test_everything_is_a_no_op(self):
        journal = NullJournal()
        uid = journal.begin(DESIRED)
        assert uid == 1
        assert journal.begin(DESIRED) == 2  # ids still monotonic
        journal.record_member(uid, "alpha", "applied")
        journal.commit(uid)
        journal.abort(2)
        assert journal.records() == []
        assert journal.pending() == []
        assert journal.resolve_member("alpha") == []
        assert journal.reopen() is journal
        assert journal.status()["backend"] == "NullJournal"
