"""Chaos harness: crash a federation mid-flush at every possible point
and prove recovery restores atomicity.

The invariant, from the paper's all-or-nothing update semantics: after
a crash anywhere in the journaled flush and a restart + ``recover()``,
every member holds *exactly* the pre-update state or *exactly* the
post-update state — never a mix — and running ``recover()`` twice is a
no-op.

Everything is deterministic: crash points are scheduled by operation
index (:class:`CrashInjector`), the Hypothesis property is
``derandomize``-d, and member state lives in
:class:`InMemoryConnector`s that survive the simulated process death
the way a real member database survives a federation crash.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multidb import (
    CrashInjector,
    CrashPoint,
    FaultyConnector,
    Federation,
    FederationConfig,
    InMemoryConnector,
    InMemoryJournal,
    ResiliencePolicy,
)
from repro.multidb.resilience import FakeClock
from repro.workloads.stocks import StockWorkload

pytestmark = pytest.mark.chaos

STYLES = ("euter", "chwab", "ource")

#: CI runs the chaos job with scatter-gather on (the default) so every
#: crash schedule also exercises concurrent member applies; set
#: ``CHAOS_PARALLEL=off`` to sweep the deterministic serial path.
CHAOS_PARALLEL = os.environ.get("CHAOS_PARALLEL", "on")


def build(connectors, journal, crash=None, policy=None, clock=None,
          parallel=None):
    """A three-member federation over pre-built connectors."""
    config = FederationConfig(
        journal=journal, crash=crash,
        parallel=CHAOS_PARALLEL if parallel is None else parallel,
    )
    federation = Federation.from_config(config)
    for style in STYLES:
        federation.add_member(style, style, connector=connectors[style],
                              policy=policy, clock=clock)
    federation.install()
    return federation


def fresh_connectors(workload):
    return {
        style: InMemoryConnector(workload.relations_for(style))
        for style in STYLES
    }


def canon(relations):
    """Order-insensitive canonical form of a ``{rel: rows}`` snapshot."""
    return {
        rel: sorted(json.dumps(row, sort_keys=True) for row in rows)
        for rel, rows in relations.items()
    }


def member_states(connectors):
    return {style: canon(connectors[style].scan()) for style in STYLES}


def restart(connectors, buffer):
    """What a process restart sees: the surviving members and a journal
    reopened over the surviving buffer (torn-tail detection runs)."""
    federation = build(connectors, InMemoryJournal(buffer=buffer))
    return federation, federation.recover()


INSERT_QUOTE = "?.dbU.insStk(.stk=nova, .date=x, .price=1)"


def declared_write_set(federation, source=INSERT_QUOTE):
    """The members the update's statically inferred write set reaches.

    With narrowed intents (the default), this — not "all members" — is
    what a flush stages and what the journal intent must cover; the
    assertions below validate against it so they stay honest if a
    member style ever drops out of a control program's footprint.
    """
    return sorted(federation.write_footprint(source).writes.dbs)


def intent_members(journal, update_id=None):
    """The member set of one journaled intent (the only one when
    ``update_id`` is None)."""
    intents = [record for record in journal.records()
               if record["type"] == "intent"
               and (update_id is None or record["update"] == update_id)]
    (intent,) = intents
    return sorted(intent["members"])


class TestCrashSchedules:
    """Exhaustive: one update, a crash at every crash-point index."""

    def setup_method(self):
        self.workload = StockWorkload(n_stocks=2, n_days=2, seed=13)

    def expected_states(self):
        """(pre, post) member states of the probe update, crash-free."""
        connectors = fresh_connectors(self.workload)
        pre = member_states(connectors)
        federation = build(connectors, InMemoryJournal())
        federation.insert_quote("nova", "9/9/99", 7.0)
        return pre, member_states(connectors)

    def count_crash_points(self):
        """How many crash-point operations one flush performs (an
        unarmed injector records the op sequence)."""
        crash = CrashInjector()
        federation = build(fresh_connectors(self.workload),
                           InMemoryJournal(), crash=crash)
        crash.sites.clear()
        federation.insert_quote("nova", "9/9/99", 7.0)
        return list(crash.sites)

    def test_flush_visits_both_site_kinds(self):
        sites = self.count_crash_points()
        written = declared_write_set(
            build(fresh_connectors(self.workload), InMemoryJournal())
        )
        # intent + (apply + member record) per written member + commit
        assert sites[0] == "journal.append"
        assert sites[-1] == "journal.append"
        assert sites.count("connector.apply") == len(written)
        assert len(sites) == 2 + 2 * len(written)

    @pytest.mark.parametrize("torn", [False, True])
    def test_every_crash_point_recovers_atomically(self, torn):
        pre, post = self.expected_states()
        n_ops = len(self.count_crash_points())
        for after in range(n_ops):
            connectors = fresh_connectors(self.workload)
            buffer = []
            crash = CrashInjector().arm(after, torn=torn)
            federation = build(connectors, InMemoryJournal(buffer=buffer),
                               crash=crash)
            with pytest.raises(CrashPoint):
                federation.insert_quote("nova", "9/9/99", 7.0)
            restarted, _ = restart(connectors, buffer)
            states = member_states(connectors)
            assert states in (pre, post), (
                f"mixed member state after crash at op {after} "
                f"(torn={torn})"
            )
            # Recovery is idempotent: a second pass changes nothing.
            assert restarted.recover() == {}
            assert member_states(connectors) == states
            assert restarted.journal.pending() == []

    def test_crash_after_intent_rolls_forward(self):
        """Once the intent is journaled, recovery must finish the
        update (roll forward), not abandon it."""
        pre, post = self.expected_states()
        connectors = fresh_connectors(self.workload)
        buffer = []
        crash = CrashInjector().arm(1)  # intent written, first apply dies
        federation = build(connectors, InMemoryJournal(buffer=buffer),
                           crash=crash)
        with pytest.raises(CrashPoint):
            federation.insert_quote("nova", "9/9/99", 7.0)
        restarted, replayed = restart(connectors, buffer)
        assert member_states(connectors) == post
        (members,) = replayed.values()
        assert sorted(members) == declared_write_set(restarted)
        assert intent_members(restarted.journal) == \
            declared_write_set(restarted)
        assert restarted.journal.status()["committed"] == 1

    def test_crash_before_intent_stays_at_pre_state(self):
        pre, _ = self.expected_states()
        connectors = fresh_connectors(self.workload)
        buffer = []
        crash = CrashInjector().arm(0, torn=True)
        federation = build(connectors, InMemoryJournal(buffer=buffer),
                           crash=crash)
        with pytest.raises(CrashPoint):
            federation.insert_quote("nova", "9/9/99", 7.0)
        restarted, replayed = restart(connectors, buffer)
        assert replayed == {}
        assert member_states(connectors) == pre
        # The torn intent line was truncated, and counted.
        assert restarted.journal.truncated_tails == 1

    def test_recovery_observability(self):
        connectors = fresh_connectors(self.workload)
        buffer = []
        crash = CrashInjector().arm(2)  # first member applied, then death
        federation = build(connectors, InMemoryJournal(buffer=buffer),
                           crash=crash)
        with pytest.raises(CrashPoint):
            federation.insert_quote("nova", "9/9/99", 7.0)
        restarted = build(connectors, InMemoryJournal(buffer=buffer))
        restarted.recover()
        metrics = restarted.obs.metrics
        assert metrics.counter_value("journal.replays", via="recover") >= 1
        journal = restarted.health_report()["journal"]
        assert journal["pending"] == []
        assert journal["committed"] == 1


class TestNarrowedUpdateCrashSchedules:
    """Crash sweep for a *narrowed* flush: a direct single-member update
    journals (and applies to) only that member's write set, and crash
    recovery never drags the members outside it into the update."""

    REQUEST = "?.euter.r+(.stkCode=nova, .date=9/9/99, .clsPrice=7.0)"

    def setup_method(self):
        self.workload = StockWorkload(n_stocks=2, n_days=2, seed=13)

    def expected_states(self):
        connectors = fresh_connectors(self.workload)
        pre = member_states(connectors)
        federation = build(connectors, InMemoryJournal())
        federation.update(self.REQUEST)
        return pre, member_states(connectors)

    def test_intent_covers_exactly_the_write_set(self):
        connectors = fresh_connectors(self.workload)
        federation = build(connectors, InMemoryJournal())
        assert declared_write_set(federation, self.REQUEST) == ["euter"]
        result = federation.update(self.REQUEST)
        assert intent_members(federation.journal, result.update_id) == \
            ["euter"]

    def test_narrowed_flush_has_fewer_crash_points(self):
        crash = CrashInjector()
        federation = build(fresh_connectors(self.workload),
                           InMemoryJournal(), crash=crash)
        crash.sites.clear()
        federation.update(self.REQUEST)
        sites = list(crash.sites)
        # intent + (apply + member record) for one member + commit
        assert sites.count("connector.apply") == 1
        assert len(sites) == 4

    @pytest.mark.parametrize("torn", [False, True])
    def test_every_crash_point_recovers_atomically(self, torn):
        pre, post = self.expected_states()
        assert pre != post
        for after in range(4):
            connectors = fresh_connectors(self.workload)
            buffer = []
            crash = CrashInjector().arm(after, torn=torn)
            federation = build(connectors, InMemoryJournal(buffer=buffer),
                               crash=crash)
            with pytest.raises(CrashPoint):
                federation.update(self.REQUEST)
            # Members outside the write set were never touched, crash
            # or no crash.
            states = member_states(connectors)
            for style in ("chwab", "ource"):
                assert states[style] == pre[style]
            restarted, _ = restart(connectors, buffer)
            states = member_states(connectors)
            assert states in (pre, post), (
                f"mixed state after narrowed crash at op {after} "
                f"(torn={torn})"
            )
            assert restarted.recover() == {}
            assert restarted.journal.pending() == []


@pytest.mark.concurrency
class TestConcurrentFlushChaos:
    """Crash schedules against the scatter-gather flush, explicitly
    ``parallel="on"``: the applies are in flight on worker threads when
    the crash fires, yet every member must still land at exactly the
    pre-update or exactly the post-update state after recovery.

    The injector's fired-keeps-firing rule is what a real process death
    looks like to the stragglers: once one worker hits the armed crash
    point, every later crash-point visit — another member's apply, a
    journal record — dies too, so nothing is journaled after the crash.
    """

    def setup_method(self):
        self.workload = StockWorkload(n_stocks=2, n_days=2, seed=13)

    def build_parallel(self, connectors, buffer, crash=None):
        return build(connectors, InMemoryJournal(buffer=buffer),
                     crash=crash, parallel="on")

    def expected_states(self):
        connectors = fresh_connectors(self.workload)
        pre = member_states(connectors)
        federation = self.build_parallel(connectors, [])
        federation.insert_quote("nova", "9/9/99", 7.0)
        return pre, member_states(connectors)

    def test_parallel_and_serial_flush_agree(self):
        """Crash-free: scatter-gather and the serial fallback leave the
        members in identical states."""
        serial = fresh_connectors(self.workload)
        build(serial, InMemoryJournal(), parallel="off").insert_quote(
            "nova", "9/9/99", 7.0)
        _, parallel_post = self.expected_states()
        assert member_states(serial) == parallel_post

    def test_every_crash_point_recovers_atomically_in_flight(self):
        """The full crash sweep with concurrent applies: all-pre or
        all-post after recovery, and a double ``recover()`` is a no-op."""
        pre, post = self.expected_states()
        crash = CrashInjector()
        probe = self.build_parallel(fresh_connectors(self.workload), [],
                                    crash=crash)
        crash.sites.clear()
        probe.insert_quote("nova", "9/9/99", 7.0)
        n_ops = len(crash.sites)
        for after in range(n_ops):
            connectors = fresh_connectors(self.workload)
            buffer = []
            injector = CrashInjector().arm(after)
            federation = self.build_parallel(connectors, buffer,
                                             crash=injector)
            with pytest.raises(CrashPoint):
                federation.insert_quote("nova", "9/9/99", 7.0)
            restarted, _ = restart(connectors, buffer)
            states = member_states(connectors)
            assert states in (pre, post), (
                f"mixed member state after concurrent crash at op {after}"
            )
            assert restarted.recover() == {}
            assert member_states(connectors) == states
            assert restarted.journal.pending() == []

    def test_crash_mid_scatter_journals_nothing_after_the_fire(self):
        """Once the injector fires, no straggling worker gets a member
        record into the journal — the surviving log ends at the intent."""
        connectors = fresh_connectors(self.workload)
        buffer = []
        injector = CrashInjector().arm(1)  # intent durable, applies die
        federation = self.build_parallel(connectors, buffer, crash=injector)
        with pytest.raises(CrashPoint):
            federation.insert_quote("nova", "9/9/99", 7.0)
        reopened = InMemoryJournal(buffer=buffer)
        kinds = [record["type"] for record in reopened.records()]
        assert kinds == ["intent"]


class TestRecoveryWithUnreachableMembers:
    def setup_method(self):
        self.workload = StockWorkload(n_stocks=2, n_days=2, seed=13)

    def build_flaky(self, buffer, crash=None):
        clock = FakeClock()
        flaky = FaultyConnector(
            InMemoryConnector(self.workload.relations_for("chwab")),
            clock=clock,
        )
        connectors = {
            "euter": InMemoryConnector(self.workload.relations_for("euter")),
            "chwab": flaky,
            "ource": InMemoryConnector(self.workload.relations_for("ource")),
        }
        policy = ResiliencePolicy(max_attempts=1, failure_threshold=100,
                                  jitter=0.0)
        federation = build(connectors, InMemoryJournal(buffer=buffer),
                           crash=crash, policy=policy, clock=clock)
        return federation, connectors, flaky

    def crash_mid_flush(self, buffer, crash_after=2):
        crash = CrashInjector()
        federation, connectors, flaky = self.build_flaky(buffer, crash)
        crash.arm(crash_after)
        with pytest.raises(CrashPoint):
            federation.insert_quote("nova", "9/9/99", 7.0)
        return connectors, flaky

    def test_unreachable_member_stays_owed_until_resync(self):
        buffer = []
        connectors, flaky = self.crash_mid_flush(buffer)
        # Restart with the member down: recovery rolls the others
        # forward and leaves the down member stale (push) and owed.
        flaky.set_outage(True)
        clock = FakeClock()
        policy = ResiliencePolicy(max_attempts=1, failure_threshold=100,
                                  jitter=0.0)
        restarted = build(connectors, InMemoryJournal(buffer=buffer),
                          policy=policy, clock=clock)
        restarted.recover()
        assert restarted.availability().status_of("chwab") in (
            "stale", "quarantined"
        )
        (update,) = restarted.journal.pending()
        assert update.remaining == ["chwab"]
        # The member comes back; probe resyncs it, which settles its
        # share of the journaled update and commits it.
        flaky.restore()
        assert restarted.probe("chwab") is True
        assert restarted.journal.pending() == []
        assert restarted.journal.status()["committed"] == 1
        rows = flaky.inner.scan()["r"]
        assert any(row.get("nova") == 7.0 for row in rows)

    def test_member_down_through_install_replays_on_attach(self):
        """A member quarantined at restart (down during install and
        recover) is rolled forward by the journal when it re-attaches —
        the journal outranks the state the attach scan pulls."""
        buffer = []
        connectors, flaky = self.crash_mid_flush(buffer)
        flaky.set_outage(True)
        clock = FakeClock()
        policy = ResiliencePolicy(max_attempts=1, failure_threshold=100,
                                  jitter=0.0)
        restarted = Federation.from_config(
            FederationConfig(journal=InMemoryJournal(buffer=buffer))
        )
        for style in STYLES:
            restarted.add_member(style, style, connector=connectors[style],
                                 policy=policy, clock=clock)
        restarted.install()
        assert "chwab" in restarted.quarantined
        restarted.recover()
        (update,) = restarted.journal.pending()
        assert update.remaining == ["chwab"]
        flaky.restore()
        assert restarted.probe("chwab") is True
        # Attach pulled the member's pre-update state, then the pending
        # journal entry rolled it forward.
        rows = flaky.inner.scan()["r"]
        assert any(row.get("nova") == 7.0 for row in rows)
        assert restarted.journal.pending() == []
        # The whole federation answers with the update everywhere.
        assert ("9/9/99", "nova", 7.0) in set(restarted.unified_quotes())


@given(
    seed=st.integers(min_value=0, max_value=3),
    prior=st.integers(min_value=0, max_value=2),
    crash_after=st.integers(min_value=0, max_value=40),
    torn=st.booleans(),
)
@settings(max_examples=30, deadline=None, derandomize=True)
def test_chaos_property_members_never_hold_a_mixed_state(
    seed, prior, crash_after, torn
):
    """Random workload x crash schedule x recovery: every member ends
    at exactly the pre-update or exactly the post-update state."""
    workload = StockWorkload(n_stocks=2, n_days=2, seed=seed)
    connectors = fresh_connectors(workload)
    buffer = []
    crash = CrashInjector()
    federation = build(connectors, InMemoryJournal(buffer=buffer),
                       crash=crash)
    for index in range(prior):
        federation.insert_quote(f"pre{index}", "8/8/88", float(index + 1))
    pre = member_states(connectors)
    # The expected post-state, from a crash-free shadow federation over
    # copies of the current member states.
    shadow = {
        style: InMemoryConnector(connectors[style].scan())
        for style in STYLES
    }
    build(shadow, InMemoryJournal()).insert_quote("nova", "9/9/99", 7.0)
    post = member_states(shadow)

    crash.arm(crash_after, torn=torn)
    crashed = False
    try:
        federation.insert_quote("nova", "9/9/99", 7.0)
    except CrashPoint:
        crashed = True

    restarted, _ = restart(connectors, buffer)
    states = member_states(connectors)
    assert states in (pre, post)
    if not crashed:
        assert states == post
    # Double recovery is a no-op.
    assert restarted.recover() == {}
    assert member_states(connectors) == states
    assert restarted.journal.pending() == []
