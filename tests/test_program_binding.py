"""Unit tests for program registration, call shapes and binding
signatures (Section 7.1's compile-time analysis)."""

from __future__ import annotations

import pytest

from repro.core import ast
from repro.core.binding import (
    body_executable,
    check_call_binding,
    describe_signatures,
    minimal_signatures,
)
from repro.core.parser import parse_program, parse_update_clause
from repro.core.program import IdlProgram, analyze_clause, parse_call_shape
from repro.errors import BindingError, RecursionError_, SemanticError


def clause(source):
    return analyze_clause(parse_update_clause(source))


class TestAnalyzeClause:
    def test_plain_program_head(self):
        analyzed = clause(".dbU.delStk(.stk=S, .date=D) -> .e.r-(.stkCode=S)")
        assert analyzed.key == ("dbU", "delStk", None)
        assert analyzed.param_names == ("stk", "date")

    def test_view_update_head(self):
        analyzed = clause(".dbX.p+(.date=D) -> .e.r-(.date=D)")
        assert analyzed.key == ("dbX", "p", "+")

    def test_wildcard_head(self):
        analyzed = clause(".dbO.S+(.date=D) -> .e.r-(.date=D, .stkCode=S)")
        assert analyzed.key == ("dbO", None, "+")
        assert "__relation__" in analyzed.param_terms

    def test_wildcard_requires_sign(self):
        with pytest.raises(SemanticError):
            clause(".dbO.S(.date=D) -> .e.r-(.date=D)")

    def test_no_parameters(self):
        analyzed = clause(".dbU.reset() -> .e.r-()")
        assert analyzed.param_names == ()

    def test_constant_parameter(self):
        analyzed = clause(".dbU.audit(.kind=add) -> .e.log+(.event=add)")
        assert analyzed.param_names == ("kind",)

    def test_bad_parameter_shapes_rejected(self):
        for bad in (
            ".dbU.p(.x>Y) -> .e.r-(.a=Y)",
            ".dbU.p(.x=Y, .x=Z) -> .e.r-(.a=Y, .b=Z)",
            ".dbU.p(+.x=Y) -> .e.r-(.a=Y)",
        ):
            with pytest.raises(SemanticError):
                clause(bad)


class TestParseCallShape:
    def parse_conjunct(self, source):
        from repro.core.parser import parse_expression

        return parse_expression("?" + source).conjuncts[0]

    def test_plain_call(self):
        shape = parse_call_shape(self.parse_conjunct(".dbU.del(.stk=hp)"))
        db, name, sign, args = shape
        assert (db, name, sign) == ("dbU", "del", None)
        assert isinstance(args, ast.TupleExpr)

    def test_signed_call(self):
        shape = parse_call_shape(self.parse_conjunct(".dbX.p+(.d=1)"))
        assert shape[:3] == ("dbX", "p", "+")

    def test_non_calls(self):
        for source in (".X.y(.a=1)", ".db.r.s(.a=1)", "-.db.r(.a=1)"):
            assert parse_call_shape(self.parse_conjunct(source)) is None


class TestBindingSignatures:
    def setup_method(self):
        self.ins_body = parse_update_clause(
            ".u.i(.s=S, .d=D, .p=P) -> .e.r+(.date=D, .stkCode=S, .clsPrice=P)"
        ).body
        self.del_body = parse_update_clause(
            ".u.d(.s=S, .d=D) -> .e.r-(.date=D, .stkCode=S)"
        ).body

    def test_insert_needs_everything(self):
        signatures = minimal_signatures(("S", "D", "P"), self.ins_body)
        assert signatures == [frozenset({"S", "D", "P"})]

    def test_delete_needs_nothing(self):
        signatures = minimal_signatures(("S", "D"), self.del_body)
        assert signatures == [frozenset()]

    def test_body_executable(self):
        assert body_executable(self.ins_body, {"S", "D", "P"})
        assert not body_executable(self.ins_body, {"S", "D"})

    def test_check_call_binding(self):
        check_call_binding("i", ("S", "D", "P"), self.ins_body, {"S", "D", "P"})
        with pytest.raises(BindingError):
            check_call_binding("i", ("S", "D", "P"), self.ins_body, {"S"})

    def test_describe(self):
        assert describe_signatures(("S", "D", "P"), self.ins_body) == ["D+P+S"]
        assert describe_signatures(("S", "D"), self.del_body) == ["(none)"]

    def test_mixed_signature(self):
        body = parse_update_clause(
            ".u.m(.s=S, .p=P) -> .e.r(.stkCode=S, .clsPrice+=P)"
        ).body
        # P must be given; S may be omitted (enumerate all stocks).
        signatures = minimal_signatures(("S", "P"), body)
        assert signatures == [frozenset({"P"})]


class TestIdlProgram:
    def test_load_mixed_program(self):
        program = IdlProgram()
        program.load(
            ".v.p(.x=X) <- .d.r(.x=X)\n"
            ".u.del(.x=X) -> .d.r-(.x=X)"
        )
        assert len(program.rules) == 1
        assert ("u", "del", None) in program.clauses

    def test_load_rejects_queries(self):
        program = IdlProgram()
        with pytest.raises(SemanticError):
            program.load("?.d.r(.x=1)")

    def test_clauses_for_exact_and_wildcard(self):
        program = IdlProgram()
        program.add_update_clause(".dbO.S+(.d=D) -> .e.r-(.date=D, .s=S)")
        program.add_update_clause(".dbO.hp+(.d=D) -> .e.r-(.date=D)")
        exact, wildcard_name = program.clauses_for("dbO", "hp", "+")
        assert wildcard_name is None and len(exact) == 1
        matched, name = program.clauses_for("dbO", "ibm", "+")
        assert name == "ibm" and len(matched) == 1

    def test_is_derived(self):
        program = IdlProgram()
        program.add_rule(".dbO.S(.x=X) <- .d.r(.s=S, .x=X)")
        assert program.is_derived(("dbO", "anything"))
        assert not program.is_derived(("other", "p"))

    def test_self_recursion_rejected(self):
        program = IdlProgram()
        with pytest.raises(RecursionError_):
            program.add_update_clause(".u.loop(.x=X) -> .u.loop(.x=X)")

    def test_long_call_chains_allowed(self):
        program = IdlProgram()
        program.add_update_clause(".u.a(.x=X) -> .d.r-(.v=X)")
        program.add_update_clause(".u.b(.x=X) -> .u.a(.x=X)")
        program.add_update_clause(".u.c(.x=X) -> .u.b(.x=X)")
        assert len(program.clauses) == 3

    def test_program_names(self):
        program = IdlProgram()
        program.add_update_clause(".u.a(.x=X) -> .d.r-(.v=X)")
        program.add_update_clause(".dbO.S+(.d=D) -> .d.r-(.v=D, .s=S)")
        assert ".u.a" in program.program_names()
        assert ".dbO.<REL>+" in program.program_names()

    def test_parse_program_statements_preserved(self):
        statements = parse_program(
            ".v.p(.x=X) <- .d.r(.x=X)\n.u.del(.x=X) -> .d.r-(.x=X)"
        )
        assert len(statements) == 2
