"""Cross-cutting coverage: error hierarchy, deep plans, misc paths."""

from __future__ import annotations

import pytest

from repro import IdlEngine
from repro.errors import (
    AuthorizationError,
    BindingError,
    DatalogError,
    FederationError,
    IdlError,
    IntegrityError,
    LexError,
    ParseError,
    RewriteError,
    SafetyError,
    SchemaError,
    SqlError,
    StorageError,
    StratificationError,
    TransactionError,
    UpdateError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_type",
        [
            AuthorizationError, BindingError, DatalogError, FederationError,
            IntegrityError, LexError, ParseError, RewriteError, SafetyError,
            SchemaError, SqlError, StorageError, StratificationError,
            TransactionError, UpdateError,
        ],
    )
    def test_everything_is_an_idl_error(self, error_type):
        assert issubclass(error_type, IdlError)

    def test_syntax_errors_carry_positions(self):
        error = ParseError("boom", line=3, column=7)
        assert error.line == 3 and "line 3" in str(error)

    def test_integrity_is_an_update_error(self):
        # so engine.update callers catching UpdateError also see it
        assert issubclass(IntegrityError, UpdateError)


class TestThreeWayJoins:
    def test_sql_three_table_join(self):
        from repro.sql import SqlEngine
        from repro.storage import StorageDatabase

        database = StorageDatabase("j")
        sql = SqlEngine(database)
        sql.execute("CREATE TABLE a (k int, x int)")
        sql.execute("CREATE TABLE b (k int, y int)")
        sql.execute("CREATE TABLE c (y int, z str)")
        sql.execute("INSERT INTO a (k, x) VALUES (1, 10), (2, 20)")
        sql.execute("INSERT INTO b (k, y) VALUES (1, 100), (2, 200)")
        sql.execute("INSERT INTO c (y, z) VALUES (100, 'hit'), (300, 'miss')")
        rows = sql.execute(
            "SELECT p.x, r.z FROM a p, b q, c r"
            " WHERE p.k = q.k AND q.y = r.y"
        )
        assert rows == [{"x": 10, "z": "hit"}]

    def test_idl_three_member_join(self):
        engine = IdlEngine()
        engine.add_database("m1", {"r": [{"k": 1, "v": "a"}]})
        engine.add_database("m2", {"s": [{"k": 1, "w": "b"}]})
        engine.add_database("m3", {"t": [{"w": "b", "z": 9}]})
        results = engine.query(
            "?.m1.r(.k=K, .v=V), .m2.s(.k=K, .w=W), .m3.t(.w=W, .z=Z)"
        )
        assert [dict(a.items()) for a in results] == [
            {"K": 1, "V": "a", "W": "b", "Z": 9}
        ]


class TestEngineOptions:
    def test_naive_engine_end_to_end(self):
        engine = IdlEngine(fixpoint_method="naive")
        engine.add_database("g", {"edge": [{"a": 1, "b": 2}, {"a": 2, "b": 3}]})
        engine.define(
            ".g.tc(.a=X, .b=Y) <- .g.edge(.a=X, .b=Y)\n"
            ".g.tc(.a=X, .b=Y) <- .g.tc(.a=X, .b=Z), .g.edge(.a=Z, .b=Y)"
        )
        assert engine.fixpoint_stats is not None
        assert engine.fixpoint_stats.strategy == "naive"
        assert len(engine.overlay.get("g").get("tc")) == 3

    def test_parameterless_program_call(self):
        engine = IdlEngine()
        engine.add_database("d", {"r": [{"k": 1}], "log": []})
        engine.add_database("u", {})
        engine.define_update(".u.clear() -> .d.r-()")
        result = engine.update("?.u.clear()")
        assert result.succeeded
        assert len(engine.universe.relation("d", "r")) == 0

    def test_deep_strata_chain_queries(self):
        engine = IdlEngine()
        engine.add_database("d", {"r": [{"x": 1}]})
        engine.define(".v1.a(.x=X) <- .d.r(.x=X)")
        engine.define(".v2.b(.x=Y) <- .v1.a(.x=X), Y = X+1")
        engine.define(".v3.c(.x=Y) <- .v2.b(.x=X), Y = X+1")
        engine.define(".v4.d(.x=Y) <- .v3.c(.x=X), Y = X+1")
        assert engine.ask("?.v4.d(.x=4)")
        # Update ripples through the whole chain.
        engine.update("?.d.r+(.x=10)")
        assert engine.ask("?.v4.d(.x=13)")


class TestWorkloadDomains:
    def test_budget_workload_determinism(self):
        from repro.workloads import BudgetWorkload

        left = BudgetWorkload(n_departments=2, n_years=2, seed=3)
        right = BudgetWorkload(n_departments=2, n_years=2, seed=3)
        assert left.amounts == right.amounts

    def test_budget_styles_same_information(self):
        from repro.workloads import BudgetWorkload

        workload = BudgetWorkload(n_departments=2, n_years=3)
        from_fin = {
            (row["dept"], row["year"], row["amount"])
            for row in workload.fin_relations()["budget"]
        }
        from_acct = {
            (dept, row["year"], row["amount"])
            for dept, rows in workload.acct_relations().items()
            for row in rows
        }
        from_plan = set()
        for row in workload.plan_relations()["budget"]:
            for key, value in row.items():
                if key != "dept":
                    from_plan.add((row["dept"], int(key[1:]), value))
        assert from_fin == from_acct == from_plan == set(workload.entries())

    def test_budget_bounds_validated(self):
        from repro.workloads import BudgetWorkload

        with pytest.raises(ValueError):
            BudgetWorkload(n_departments=99)


class TestUnicodeAndQuoting:
    def test_unicode_values_round_trip(self, tmp_path):
        from repro.io import load_engine, save_engine

        engine = IdlEngine()
        engine.add_database("d", {"r": [{"name": "ação", "n": 1}]})
        path = tmp_path / "u.json"
        save_engine(engine, path)
        loaded = load_engine(path)
        assert loaded.ask("?.d.r(.name='ação')")

    def test_quoted_names_everywhere(self):
        engine = IdlEngine()
        engine.add_database("d", {"two words": [{"a b": 1}]})
        assert engine.ask("?.d.'two words'(.'a b'=1)")
        engine.update("?.d.'two words'+(.'a b'=2)")
        results = engine.query("?.d.'two words'(.'a b'=V)")
        assert {answer["V"] for answer in results} == {1, 2}
