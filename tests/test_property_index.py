"""Differential property test: indexed evaluation == scanned evaluation.

Two engines over identical universes — one probing hash indexes
(``use_indexes=True``, the default), one always scanning — are driven
through the same random sequence of queries and updates. After every
step the answer sets must agree exactly; any divergence is either an
unsound probe (the bucket dropped a real answer) or a stale index (an
update path that failed to invalidate).

The universes are deliberately heterogeneous (bare atoms, tuples with
missing attributes, nested sets, null, 1 vs 1.0 vs True collisions) and
the query pool includes higher-order attribute variables and negation —
the shapes the pushdown must *decline* without changing semantics.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import IdlEngine
from repro.errors import IdlError
from repro.objects import Universe

# -- data ---------------------------------------------------------------------

atoms = st.sampled_from([0, 1, 1.0, True, False, None, "a", "b", 2, 5])
nested = st.lists(atoms, max_size=2)
rows = st.lists(
    st.one_of(
        atoms,  # bare atoms are legal set elements
        st.dictionaries(
            st.sampled_from(["k", "v", "w"]),
            st.one_of(atoms, nested),
            max_size=3,
        ),
    ),
    max_size=10,
)

consts = st.sampled_from([0, 1, 2, 5, "a", "b"])

QUERY_TEMPLATES = (
    "?.d1.r(.k={c})",  # ground point selection: the probe case
    "?.d1.r(.k=K)",
    "?.d1.r(.k=K, .v=V)",
    "?.d1.r(.k={c}, .v=V)",
    "?.d1.r(.A={c})",  # higher-order attribute variable
    "?.d1.r~(.k={c})",  # negated set expression
    "?.D.R(.k={c})",  # database and relation both enumerated
    "?.d1.r(.k=K), .d2.r(.k=K)",  # cross-database join
    "?.d1.r(.k=K), .d1.s(.k=K, .v=V)",
)

UPDATE_TEMPLATES = (
    "?.d1.r+(.k={c}, .v={d})",
    "?.d1.r+(.k={c})",
    "?.d1.r-(.k={c})",
    "?.d2.r-(.k={c}, .v={d})",
    "?.d1.s+(.k={c}, .v={d})",
    "?.d1.r(.k={c}, .v-=C)",  # null the value in place
    "?.d1.r(.k={c}, +.w={d})",  # add an attribute in place
)

steps = st.lists(
    st.tuples(
        st.booleans(),  # True: query, False: update
        st.integers(min_value=0, max_value=100),  # template pick
        consts,
        consts,
    ),
    min_size=1,
    max_size=8,
)


def build_engine(data, use_indexes):
    return IdlEngine(
        universe=Universe.from_python(data), use_indexes=use_indexes
    )


def _freeze(value):
    """Hashable rendering of a binding (nested sets arrive as lists)."""
    if isinstance(value, list):
        return frozenset(_freeze(child) for child in value)
    if isinstance(value, dict):
        return frozenset(
            (name, _freeze(child)) for name, child in value.items()
        )
    return (type(value).__name__, value)


def answer_key(results):
    return {
        frozenset(
            (name, _freeze(value))
            for name, value in answer.bindings.items()
        )
        for answer in results
    }


# -- the property -------------------------------------------------------------


@given(rows, rows, rows, steps)
@settings(max_examples=60, deadline=None)
def test_indexed_and_scanned_engines_agree(r1, s1, r2, script):
    data = {"d1": {"r": r1, "s": s1}, "d2": {"r": r2}}
    indexed = build_engine(data, use_indexes=True)
    scanned = build_engine(data, use_indexes=False)
    for is_query, pick, c, d in script:
        if is_query:
            template = QUERY_TEMPLATES[pick % len(QUERY_TEMPLATES)]
            statement = template.format(c=c, d=d)
            assert answer_key(indexed.query(statement)) == answer_key(
                scanned.query(statement)
            ), statement
            assert indexed.ask(statement) == scanned.ask(statement)
        else:
            template = UPDATE_TEMPLATES[pick % len(UPDATE_TEMPLATES)]
            statement = template.format(c=c, d=d)
            first = second = None
            try:
                first = indexed.update(statement)
            except IdlError as exc:
                first = type(exc)
            try:
                second = scanned.update(statement)
            except IdlError as exc:
                second = type(exc)
            if isinstance(first, type):
                assert first == second, statement
            else:
                assert (first.inserted, first.deleted, first.modified) == (
                    second.inserted,
                    second.deleted,
                    second.modified,
                ), statement
    # Closing sweep: the full contents still agree element by element.
    probe = "?.D.R(.k=K, .v=V)"
    assert answer_key(indexed.query(probe)) == answer_key(scanned.query(probe))


@given(rows, st.lists(consts, min_size=1, max_size=6))
@settings(max_examples=40, deadline=None)
def test_probe_after_every_insert_sees_the_insert(r1, inserts):
    indexed = build_engine({"d1": {"r": r1}}, use_indexes=True)
    for value in inserts:
        query = f"?.d1.r(.k={value}, .v=V)"
        before = len(indexed.query(query))  # builds/uses the index
        indexed.update(f"?.d1.r+(.k={value}, .v={value})")
        after = indexed.query(query)
        assert len(after) >= 1
        assert len(after) >= before, "stale index dropped an insert"
