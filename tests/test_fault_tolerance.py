"""Fault-tolerant federation: connectors, retry/backoff, breakers,
quarantine, partial-result queries, recovery and resync.

Everything runs on a :class:`FakeClock` — no real sleeps — so the
retry/backoff arithmetic and the breaker's timed transitions are
asserted exactly.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    FederationError,
    MemberUnavailableError,
    StaleMemberError,
    UpdateError,
)
from repro.multidb import (
    Federation,
    FaultyConnector,
    InMemoryConnector,
    ResiliencePolicy,
    ResilientConnector,
    StorageConnector,
)
from repro.multidb.resilience import CLOSED, HALF_OPEN, OPEN, CircuitBreaker, FakeClock
from repro.multidb.schema_styles import to_long
from repro.storage import StorageDatabase
from repro.workloads.stocks import StockWorkload


def quotes(answers):
    return {(a["D"], a["S"], a["P"]) for a in answers}


def style_quotes(workload, *styles):
    return {
        quote
        for style in styles
        for quote in to_long(workload.relations_for(style), style)
    }


# ---------------------------------------------------------------------------
# Retry / backoff
# ---------------------------------------------------------------------------


class TestRetryBackoff:
    def make(self, connector, **policy_kwargs):
        clock = FakeClock()
        policy_kwargs.setdefault("jitter", 0.0)
        policy = ResiliencePolicy(**policy_kwargs)
        return ResilientConnector("m", connector, policy, clock), clock

    def test_transient_failures_are_retried(self):
        faulty = FaultyConnector(InMemoryConnector({"r": [{"x": 1}]}))
        faulty.fail_next(2)
        resilient, clock = self.make(faulty, max_attempts=3, base_delay=0.1)
        assert resilient.scan() == {"r": [{"x": 1}]}
        assert resilient.health.retries == 2
        assert resilient.health.failures == 2
        assert resilient.health.successes == 1

    def test_backoff_is_exponential_and_capped(self):
        faulty = FaultyConnector(InMemoryConnector())
        faulty.fail_next(4)
        resilient, clock = self.make(
            faulty, max_attempts=5, base_delay=0.1, multiplier=2.0,
            max_delay=0.3,
        )
        resilient.ping()
        # Waits after failures 1..4: 0.1, 0.2, then capped at 0.3.
        assert clock.sleeps == [0.1, 0.2, 0.3, 0.3]

    def test_jitter_stays_within_bounds_and_is_deterministic(self):
        def sleeps_for(seed):
            faulty = FaultyConnector(InMemoryConnector())
            faulty.fail_next(3)
            clock = FakeClock()
            policy = ResiliencePolicy(
                max_attempts=4, base_delay=0.1, multiplier=1.0, jitter=0.5,
                seed=seed,
            )
            ResilientConnector("m", faulty, policy, clock).ping()
            return clock.sleeps

        first = sleeps_for(7)
        assert first == sleeps_for(7)  # same seed, same schedule
        assert all(0.05 <= wait <= 0.15 for wait in first)

    def test_attempts_exhausted_raises_original_error(self):
        faulty = FaultyConnector(InMemoryConnector(), outage=True)
        resilient, _ = self.make(faulty, max_attempts=3)
        with pytest.raises(MemberUnavailableError):
            resilient.scan()
        assert resilient.health.attempts == 3

    def test_retries_feed_the_metrics_registry(self):
        from repro.obs import Observability

        obs = Observability()
        faulty = FaultyConnector(InMemoryConnector({"r": [{"x": 1}]}))
        faulty.fail_next(2)
        policy = ResiliencePolicy(max_attempts=3, jitter=0.0)
        resilient = ResilientConnector("m", faulty, policy, FakeClock(),
                                       obs=obs)
        resilient.scan()
        metrics = obs.metrics
        assert metrics.counter_value("connector.scan.retries", member="m") == 2
        assert metrics.counter_value("connector.scan.attempts", member="m") == 3
        assert metrics.counter_value("connector.scan.failures", member="m") == 2

    def test_non_retryable_error_propagates_immediately(self):
        class Broken(InMemoryConnector):
            def scan(self):
                raise UpdateError("logic bug, not an outage")

        resilient, _ = self.make(Broken(), max_attempts=5)
        with pytest.raises(UpdateError):
            resilient.scan()
        assert resilient.health.attempts == 1
        assert resilient.breaker.state == CLOSED


class TestDeadlines:
    def test_slow_member_exceeds_deadline(self):
        clock = FakeClock()
        slow = FaultyConnector(InMemoryConnector(), latency=2.0, clock=clock)
        policy = ResiliencePolicy(max_attempts=1, deadline=0.5, jitter=0.0)
        resilient = ResilientConnector("m", slow, policy, clock)
        with pytest.raises(DeadlineExceededError):
            resilient.ping()

    def test_backoff_refuses_to_sleep_past_deadline(self):
        clock = FakeClock()
        faulty = FaultyConnector(InMemoryConnector(), outage=True)
        policy = ResiliencePolicy(
            max_attempts=10, base_delay=0.4, jitter=0.0, deadline=1.0,
        )
        resilient = ResilientConnector("m", faulty, policy, clock)
        with pytest.raises(DeadlineExceededError):
            resilient.ping()
        # 0.4 + 0.8 would pass 1.0s: only the first wait was taken.
        assert clock.sleeps == [0.4]


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, recovery_timeout=10,
                                 clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_half_opens_after_recovery_timeout(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_timeout=10,
                                 clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()  # the trial call
        assert breaker.state == HALF_OPEN

    def test_half_open_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_timeout=1,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(2)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_half_open_failure_reopens_and_restarts_timeout(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_timeout=10,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(11)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()  # the timeout restarted
        clock.advance(11)
        assert breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_transitions_are_recorded(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, recovery_timeout=1,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(2)
        breaker.allow()
        breaker.record_success()
        assert [(a, b) for _, a, b in breaker.transitions] == [
            (CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, CLOSED)
        ]

    def test_open_circuit_short_circuits_calls(self):
        clock = FakeClock()
        faulty = FaultyConnector(InMemoryConnector(), outage=True)
        policy = ResiliencePolicy(max_attempts=1, failure_threshold=1,
                                  recovery_timeout=100, jitter=0.0)
        resilient = ResilientConnector("m", faulty, policy, clock)
        with pytest.raises(MemberUnavailableError):
            resilient.ping()
        calls_before = faulty.calls
        with pytest.raises(CircuitOpenError):
            resilient.ping()
        assert faulty.calls == calls_before  # the member was not touched


# ---------------------------------------------------------------------------
# Federation: quarantine, partial queries, recovery, resync
# ---------------------------------------------------------------------------


def build_federation(workload, chwab_connector, policy, clock):
    federation = Federation()
    federation.add_member("euter", "euter", workload.euter_relations())
    federation.add_member("chwab", "chwab", connector=chwab_connector,
                          policy=policy, clock=clock)
    federation.add_member("ource", "ource", workload.ource_relations())
    return federation


class TestDegradedFederation:
    @pytest.fixture
    def workload(self):
        return StockWorkload(n_stocks=3, n_days=2, seed=11)

    def setup_down_member(self, workload, **policy_kwargs):
        clock = FakeClock()
        flaky = FaultyConnector(
            InMemoryConnector(workload.chwab_relations()), outage=True
        )
        policy_kwargs.setdefault("max_attempts", 2)
        policy_kwargs.setdefault("failure_threshold", 2)
        policy_kwargs.setdefault("jitter", 0.0)
        policy = ResiliencePolicy(**policy_kwargs)
        federation = build_federation(workload, flaky, policy, clock)
        return federation, flaky, clock

    def test_install_quarantines_unreachable_member(self, workload):
        federation, _, _ = self.setup_down_member(workload)
        federation.install()
        assert "chwab" in federation.quarantined
        assert federation.availability().status_of("chwab") == "quarantined"
        # The failed attach left its trail in the metrics registry.
        metrics = federation.obs.metrics
        assert metrics.counter_value(
            "connector.scan.retries", member="chwab") >= 1
        assert metrics.counter_value(
            "connector.scan.failures", member="chwab") >= 2
        assert metrics.counter_value(
            "circuit.state_changes", member="chwab") >= 1

    def test_strict_query_refuses_degraded_answer(self, workload):
        federation, _, _ = self.setup_down_member(workload)
        federation.install()
        with pytest.raises(MemberUnavailableError):
            federation.unified_quotes()

    def test_partial_query_serves_remaining_members(self, workload):
        federation, _, _ = self.setup_down_member(workload)
        federation.install()
        result = federation.query(
            "?.dbI.p(.date=D, .stk=S, .price=P)", on_unavailable="partial"
        )
        assert quotes(result) == style_quotes(workload, "euter", "ource")
        assert result.availability.unavailable == {"chwab"}
        assert result.availability.contributed == {"euter", "ource"}
        assert not result.complete

    def test_updates_refused_while_member_down(self, workload):
        federation, _, _ = self.setup_down_member(workload)
        federation.install()
        before = federation.query(
            "?.dbI.p(.date=D, .stk=S, .price=P)", on_unavailable="partial"
        )
        with pytest.raises(MemberUnavailableError):
            federation.insert_quote("nova", "9/9/99", 1.0)
        after = federation.query(
            "?.dbI.p(.date=D, .stk=S, .price=P)", on_unavailable="partial"
        )
        assert quotes(after) == quotes(before)  # nothing half-applied

    def test_probe_recovers_attaches_and_closes_breaker(self, workload):
        federation, flaky, _ = self.setup_down_member(workload)
        federation.install()
        assert federation.connectors["chwab"].breaker.state == OPEN
        assert federation.probe("chwab") is False or "chwab" in federation.quarantined
        flaky.restore()
        assert federation.probe("chwab") is True
        assert federation.connectors["chwab"].breaker.state == CLOSED
        assert federation.quarantined == {}
        # Fault-free answer, via the strict path.
        expected = sorted(style_quotes(workload, "euter", "chwab", "ource"))
        assert federation.unified_quotes() == expected

    def test_probe_all_reports_every_member(self, workload):
        federation, flaky, clock = self.setup_down_member(workload)
        federation.install()
        assert federation.probe_all() == {
            "euter": True, "chwab": False, "ource": True
        }
        flaky.restore()
        # The sweep honors the breaker cooldown: until recovery_timeout
        # elapses the open breaker refuses the probe without a network
        # call, so the member still reads as down.
        assert federation.probe_all()["chwab"] is False
        clock.advance(31.0)
        assert federation.probe_all() == {
            "euter": True, "chwab": True, "ource": True
        }

    def test_probe_all_respects_breaker_cooldown(self, workload):
        """The sweep must not hammer a quarantined member whose breaker
        is still open — that used to force a half-open probe (and a
        network call) on every ``probe_all``."""
        federation, flaky, clock = self.setup_down_member(workload)
        federation.install()
        flaky.restore()
        calls_before = flaky.calls
        assert federation.probe_all()["chwab"] is False
        assert flaky.calls == calls_before  # cooldown: member untouched
        clock.advance(31.0)
        assert federation.probe_all()["chwab"] is True
        assert flaky.calls > calls_before

    def test_single_member_probe_still_forces_half_open(self, workload):
        """The operator-driven ``probe(name)`` keeps its force-half-open
        contract: it bypasses the cooldown the sweep honors."""
        federation, flaky, clock = self.setup_down_member(workload)
        federation.install()
        flaky.restore()
        assert federation.probe_all()["chwab"] is False  # cooldown holds
        assert federation.probe("chwab") is True  # explicit probe forces

    def test_member_order_is_computed_once(self, workload):
        federation, _, _ = self.setup_down_member(workload)
        federation.install()
        first = federation.member_order
        assert first == tuple(sorted(federation.members))
        assert federation.member_order is first  # cached, not re-sorted
        federation.add_member("tock", "euter", workload.euter_relations())
        assert "tock" in federation.member_order  # invalidated on growth

    def test_reinstall_reattaches_recovered_member(self, workload):
        federation, flaky, _ = self.setup_down_member(workload)
        federation.install()
        flaky.restore()
        federation.reinstall()
        assert federation.quarantined == {}
        expected = sorted(style_quotes(workload, "euter", "chwab", "ource"))
        assert federation.unified_quotes() == expected

    def test_recovered_member_participates_in_updates(self, workload):
        federation, flaky, _ = self.setup_down_member(workload)
        federation.install()
        flaky.restore()
        federation.probe("chwab")
        federation.insert_quote("nova", "9/9/99", 7.0)
        # The translated insert reached the recovered member's connector.
        rows = federation.connectors["chwab"].connector.inner.scan()["r"]
        assert any(row.get("nova") == 7.0 for row in rows)

    def test_every_member_down_fails_install(self, workload):
        clock = FakeClock()
        federation = Federation()
        for style in ("euter", "chwab", "ource"):
            federation.add_member(
                style, style,
                connector=FaultyConnector(
                    InMemoryConnector(workload.relations_for(style)),
                    outage=True,
                ),
                policy=ResiliencePolicy(max_attempts=1, jitter=0.0),
                clock=clock,
            )
        with pytest.raises(MemberUnavailableError):
            federation.install()


class TestFlushFailureAndResync:
    @pytest.fixture
    def workload(self):
        return StockWorkload(n_stocks=2, n_days=2, seed=5)

    def setup_attached_flaky(self, workload, **faulty_kwargs):
        clock = FakeClock()
        flaky = FaultyConnector(
            InMemoryConnector(workload.chwab_relations()), **faulty_kwargs
        )
        policy = ResiliencePolicy(max_attempts=2, failure_threshold=2,
                                  recovery_timeout=50, jitter=0.0)
        federation = build_federation(workload, flaky, policy, clock)
        federation.install()
        return federation, flaky, clock

    def test_failed_flush_marks_member_stale_then_resync_pushes(self, workload):
        federation, flaky, _ = self.setup_attached_flaky(workload)
        flaky.set_outage(True)
        with pytest.raises(MemberUnavailableError):
            federation.insert_quote("nova", "9/9/99", 3.0)
        assert federation.availability().status_of("chwab") in (
            "stale", "circuit-open"
        )
        flaky.restore()
        assert federation.probe("chwab") is True
        assert federation.availability().status_of("chwab") == "ok"
        rows = flaky.inner.scan()["r"]
        assert any(row.get("nova") == 3.0 for row in rows)
        # Strict queries serve again, and include the repaired update.
        assert ("9/9/99", "nova", 3.0) in set(federation.unified_quotes())

    def test_open_circuit_refuses_updates_before_mutation(self, workload):
        federation, flaky, _ = self.setup_attached_flaky(workload)
        flaky.set_outage(True)
        with pytest.raises(MemberUnavailableError):
            federation.insert_quote("nova", "9/9/99", 3.0)
        assert federation.connectors["chwab"].breaker.state == OPEN
        with pytest.raises(CircuitOpenError):
            federation.insert_quote("other", "9/9/99", 4.0)
        # The second update never reached the engine.
        assert not federation.ask("?.euter.r(.stkCode=other)")
        # The failed flush and the breaker trip were counted.
        metrics = federation.obs.metrics
        assert metrics.counter_value(
            "connector.apply.failures", member="chwab") >= 1
        assert metrics.counter_value(
            "circuit.state_changes", member="chwab") >= 1

    def test_stale_member_blocks_strict_queries_until_resync(self, workload):
        federation, flaky, _ = self.setup_attached_flaky(workload)
        flaky.set_outage(True)
        with pytest.raises(MemberUnavailableError):
            federation.insert_quote("nova", "9/9/99", 3.0)
        flaky.restore()
        federation.connectors["chwab"].breaker.record_success()  # close it
        with pytest.raises(StaleMemberError):
            federation.unified_quotes()
        federation.resync("chwab")
        assert ("9/9/99", "nova", 3.0) in set(federation.unified_quotes())

    def test_torn_write_repaired_by_push_resync(self, workload):
        federation, flaky, _ = self.setup_attached_flaky(
            workload, torn_writes=True
        )
        flaky.set_outage(True)
        with pytest.raises(MemberUnavailableError):
            federation.insert_quote("nova", "9/9/99", 3.0)
        # The member took a torn (truncated) write.
        torn_rows = flaky.inner.scan()["r"]
        assert len(torn_rows) < workload.n_days
        flaky.restore()
        assert federation.probe("chwab") is True
        repaired = flaky.inner.scan()["r"]
        assert len(repaired) == workload.n_days + 1  # the new 9/9/99 row


class TestStorageConnectorAtomicApply:
    """StorageConnector.apply runs the whole replacement in one storage
    transaction: a failure mid-apply leaves the member exactly as it
    was — never half-replaced."""

    def make_storage(self):
        storage = StorageDatabase("m")
        storage.create_relation(
            "r", [("stkCode", "str"), ("clsPrice", "float")],
            key=("stkCode",),
        )
        storage.insert("r", {"stkCode": "hp", "clsPrice": 50.0})
        return storage

    def test_mid_apply_failure_rolls_everything_back(self):
        from repro.errors import StorageError

        storage = self.make_storage()
        connector = StorageConnector(storage)
        # "s" is created first, then "r"'s duplicate key blows up the
        # apply — the new relation must not survive the abort.
        bad = {
            "s": [{"x": 1}],
            "r": [
                {"stkCode": "a", "clsPrice": 1.0},
                {"stkCode": "a", "clsPrice": 2.0},  # duplicate key
            ],
        }
        with pytest.raises(StorageError):
            connector.apply(bad)
        assert storage.relation_names() == ["r"]
        assert storage.scan("r") == [{"stkCode": "hp", "clsPrice": 50.0}]
        assert not storage.in_transaction

    def test_replace_contents_composes_with_enclosing_transaction(self):
        from repro.errors import StorageError
        from repro.multidb.adapters import infer_schema

        storage = self.make_storage()
        bad = {
            "r": [
                {"stkCode": "a", "clsPrice": 1.0},
                {"stkCode": "a", "clsPrice": 2.0},
            ],
        }
        with storage.begin():
            storage.insert("r", {"stkCode": "ibm", "clsPrice": 10.0})
            with pytest.raises(StorageError):
                storage.replace_contents(bad, infer_schema)
            # The failed replacement rolled back to its savepoint; the
            # enclosing transaction (and its insert) survives.
            assert storage.in_transaction
        assert {row["stkCode"] for row in storage.scan("r")} == {"hp", "ibm"}

    def test_scripted_failure_then_flush_repairs_through_journal(self):
        workload = StockWorkload(n_stocks=2, n_days=2, seed=5)
        storage = StorageDatabase("chwab")
        storage.create_relation(
            "r", [("date", "str")] + [
                (symbol, "float") for symbol in workload.symbols
            ],
        )
        for row in workload.chwab_relations()["r"]:
            storage.insert("r", row)
        clock = FakeClock()
        flaky = FaultyConnector(StorageConnector(storage))
        policy = ResiliencePolicy(max_attempts=1, failure_threshold=100,
                                  jitter=0.0)
        federation = build_federation(workload, flaky, policy, clock)
        federation.install()
        before = storage.scan("r")
        flaky.fail_next(1)
        with pytest.raises(MemberUnavailableError):
            federation.insert_quote("nova", "9/9/99", 3.0)
        # The scripted failure fired before the storage was touched, and
        # the journaled intent stayed pending for the member.
        assert storage.scan("r") == before
        (update,) = federation.journal.pending()
        assert "chwab" in update.remaining
        federation.resync("chwab")
        assert federation.journal.pending() == []
        assert storage.lookup("r", date="9/9/99")


class TestResyncDirections:
    @pytest.fixture
    def workload(self):
        return StockWorkload(n_stocks=2, n_days=2, seed=5)

    def setup_attached_flaky(self, workload):
        clock = FakeClock()
        flaky = FaultyConnector(
            InMemoryConnector(workload.chwab_relations()), clock=clock
        )
        policy = ResiliencePolicy(max_attempts=1, failure_threshold=100,
                                  jitter=0.0)
        federation = build_federation(workload, flaky, policy, clock)
        federation.install()
        return federation, flaky

    def test_push_resync_after_failed_flush_settles_the_journal(
        self, workload
    ):
        federation, flaky = self.setup_attached_flaky(workload)
        flaky.fail_next(1)
        with pytest.raises(MemberUnavailableError):
            federation.insert_quote("nova", "9/9/99", 3.0)
        assert federation.availability().status_of("chwab") == "stale"
        (update,) = federation.journal.pending()
        assert update.remaining == ["chwab"]
        federation.resync("chwab")
        # The push delivered the universe's state, which subsumes the
        # journaled desired state: the update commits.
        assert federation.journal.pending() == []
        assert federation.journal.is_committed(update.update_id)
        rows = flaky.inner.scan()["r"]
        assert any(row.get("nova") == 3.0 for row in rows)

    def test_pull_resync_adopts_the_members_own_state(self, workload):
        federation, flaky = self.setup_attached_flaky(workload)
        # The member changed behind the federation's back (autonomy:
        # members accept local writes the federation never saw).
        flaky.inner._relations["r"].append(
            {"date": "7/7/77", "local": 9.0}
        )
        federation.resync("chwab")  # not stale -> pull direction
        assert ("7/7/77", "local", 9.0) in set(federation.unified_quotes())

    def test_double_resync_is_idempotent(self, workload):
        federation, flaky = self.setup_attached_flaky(workload)
        flaky.fail_next(1)
        with pytest.raises(MemberUnavailableError):
            federation.insert_quote("nova", "9/9/99", 3.0)
        federation.resync("chwab")
        after_first = flaky.inner.scan()
        # Second resync: no longer stale, so it pulls — and changes
        # nothing, because member and universe now agree.
        federation.resync("chwab")
        assert flaky.inner.scan() == after_first
        assert federation.journal.pending() == []
        assert federation.availability().status_of("chwab") == "ok"
        assert ("9/9/99", "nova", 3.0) in set(federation.unified_quotes())

    def test_resync_then_subsequent_update_keeps_journal_consistent(
        self, workload
    ):
        federation, flaky = self.setup_attached_flaky(workload)
        flaky.fail_next(1)
        with pytest.raises(MemberUnavailableError):
            federation.insert_quote("nova", "9/9/99", 3.0)
        first = federation.journal.pending()[0].update_id
        federation.resync("chwab")
        result = federation.insert_quote("zeta", "9/9/99", 4.0)
        assert result.flushed
        assert result.update_id > first
        assert federation.journal.pending() == []
        assert federation.journal.status()["committed"] == 2
        rows = flaky.inner.scan()["r"]
        (quote_row,) = [row for row in rows if row.get("date") == "9/9/99"]
        assert quote_row.get("nova") == 3.0 and quote_row.get("zeta") == 4.0


class TestFaultyConnectorDeterminism:
    def schedule(self, connector, n=24):
        """The connector's injected-failure pattern over n pings."""
        pattern = []
        for _ in range(n):
            try:
                connector.ping()
                pattern.append(False)
            except MemberUnavailableError:
                pattern.append(True)
        return pattern

    def test_siblings_with_one_seed_draw_independent_streams(self):
        a = FaultyConnector(InMemoryConnector({"r": []}),
                            failure_rate=0.5, seed=7)
        b = FaultyConnector(InMemoryConnector({"r": []}),
                            failure_rate=0.5, seed=7)
        assert a.stream != b.stream
        assert self.schedule(a) != self.schedule(b)

    def test_explicit_stream_reproduces_the_schedule(self):
        def build():
            return FaultyConnector(InMemoryConnector({"r": []}),
                                   failure_rate=0.5, seed=7, stream=3)

        assert self.schedule(build()) == self.schedule(build())

    def test_injected_fault_records_a_span_event(self):
        from repro.obs import Observability

        obs = Observability()
        faulty = FaultyConnector(InMemoryConnector({"r": []}), obs=obs)
        faulty.fail_next(1)
        with obs.tracer.span("test.op") as span:
            with pytest.raises(MemberUnavailableError):
                faulty.scan()
        (event,) = [e for e in span.events if e[0] == "fault.injected"]
        assert event[1] == {"op": "scan", "why": "scripted failure"}

    def test_injected_latency_records_a_span_event(self):
        from repro.obs import Observability

        obs = Observability()
        clock = FakeClock()
        faulty = FaultyConnector(InMemoryConnector({"r": []}),
                                 latency=0.25, clock=clock, obs=obs)
        with obs.tracer.span("test.op") as span:
            faulty.scan()
        assert ("fault.latency", {"op": "scan", "seconds": 0.25}) \
            in span.events
        assert clock.sleeps == [0.25]

    def test_without_obs_no_span_is_required(self):
        faulty = FaultyConnector(InMemoryConnector({"r": []}))
        faulty.fail_next(1)
        with pytest.raises(MemberUnavailableError):
            faulty.scan()  # no tracer, no open span: still fine

    def test_resilient_connector_shares_obs_with_the_faulty_inner(self):
        from repro.obs import Observability

        obs = Observability()
        clock = FakeClock()
        faulty = FaultyConnector(InMemoryConnector({"r": []}))
        assert faulty.obs is None
        resilient = ResilientConnector(
            "m", faulty,
            ResiliencePolicy(max_attempts=1, jitter=0.0),
            clock, obs=obs,
        )
        assert faulty.obs is obs
        faulty.fail_next(1)
        with obs.tracer.span("federation.flush") as root:
            with pytest.raises(MemberUnavailableError):
                resilient.scan()
        events = [event for span in root.walk() for event in span.events]
        assert any(name == "fault.injected" for name, _ in events)


class TestReplHealth:
    def make_console(self, federation=None):
        import io

        from repro.tools.repl import IdlRepl

        out = io.StringIO()
        return IdlRepl(out=out, federation=federation), out

    def test_health_without_a_federation(self):
        console, out = self.make_console()
        console.handle(":health")
        assert "no federation attached" in out.getvalue()

    def test_health_lists_members_and_journal(self):
        workload = StockWorkload(n_stocks=2, n_days=2, seed=5)
        clock = FakeClock()
        flaky = FaultyConnector(
            InMemoryConnector(workload.chwab_relations()), clock=clock
        )
        policy = ResiliencePolicy(max_attempts=1, failure_threshold=100,
                                  jitter=0.0)
        federation = build_federation(workload, flaky, policy, clock)
        federation.install()
        console, out = self.make_console(federation)
        console.handle(":health")
        text = out.getvalue()
        for member in ("euter", "chwab", "ource"):
            assert member in text
        assert "ok" in text and "breaker=closed" in text
        assert "journal" in text and "pending: none" in text

    def test_health_shows_stale_member_and_pending_update(self):
        workload = StockWorkload(n_stocks=2, n_days=2, seed=5)
        clock = FakeClock()
        flaky = FaultyConnector(
            InMemoryConnector(workload.chwab_relations()), clock=clock
        )
        policy = ResiliencePolicy(max_attempts=1, failure_threshold=100,
                                  jitter=0.0)
        federation = build_federation(workload, flaky, policy, clock)
        federation.install()
        flaky.fail_next(1)
        with pytest.raises(MemberUnavailableError):
            federation.insert_quote("nova", "9/9/99", 3.0)
        (update,) = federation.journal.pending()
        console, out = self.make_console(federation)
        console.handle(":health")
        text = out.getvalue()
        assert "stale" in text
        assert f"pending: {update.update_id}" in text
        assert "injected fault" in text  # last_error surfaces


class TestLegacyMembersUnaffected:
    def test_storage_member_keeps_fail_fast_semantics(self):
        workload = StockWorkload(n_stocks=2, n_days=2, seed=3)
        storage = StorageDatabase("euter")
        storage.create_relation(
            "r", [("date", "str"), ("stkCode", "str"), ("clsPrice", "float")]
        )
        for day, symbol, price in workload.quotes():
            storage.insert("r", {"date": day, "stkCode": symbol,
                                 "clsPrice": price})
        federation = Federation()
        federation.add_member("euter", "euter", storage=storage)
        federation.install()
        resilient = federation.connectors["euter"]
        assert resilient.policy.max_attempts == 1
        federation.insert_quote("nova", "9/9/99", 1.0)
        assert storage.lookup("r", stkCode="nova")
        assert resilient.breaker.state == CLOSED
