"""Tests for the authorization extension."""

from __future__ import annotations

import pytest

from repro import IdlEngine
from repro.errors import AuthorizationError
from repro.multidb.authz import AccessPolicy, AuthorizedSession, restrict_view
from repro.workloads.stocks import paper_universe


@pytest.fixture
def engine():
    built = IdlEngine(universe=paper_universe())
    built.universe.add_database("dbU")
    built.define(
        ".dbI.p(.date=D, .stk=S, .price=P) <- "
        ".euter.r(.date=D, .stkCode=S, .clsPrice=P)"
    )
    built.define_update(
        ".dbU.del(.s=S) -> .euter.r-(.stkCode=S)\n"
        ".dbU.del(.s=S) -> .ource.S-()"
    )
    return built


@pytest.fixture
def policy():
    built = AccessPolicy()
    built.grant("quant", "euter", actions=("read", "write"))
    built.grant("quant", "dbI", actions=("read",))
    built.grant("intern", "dbI", "p", actions=("read",))
    built.grant("*", "dbU", actions=("read",))
    return built


class TestPolicy:
    def test_exact_and_wildcard_grants(self, policy):
        assert policy.can("quant", "read", "euter", "r")
        assert policy.can("quant", "write", "euter", "r")
        assert not policy.can("quant", "write", "dbI", "p")
        assert policy.can("intern", "read", "dbI", "p")
        assert not policy.can("intern", "read", "dbI", "other")
        assert policy.can("anyone", "read", "dbU", "whatever")

    def test_revoke(self, policy):
        assert policy.revoke("intern", "dbI", "p") == 1
        assert not policy.can("intern", "read", "dbI", "p")
        assert policy.revoke("intern", "dbI", "p") == 0

    def test_bad_action_rejected(self, policy):
        with pytest.raises(ValueError):
            policy.grant("x", "db", actions=("admin",))

    def test_reflection(self, policy):
        rows = policy.as_relations()["grants"]
        assert {"principal": "intern", "db": "dbI", "rel": "p",
                "actions": "read"} in rows


class TestReads:
    def test_filtered_query(self, engine, policy):
        session = AuthorizedSession(engine, "quant", policy)
        assert session.ask("?.euter.r(.stkCode=hp)")
        assert session.ask("?.dbI.p(.stk=hp)")
        # chwab/ource are invisible, not errors: queries just fail.
        assert not session.ask("?.chwab.r(.hp=P)")
        assert not session.ask("?.ource.hp(.clsPrice=P)")

    def test_higher_order_queries_see_only_granted(self, engine, policy):
        session = AuthorizedSession(engine, "intern", policy)
        rows = session.query("?.X.Y")
        assert {(row["X"], row["Y"]) for row in rows} == {("dbI", "p")}

    def test_restrict_view_shares_objects(self, engine):
        view = engine.materialized_view()
        filtered = restrict_view(view, lambda db, rel: db == "euter")
        assert filtered.attr_names() == ["euter"]
        # Shared, not copied:
        assert filtered.get("euter").get("r") is not None

    def test_principals_are_isolated(self, engine, policy):
        quant = AuthorizedSession(engine, "quant", policy)
        intern = AuthorizedSession(engine, "intern", policy)
        assert quant.ask("?.euter.r")
        assert not intern.ask("?.euter.r")


class TestWrites:
    def test_granted_write_succeeds(self, engine, policy):
        session = AuthorizedSession(engine, "quant", policy)
        result = session.update(
            "?.euter.r+(.date=9/9/99, .stkCode=hp, .clsPrice=1)"
        )
        assert result.succeeded
        assert engine.ask("?.euter.r(.date=9/9/99)")

    def test_ungranted_write_rolls_back(self, engine, policy):
        session = AuthorizedSession(engine, "quant", policy)
        with pytest.raises(AuthorizationError):
            session.update("?.chwab.r+(.date=9/9/99, .hp=1)")
        assert not engine.ask("?.chwab.r(.date=9/9/99)")

    def test_program_fanout_is_fully_checked(self, engine, policy):
        """dbU.del writes euter AND ource; quant only holds euter, so the
        whole call rolls back — no partial cross-member updates."""
        session = AuthorizedSession(engine, "quant", policy)
        with pytest.raises(AuthorizationError):
            session.call("dbU", "del", s="hp")
        # Both members untouched.
        assert engine.ask("?.euter.r(.stkCode=hp)")
        assert engine.ask("?.ource.hp(.clsPrice=P)")

    def test_wildcard_write_covers_program_fanout(self, engine):
        policy = AccessPolicy()
        policy.grant("admin", "*", actions=("read", "write"))
        session = AuthorizedSession(engine, "admin", policy)
        result = session.call("dbU", "del", s="hp")
        assert result.succeeded
        assert not engine.ask("?.euter.r(.stkCode=hp)")

    def test_no_match_write_is_allowed(self, engine, policy):
        # Nothing touched, nothing to authorize.
        session = AuthorizedSession(engine, "intern", policy)
        result = session.update("?.euter.r(.stkCode=zzz, .clsPrice-=C)")
        assert not result.succeeded
