"""Tests for the key/type constraint extension (paper Sections 2 & 8)."""

from __future__ import annotations

import pytest

from repro import IdlEngine
from repro.core.integrity import ConstraintSet
from repro.errors import IntegrityError
from repro.workloads.stocks import paper_universe


@pytest.fixture
def engine():
    return IdlEngine(universe=paper_universe())


class TestConstraintSet:
    def test_clean_universe_validates(self, engine):
        constraints = ConstraintSet()
        constraints.declare_key("euter", "r", ("date", "stkCode"))
        constraints.declare_type("euter", "r", "clsPrice", "num")
        assert constraints.validate(engine.universe) == []

    def test_duplicate_key_detected(self, engine):
        constraints = ConstraintSet()
        constraints.declare_key("euter", "r", ("date",))  # too weak a key
        violations = constraints.validate(engine.universe)
        assert any(v.kind == "duplicate-key" for v in violations)

    def test_missing_key_attribute_detected(self, engine):
        constraints = ConstraintSet()
        constraints.declare_key("euter", "r", ("volume",))
        violations = constraints.validate(engine.universe)
        assert all(v.kind == "incomplete-key" for v in violations)

    def test_null_key_detected(self, engine):
        engine.update("?.euter.r(.date=3/3/85, .stkCode=hp, .clsPrice-=C)",
                      atomic=False)
        constraints = ConstraintSet()
        constraints.declare_key("euter", "r", ("clsPrice",))
        violations = constraints.validate(engine.universe)
        assert any(v.kind == "incomplete-key" for v in violations)

    def test_type_violations(self, engine):
        constraints = ConstraintSet()
        constraints.declare_type("euter", "r", "clsPrice", "str")
        violations = constraints.validate(engine.universe)
        assert violations and all(v.kind == "bad-type" for v in violations)

    def test_wildcard_relation_family(self, engine):
        constraints = ConstraintSet()
        constraints.declare_key("ource", "*", ("date",))
        assert constraints.validate(engine.universe) == []
        # Make hp violate; the wildcard constraint catches it.
        engine.update("?.ource.hp+(.date=3/3/85, .clsPrice=51)", atomic=False)
        violations = constraints.validate(engine.universe)
        assert [v.rel for v in violations] == ["hp"]

    def test_constraints_as_relations(self):
        constraints = ConstraintSet()
        constraints.declare_key("euter", "r", ("date", "stkCode"))
        constraints.declare_type("euter", "r", "clsPrice", "num", nullable=False)
        rendered = constraints.as_relations()
        assert rendered["keys"] == [
            {"db": "euter", "rel": "r", "columns": "date,stkCode"}
        ]
        assert rendered["types"][0]["nullable"] == 0

    def test_not_null_type(self, engine):
        constraints = ConstraintSet()
        constraints.declare_type("euter", "r", "clsPrice", "num", nullable=False)
        assert constraints.validate(engine.universe) == []
        engine.update("?.euter.r(.date=3/3/85, .stkCode=hp, .clsPrice-=C)",
                      atomic=False)
        assert constraints.validate(engine.universe)


class TestEngineIntegration:
    def test_violating_update_rolls_back(self, engine):
        engine.declare_key("euter", "r", ("date", "stkCode"))
        before = engine.universe.count_facts()
        with pytest.raises(IntegrityError):
            # Same (date, stkCode) as an existing tuple, new price.
            engine.update(
                "?.euter.r+(.date=3/3/85, .stkCode=hp, .clsPrice=999)"
            )
        assert engine.universe.count_facts() == before
        assert not engine.ask("?.euter.r(.clsPrice=999)")

    def test_consistent_update_passes(self, engine):
        engine.declare_key("euter", "r", ("date", "stkCode"))
        result = engine.update(
            "?.euter.r+(.date=3/5/85, .stkCode=hp, .clsPrice=70)"
        )
        assert result.succeeded

    def test_type_constraint_blocks_bad_insert(self, engine):
        engine.declare_type("euter", "r", "clsPrice", "num")
        with pytest.raises(IntegrityError):
            engine.update(
                "?.euter.r+(.date=3/5/85, .stkCode=hp, .clsPrice=expensive)"
            )

    def test_declaration_refused_on_dirty_state(self, engine):
        with pytest.raises(IntegrityError):
            engine.declare_key("euter", "r", ("date",))
        # The refused constraint must not linger.
        assert len(engine.constraints) == 0
        engine.update("?.euter.r+(.date=3/3/85, .stkCode=hp, .clsPrice=1)")

    def test_update_program_respects_constraints(self, engine):
        engine.universe.add_database("dbU")
        engine.invalidate()
        engine.define_update(
            ".dbU.ins(.s=S, .d=D, .p=P) -> .euter.r+(.date=D, .stkCode=S, .clsPrice=P)"
        )
        engine.declare_key("euter", "r", ("date", "stkCode"))
        with pytest.raises(IntegrityError):
            engine.call("dbU", "ins", s="hp", d="3/3/85", p=123)
        assert not engine.ask("?.euter.r(.clsPrice=123)")

    def test_higher_order_family_constraint_on_updates(self, engine):
        engine.declare_key("ource", "*", ("date",))
        with pytest.raises(IntegrityError):
            engine.update("?.ource.hp+(.date=3/3/85, .clsPrice=51)")
        # The original quote is still there, the conflicting one is not.
        assert engine.ask("?.ource.hp(.date=3/3/85, .clsPrice=50)")
        assert not engine.ask("?.ource.hp(.clsPrice=51)")
