"""Property tests for the federation layer with partially-overlapping
members (autonomous databases "may deal with different stocks")."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multidb import Federation, FirstOrderFederation, to_long
from repro.storage import StorageDatabase
from repro.workloads.stocks import StockWorkload

seeds = st.integers(min_value=0, max_value=30)
overlaps = st.sampled_from([0.3, 0.6, 1.0])


@given(seeds, overlaps)
@settings(max_examples=25, deadline=None)
def test_unified_view_is_the_union_of_members(seed, overlap):
    workload = StockWorkload(n_stocks=6, n_days=3, seed=seed, overlap=overlap)
    federation = Federation()
    expected = set()
    for style in ("euter", "chwab", "ource"):
        symbols = workload.member_symbols(style)
        federation.add_member(style, style, workload.relations_for(style, symbols))
        expected |= set(
            to_long(workload.relations_for(style, symbols), style)
        )
    federation.install()
    assert set(federation.unified_quotes()) == expected


@given(seeds)
@settings(max_examples=20, deadline=None)
def test_member_deletion_only_affects_that_member(seed):
    workload = StockWorkload(n_stocks=4, n_days=3, seed=seed)
    federation = Federation()
    for style in ("euter", "ource"):
        federation.add_member(style, style, workload.relations_for(style))
    federation.install()
    symbol = workload.symbols[0]
    day = workload.days[0]
    federation.engine.update(f"?.euter.r-(.stkCode={symbol}, .date={day})")
    # The quote survives in the unified view via the other member.
    price = workload.price(day, symbol)
    assert federation.ask(f"?.dbI.p(.date={day}, .stk={symbol}, .price={price})")


class TestFirstOrderPriceLookup:
    def build(self, workload):
        federation = FirstOrderFederation()
        for style in ("euter", "chwab", "ource"):
            storage = StorageDatabase(style)
            if style == "euter":
                storage.create_relation(
                    "r",
                    [("date", "str"), ("stkCode", "str"), ("clsPrice", "float")],
                )
                for day, symbol, price in workload.quotes():
                    storage.insert(
                        "r",
                        {"date": day, "stkCode": symbol, "clsPrice": price},
                    )
            elif style == "chwab":
                storage.create_relation(
                    "r",
                    [("date", "str")] + [(s, "float") for s in workload.symbols],
                )
                for row in workload.chwab_relations()["r"]:
                    storage.insert("r", row)
            else:
                for symbol in workload.symbols:
                    storage.create_relation(
                        symbol, [("date", "str"), ("clsPrice", "float")]
                    )
                    for row in workload.ource_relations()[symbol]:
                        storage.insert(symbol, row)
            federation.add_member(style, storage, style)
        return federation

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_point_lookup_agrees_across_members(self, seed):
        workload = StockWorkload(n_stocks=3, n_days=2, seed=seed)
        federation = self.build(workload)
        day = workload.days[0]
        symbol = workload.symbols[0]
        prices, queries = federation.price_of(symbol, day)
        # Three members, one style-specific statement each.
        assert queries == 3
        assert set(prices) == {workload.price(day, symbol)}

    def test_unknown_stock_skips_metadata_misses(self):
        workload = StockWorkload(n_stocks=2, n_days=2, seed=1)
        federation = self.build(workload)
        prices, queries = federation.price_of("nosuch", workload.days[0])
        # chwab (no column) and ource (no relation) are skipped without
        # issuing SQL; euter still runs one (empty) query.
        assert prices == [] and queries == 1
