"""Property tests for the federation layer with partially-overlapping
members (autonomous databases "may deal with different stocks")."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MemberUnavailableError
from repro.multidb import (
    FakeClock,
    FaultyConnector,
    Federation,
    FirstOrderFederation,
    InMemoryConnector,
    ResiliencePolicy,
    to_long,
)
from repro.storage import StorageDatabase
from repro.workloads.stocks import StockWorkload

seeds = st.integers(min_value=0, max_value=30)
overlaps = st.sampled_from([0.3, 0.6, 1.0])


@given(seeds, overlaps)
@settings(max_examples=25, deadline=None)
def test_unified_view_is_the_union_of_members(seed, overlap):
    workload = StockWorkload(n_stocks=6, n_days=3, seed=seed, overlap=overlap)
    federation = Federation()
    expected = set()
    for style in ("euter", "chwab", "ource"):
        symbols = workload.member_symbols(style)
        federation.add_member(style, style, workload.relations_for(style, symbols))
        expected |= set(
            to_long(workload.relations_for(style, symbols), style)
        )
    federation.install()
    assert set(federation.unified_quotes()) == expected


@given(seeds)
@settings(max_examples=20, deadline=None)
def test_member_deletion_only_affects_that_member(seed):
    workload = StockWorkload(n_stocks=4, n_days=3, seed=seed)
    federation = Federation()
    for style in ("euter", "ource"):
        federation.add_member(style, style, workload.relations_for(style))
    federation.install()
    symbol = workload.symbols[0]
    day = workload.days[0]
    federation.engine.update(f"?.euter.r-(.stkCode={symbol}, .date={day})")
    # The quote survives in the unified view via the other member.
    price = workload.price(day, symbol)
    assert federation.ask(f"?.dbI.p(.date={day}, .stk={symbol}, .price={price})")


# How many consecutive connector failures each member throws at the
# federation; ATTEMPTS retries per scan means a member with at least
# ATTEMPTS scripted failures cannot be attached.
ATTEMPTS = 2
fault_schedules = st.fixed_dictionaries({
    "euter": st.integers(min_value=0, max_value=4),
    "chwab": st.integers(min_value=0, max_value=4),
    "ource": st.integers(min_value=0, max_value=4),
})


@given(seeds, fault_schedules)
@settings(max_examples=25, deadline=None)
def test_partial_answers_are_a_subset_with_exact_availability(seed, schedule):
    """For any fault schedule: a partial query's answers are a subset of
    the fault-free answers (exactly the surviving members' union), and
    the availability report names exactly the failed members."""
    workload = StockWorkload(n_stocks=4, n_days=2, seed=seed)
    clock = FakeClock()
    federation = Federation()
    fault_free, expected_available = set(), set()
    failed = {name for name, n in schedule.items() if n >= ATTEMPTS}
    for style in ("euter", "chwab", "ource"):
        relations = workload.relations_for(style)
        connector = FaultyConnector(InMemoryConnector(relations))
        connector.fail_next(schedule[style])
        federation.add_member(
            style, style, connector=connector,
            policy=ResiliencePolicy(
                max_attempts=ATTEMPTS, base_delay=0.01, jitter=0.0,
                failure_threshold=100, seed=seed,
            ),
            clock=clock,
        )
        rows = set(to_long(relations, style))
        fault_free |= rows
        if style not in failed:
            expected_available |= rows
    if len(failed) == 3:
        with pytest.raises(MemberUnavailableError):
            federation.install()
        return
    federation.install()
    result = federation.query(
        "?.dbI.p(.date=D, .stk=S, .price=P)", on_unavailable="partial"
    )
    answers = {(a["D"], a["S"], a["P"]) for a in result}
    assert answers <= fault_free
    assert answers == expected_available
    assert result.availability.unavailable == failed
    assert result.complete == (not failed)


class TestFirstOrderPriceLookup:
    def build(self, workload):
        federation = FirstOrderFederation()
        for style in ("euter", "chwab", "ource"):
            storage = StorageDatabase(style)
            if style == "euter":
                storage.create_relation(
                    "r",
                    [("date", "str"), ("stkCode", "str"), ("clsPrice", "float")],
                )
                for day, symbol, price in workload.quotes():
                    storage.insert(
                        "r",
                        {"date": day, "stkCode": symbol, "clsPrice": price},
                    )
            elif style == "chwab":
                storage.create_relation(
                    "r",
                    [("date", "str")] + [(s, "float") for s in workload.symbols],
                )
                for row in workload.chwab_relations()["r"]:
                    storage.insert("r", row)
            else:
                for symbol in workload.symbols:
                    storage.create_relation(
                        symbol, [("date", "str"), ("clsPrice", "float")]
                    )
                    for row in workload.ource_relations()[symbol]:
                        storage.insert(symbol, row)
            federation.add_member(style, storage, style)
        return federation

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_point_lookup_agrees_across_members(self, seed):
        workload = StockWorkload(n_stocks=3, n_days=2, seed=seed)
        federation = self.build(workload)
        day = workload.days[0]
        symbol = workload.symbols[0]
        prices, queries = federation.price_of(symbol, day)
        # Three members, one style-specific statement each.
        assert queries == 3
        assert set(prices) == {workload.price(day, symbol)}

    def test_unknown_stock_skips_metadata_misses(self):
        workload = StockWorkload(n_stocks=2, n_days=2, seed=1)
        federation = self.build(workload)
        prices, queries = federation.price_of("nosuch", workload.days[0])
        # chwab (no column) and ource (no relation) are skipped without
        # issuing SQL; euter still runs one (empty) query.
        assert prices == [] and queries == 1
