"""Direct tests for the transparency generators and storage adapters."""

from __future__ import annotations

import pytest

from repro.core.parser import parse_program
from repro.errors import FederationError
from repro.multidb.adapters import flush_to_storage, infer_schema
from repro.multidb.transparency import (
    customized_view_rule,
    maintenance_programs,
    member_view_rule,
    reconciliation_rule,
    unified_view_rules,
    view_update_programs,
)
from repro.objects import Universe
from repro.storage import StorageDatabase


class TestGenerators:
    def test_member_rules_parse(self):
        for style in ("euter", "chwab", "ource"):
            source = member_view_rule("m", style)
            [statement] = parse_program(source)
            assert statement.head.variables() == {"D", "S", "P"}

    def test_chwab_rule_guards_date(self):
        assert "S != date" in member_view_rule("m", "chwab")

    def test_mapping_variants(self):
        mapped = member_view_rule(
            "m", "chwab", mapping=("dbU", "mapCE", "c", "e")
        )
        assert ".dbU.mapCE(.c=SC, .e=S)" in mapped
        assert "S != date" not in mapped  # the join filters naturally
        mapped = member_view_rule("m", "ource", mapping=("dbU", "mapOE", "o", "e"))
        assert ".dbU.mapOE(.o=SO, .e=S)" in mapped

    def test_unknown_style_rejected(self):
        with pytest.raises(FederationError):
            member_view_rule("m", "sybase")

    def test_unified_view_rules_one_per_member(self):
        source = unified_view_rules({"a": "euter", "b": "chwab", "c": "ource"})
        assert len(parse_program(source)) == 3

    def test_customized_view_rules(self):
        rule, merge = customized_view_rule("dbE", "euter")
        assert merge == () and ".dbE.r(" in rule
        rule, merge = customized_view_rule("dbC", "chwab")
        assert merge == ("date",)
        rule, merge = customized_view_rule("dbO", "ource")
        assert rule.startswith(".dbO.S(")  # a higher-order head

    def test_reconciliation_rule_parses(self):
        [statement] = parse_program(reconciliation_rule())
        assert "pnew" in str(statement.head.conjuncts[0].expr.attr.value)

    def test_maintenance_programs_cover_members(self):
        source = maintenance_programs({"a": "euter", "b": "chwab", "c": "ource"})
        statements = parse_program(source)
        # delStk x3 + rmStk x3 + insStk (1 + 2 + 2)
        assert len(statements) == 11

    def test_view_update_programs_by_style(self):
        source = view_update_programs(
            {"dbE": "euter", "dbC": "chwab", "dbO": "ource"}
        )
        assert ".dbE.r+(" in source
        assert ".dbO.S+(" in source  # wildcard family program
        assert "setPrice" in source  # chwab-style named programs


class TestInferSchema:
    def test_uniform_types(self):
        schema = infer_schema([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert schema.column("a").type == "int"
        assert schema.column("b").type == "str"

    def test_numeric_widening(self):
        schema = infer_schema([{"p": 1}, {"p": 2.5}])
        assert schema.column("p").type == "float"

    def test_mixed_types_become_any(self):
        schema = infer_schema([{"v": 1}, {"v": "x"}])
        assert schema.column("v").type == "any"

    def test_union_of_columns(self):
        schema = infer_schema([{"a": 1}, {"b": 2}])
        assert set(schema.column_names()) == {"a", "b"}

    def test_all_null_column(self):
        schema = infer_schema([{"a": None}])
        assert schema.column("a").type == "any"


class TestFlushToStorage:
    def build_storage(self):
        storage = StorageDatabase("m")
        storage.create_relation("r", [("k", "int"), ("v", "str")])
        storage.insert("r", {"k": 1, "v": "a"})
        return storage

    def test_replaces_contents(self):
        storage = self.build_storage()
        universe = Universe.from_python({"m": {"r": [{"k": 2, "v": "b"}]}})
        flush_to_storage(universe, "m", storage)
        assert storage.scan("r") == [{"k": 2, "v": "b"}]

    def test_creates_missing_relations(self):
        storage = self.build_storage()
        universe = Universe.from_python(
            {"m": {"r": [{"k": 1, "v": "a"}], "s": [{"x": 9}]}}
        )
        flush_to_storage(universe, "m", storage)
        assert storage.has_relation("s")
        assert storage.scan("s") == [{"x": 9}]

    def test_drops_removed_relations(self):
        storage = self.build_storage()
        universe = Universe.from_python({"m": {}})
        flush_to_storage(universe, "m", storage)
        assert storage.relation_names() == []

    def test_widens_schema_when_attributes_appear(self):
        storage = self.build_storage()
        universe = Universe.from_python(
            {"m": {"r": [{"k": 1, "v": "a", "extra": 5}]}}
        )
        flush_to_storage(universe, "m", storage)
        assert storage.scan("r") == [{"k": 1, "v": "a", "extra": 5}]

    def test_flush_is_transactional(self):
        """A key violation mid-flush aborts and restores the storage."""
        storage = StorageDatabase("m")
        storage.create_relation(
            "r", [("k", "int", False), ("v", "str")], key=("k",)
        )
        storage.insert("r", {"k": 1, "v": "keep"})
        # Two distinct rows with the same key, no schema widening needed:
        # the second insert violates the unique key index mid-flush.
        universe = Universe.from_python(
            {"m": {"r": [{"k": 2, "v": "a"}, {"k": 2, "v": "b"}]}}
        )
        from repro.errors import StorageError

        with pytest.raises(StorageError):
            flush_to_storage(universe, "m", storage)
        assert storage.scan("r") == [{"k": 1, "v": "keep"}]  # untouched
