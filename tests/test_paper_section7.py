"""E5/E6: paper Section 7 — update programs and view updatability."""

from __future__ import annotations

import pytest

from repro.errors import BindingError, RecursionError_, UpdateError
from tests.conftest import answers_set


class TestDelStk:
    """delStk deletes the closing price of a stock on a date — data
    deletion only; structure is unchanged."""

    def test_full_binding(self, unified_engine):
        result = unified_engine.call("dbU", "delStk", stk="hp", date="3/3/85")
        assert result.succeeded
        assert not unified_engine.ask("?.euter.r(.stkCode=hp, .date=3/3/85)")
        assert not unified_engine.ask("?.chwab.r(.date=3/3/85, .hp=P)")
        assert not unified_engine.ask("?.ource.hp(.date=3/3/85)")
        # hp still exists elsewhere: other days survive.
        assert unified_engine.ask("?.euter.r(.stkCode=hp, .date=3/4/85)")

    def test_structure_is_not_changed(self, unified_engine):
        """Paper: "chwab database will still contain attribute names
        called hp, ibm etc."."""
        unified_engine.call("dbU", "delStk", stk="hp", date="3/3/85")
        assert unified_engine.ask("?.chwab.r(.date=3/3/85, .hp)")  # attr kept
        assert "hp" in unified_engine.universe.relation_names("ource")

    def test_stock_only_deletes_all_days(self, unified_engine):
        """Paper: "If the date is not given as input then the closing
        price of all the days for that stock are deleted"."""
        result = unified_engine.call("dbU", "delStk", stk="hp")
        assert result.succeeded
        assert not unified_engine.ask("?.euter.r(.stkCode=hp)")
        assert not unified_engine.ask("?.ource.hp(.date=D)")
        assert not unified_engine.ask("?.chwab.r(.hp=P)")

    def test_date_only_deletes_all_stocks_that_day(self, unified_engine):
        result = unified_engine.call("dbU", "delStk", date="3/3/85")
        assert result.succeeded
        assert not unified_engine.ask("?.euter.r(.date=3/3/85)")
        assert unified_engine.ask("?.euter.r(.date=3/4/85)")
        # chwab: prices nulled, the date attribute itself untouched.
        assert unified_engine.ask("?.chwab.r(.date=3/3/85)")
        assert not unified_engine.ask("?.chwab.r(.date=3/3/85, .hp=P)")

    def test_no_arguments_deletes_all_values(self, unified_engine):
        result = unified_engine.update("?.dbU.delStk()")
        assert result.succeeded
        assert not unified_engine.ask("?.euter.r(.stkCode=S)")
        # Structure intact: relations and attributes remain.
        assert unified_engine.universe.relation_names("ource") == ["hp", "ibm"]


class TestRmStk:
    """rmStk removes a stock *including metadata*: tuples in euter, the
    attribute in chwab, the relation in ource."""

    def test_removes_data_and_metadata(self, unified_engine):
        result = unified_engine.call("dbU", "rmStk", stk="hp")
        assert result.succeeded
        assert not unified_engine.ask("?.euter.r(.stkCode=hp)")
        assert not unified_engine.ask("?.chwab.r(.hp)")
        assert unified_engine.universe.relation_names("ource") == ["ibm"]

    def test_other_stocks_survive(self, unified_engine):
        unified_engine.call("dbU", "rmStk", stk="hp")
        assert unified_engine.ask("?.euter.r(.stkCode=ibm)")
        assert unified_engine.ask("?.chwab.r(.ibm=P)")
        assert unified_engine.ask("?.ource.ibm(.clsPrice=P)")

    def test_unknown_stock_is_a_noop_success(self, unified_engine):
        before = unified_engine.universe.count_facts()
        result = unified_engine.call("dbU", "rmStk", stk="nosuch")
        # euter's ground delete succeeds vacuously; nothing changed.
        assert result.succeeded
        assert unified_engine.universe.count_facts() == before


class TestInsStk:
    def test_inserts_into_all_three_schemas(self, unified_engine):
        result = unified_engine.call(
            "dbU", "insStk", stk="hp", date="3/5/85", price=70
        )
        assert result.succeeded
        assert unified_engine.ask("?.euter.r(.date=3/5/85, .stkCode=hp, .clsPrice=70)")
        assert unified_engine.ask("?.ource.hp(.date=3/5/85, .clsPrice=70)")
        assert unified_engine.ask("?.chwab.r(.date=3/5/85, .hp=70)")

    def test_insert_existing_date_extends_the_chwab_row(self, unified_engine):
        unified_engine.universe.add_relation(
            "ource", "sun", [])
        unified_engine.invalidate()
        unified_engine.call("dbU", "insStk", stk="sun", date="3/3/85", price=30)
        rows = unified_engine.query("?.chwab.r(.date=3/3/85, .hp=H, .sun=N)")
        assert answers_set(rows, "H", "N") == {(50, 30)}

    def test_partial_binding_is_rejected(self, unified_engine):
        """Paper: "if any of the argument is not given then the plus
        expressions are not defined" — compile-time binding check."""
        with pytest.raises(BindingError):
            unified_engine.call("dbU", "insStk", stk="hp", date="3/6/85")
        with pytest.raises(BindingError):
            unified_engine.call("dbU", "insStk", price=10)

    def test_unknown_program_arguments_are_rejected(self, unified_engine):
        with pytest.raises(BindingError):
            unified_engine.call("dbU", "insStk", ticker="hp")


class TestProgramMechanics:
    def test_programs_compose_nonrecursively(self, unified_engine):
        """A program may call other programs (moveStk = delete+insert)."""
        unified_engine.define_update(
            ".dbU.moveStk(.stk=S, .from=F, .to=T, .price=P) -> "
            ".dbU.delStk(.stk=S, .date=F), .dbU.insStk(.stk=S, .date=T, .price=P)"
        )
        result = unified_engine.call(
            "dbU", "moveStk", stk="hp", **{"from": "3/3/85", "to": "3/5/85"},
            price=50,
        )
        assert result.succeeded
        assert not unified_engine.ask("?.ource.hp(.date=3/3/85)")
        assert unified_engine.ask("?.ource.hp(.date=3/5/85, .clsPrice=50)")

    def test_recursive_program_is_rejected(self, unified_engine):
        with pytest.raises(RecursionError_):
            unified_engine.define_update(
                ".dbU.loop(.x=X) -> .dbU.loop(.x=X)"
            )

    def test_mutually_recursive_programs_are_rejected(self, unified_engine):
        unified_engine.define_update(".dbU.ping(.x=X) -> .euter.r-(.stkCode=X)")
        # redefine ping to call pong after pong exists -> cycle
        unified_engine.define_update(".dbU.pong(.x=X) -> .dbU.ping(.x=X)")
        with pytest.raises(RecursionError_):
            unified_engine.define_update(".dbU.ping(.x=X) -> .dbU.pong(.x=X)")

    def test_constant_parameters_pattern_match(self, unified_engine):
        """Clauses with constant head parameters act as alternatives
        selected by the argument value."""
        unified_engine.define_update(
            ".dbU.audit(.kind=add, .stk=S) -> .dbU.log+(.event=added, .stk=S)\n"
            ".dbU.audit(.kind=del, .stk=S) -> .dbU.log+(.event=removed, .stk=S)"
        )
        unified_engine.universe.database("dbU").set(
            "log", __import__("repro.objects", fromlist=["SetObject"]).SetObject()
        )
        unified_engine.call("dbU", "audit", kind="add", stk="hp")
        results = unified_engine.query("?.dbU.log(.event=E, .stk=S)")
        assert answers_set(results, "E", "S") == {("added", "hp")}

    def test_call_with_variable_arguments_from_query(self, unified_engine):
        """Arguments flow from earlier query conjuncts: remove every
        stock that ever closed below 60."""
        result = unified_engine.update(
            "?.euter.r(.stkCode=S, .clsPrice<60), .dbU.rmStk(.stk=S)"
        )
        assert result.succeeded
        assert unified_engine.universe.relation_names("ource") == ["ibm"]
        assert not unified_engine.ask("?.chwab.r(.hp)")


class TestViewUpdatability:
    """Section 7.2: updates through the customized views translate to all
    base databases via administrator-registered programs."""

    def test_insert_through_euter_style_view(self, unified_engine):
        result = unified_engine.update(
            "?.dbE.r+(.date=3/5/85, .stkCode=hp, .clsPrice=70)"
        )
        assert result.succeeded
        # All three base databases were updated...
        assert unified_engine.ask("?.euter.r(.date=3/5/85, .stkCode=hp, .clsPrice=70)")
        assert unified_engine.ask("?.ource.hp(.date=3/5/85, .clsPrice=70)")
        assert unified_engine.ask("?.chwab.r(.date=3/5/85, .hp=70)")
        # ...so the view now reflects the decree (faithfulness).
        assert unified_engine.ask("?.dbE.r(.date=3/5/85, .stkCode=hp, .clsPrice=70)")

    def test_delete_through_euter_style_view(self, unified_engine):
        result = unified_engine.update("?.dbE.r-(.date=3/3/85, .stkCode=hp)")
        assert result.succeeded
        assert not unified_engine.ask("?.dbE.r(.date=3/3/85, .stkCode=hp)")
        assert not unified_engine.ask("?.euter.r(.date=3/3/85, .stkCode=hp)")

    def test_update_through_higher_order_view(self, unified_engine):
        """The wildcard program ``.dbO.S+(...)`` serves every relation of
        the higher-order view: the relation name becomes the stock."""
        result = unified_engine.update("?.dbO.hp+(.date=3/5/85, .clsPrice=70)")
        assert result.succeeded
        assert unified_engine.ask("?.euter.r(.date=3/5/85, .stkCode=hp, .clsPrice=70)")
        assert unified_engine.ask("?.dbO.hp(.date=3/5/85, .clsPrice=70)")

    def test_delete_through_higher_order_view(self, unified_engine):
        result = unified_engine.update("?.dbO.ibm-(.date=3/3/85)")
        assert result.succeeded
        assert not unified_engine.ask("?.dbO.ibm(.date=3/3/85)")
        assert not unified_engine.ask("?.euter.r(.date=3/3/85, .stkCode=ibm)")

    def test_direct_update_of_a_view_is_rejected(self, unified_engine):
        """+/- are only allowed on extensional objects; a derived view
        without a registered program is not updatable."""
        with pytest.raises(UpdateError):
            unified_engine.update("?.dbI.p+(.date=d, .stk=s, .price=1)")

    def test_view_update_survives_rematerialization(self, unified_engine):
        unified_engine.update("?.dbE.r+(.date=3/5/85, .stkCode=sun, .clsPrice=30)")
        # Force a fresh materialization and re-check.
        unified_engine.invalidate()
        assert unified_engine.ask("?.dbE.r(.stkCode=sun)")
        assert "sun" in unified_engine.overlay.get("dbO").attr_names()


class TestEmpMgrViewUpdate:
    """Section 2's empMgr ambiguity: both administrator translations."""

    @pytest.fixture
    def hr_engine(self):
        from repro import IdlEngine
        from repro.workloads.empdept import (
            CHANGE_DEPT_MGR_PROGRAM,
            EMP_MGR_RULE,
            MOVE_EMPLOYEE_PROGRAM,
            build_universe,
        )

        engine = IdlEngine(universe=build_universe(n_employees=6, n_departments=2))
        engine.define(EMP_MGR_RULE)
        engine.define_update(MOVE_EMPLOYEE_PROGRAM)
        engine.define_update(CHANGE_DEPT_MGR_PROGRAM)
        return engine

    def test_view_joins_emp_and_dept(self, hr_engine):
        results = hr_engine.query("?.hr.empMgr(.name=N, .mgr=M)")
        assert len(results) == 6

    def test_policy_a_moves_the_employee(self, hr_engine):
        employee = hr_engine.query("?.hr.empMgr(.name=N, .mgr=M)")[0]
        name = employee["N"]
        other_mgr = next(
            a["M"]
            for a in hr_engine.query("?.hr.dept(.dno=D, .mgr=M)")
            if a["M"] != employee["M"]
        )
        hr_engine.call("hr", "setMgr", name=name, mgr=other_mgr)
        results = hr_engine.query("?.hr.empMgr(.name=N, .mgr=M)", N=name)
        assert answers_set(results, "M") == {other_mgr}

    def test_policy_b_changes_the_department_manager(self, hr_engine):
        employee = hr_engine.query("?.hr.empMgr(.name=N, .mgr=M)")[0]
        name = employee["N"]
        hr_engine.call("hr", "setDeptMgr", name=name, mgr="newboss")
        results = hr_engine.query("?.hr.empMgr(.name=N, .mgr=M)", N=name)
        assert answers_set(results, "M") == {"newboss"}
        # Policy B affects every colleague in the same department.
        dept = hr_engine.query("?.hr.emp(.name=N, .dno=D)", N=name)[0]["D"]
        colleagues = hr_engine.query("?.hr.emp(.name=N, .dno=D)", D=dept)
        for colleague in colleagues:
            managers = hr_engine.query(
                "?.hr.empMgr(.name=N, .mgr=M)", N=colleague["N"]
            )
            assert answers_set(managers, "M") == {"newboss"}
