"""Federation-wide observability: spans, metrics, profiles, results.

The golden span-tree tests pin down the *shape* of a trace (stable
span names and structural attributes, never timings) so the pipeline's
instrumentation points cannot silently disappear; the result-type
tests cover the unified ``QueryResult``/``UpdateResult`` API and the
deprecation shims around the old ``partial=`` flag.
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.errors import FederationError
from repro.multidb import Federation, FederationConfig, InMemoryConnector
from repro.multidb.results import (
    APPLIED,
    SNAPSHOT_ONLY,
    PartialResult,
    QueryResult,
    UpdateResult,
)
from repro.obs import (
    InMemoryCollector,
    JsonLinesExporter,
    MetricsRegistry,
    Observability,
    QueryProfile,
    Tracer,
)
from repro.obs.trace import NOOP_SPAN
from repro.workloads.stocks import StockWorkload

QUERY = "?.dbI.p(.date=D, .stk=S, .price=P)"


def build_stock_federation(obs=None):
    """The paper's three-member federation; chwab sits behind a real
    connector so updates have a member to flush to."""
    workload = StockWorkload(n_stocks=2, n_days=2, seed=42)
    federation = Federation.from_config(FederationConfig(obs=obs))
    federation.add_member("euter", "euter", workload.euter_relations())
    federation.add_member(
        "chwab", "chwab",
        connector=InMemoryConnector(workload.chwab_relations()),
    )
    federation.add_member("ource", "ource", workload.ource_relations())
    federation.install()
    return federation


# ---------------------------------------------------------------------------
# Tracer / span units
# ---------------------------------------------------------------------------


class TestTracer:
    def test_spans_nest_via_the_active_stack(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner", depth=1):
                with tracer.span("leaf"):
                    pass
            with tracer.span("sibling"):
                pass
        assert outer.tree() == (
            "outer", [("inner", [("leaf", [])]), ("sibling", [])]
        )

    def test_attributes_events_and_timing(self):
        times = iter([1.0, 2.5])
        tracer = Tracer(clock=lambda: next(times))
        with tracer.span("op", member="m") as span:
            span.set("rows", 3)
            span.event("retry", attempt=1)
        assert span.attributes == {"member": "m", "rows": 3}
        assert span.events == [("retry", {"attempt": 1})]
        assert span.duration == pytest.approx(1.5)
        assert span.duration_ms == pytest.approx(1500.0)

    def test_on_finish_fires_for_root_spans_only(self):
        finished = []
        tracer = Tracer(on_finish=finished.append)
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert [span.name for span in finished] == ["root"]

    def test_exceptions_are_recorded_and_propagate(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom") as span:
                raise ValueError("nope")
        assert span.attributes["error"] == "ValueError"
        assert tracer.current is None

    def test_render_shows_attributes_and_events(self):
        tracer = Tracer()
        with tracer.span("parent", n=2) as span:
            span.event("woke", after=0.5)
            with tracer.span("kid"):
                pass
        text = span.render()
        assert "parent" in text and "[n=2]" in text
        assert "* woke" in text and "after=0.5" in text
        assert "└─ kid" in text

    def test_noop_span_is_inert(self):
        assert NOOP_SPAN.set("k", 1) is NOOP_SPAN
        assert NOOP_SPAN.event("e") is NOOP_SPAN
        assert NOOP_SPAN.find("x") is None
        assert NOOP_SPAN.render() == "(tracing disabled)"
        with NOOP_SPAN as span:
            assert span is NOOP_SPAN


class TestMetricsRegistry:
    def test_counters_are_keyed_by_name_and_tags(self):
        metrics = MetricsRegistry()
        metrics.counter("retries", member="a").inc()
        metrics.counter("retries", member="a").inc(2)
        metrics.counter("retries", member="b").inc()
        assert metrics.counter_value("retries", member="a") == 3
        assert metrics.counter_value("retries", member="b") == 1
        assert metrics.counter_value("retries", member="zzz") == 0
        assert metrics.counter_total("retries") == 4

    def test_histograms_track_distribution(self):
        metrics = MetricsRegistry()
        for value in (1.0, 3.0, 2.0):
            metrics.histogram("latency").observe(value)
        histogram = metrics.histogram("latency")
        assert histogram.count == 3
        assert histogram.minimum == 1.0
        assert histogram.maximum == 3.0
        assert histogram.mean == pytest.approx(2.0)

    def test_snapshot_and_render(self):
        metrics = MetricsRegistry()
        metrics.counter("hits", member="m").inc()
        snap = metrics.snapshot()
        assert snap["counters"]["hits{member=m}"] == 1
        assert "hits{member=m}" in metrics.render()
        metrics.reset()
        assert metrics.render() == "(no metrics recorded)"


# ---------------------------------------------------------------------------
# Golden span trees through the federation
# ---------------------------------------------------------------------------


class TestGoldenSpanTrees:
    def test_query_trace_covers_the_whole_pipeline(self):
        federation = build_stock_federation()
        result = federation.query(QUERY)

        root = result.trace
        assert root.name == "federation.query"
        assert root.attributes["on_unavailable"] == "fail"
        assert root.attributes["answers"] == len(result)

        assert [child.name for child in root.children] == ["engine.query"]
        engine_query = root.children[0]
        assert [child.name for child in engine_query.children] == [
            "fixpoint.materialize", "engine.evaluate",
        ]

        materialize = engine_query.children[0]
        assert materialize.attributes["method"] == "seminaive"
        assert materialize.children  # at least one stratum
        for index, stratum in enumerate(materialize.children):
            assert stratum.name == "fixpoint.stratum"
            assert stratum.attributes["index"] == index
            assert stratum.attributes["rules"] >= 1
            assert stratum.attributes["reused"] is False

        evaluate = engine_query.children[1]
        assert evaluate.attributes["answers"] == len(result)
        assert evaluate.attributes["counters"]["visits"] > 0

    def test_cached_query_skips_materialization(self):
        federation = build_stock_federation()
        federation.query(QUERY)
        result = federation.query(QUERY)
        engine_query = result.trace.children[0]
        assert [child.name for child in engine_query.children] == [
            "engine.evaluate",
        ]

    def test_update_trace_covers_engine_and_flush(self):
        federation = build_stock_federation()
        result = federation.insert_quote("nova", "9/9/99", 9.0)

        root = result.trace
        assert root.name == "federation.call"
        assert root.attributes["program"] == "insStk"
        assert root.attributes["flushed"] is True
        assert [child.name for child in root.children] == [
            "engine.update", "federation.flush",
        ]

        update = root.children[0]
        assert update.attributes["inserted"] >= 1

        flush = root.children[1]
        applies = flush.find_all("connector.apply")
        assert [span.attributes["member"] for span in applies] == ["chwab"]
        assert all(span.attributes["attempts"] == 1 for span in applies)

    def test_install_emits_a_root_span(self):
        collector = InMemoryCollector()
        obs = Observability(exporters=[collector])
        build_stock_federation(obs=obs)
        install = collector.find("federation.install")
        assert install is not None
        assert install.attributes["attached"] == ["chwab", "euter", "ource"]
        assert install.attributes["quarantined"] == []


# ---------------------------------------------------------------------------
# The unified result types
# ---------------------------------------------------------------------------


class TestQueryResult:
    def test_behaves_as_a_plain_list(self):
        federation = build_stock_federation()
        result = federation.query(QUERY)
        assert isinstance(result, list)
        assert isinstance(result, QueryResult)
        assert len(result) == 4  # 2 stocks x 2 days
        assert result.answers == list(result)
        assert result[:2] == list(result)[:2]

    def test_carries_availability_stats_profile_metrics(self):
        federation = build_stock_federation()
        result = federation.query(QUERY)
        assert result.complete
        assert result.availability.contributed == {"euter", "chwab", "ource"}
        assert result.stats is not None and result.stats.rounds >= 1
        assert isinstance(result.profile, QueryProfile)
        assert result.profile.counters["visits"] > 0
        assert "fixpoint.iterations" in result.metrics["counters"]
        assert repr(result) == "QueryResult(4 answers)"

    def test_profile_renders_the_span_tree(self):
        federation = build_stock_federation()
        result = federation.query(QUERY)
        text = result.profile.render()
        assert "federation.query" in text
        assert "fixpoint.stratum" in text
        assert result.profile.strata  # per-stratum attribute dicts

    def test_ask_still_returns_a_boolean(self):
        federation = build_stock_federation()
        assert federation.ask(QUERY) is True


class TestUpdateResult:
    def test_member_outcomes_and_flush_status(self):
        federation = build_stock_federation()
        result = federation.insert_quote("nova", "9/9/99", 9.0)
        assert isinstance(result, UpdateResult)
        assert result.succeeded and result.changed
        assert result.flushed is True
        assert result.member_outcomes == {
            "chwab": APPLIED, "euter": SNAPSHOT_ONLY, "ource": SNAPSHOT_ONLY,
        }
        assert result.availability.complete
        assert result.metrics["counters"]["engine.updates"] >= 1
        assert result.trace.name == "federation.call"

    def test_update_profile_reports_maintenance(self):
        federation = build_stock_federation()
        federation.query(QUERY)  # materialize the integration views
        result = federation.insert_quote("nova", "9/9/99", 9.0)
        maintenance = result.profile.maintenance
        assert maintenance  # the repair (or its fallback) was attempted
        assert {"strata", "repaired", "fallbacks", "seeded"} <= set(maintenance[0])

    def test_no_op_update_reports_unchanged_members(self):
        federation = build_stock_federation()
        result = federation.delete_quote("ghost", "1/1/01")
        assert not result.changed
        assert result.flushed is False
        assert set(result.member_outcomes.values()) == {"unchanged"}

    def test_engine_update_result_contract_is_inherited(self):
        from repro.core.updates import UpdateResult as EngineUpdateResult

        federation = build_stock_federation()
        result = federation.insert_quote("nova", "9/9/99", 9.0)
        assert isinstance(result, EngineUpdateResult)
        assert result.inserted >= 1 and result.deleted == 0


# ---------------------------------------------------------------------------
# Deprecation shims
# ---------------------------------------------------------------------------


class TestDeprecations:
    def test_partial_true_maps_to_on_unavailable_partial(self):
        federation = build_stock_federation()
        with pytest.warns(DeprecationWarning, match="on_unavailable"):
            result = federation.query(QUERY, partial=True)
        assert isinstance(result, QueryResult)
        assert result.complete

    def test_partial_false_maps_to_fail(self):
        federation = build_stock_federation()
        with pytest.warns(DeprecationWarning):
            result = federation.query(QUERY, partial=False)
        assert len(result) == 4

    def test_explicit_on_unavailable_wins_over_partial(self):
        federation = build_stock_federation()
        with pytest.warns(DeprecationWarning):
            result = federation.query(
                QUERY, partial=True, on_unavailable="fail"
            )
        assert result.trace.attributes["on_unavailable"] == "fail"

    def test_invalid_on_unavailable_is_rejected(self):
        federation = build_stock_federation()
        with pytest.raises(FederationError, match="on_unavailable"):
            federation.query(QUERY, on_unavailable="explode")

    def test_partial_result_construction_warns(self):
        with pytest.warns(DeprecationWarning, match="PartialResult"):
            result = PartialResult([{"D": "d"}])
        assert isinstance(result, QueryResult)
        assert list(result) == [{"D": "d"}]

    def test_plain_query_does_not_warn(self):
        federation = build_stock_federation()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            federation.query(QUERY)
            federation.query(QUERY, on_unavailable="partial")


# ---------------------------------------------------------------------------
# Disabled observability and exporters
# ---------------------------------------------------------------------------


class TestDisabledObservability:
    def test_answers_identical_with_tracing_off(self):
        enabled = build_stock_federation()
        disabled = build_stock_federation(obs=Observability(enabled=False))
        assert sorted(map(str, enabled.query(QUERY))) == sorted(
            map(str, disabled.query(QUERY))
        )

    def test_result_has_no_trace_or_profile(self):
        federation = build_stock_federation(obs=Observability(enabled=False))
        result = federation.query(QUERY)
        assert result.trace is None
        assert result.profile is None
        assert result.availability is not None

    def test_metrics_stay_on_when_tracing_is_off(self):
        federation = build_stock_federation(obs=Observability(enabled=False))
        result = federation.query(QUERY)
        assert result.metrics["counters"]["fixpoint.runs"] >= 1

    def test_bare_engine_has_no_observability(self):
        from repro.core.engine import IdlEngine

        engine = IdlEngine()
        assert engine.obs is None
        assert engine.eval_ctx.tracer is None


class TestExporters:
    def test_in_memory_collector_sees_every_root_span(self):
        collector = InMemoryCollector()
        obs = Observability(exporters=[collector])
        federation = build_stock_federation(obs=obs)
        federation.query(QUERY)
        federation.insert_quote("nova", "9/9/99", 9.0)
        names = [span.name for span in collector]
        assert "federation.install" in names
        assert "federation.query" in names
        assert "federation.call" in names
        assert collector.last.name == "federation.call"

    def test_jsonl_exporter_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonLinesExporter(path) as exporter:
            obs = Observability(exporters=[exporter])
            federation = build_stock_federation(obs=obs)
            federation.query(QUERY)
        documents = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        query_doc = next(
            doc for doc in documents if doc["name"] == "federation.query"
        )
        assert query_doc["duration_ms"] > 0
        assert [child["name"] for child in query_doc["children"]] == [
            "engine.query"
        ]
        assert exporter.exported == len(documents)
