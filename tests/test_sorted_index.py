"""Tests for the sorted (range) index and its planner integration."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.sql import SqlEngine
from repro.sql.algebra import IndexRangeScan
from repro.storage import SortedIndex, StorageDatabase


@pytest.fixture
def db():
    database = StorageDatabase("t")
    database.create_relation("r", [("k", "int"), ("v", "str")])
    for index in range(10):
        database.insert("r", {"k": index, "v": f"x{index}"})
    database.insert("r", {"k": None, "v": "nullk"})
    database.create_index("r", "by_k", ("k",), kind="sorted")
    return database


class TestSortedIndex:
    def test_bounds(self, db):
        relation = db.relation("r")
        assert [row["k"] for row in relation.range_lookup("k", 3, 7)] == [3, 4, 5, 6, 7]
        assert [row["k"] for row in relation.range_lookup("k", 3, 7, (False, False))] == [4, 5, 6]
        assert [row["k"] for row in relation.range_lookup("k", None, 1)] == [0, 1]
        assert [row["k"] for row in relation.range_lookup("k", 8, None)] == [8, 9]

    def test_nulls_never_match(self, db):
        relation = db.relation("r")
        assert all(
            row["k"] is not None for row in relation.range_lookup("k", None, None)
        )

    def test_equality_lookup_shape(self, db):
        index = db.relation("r").sorted_index_on("k")
        rids = index.lookup(4)
        assert len(rids) == 1

    def test_maintained_across_dml(self, db):
        db.delete("r", k=5)
        db.insert("r", {"k": 5, "v": "back"})
        db.update("r", {"k": 100}, v="x9")
        relation = db.relation("r")
        assert [row["k"] for row in relation.range_lookup("k", 5, 9)] == [5, 6, 7, 8]
        assert [row["k"] for row in relation.range_lookup("k", 99, None)] == [100]

    def test_transaction_abort_restores_index(self, db):
        transaction = db.begin()
        db.delete("r", k=3)
        db.insert("r", {"k": 50, "v": "tmp"})
        transaction.abort()
        relation = db.relation("r")
        assert [row["k"] for row in relation.range_lookup("k", 3, 3)] == [3]
        assert relation.range_lookup("k", 50, 50) == []

    def test_mixed_type_columns_partition_by_class(self):
        database = StorageDatabase("t")
        database.create_relation("r", [("k", "any")])
        for value in (3, "b", 1, "a", 2):
            database.insert("r", {"k": value})
        database.create_index("r", "by_k", ("k",), kind="sorted")
        relation = database.relation("r")
        assert [row["k"] for row in relation.range_lookup("k", 1, 3)] == [1, 2, 3]
        assert [row["k"] for row in relation.range_lookup("k", "a", "b")] == ["a", "b"]

    def test_multi_column_rejected(self):
        with pytest.raises(StorageError):
            SortedIndex(("a", "b"))

    def test_unknown_kind_rejected(self, db):
        with pytest.raises(StorageError):
            db.create_index("r", "bad", ("k",), kind="btree")

    def test_range_lookup_without_index_scans(self):
        database = StorageDatabase("t")
        database.create_relation("r", [("k", "int")])
        for index in range(5):
            database.insert("r", {"k": index})
        relation = database.relation("r")
        assert [row["k"] for row in relation.range_lookup("k", 2, 3)] == [2, 3]


class TestPlannerIntegration:
    def test_range_uses_index(self, db):
        sql = SqlEngine(db)
        plan = sql._plan_from_where(
            __import__("repro.sql.sqlparser", fromlist=["parse_sql"]).parse_sql(
                "SELECT k FROM r WHERE k > 6"
            ),
            qualified=False,
        )
        assert isinstance(plan, IndexRangeScan)

    def test_range_with_residual_filter(self, db):
        sql = SqlEngine(db)
        rows = sql.execute("SELECT k FROM r WHERE k >= 6 AND v = 'x7'")
        assert [row["k"] for row in rows] == [7]

    def test_results_match_scan(self, db):
        sql = SqlEngine(db)
        indexed = sql.execute("SELECT k FROM r WHERE k < 4")
        database = StorageDatabase("t2")
        database.create_relation("r", [("k", "int"), ("v", "str")])
        for index in range(10):
            database.insert("r", {"k": index, "v": f"x{index}"})
        database.insert("r", {"k": None, "v": "nullk"})
        plain = SqlEngine(database).execute("SELECT k FROM r WHERE k < 4")
        assert sorted(r["k"] for r in indexed) == sorted(r["k"] for r in plain)


@given(
    st.lists(st.integers(min_value=-20, max_value=20), max_size=40),
    st.integers(min_value=-20, max_value=20),
    st.integers(min_value=-20, max_value=20),
)
@settings(max_examples=80, deadline=None)
def test_property_range_matches_filter(values, low, high):
    database = StorageDatabase("t")
    database.create_relation("r", [("k", "int"), ("i", "int")])
    for position, value in enumerate(values):
        database.insert("r", {"k": value, "i": position})
    database.create_index("r", "by_k", ("k",), kind="sorted")
    low, high = min(low, high), max(low, high)
    via_index = sorted(
        (row["k"], row["i"])
        for row in database.relation("r").range_lookup("k", low, high)
    )
    via_filter = sorted(
        (value, position)
        for position, value in enumerate(values)
        if low <= value <= high
    )
    assert via_index == via_filter
