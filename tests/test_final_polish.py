"""Final polish: remaining public-surface behaviours."""

from __future__ import annotations

import pytest

from repro import IdlEngine, QueryAnswer
from repro.core.parser import parse_program
from repro.core.rules import analyze_rule
from repro.core.stratify import dependency_edges, stratify
from repro.workloads.stocks import paper_universe


class TestQueryAnswer:
    def test_dict_like_access(self):
        answer = QueryAnswer({"S": "hp", "P": 50})
        assert answer["S"] == "hp"
        assert "P" in answer and "Z" not in answer
        assert answer.get("Z", 0) == 0
        assert dict(answer.items()) == {"S": "hp", "P": 50}

    def test_equality_with_dicts(self):
        answer = QueryAnswer({"S": "hp"})
        assert answer == {"S": "hp"}
        assert answer == QueryAnswer({"S": "hp"})
        assert answer != {"S": "ibm"}

    def test_hashable(self):
        answers = {QueryAnswer({"S": "hp"}), QueryAnswer({"S": "hp"})}
        assert len(answers) == 1


class TestStratifyInternals:
    def rules(self, *sources):
        return [
            analyze_rule(statement)
            for source in sources
            for statement in parse_program(source)
        ]

    def test_dependency_edges(self):
        analyzed = self.rules(
            ".v.a(.x=X) <- .d.r(.x=X)",
            ".v.b(.x=X) <- .v.a(.x=X), .v.c~(.x=X)",
            ".v.c(.x=X) <- .d.s(.x=X)",
        )
        edges = set(dependency_edges(analyzed))
        assert (1, 0, True) in edges   # b reads a, positively
        assert (1, 2, False) in edges  # b reads c under negation

    def test_diamond_topology(self):
        analyzed = self.rules(
            ".v.top(.x=X) <- .v.left(.x=X), .v.right(.x=X)",
            ".v.left(.x=X) <- .v.base(.x=X)",
            ".v.right(.x=X) <- .v.base(.x=X)",
            ".v.base(.x=X) <- .d.r(.x=X)",
        )
        strata = stratify(analyzed)
        flat = [rule for stratum in strata for rule in stratum]
        order = {id(rule): position for position, rule in enumerate(flat)}
        base, top = analyzed[3], analyzed[0]
        assert order[id(base)] < order[id(analyzed[1])]
        assert order[id(base)] < order[id(analyzed[2])]
        assert order[id(analyzed[1])] < order[id(top)]
        assert order[id(analyzed[2])] < order[id(top)]


class TestStatementSeparators:
    def test_semicolons_and_newlines_mix(self):
        statements = parse_program(
            ".v.a(.x=X) <- .d.r(.x=X); .v.b(.x=X) <- .v.a(.x=X)\n"
            "?.v.b(.x=1)"
        )
        assert len(statements) == 3

    def test_trailing_separators_ignored(self):
        assert len(parse_program("?.d.r ; \n\n;")) == 1


class TestEngineSurface:
    def test_repr_counts(self):
        engine = IdlEngine(universe=paper_universe())
        engine.define(".v.p(.s=S) <- .euter.r(.stkCode=S)")
        text = repr(engine)
        assert "rules=1" in text and "euter" in text

    def test_overlay_property_without_rules(self):
        engine = IdlEngine(universe=paper_universe())
        assert len(engine.overlay.attr_names()) == 0

    def test_query_accepts_parsed_statements(self):
        from repro.core.parser import parse_query

        engine = IdlEngine(universe=paper_universe())
        statement = parse_query("?.euter.r(.stkCode=S, .clsPrice>100)")
        results = engine.query(statement)
        assert results and results[0]["S"] == "ibm"

    def test_update_accepts_parsed_statements(self):
        from repro.core.parser import parse_query

        engine = IdlEngine(universe=paper_universe())
        statement = parse_query("?.euter.r-(.stkCode=hp)")
        result = engine.update(statement)
        assert result.deleted == 2
