"""E2/E3: every query example from paper Sections 4.2 and 4.3, verbatim.

Each test quotes the paper's query and its English gloss, runs it
against the paper universe, and checks the expected answers.
"""

from __future__ import annotations

from tests.conftest import answers_set


class TestFirstOrderExamples:
    """Section 4.2 — queries on the euter database."""

    def test_did_hp_ever_close_above_60(self, engine):
        # ?.euter.r(.stkCode=hp, .clsPrice>60)
        assert engine.ask("?.euter.r(.stkCode=hp, .clsPrice>60)") is True

    def test_did_hp_ever_close_above_200(self, engine):
        assert engine.ask("?.euter.r(.stkCode=hp, .clsPrice>200)") is False

    def test_join_dates_hp_above_60_and_ibm_above_150(self, engine):
        # "List all dates when hp closed above 60 and ibm closed above 150."
        results = engine.query(
            "?.euter.r(.stkCode=hp, .clsPrice>60, .date=D),"
            " .euter.r(.stkCode=ibm, .clsPrice>150, .date=D)"
        )
        assert answers_set(results, "D") == {"3/4/85"}

    def test_all_time_high_via_negation(self, engine):
        # "List the dates/prices when price of hp closed at its all time high."
        results = engine.query(
            "?.euter.r(.stkCode=hp, .clsPrice=P, .date=D),"
            " .euter.r~(.stkCode=hp, .clsPrice>P)"
        )
        assert answers_set(results, "D", "P") == {("3/4/85", 65)}

    def test_did_any_stock_close_above_200(self, engine):
        # ?.euter.r(.stkCode=S, .clsPrice>200)
        assert engine.ask("?.euter.r(.stkCode=S, .clsPrice>200)") is False
        assert engine.ask("?.euter.r(.stkCode=S, .clsPrice>150)") is True

    def test_which_stock_closed_above_150(self, engine):
        results = engine.query("?.euter.r(.stkCode=S, .clsPrice>150)")
        assert answers_set(results, "S") == {"ibm"}

    def test_attribute_order_is_immaterial(self, engine):
        forward = engine.query("?.euter.r(.stkCode=S, .clsPrice=P, .date=D)")
        backward = engine.query("?.euter.r(.date=D, .clsPrice=P, .stkCode=S)")
        assert {tuple(sorted(a.items())) for a in forward} == {
            tuple(sorted(a.items())) for a in backward
        }


class TestHigherOrderExamples:
    """Section 4.3 — metadata queries, quoted in paper order."""

    def test_list_database_names(self, engine):
        # ?.X -- "List the database names in the universe."
        results = engine.query("?.X")
        assert answers_set(results, "X") == {"euter", "chwab", "ource"}

    def test_list_relations_of_ource_with_constraint(self, engine):
        # ?.X.Y, X = ource -- footnote 7 form
        results = engine.query("?.X.Y, X = ource")
        assert answers_set(results, "Y") == {"hp", "ibm"}

    def test_list_relations_of_ource_directly(self, engine):
        # ?.ource.Y
        results = engine.query("?.ource.Y")
        assert answers_set(results, "Y") == {"hp", "ibm"}

    def test_list_all_database_relation_pairs(self, engine):
        # ?.X.Y -- "List the database/relation names in all the databases."
        results = engine.query("?.X.Y")
        assert answers_set(results, "X", "Y") == {
            ("euter", "r"),
            ("chwab", "r"),
            ("ource", "hp"),
            ("ource", "ibm"),
        }

    def test_databases_containing_relation_named_hp(self, engine):
        # ?.X.hp -- "List the names of databases containing a relation hp."
        results = engine.query("?.X.hp")
        assert answers_set(results, "X") == {"ource"}

    def test_databases_with_attribute_stkcode(self, engine):
        # ?.X.Y(.stkCode) -- "database/relation containing attribute stkCode"
        results = engine.query("?.X.Y(.stkCode)")
        assert answers_set(results, "X", "Y") == {("euter", "r")}

    def test_stocks_with_same_price_in_ource_and_chwab(self, engine):
        # ?.chwab.r(.date=D, .S=P), .ource.S(.date=D, .clsPrice=P)
        results = engine.query(
            "?.chwab.r(.date=D, .S=P), .ource.S(.date=D, .clsPrice=P)"
        )
        assert answers_set(results, "S") == {"hp", "ibm"}

    def test_relations_occurring_in_all_databases(self, engine):
        # ?.euter.Y, .chwab.Y, .ource.Y
        results = engine.query("?.euter.Y, .chwab.Y, .ource.Y")
        assert results == []  # no relation name is shared by all three

    def test_above_200_in_chwab_schema(self, engine):
        # ?.chwab.r(.S>200) -- S quantifies over attribute names
        assert engine.ask("?.chwab.r(.S>200)") is False
        assert engine.ask("?.chwab.r(.S>150)") is True

    def test_above_200_in_ource_schema(self, engine):
        # ?.ource.S(.clsPrice>200) -- S quantifies over relation names
        assert engine.ask("?.ource.S(.clsPrice>200)") is False
        results = engine.query("?.ource.S(.clsPrice>150)")
        assert answers_set(results, "S") == {"ibm"}

    def test_same_intention_same_expression_shape(self, engine):
        """The paper's headline claim: the same intention ("did any stock
        close above X") is expressible against each schema, and the three
        phrasings agree for every threshold."""
        for threshold in (40, 60, 100, 155, 200):
            via_euter = engine.ask(
                f"?.euter.r(.stkCode=S, .clsPrice>{threshold})"
            )
            via_chwab = engine.ask(f"?.chwab.r(.S>{threshold})")
            via_ource = engine.ask(f"?.ource.S(.clsPrice>{threshold})")
            assert via_euter == via_chwab == via_ource

    def test_higher_order_variable_joins_with_data(self, engine):
        """A higher-order binding (attribute name) joins euter's stkCode
        *data* — metadata and data share one domain."""
        results = engine.query(
            "?.euter.r(.stkCode=S, .date=D, .clsPrice=P), .chwab.r(.date=D, .S=P)"
        )
        assert answers_set(results, "S") == {"hp", "ibm"}

    def test_chwab_attribute_enumeration_includes_date(self, engine):
        """Without a guard, .S=P also matches the date attribute — the
        reason transparency rules add ``S != date``."""
        results = engine.query("?.chwab.r(.date=3/3/85, .S=V)")
        assert "date" in answers_set(results, "S")
        guarded = engine.query("?.chwab.r(.date=3/3/85, .S=V), S != date")
        assert "date" not in answers_set(guarded, "S")
