"""Property-based tests on evaluation semantics and core invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import IdlEngine
from repro.core.evaluator import answers, holds
from repro.core.parser import parse_query
from repro.core.updates import apply_request
from repro.objects import Universe, from_python, to_python
from tests.conftest import answers_set

# -- universes ----------------------------------------------------------------

row_values = st.one_of(
    st.integers(min_value=-50, max_value=50),
    st.sampled_from(["a", "b", "c"]),
)
rows = st.lists(
    st.dictionaries(st.sampled_from(["k", "v", "w"]), row_values, min_size=1),
    max_size=8,
)


@st.composite
def universes(draw):
    data = {}
    for db in draw(st.lists(st.sampled_from(["d1", "d2"]), unique=True, min_size=1)):
        data[db] = {
            rel: draw(rows)
            for rel in draw(
                st.lists(st.sampled_from(["r", "s"]), unique=True, min_size=1)
            )
        }
    return Universe.from_python(data)


# -- query semantics -------------------------------------------------------


@given(universes())
@settings(max_examples=80, deadline=None)
def test_holds_iff_answers_nonempty(universe):
    query = parse_query("?.D.R(.k=K)")
    assert holds(query, universe) == bool(answers(query, universe))


@given(universes())
@settings(max_examples=80, deadline=None)
def test_answers_are_unique(universe):
    query = parse_query("?.D.R(.k=K, .v=V)")
    results = answers(query, universe)
    signatures = [a.signature() for a in results]
    assert len(signatures) == len(set(signatures))


@given(universes(), st.integers(min_value=-50, max_value=50))
@settings(max_examples=80, deadline=None)
def test_negation_is_complement(universe, threshold):
    positive = parse_query(f"?.d1.r(.k>{threshold})")
    negative = parse_query(f"?.d1.r~(.k>{threshold})")
    if not universe.has("d1") or not universe.database("d1").has("r"):
        return
    assert holds(positive, universe) != holds(negative, universe)


@given(universes())
@settings(max_examples=60, deadline=None)
def test_conjunct_order_does_not_change_query_answers(universe):
    forward = parse_query("?.D.R(.k=K), .D.R(.v=V)")
    backward = parse_query("?.D.R(.v=V), .D.R(.k=K)")
    left = {a.signature() for a in answers(forward, universe)}
    right = {a.signature() for a in answers(backward, universe)}
    assert left == right


@given(universes())
@settings(max_examples=60, deadline=None)
def test_higher_order_enumeration_matches_catalog(universe):
    results = answers(parse_query("?.X.Y"), universe)
    expected = {
        (db, rel)
        for db in universe.database_names()
        for rel in universe.database(db).attr_names()
    }
    got = {(a.lookup("X").value, a.lookup("Y").value) for a in results}
    assert got == expected


# -- update semantics -------------------------------------------------------


@given(universes(), st.integers(min_value=-50, max_value=50))
@settings(max_examples=60, deadline=None)
def test_insert_makes_the_expression_true(universe, value):
    if not universe.has("d1") or not universe.database("d1").has("r"):
        return
    apply_request(parse_query(f"?.d1.r+(.k={value})"), universe)
    assert holds(parse_query(f"?.d1.r(.k={value})"), universe)


@given(universes(), st.integers(min_value=-50, max_value=50))
@settings(max_examples=60, deadline=None)
def test_delete_makes_the_expression_false(universe, value):
    if not universe.has("d1") or not universe.database("d1").has("r"):
        return
    apply_request(parse_query(f"?.d1.r-(.k={value})"), universe)
    assert not holds(parse_query(f"?.d1.r(.k={value})"), universe)


@given(universes(), st.integers(min_value=-50, max_value=50))
@settings(max_examples=60, deadline=None)
def test_insert_is_idempotent(universe, value):
    if not universe.has("d1") or not universe.database("d1").has("r"):
        return
    request = parse_query(f"?.d1.r+(.k={value}, .v=1)")
    apply_request(request, universe)
    once = to_python(universe.relation("d1", "r"))
    apply_request(request, universe)
    assert to_python(universe.relation("d1", "r")) == once


@given(universes())
@settings(max_examples=40, deadline=None)
def test_snapshot_round_trip(universe):
    snapshot = universe.snapshot()
    assert to_python(universe) == to_python(snapshot)
    assert universe == snapshot


@given(rows)
@settings(max_examples=80, deadline=None)
def test_encode_round_trip_preserves_value(row_list):
    obj = from_python(row_list)
    again = from_python(to_python(obj))
    assert obj == again


# -- fixpoint equivalence -----------------------------------------------------

edges = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=7)
    ),
    max_size=14,
)

TC_PROGRAM = (
    ".g.tc(.a=X, .b=Y) <- .g.edge(.a=X, .b=Y)\n"
    ".g.tc(.a=X, .b=Y) <- .g.tc(.a=X, .b=Z), .g.edge(.a=Z, .b=Y)"
)


@given(edges)
@settings(max_examples=40, deadline=None)
def test_naive_equals_seminaive_on_transitive_closure(edge_list):
    results = {}
    for method in ("naive", "seminaive"):
        engine = IdlEngine(fixpoint_method=method)
        engine.add_database(
            "g", {"edge": [{"a": a, "b": b} for a, b in edge_list]}
        )
        engine.define(TC_PROGRAM)
        results[method] = answers_set(
            engine.query("?.g.tc(.a=X, .b=Y)"), "X", "Y"
        )
    assert results["naive"] == results["seminaive"]


@given(edges)
@settings(max_examples=30, deadline=None)
def test_transitive_closure_matches_reference(edge_list):
    engine = IdlEngine()
    engine.add_database("g", {"edge": [{"a": a, "b": b} for a, b in edge_list]})
    engine.define(TC_PROGRAM)
    got = answers_set(engine.query("?.g.tc(.a=X, .b=Y)"), "X", "Y")

    # Reference: floyd-warshall style closure over the edge list.
    closure = set(edge_list)
    changed = True
    while changed:
        changed = False
        for a, b in list(closure):
            for c, d in list(closure):
                if b == c and (a, d) not in closure:
                    closure.add((a, d))
                    changed = True
    assert got == closure


@given(universes())
@settings(max_examples=40, deadline=None)
def test_materialization_does_not_mutate_base(universe):
    engine = IdlEngine(universe=universe)
    before = to_python(universe)
    engine.define(".dbV.all(.db=X, .rel=Y) <- .X.Y(.k=K)")
    engine.materialized_view()
    assert to_python(universe) == before
