"""Unit tests for the IDL tokenizer."""

from __future__ import annotations

import pytest

from repro.core import lexer as lx
from repro.errors import LexError


def types(source):
    return [token.type for token in lx.tokenize(source)]


def values(source):
    return [token.value for token in lx.tokenize(source)][:-1]  # drop EOF


class TestBasicTokens:
    def test_simple_query(self):
        tokens = lx.tokenize("?.euter.r(.stkCode=hp)")
        assert [t.type for t in tokens] == [
            lx.QUESTION, lx.DOT, lx.IDENT, lx.DOT, lx.IDENT, lx.LPAREN,
            lx.DOT, lx.IDENT, lx.COMPARE, lx.IDENT, lx.RPAREN, lx.SEP, lx.EOF,
        ]

    def test_variables_start_uppercase(self):
        tokens = lx.tokenize("X Ycd zAb")
        assert [t.type for t in tokens[:3]] == [lx.VAR, lx.VAR, lx.IDENT]

    def test_numbers(self):
        assert values("42 3.5") == [42, 3.5, "\n"]
        assert isinstance(lx.tokenize("42")[0].value, int)
        assert isinstance(lx.tokenize("3.5")[0].value, float)

    def test_date_literal_is_a_string(self):
        token = lx.tokenize("3/3/85")[0]
        assert token.type == lx.STRING and token.value == "3/3/85"

    def test_quoted_strings_and_escapes(self):
        assert lx.tokenize("'hello world'")[0].value == "hello world"
        assert lx.tokenize(r"'it\'s'")[0].value == "it's"
        assert lx.tokenize('"d\\"q"')[0].value == 'd"q'

    def test_comparison_operators(self):
        ops = [t.value for t in lx.tokenize("< <= = != > >= ≠") if t.type == lx.COMPARE]
        assert ops == ["<", "<=", "=", "!=", ">", ">=", "!="]

    def test_arrows(self):
        assert lx.tokenize("<-")[0].type == lx.LARROW
        assert lx.tokenize("->")[0].type == lx.RARROW

    def test_arrow_vs_comparison_disambiguation(self):
        assert [t.type for t in lx.tokenize("a <- b")][:3] == [
            lx.IDENT, lx.LARROW, lx.IDENT,
        ]
        assert [t.type for t in lx.tokenize("a <= b")][:3] == [
            lx.IDENT, lx.COMPARE, lx.IDENT,
        ]

    def test_negation_ascii_and_unicode(self):
        assert lx.tokenize("~")[0].type == lx.NEG
        assert lx.tokenize("¬")[0].type == lx.NEG


class TestSeparators:
    def test_newline_separates_statements(self):
        tokens = lx.tokenize("?.a\n?.b")
        separators = [t for t in tokens if t.type == lx.SEP]
        assert len(separators) == 2

    def test_newline_inside_parens_is_not_a_separator(self):
        tokens = lx.tokenize("?.a(.x=1,\n.y=2)")
        separators = [t for t in tokens if t.type == lx.SEP]
        assert len(separators) == 1  # only the trailing one

    def test_newline_after_continuation_token(self):
        tokens = lx.tokenize("?.a(.x=1),\n.b(.y=2)")
        separators = [t for t in tokens if t.type == lx.SEP]
        assert len(separators) == 1

    def test_newline_after_arrow(self):
        tokens = lx.tokenize(".h(.x=X) <-\n.b(.x=X)")
        separators = [t for t in tokens if t.type == lx.SEP]
        assert len(separators) == 1

    def test_semicolon_separator(self):
        tokens = lx.tokenize("?.a; ?.b")
        assert [t.type for t in tokens if t.type == lx.SEP][0] == lx.SEP

    def test_comments_are_skipped(self):
        tokens = lx.tokenize("?.a % trailing comment\n# whole line\n?.b")
        idents = [t.value for t in tokens if t.type == lx.IDENT]
        assert idents == ["a", "b"]

    def test_blank_lines_collapse(self):
        tokens = lx.tokenize("?.a\n\n\n?.b")
        separators = [t for t in tokens if t.type == lx.SEP]
        assert len(separators) == 2


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(LexError):
            lx.tokenize("?.a @ b")

    def test_unbalanced_close_paren(self):
        with pytest.raises(LexError):
            lx.tokenize("?.a)")

    def test_error_reports_position(self):
        with pytest.raises(LexError) as info:
            lx.tokenize("?.ab\n  @")
        assert info.value.line == 2
        assert info.value.column == 3


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = lx.tokenize("?.a\n?.bc")
        question = [t for t in tokens if t.type == lx.QUESTION]
        assert question[0].line == 1
        assert question[1].line == 2
        bc = [t for t in tokens if t.value == "bc"][0]
        assert bc.column == 3
