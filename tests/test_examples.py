"""Smoke tests: every example script runs to completion."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.stem)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples should narrate their work"


def test_example_inventory():
    names = {path.stem for path in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3
