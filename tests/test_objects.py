"""Unit tests for the IDL object model (paper Section 3)."""

from __future__ import annotations

import pytest

from repro.errors import UnknownNameError
from repro.objects import (
    Atom,
    MergedSet,
    MergedTuple,
    SetObject,
    TupleObject,
    Universe,
    compare_values,
    from_python,
    get_path,
    get_path_or_none,
    merge_objects,
    same_value,
    to_python,
)


class TestAtom:
    def test_categories(self):
        assert Atom(1).is_atom and not Atom(1).is_tuple and not Atom(1).is_set

    def test_value_equality(self):
        assert Atom(5) == Atom(5)
        assert Atom(5) != Atom(6)
        assert Atom("a") != Atom("b")

    def test_bool_and_int_are_distinct_values(self):
        assert Atom(True) != Atom(1)
        assert Atom(False) != Atom(0)

    def test_int_and_float_equality(self):
        assert Atom(5) == Atom(5.0)

    def test_null_atom(self):
        assert Atom(None).is_null
        assert not Atom(0).is_null

    def test_null_fails_every_comparison(self):
        null = Atom(None)
        for op in ("<", "<=", "=", "!=", ">", ">="):
            assert null.compare(op, 5) is False
            assert compare_values(5, op, None) is False
        assert compare_values(None, "=", None) is False

    def test_incomparable_types_are_false_not_errors(self):
        assert Atom("abc").compare(">", 5) is False
        assert Atom(5).compare("<", "abc") is False
        assert Atom("abc").compare("=", 5) is False
        assert Atom("abc").compare("!=", 5) is True

    def test_ordered_comparisons(self):
        assert Atom(5).compare("<", 6)
        assert Atom(5).compare("<=", 5)
        assert Atom("abc").compare("<", "abd")
        assert not Atom(7).compare(">", 7)

    def test_rejects_non_scalars(self):
        with pytest.raises(TypeError):
            Atom([1, 2])

    def test_copy_is_independent(self):
        original = Atom(5)
        copied = original.copy()
        copied.value = 9
        assert original.value == 5


class TestTupleObject:
    def test_set_get_remove(self):
        t = TupleObject()
        t.set("a", Atom(1))
        assert t.has("a") and t.get("a") == Atom(1)
        t.remove("a")
        assert not t.has("a")

    def test_attribute_order_preserved_for_display(self):
        t = TupleObject([("b", Atom(1)), ("a", Atom(2))])
        assert t.attr_names() == ["b", "a"]

    def test_equality_ignores_attribute_order(self):
        left = TupleObject([("a", Atom(1)), ("b", Atom(2))])
        right = TupleObject([("b", Atom(2)), ("a", Atom(1))])
        assert left == right
        assert hash(left) == hash(right)

    def test_unique_attributes(self):
        t = TupleObject([("a", Atom(1)), ("a", Atom(2))])
        assert t.get("a") == Atom(2)  # last write wins
        assert len(t) == 1

    def test_nested_equality_is_deep(self):
        left = from_python({"a": {"b": [1, 2]}})
        right = from_python({"a": {"b": [2, 1]}})
        assert left == right  # sets are unordered

    def test_attr_names_must_be_strings(self):
        with pytest.raises(TypeError):
            TupleObject().set(1, Atom(1))

    def test_copy_is_deep(self):
        original = from_python({"a": {"b": 1}})
        copied = original.copy()
        copied.get("a").set("b", Atom(99))
        assert original.get("a").get("b") == Atom(1)


class TestSetObject:
    def test_value_deduplication(self):
        s = SetObject([Atom(1), Atom(1), Atom(2)])
        assert len(s) == 2

    def test_heterogeneous_membership(self):
        s = SetObject([Atom(1), from_python({"a": 1}), from_python([1])])
        assert len(s) == 3
        assert s.contains_value(Atom(1))
        assert s.contains_value(from_python({"a": 1}))

    def test_add_reports_change(self):
        s = SetObject()
        assert s.add(Atom(1)) is True
        assert s.add(Atom(1)) is False

    def test_discard_value(self):
        s = SetObject([from_python({"a": 1})])
        assert s.discard_value(from_python({"a": 1})) is True
        assert s.discard_value(from_python({"a": 1})) is False
        assert s.is_empty

    def test_remove_where(self):
        s = SetObject([Atom(i) for i in range(5)])
        removed = s.remove_where(lambda obj: obj.value % 2 == 0)
        assert {atom.value for atom in removed} == {0, 2, 4}
        assert len(s) == 2

    def test_refresh_after_in_place_mutation(self):
        element = TupleObject([("a", Atom(1))])
        s = SetObject([element])
        element.set("a", Atom(2))
        s.refresh(element)
        assert s.contains_value(from_python({"a": 2}))
        assert not s.contains_value(from_python({"a": 1}))

    def test_refresh_collapses_duplicates(self):
        first = TupleObject([("a", Atom(1))])
        second = TupleObject([("a", Atom(2))])
        s = SetObject([first, second])
        second.set("a", Atom(1))
        s.refresh(second)
        assert len(s) == 1

    def test_varying_arity_tuples_coexist(self):
        s = SetObject([from_python({"a": 1}), from_python({"a": 1, "b": 2})])
        assert len(s) == 2

    def test_set_equality_is_order_insensitive(self):
        assert SetObject([Atom(1), Atom(2)]) == SetObject([Atom(2), Atom(1)])


class TestEncode:
    def test_round_trip_nested(self):
        data = {"db": {"r": [{"a": 1, "b": "x"}, {"a": 2}]}}
        assert to_python(from_python(data)) == data

    def test_scalars(self):
        assert from_python(5) == Atom(5)
        assert from_python(None).is_null
        assert to_python(Atom("s")) == "s"

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            from_python(object())


class TestPath:
    def test_get_path(self):
        obj = from_python({"a": {"b": {"c": 1}}})
        assert get_path(obj, ["a", "b", "c"]) == Atom(1)

    def test_get_path_missing_raises(self):
        obj = from_python({"a": {}})
        with pytest.raises(UnknownNameError):
            get_path(obj, ["a", "zzz"])

    def test_get_path_or_none(self):
        obj = from_python({"a": {}})
        assert get_path_or_none(obj, ["a", "zzz"]) is None

    def test_get_path_through_non_tuple_raises(self):
        obj = from_python({"a": [1]})
        with pytest.raises(UnknownNameError):
            get_path(obj, ["a", "b"])


class TestMerged:
    def test_tuple_merge_union_and_shadowing(self):
        base = from_python({"shared": 1, "base_only": 2})
        overlay = from_python({"shared": 9, "over_only": 3})
        merged = MergedTuple(base, overlay)
        assert set(merged.attr_names()) == {"shared", "base_only", "over_only"}
        assert merged.get("shared") == Atom(9)  # overlay wins on clash
        assert merged.get("base_only") == Atom(2)

    def test_nested_tuples_merge_recursively(self):
        base = from_python({"db": {"r": [1]}})
        overlay = from_python({"db": {"v": [2]}})
        merged = MergedTuple(base, overlay)
        assert set(merged.get("db").attr_names()) == {"r", "v"}

    def test_sets_merge_by_value_union(self):
        base = from_python({"db": {"r": [{"a": 1}, {"a": 2}]}})
        overlay = from_python({"db": {"r": [{"a": 2}, {"a": 3}]}})
        merged = MergedTuple(base, overlay)
        rel = merged.get("db").get("r")
        assert isinstance(rel, MergedSet)
        assert len(rel) == 3

    def test_merged_objects_are_read_only(self):
        merged = merge_objects(from_python({"a": 1}), from_python({"b": 2}))
        assert not hasattr(merged, "set")

    def test_merged_copy_is_plain_and_mutable(self):
        merged = MergedTuple(from_python({"a": 1}), from_python({"b": 2}))
        plain = merged.copy()
        plain.set("c", Atom(3))
        assert isinstance(plain, TupleObject)

    def test_merged_value_semantics(self):
        base = from_python({"a": 1})
        merged = MergedTuple(base, TupleObject())
        assert same_value(merged, base)

    def test_merged_set_membership_and_emptiness(self):
        base = from_python([{"a": 1}])
        overlay = from_python([{"a": 2}])
        merged = MergedSet(base, overlay)
        assert merged.contains_value(from_python({"a": 1}))
        assert merged.contains_value(from_python({"a": 2}))
        assert not merged.contains_value(from_python({"a": 3}))
        assert not merged.is_empty
        assert MergedSet(from_python([]), from_python([])).is_empty

    def test_merged_set_copy_is_mutable(self):
        merged = MergedSet(from_python([1]), from_python([2]))
        plain = merged.copy()
        plain.add(from_python(3))
        assert len(plain) == 3 and len(merged) == 2

    def test_deeply_chained_merges(self):
        # Strata produce chains: base + overlay1 + overlay2 + ...
        view = from_python({"d": {"r": [{"x": 0}]}})
        for level in range(1, 5):
            view = MergedTuple(view, from_python({"d": {"r": [{"x": level}]}}))
        relation = view.get("d").get("r")
        assert {to_python(e)["x"] for e in relation.elements()} == {0, 1, 2, 3, 4}


class TestUniverse:
    def test_add_and_query_databases(self):
        u = Universe()
        u.add_database("db1", from_python({"r": [{"a": 1}]}))
        assert u.database_names() == ["db1"]
        assert len(u.relation("db1", "r")) == 1

    def test_duplicate_database_rejected(self):
        u = Universe()
        u.add_database("db1")
        with pytest.raises(UnknownNameError):
            u.add_database("db1")

    def test_add_relation_and_names(self):
        u = Universe()
        u.add_database("db1")
        u.add_relation("db1", "r", [{"a": 1}, {"a": 2}])
        assert u.relation_names("db1") == ["r"]
        with pytest.raises(UnknownNameError):
            u.add_relation("db1", "r", [])

    def test_snapshot_is_independent(self):
        u = Universe.from_python({"db": {"r": [{"a": 1}]}})
        snap = u.snapshot()
        u.relation("db", "r").clear()
        assert len(snap.relation("db", "r")) == 1

    def test_count_facts(self):
        u = Universe.from_python({"d1": {"r": [{"a": 1}, {"a": 2}]}, "d2": {"s": [{"b": 1}]}})
        assert u.count_facts() == 3

    def test_unknown_lookups_raise(self):
        u = Universe()
        with pytest.raises(UnknownNameError):
            u.database("zzz")
        u.add_database("db")
        with pytest.raises(UnknownNameError):
            u.relation("db", "zzz")
