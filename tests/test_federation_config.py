"""FederationConfig: the consolidated federation construction surface.

Covers field validation, ``Federation.from_config``, ``replace``
re-validation, and the legacy-keyword shim (still functional, one
``DeprecationWarning`` per process).
"""

from __future__ import annotations

import warnings

import pytest

import repro.multidb.config as config_module
from repro.errors import FederationError
from repro.multidb import (
    Federation,
    FederationConfig,
    InMemoryConnector,
    InMemoryJournal,
)
from repro.multidb.resilience import ResiliencePolicy
from repro.workloads.stocks import StockWorkload

STYLES = ("euter", "chwab", "ource")


@pytest.fixture
def workload():
    return StockWorkload(n_stocks=2, n_days=2, seed=7)


def build_from(config, workload):
    federation = Federation.from_config(config)
    for style in STYLES:
        federation.add_member(
            style, style,
            connector=InMemoryConnector(workload.relations_for(style)),
        )
    federation.install()
    return federation


class TestValidation:
    def test_defaults_are_the_historical_federation(self):
        config = FederationConfig()
        assert (config.unified_db, config.unified_relation,
                config.control_db) == ("dbI", "p", "dbU")
        assert config.prune == "on"
        assert config.validate == "off"
        assert config.parallel == "on"
        assert config.max_workers is None
        assert config.hedge_after is None

    @pytest.mark.parametrize("field,bad,match", [
        ("prune", "maybe", "prune must be"),
        ("parallel", "auto", "parallel must be"),
        ("validate", "loud", "validate must be"),
        ("max_workers", 0, "max_workers must be"),
        ("max_workers", True, "max_workers must be"),
        ("max_workers", "two", "max_workers must be"),
        ("hedge_after", 0, "hedge_after must be"),
        ("hedge_after", -1.0, "hedge_after must be"),
        ("hedge_after", "soon", "hedge_after must be"),
    ])
    def test_bad_fields_raise(self, field, bad, match):
        with pytest.raises(FederationError, match=match):
            FederationConfig(**{field: bad})

    def test_replace_revalidates(self):
        config = FederationConfig(max_workers=4)
        assert config.replace(max_workers=2).max_workers == 2
        with pytest.raises(FederationError):
            config.replace(parallel="sideways")

    def test_config_is_frozen(self):
        with pytest.raises(Exception):
            FederationConfig().parallel = "off"


class TestFromConfig:
    def test_from_config_threads_every_field(self, workload):
        journal = InMemoryJournal()
        policy = ResiliencePolicy(max_attempts=1)
        config = FederationConfig(journal=journal, prune="off",
                                  policy=policy, parallel="off",
                                  max_workers=3, hedge_after=0.5)
        federation = Federation.from_config(config)
        assert federation.config is config
        assert federation.journal is journal
        assert federation.prune == "off"
        assert federation.executor.parallel == "off"
        assert federation.executor.max_workers == 3
        assert federation.executor.hedge_after == 0.5

    def test_parallel_and_serial_federations_answer_alike(self, workload):
        serial = build_from(FederationConfig(parallel="off"), workload)
        parallel = build_from(FederationConfig(parallel="on"), workload)
        assert serial.unified_quotes() == parallel.unified_quotes()

    def test_config_policy_is_the_member_default(self, workload):
        policy = ResiliencePolicy(max_attempts=7)
        federation = Federation.from_config(FederationConfig(policy=policy))
        federation.add_member(
            "euter", "euter",
            connector=InMemoryConnector(workload.relations_for("euter")),
        )
        assert federation.connectors["euter"].policy is policy

    def test_validate_default_drives_install(self, workload):
        """``validate`` in the config is the ``install()`` default."""
        federation = build_from(
            FederationConfig(validate="warn"), workload
        )
        assert federation.members  # install with warn mode succeeded


class TestLegacyShim:
    @pytest.fixture(autouse=True)
    def fresh_warning_budget(self, monkeypatch):
        monkeypatch.setattr(config_module, "_legacy_warned", False)

    def test_legacy_kwargs_still_build_a_federation(self, workload):
        journal = InMemoryJournal()
        with pytest.warns(DeprecationWarning, match="from_config"):
            federation = Federation(journal=journal, prune="off")
        assert federation.journal is journal
        assert federation.prune == "off"
        assert federation.config.prune == "off"

    def test_warns_once_per_process(self):
        with pytest.warns(DeprecationWarning):
            Federation(prune="on")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            Federation(prune="on")  # the budget is spent; silent now

    def test_legacy_validation_error_is_unchanged(self):
        with pytest.raises(FederationError,
                           match="prune must be 'on' or 'off'"):
            Federation(prune="maybe")

    def test_plain_construction_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            Federation()
            Federation.from_config(FederationConfig())


class TestExports:
    def test_config_is_in_the_public_api(self):
        import repro
        import repro.multidb as multidb

        assert "FederationConfig" in repro.__all__
        assert "FederationConfig" in multidb.__all__
        assert repro.FederationConfig is FederationConfig
