"""Golden tests for ``idlcheck`` (src/repro/analysis).

Every diagnostic code gets at least one firing (positive) and one
non-firing (negative) fixture, plus integration tests for the three
wiring layers: ``Federation.install(validate=...)``, the REPL's
``:check`` command, and the ``python -m repro.tools.lint`` CLI
(including the sweep over ``examples/``).
"""

from __future__ import annotations

import glob
import io
import os

import pytest

from repro.analysis import (
    CODES,
    CallShape,
    Catalog,
    check_engine,
    check_source,
)
from repro.core.engine import IdlEngine
from repro.errors import ValidationError
from repro.multidb.connectors import FaultyConnector, InMemoryConnector
from repro.multidb.federation import Federation
from repro.tools import lint
from repro.tools.repl import IdlRepl
from repro.workloads.stocks import StockWorkload

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def catalog():
    return (
        Catalog()
        .add_relation("euter", "r", ["date", "stkCode", "clsPrice"])
        .add_relation("dbU", "stkNames", ["stk"])
    )


def codes_of(source, **kwargs):
    kwargs.setdefault("catalog", catalog())
    return check_source(source, **kwargs).codes


# ---------------------------------------------------------------------------
# IDL000 syntax-error
# ---------------------------------------------------------------------------


def test_idl000_fires_on_syntax_error():
    report = check_source("?.euter.r(.stkCode=S")
    assert report.codes == ["IDL000"]
    assert report.has_errors
    diagnostic = report.by_code("IDL000")[0]
    assert diagnostic.loc is not None  # points at the offending token


def test_idl000_quiet_on_valid_source():
    assert "IDL000" not in codes_of("?.euter.r(.stkCode=S)")


# ---------------------------------------------------------------------------
# IDL001 unsafe-variable
# ---------------------------------------------------------------------------


def test_idl001_fires_on_unsafe_rule():
    source = ".dbV.big(.s=S) <- .euter.r(.date=D), S > 10"
    report = check_source(source, catalog=catalog())
    assert "IDL001" in report.codes
    diagnostic = report.by_code("IDL001")[0]
    assert "S" in diagnostic.message
    assert diagnostic.loc == (1, 1)
    assert ".dbV.big" in diagnostic.context


def test_idl001_fires_on_unsafe_query():
    assert "IDL001" in codes_of("? X > 3")


def test_idl001_quiet_on_safe_rule():
    source = ".dbV.big(.s=S) <- .euter.r(.stkCode=S, .clsPrice>10)"
    assert "IDL001" not in codes_of(source)


# ---------------------------------------------------------------------------
# IDL002 unrestricted-name-variable
# ---------------------------------------------------------------------------


def test_idl002_fires_on_computed_name_variable():
    source = ".dbV.R(.a=1) <- .euter.r(.clsPrice=X), R = 2*X"
    assert "IDL002" in codes_of(source)


def test_idl002_quiet_on_enumerated_name_variable():
    # The paper's Figure 1 ource view: S is enumerated from stored
    # values, which is a legitimate name producer.
    source = ".dbO.S(.date=D, .clsPrice=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P)"
    assert "IDL002" not in codes_of(source)


# ---------------------------------------------------------------------------
# IDL003 malformed-statement
# ---------------------------------------------------------------------------


def test_idl003_fires_on_bad_program_head():
    # An update program head must name a program or relation.
    source = ".dbU(.x=X) -> .euter.r-(.stkCode=X)"
    assert "IDL003" in codes_of(source)


def test_idl003_quiet_on_valid_clause():
    source = ".dbU.drop(.stk=S) -> .euter.r-(.stkCode=S)"
    assert "IDL003" not in codes_of(source)


# ---------------------------------------------------------------------------
# IDL010 unstratifiable
# ---------------------------------------------------------------------------


def test_idl010_fires_with_cycle_trace():
    source = "\n".join([
        ".dbV.p(.s=S) <- .dbU.stkNames(.stk=S), ~.dbV.q(.s=S)",
        ".dbV.q(.s=S) <- .dbV.p(.s=S)",
    ])
    report = check_source(source, catalog=catalog())
    assert "IDL010" in report.codes
    message = report.by_code("IDL010")[0].message
    # The trace names both rules of the negative cycle.
    assert ".dbV.p" in message and ".dbV.q" in message
    assert "--~-->" in message


def test_idl010_quiet_on_stratified_negation():
    source = "\n".join([
        ".dbV.q(.s=S) <- .dbU.stkNames(.stk=S)",
        ".dbV.p(.s=S) <- .dbU.stkNames(.stk=S), ~.dbV.q(.s=S)",
    ])
    assert "IDL010" not in codes_of(source)


# ---------------------------------------------------------------------------
# IDL011 recursive-update-program
# ---------------------------------------------------------------------------


def test_idl011_fires_on_mutual_program_recursion():
    source = "\n".join([
        ".dbU.a(.x=X) -> .dbU.b(.x=X)",
        ".dbU.b(.x=X) -> .dbU.a(.x=X)",
    ])
    assert "IDL011" in codes_of(source)


def test_idl011_quiet_on_acyclic_calls():
    source = "\n".join([
        ".dbU.a(.x=X) -> .dbU.b(.x=X)",
        ".dbU.b(.x=X) -> .euter.r-(.stkCode=X)",
    ])
    assert "IDL011" not in codes_of(source)


# ---------------------------------------------------------------------------
# IDL020 unknown-relation
# ---------------------------------------------------------------------------


def test_idl020_fires_on_unknown_relation():
    report = check_source(
        ".dbV.v(.s=S) <- .euter.quotes(.stkCode=S)", catalog=catalog()
    )
    assert "IDL020" in report.codes
    diagnostic = report.by_code("IDL020")[0]
    assert ".euter.quotes" in diagnostic.message
    assert diagnostic.loc == (1, 17)  # the conjunct, not just the rule


def test_idl020_fires_on_unknown_database():
    report = check_source("?.nowhere.r(.x=X)", catalog=catalog())
    assert "IDL020" in report.codes
    assert "database" in report.by_code("IDL020")[0].message


def test_idl020_quiet_on_catalog_derived_opaque_and_created():
    source = "\n".join([
        # catalog relation
        ".dbV.a(.s=S) <- .euter.r(.stkCode=S)",
        # derived relation
        ".dbV.b(.s=S) <- .dbV.a(.s=S)",
        # opaque database
        ".dbV.c(.s=S) <- .mystery.rel(.s=S)",
        # a '+' along the path may create the relation
        ".dbU.mk(.s=S) -> .euter+.fresh(.stk=S)",
    ])
    cat = catalog().mark_opaque("mystery")
    assert "IDL020" not in codes_of(source, catalog=cat)


def test_idl020_skipped_without_catalog():
    assert "IDL020" not in codes_of(
        "?.nowhere.r(.x=X)", catalog=None
    )


# ---------------------------------------------------------------------------
# IDL021 unknown-attribute
# ---------------------------------------------------------------------------


def test_idl021_fires_on_unknown_attribute():
    report = check_source("?.euter.r(.ticker=S)", catalog=catalog())
    assert "IDL021" in report.codes
    assert "ticker" in report.by_code("IDL021")[0].message
    assert not report.has_errors  # a warning, not an error


def test_idl021_quiet_on_known_variable_and_inserted_attributes():
    source = "\n".join([
        "?.euter.r(.stkCode=S)",  # known attribute
        "?.euter.r(.A=V), A != date",  # higher-order attribute
        "?.euter.r+(.date=d1, .stkCode=hp, .clsPrice=9, .volume=3)",  # insert
    ])
    assert "IDL021" not in codes_of(source)


# ---------------------------------------------------------------------------
# IDL030 uncovered-view-update
# ---------------------------------------------------------------------------


def test_idl030_fires_on_missing_entry_point():
    report = check_source(
        "", required=[CallShape("dbU", "insStk", None, ["stk"],
                                origin="test")]
    )
    assert report.codes == ["IDL030"]
    assert "test" in report.by_code("IDL030")[0].message


def test_idl030_fires_on_uncovered_binding():
    # insStk needs stk+date+price for its '+' expression; a declared
    # call shape giving only stk is not covered.
    source = (
        ".dbU.insStk(.stk=S, .date=D, .price=P) -> "
        ".euter.r+(.stkCode=S, .date=D, .clsPrice=P)"
    )
    report = check_source(
        source, catalog=catalog(),
        required=[CallShape("dbU", "insStk", None, ["stk"])],
    )
    assert "IDL030" in report.codes
    assert "date+price+stk" in report.by_code("IDL030")[0].message


def test_idl030_fires_on_underbound_call_site():
    source = "\n".join([
        ".dbU.insStk(.stk=S, .date=D, .price=P) -> "
        ".euter.r+(.stkCode=S, .date=D, .clsPrice=P)",
        # This call site gives only stk — statically uncovered.
        ".dbU.touch(.stk=S) -> .dbU.insStk(.stk=S)",
    ])
    assert "IDL030" in codes_of(source)


def test_idl030_quiet_on_covered_shape():
    source = (
        ".dbU.insStk(.stk=S, .date=D, .price=P) -> "
        ".euter.r+(.stkCode=S, .date=D, .clsPrice=P)"
    )
    report = check_source(
        source, catalog=catalog(),
        required=[CallShape("dbU", "insStk", None, ["stk", "date", "price"])],
    )
    assert "IDL030" not in report.codes


# ---------------------------------------------------------------------------
# IDL031 uncallable-clause
# ---------------------------------------------------------------------------


def test_idl031_fires_on_uncallable_clause():
    # W is not a parameter and not produced: no binding can run this.
    source = ".dbU.p(.x=X) -> .euter.r(.stkCode=Y), Y > W"
    assert "IDL031" in codes_of(source)


def test_idl031_quiet_on_callable_clause():
    source = ".dbU.p(.x=X) -> .euter.r-(.stkCode=X)"
    assert "IDL031" not in codes_of(source)


# ---------------------------------------------------------------------------
# IDL040 dead-rule
# ---------------------------------------------------------------------------


def test_idl040_fires_on_recursion_without_base_case():
    source = ".dbV.loop(.x=X) <- .dbV.loop(.x=X)"
    report = check_source(source, catalog=catalog())
    assert "IDL040" in report.codes


def test_idl040_quiet_on_recursion_with_base_case():
    source = "\n".join([
        ".dbV.tc(.s=S) <- .euter.r(.stkCode=S)",
        ".dbV.tc(.s=S) <- .dbV.tc(.s=S)",
    ])
    assert "IDL040" not in codes_of(source)


def test_idl040_suppressed_when_reference_is_unknown():
    # The unknown reference already fired IDL020; a dead-rule warning
    # on top would be noise.
    source = ".dbV.v(.s=S) <- .euter.quotes(.stkCode=S)"
    report = check_source(source, catalog=catalog())
    assert "IDL020" in report.codes
    assert "IDL040" not in report.codes


# ---------------------------------------------------------------------------
# IDL041 shadowed-clause
# ---------------------------------------------------------------------------


def test_idl041_fires_on_duplicate_rule_and_clause():
    source = "\n".join([
        ".dbV.v(.s=S) <- .euter.r(.stkCode=S)",
        ".dbV.v(.s=S) <- .euter.r(.stkCode=S)",
        ".dbU.p(.x=X) -> .euter.r-(.stkCode=X)",
        ".dbU.p(.x=X) -> .euter.r-(.stkCode=X)",
    ])
    report = check_source(source, catalog=catalog())
    assert len(report.by_code("IDL041")) == 2
    # Each duplicate names the statement it shadows.
    assert "1:1" in report.by_code("IDL041")[0].message


def test_idl041_quiet_on_distinct_statements():
    source = "\n".join([
        ".dbV.v(.s=S) <- .euter.r(.stkCode=S)",
        ".dbV.v(.s=S) <- .dbU.stkNames(.stk=S)",
    ])
    assert "IDL041" not in codes_of(source)


# ---------------------------------------------------------------------------
# IDL050 type-clash
# ---------------------------------------------------------------------------


def test_idl050_fires_on_name_variable_in_arithmetic():
    source = ".dbV.R(.a=1) <- .euter.r(.clsPrice=X), R = 2*X"
    report = check_source(source, catalog=catalog())
    assert "IDL050" in report.codes
    diagnostic = report.by_code("IDL050")[0]
    assert "R" in diagnostic.message
    assert "name" in diagnostic.message and "num" in diagnostic.message


def test_idl050_fires_across_discrepant_schemata():
    # The inferred signature of the unified view types price as num;
    # using a price value as an attribute *name* in the chwab style is
    # the paper's canonical data/metadata clash.
    source = "\n".join([
        ".dbI.p(.stk=S, .price=P) <- "
        ".euter.r(.stkCode=S, .clsPrice=Q), P = 2*Q",
        "?.dbI.p(.stk=S, .price=P), .chwab.r(.date=d1, .P=V)",
    ])
    report = check_source(source, catalog=catalog())
    assert "IDL050" in report.codes
    assert "P" in report.by_code("IDL050")[0].message


def test_idl050_in_program_body_carries_the_clause_position():
    # Golden: findings inside update-program bodies point at the
    # offending conjunct, not at the statement head.
    source = "\n".join([
        ".dbU.setP(.stk=S) -> .euter.r+(.stkCode=S)",
        ".dbU.bad(.stk=S) -> .chwab.r(.date=D, .S=P), X = 2*S",
    ])
    report = check_source(source, catalog=catalog())
    diagnostic = report.by_code("IDL050")[0]
    assert diagnostic.loc == (2, 46)  # the `X = 2*S` conjunct
    assert ".dbU.bad" in diagnostic.context


def test_idl050_quiet_on_consistent_types():
    source = "\n".join([
        ".dbI.p(.stk=S, .price=P) <- "
        ".euter.r(.stkCode=S, .clsPrice=Q), P = 2*Q",
        "?.dbI.p(.stk=S, .price=P), P > 100",
    ])
    assert "IDL050" not in codes_of(source)


# ---------------------------------------------------------------------------
# IDL051 unsatisfiable-selection
# ---------------------------------------------------------------------------


def test_idl051_fires_on_distinct_constants():
    source = "?.euter.r(.stkCode=S, .stkCode=7, .stkCode=9)"
    report = check_source(source, catalog=catalog())
    assert "IDL051" in report.codes
    assert not report.has_errors  # a warning: the query is legal, empty


def test_idl051_fires_on_contradictory_range():
    source = "?.euter.r(.clsPrice=P, .clsPrice>100, .clsPrice<50)"
    assert "IDL051" in codes_of(source)


def test_idl051_quiet_on_satisfiable_range():
    source = "?.euter.r(.clsPrice=P, .clsPrice>50, .clsPrice<100)"
    assert "IDL051" not in codes_of(source)


def test_idl051_quiet_across_separate_tuples():
    # Different tuples may of course carry different constants.
    source = "?.euter.r(.stkCode=ibm), .euter.r(.stkCode=dec)"
    assert "IDL051" not in codes_of(source)


# ---------------------------------------------------------------------------
# IDL060 write-outside-footprint
# ---------------------------------------------------------------------------


ROGUE_PROGRAM = (
    ".dbU.ins(.stk=S) -> .euter.r+(.stkCode=S), .rogue.log+(.who=S)"
)


def test_idl060_fires_on_write_outside_declared_footprint():
    shape = CallShape("dbU", "ins", None, params=("stk",),
                      writes={"euter"})
    report = check_source(ROGUE_PROGRAM, catalog=catalog(),
                          required=[shape])
    assert "IDL060" in report.codes
    diagnostic = report.by_code("IDL060")[0]
    assert ".rogue.log" in diagnostic.message
    assert "euter" in diagnostic.message  # names the allowed footprint
    assert diagnostic.loc is not None


def test_idl060_fires_through_a_transitive_call():
    source = "\n".join([
        ".dbU.inner(.stk=S) -> .rogue.log+(.who=S)",
        ".dbU.ins(.stk=S) -> .euter.r+(.stkCode=S), .dbU.inner(.stk=S)",
    ])
    shapes = [CallShape("dbU", "ins", None, params=("stk",),
                        writes={"euter"})]
    report = check_source(source, catalog=catalog(), required=shapes)
    assert "IDL060" in report.codes
    assert "via .dbU.inner" in report.by_code("IDL060")[0].message


def test_idl060_quiet_when_footprint_covers_the_writes():
    shape = CallShape("dbU", "ins", None, params=("stk",),
                      writes={"euter", "rogue"})
    report = check_source(ROGUE_PROGRAM, catalog=catalog(),
                          required=[shape])
    assert "IDL060" not in report.codes


def test_idl060_skipped_without_declared_footprints():
    # A shape with writes=None declares nothing; no IDL060 can fire.
    shape = CallShape("dbU", "ins", None, params=("stk",))
    report = check_source(ROGUE_PROGRAM, catalog=catalog(),
                          required=[shape])
    assert "IDL060" not in report.codes


# ---------------------------------------------------------------------------
# Report mechanics
# ---------------------------------------------------------------------------


def test_every_code_is_documented():
    assert len(CODES) >= 12
    for code, (slug, severity, description) in CODES.items():
        assert code.startswith("IDL") and len(code) == 6
        assert slug and description
        assert severity in ("error", "warning")


def test_report_renders_sorted_errors_first():
    source = "\n".join([
        "?.euter.r(.ticker=S)",  # warning on line 1
        "?.euter.quotes(.x=X)",  # error on line 2
    ])
    report = check_source(source, catalog=catalog())
    rendered = report.render()
    assert rendered.index("IDL020") < rendered.index("IDL021")
    assert rendered.rstrip().endswith("1 error, 1 warning")


def test_clean_report_renders_ok():
    assert check_source("?.euter.r(.stkCode=S)").render() == "ok: no diagnostics"


# ---------------------------------------------------------------------------
# check_engine
# ---------------------------------------------------------------------------


def test_check_engine_uses_universe_as_catalog():
    engine = IdlEngine()
    engine.add_database("d", {"r": [{"x": 1}]})
    engine.define(".dbV.v(.a=X) <- .d.r(.x=X)")
    assert check_engine(engine).codes == []

    engine.define(".dbV.bad(.a=X) <- .d.missing(.x=X)")
    assert "IDL020" in check_engine(engine).codes


def test_check_engine_sees_update_clauses():
    engine = IdlEngine()
    engine.add_database("d", {"r": [{"x": 1}]})
    engine.define_update(".dbU.p(.x=X) -> .d.r-(.x=X)")
    engine.define_update(".dbU.q(.x=X) -> .d.gone-(.x=X)")
    report = check_engine(engine)
    assert "IDL020" in report.codes


# ---------------------------------------------------------------------------
# Federation.install(validate=...)
# ---------------------------------------------------------------------------


def stock_federation(connectors=False):
    workload = StockWorkload(n_stocks=4, n_days=3, seed=1991)
    federation = Federation()
    for name in ("euter", "chwab", "ource"):
        relations = workload.relations_for(name)
        if connectors:
            federation.add_member(
                name, style=name, connector=InMemoryConnector(relations)
            )
        else:
            federation.add_member(name, relations=relations)
    federation.add_user_view("dbE", "euter")
    federation.add_user_view("dbC", "chwab")
    federation.add_user_view("dbO", "ource")
    return federation


def test_strict_install_accepts_healthy_federation():
    federation = stock_federation()
    assert federation.install(validate="strict") is federation
    assert federation.last_validation is not None
    assert len(federation.last_validation) == 0
    assert len(federation.unified_quotes()) == 12


def test_strict_install_rejects_before_attaching_members():
    federation = stock_federation(connectors=True)
    federation.engine.define(".dbV.bad(.x=X) <- .euter.quotes(.x=X)")
    with pytest.raises(ValidationError) as excinfo:
        federation.install(validate="strict")
    report = excinfo.value.report
    assert "IDL020" in report.codes
    diagnostic = report.by_code("IDL020")[0]
    assert ".euter.quotes" in diagnostic.message
    assert diagnostic.loc is not None
    assert ".dbV.bad" in diagnostic.context
    # Nothing was attached or installed.
    assert federation._attached == set()
    assert not federation._installed


def test_warn_install_returns_report_but_installs():
    federation = stock_federation(connectors=True)
    federation.engine.define(".dbV.bad(.x=X) <- .euter.quotes(.x=X)")
    report = federation.install(validate="warn")
    assert report.has_errors
    assert federation._installed
    assert len(federation.unified_quotes()) == 12


def test_default_install_skips_validation():
    federation = stock_federation()
    assert federation.install() is federation
    assert federation.last_validation is None


def test_install_rejects_unknown_validate_mode():
    from repro.errors import FederationError

    with pytest.raises(FederationError):
        stock_federation().install(validate="maybe")


def test_validation_scans_each_connector_once():
    workload = StockWorkload(n_stocks=4, n_days=3, seed=1991)
    federation = Federation()
    faulty = FaultyConnector(InMemoryConnector(workload.euter_relations()))
    federation.add_member("euter", style="euter", connector=faulty)
    federation.install(validate="strict")
    assert faulty.calls == 1  # validation's snapshot is reused by attach


def test_validation_marks_unreachable_members_opaque():
    workload = StockWorkload(n_stocks=4, n_days=3, seed=1991)
    federation = Federation()
    federation.add_member(
        "euter", style="euter",
        connector=InMemoryConnector(workload.euter_relations()),
    )
    down = FaultyConnector(
        InMemoryConnector(workload.chwab_relations()), outage=True
    )
    federation.add_member("chwab", style="chwab", connector=down)
    # A rule into the unreachable member must not be called unknown.
    federation.engine.define(".dbV.v(.p=P) <- .chwab.r(.date=P)")
    report = federation.validation_report()
    assert "IDL020" not in report.codes


def test_post_install_validation_report_is_clean():
    federation = stock_federation()
    federation.install()
    assert federation.validation_report().codes == []


# ---------------------------------------------------------------------------
# REPL :check
# ---------------------------------------------------------------------------


def test_repl_check_command():
    out = io.StringIO()
    repl = IdlRepl(out=out)
    repl.engine.add_database("d", {"r": [{"x": 1}]})
    repl.run([
        ".dbV.v(.a=X) <- .d.r(.x=X)",
        ":check",
        ".dbV.bad(.a=X) <- .d.missing(.x=X)",
        ":check",
    ])
    text = out.getvalue()
    assert "ok: no diagnostics" in text
    assert "IDL020" in text


def test_repl_check_file(tmp_path):
    path = tmp_path / "program.idl"
    path.write_text(".dbV.v(.a=X) <- .d.missing(.x=X)\n")
    out = io.StringIO()
    repl = IdlRepl(out=out)
    repl.engine.add_database("d", {"r": [{"x": 1}]})
    repl.run([f":check {path}"])
    assert "IDL020" in out.getvalue()


# ---------------------------------------------------------------------------
# Lint CLI
# ---------------------------------------------------------------------------


def test_lint_cli_clean_and_failing_files(tmp_path, capsys):
    good = tmp_path / "good.idl"
    good.write_text("?.d.r(.x=X)\n")
    bad = tmp_path / "bad.idl"
    bad.write_text("? X > 3\n")

    assert lint.main([str(good)]) == 0
    assert lint.main([str(bad)]) == 1
    output = capsys.readouterr().out
    assert "ok" in output and "IDL001" in output


def test_lint_cli_strict_fails_on_warnings(tmp_path):
    source = "\n".join([
        ".dbV.v(.s=S) <- .d.r(.x=S)",
        ".dbV.v(.s=S) <- .d.r(.x=S)",  # IDL041, a warning
    ])
    path = tmp_path / "dup.idl"
    path.write_text(source + "\n")
    assert lint.main([str(path)]) == 0
    assert lint.main(["--strict", str(path)]) == 1


def test_lint_cli_missing_file():
    assert lint.main(["/no/such/file.idl"]) == 2


def test_lint_cli_json_format(tmp_path, capsys):
    import json

    path = tmp_path / "bad.idl"
    path.write_text("? X > 3\n?.d.r(.x=X, .x=1, .x=2)\n")
    assert lint.main(["--format=json", str(path)]) == 1
    lines = [line for line in capsys.readouterr().out.splitlines() if line]
    records = [json.loads(line) for line in lines]
    assert len(records) == 2
    # Errors sort first, then source order; every record is flat.
    first, second = records
    assert first["code"] == "IDL001" and first["severity"] == "error"
    assert second["code"] == "IDL051" and second["severity"] == "warning"
    for record in records:
        assert sorted(record) == [
            "code", "col", "line", "message", "path", "severity",
        ]
        assert record["path"] == str(path)
        assert isinstance(record["line"], int)
        assert isinstance(record["col"], int)


def test_lint_cli_json_clean_file_emits_nothing(tmp_path, capsys):
    path = tmp_path / "good.idl"
    path.write_text("?.d.r(.x=X)\n")
    assert lint.main(["--format=json", str(path)]) == 0
    assert capsys.readouterr().out.strip() == ""


def test_lint_cli_human_format_is_the_default(tmp_path, capsys):
    path = tmp_path / "bad.idl"
    path.write_text("? X > 3\n")
    lint.main([str(path)])
    output = capsys.readouterr().out
    assert f"== {path} ==" in output  # grouped report, not JSON lines
    assert "{" not in output


def test_lint_python_extracts_idl_literals(tmp_path):
    script = tmp_path / "script.py"
    script.write_text(
        'QUERY = "? X > 3"\n'
        'PROSE = "not idl at all"\n'
        'FRAGMENT = ".date"\n'
    )
    report = lint.lint_path(str(script))
    assert report.codes == ["IDL001"]
    # The diagnostic points at the embedding line in the Python file.
    assert report.by_code("IDL001")[0].loc == (1, 1)


def test_looks_like_idl_gate():
    assert lint.looks_like_idl("?.d.r(.x=X)")
    assert lint.looks_like_idl(".a.b(.x=X) <- .c.d(.x=X)\n% comment")
    assert not lint.looks_like_idl("hello world")
    assert not lint.looks_like_idl(":check")
    assert not lint.looks_like_idl("")


def test_repl_footprint_command():
    out = io.StringIO()
    repl = IdlRepl(out=out)
    repl.engine.add_database("d", {"r": [{"x": 1}]})
    repl.run([
        ":footprint",
        ":footprint ?.d.r+(.x=5)",
    ])
    text = out.getvalue()
    assert "usage: :footprint" in text
    assert "reads:  .d.r" in text
    assert "writes: .d.r" in text


def test_repl_footprint_on_a_federation():
    workload = StockWorkload(n_stocks=2, n_days=2, seed=3)
    federation = Federation()
    federation.add_member("euter", "euter", workload.euter_relations())
    federation.add_member("chwab", "chwab", workload.chwab_relations())
    federation.add_member("ource", "ource", workload.ource_relations())
    federation.install()
    out = io.StringIO()
    repl = IdlRepl(out=out, federation=federation)
    repl.run([":footprint ?.dbU.insStk(.stk=zzz)"])
    text = out.getvalue()
    # The control program fans out to every member style.
    for member in ("euter", "chwab", "ource"):
        assert member in text


def test_repl_check_uses_the_federation_validation_report():
    workload = StockWorkload(n_stocks=2, n_days=2, seed=3)
    federation = Federation()
    federation.add_member("euter", "euter", workload.euter_relations())
    federation.add_member("chwab", "chwab", workload.chwab_relations())
    federation.add_member("ource", "ource", workload.ource_relations())
    federation.install()
    out = io.StringIO()
    repl = IdlRepl(out=out, federation=federation)
    repl.run([":check"])
    assert "ok: no diagnostics" in out.getvalue()


@pytest.mark.lint
@pytest.mark.parametrize(
    "path",
    sorted(glob.glob(os.path.join(EXAMPLES_DIR, "*.py"))),
    ids=os.path.basename,
)
def test_examples_are_lint_clean(path):
    """Every IDL program embedded in examples/ passes idlcheck."""
    report = lint.lint_path(path)
    assert not report.has_errors, report.render()


# Test files legitimately embed *failing* IDL — they are the fixtures
# the analyzer's golden tests check against. The baseline names the
# error codes each file is allowed to embed; any new error code in a
# tests/ IDL literal fails the gate, same as examples/ (warnings do
# not gate, matching the non-strict CLI).
TESTS_LINT_BASELINE = {
    "test_analysis.py": {"IDL001", "IDL003", "IDL050"},
    "test_explain_repl.py": {"IDL001"},
    "test_failure_injection.py": {"IDL001"},
    "test_paper_section5.py": {"IDL001"},
    "test_paper_section6.py": {"IDL003"},
    "test_paper_section7.py": {"IDL011"},
    "test_parser.py": {"IDL001"},
    "test_program_binding.py": {"IDL003", "IDL011"},
    "test_rules_stratify.py": {"IDL001", "IDL010"},
    "test_safety.py": {"IDL001"},
    "test_update_programs_executor.py": {"IDL001", "IDL011"},
    "test_updates_internals.py": {"IDL001"},
}

TESTS_DIR = os.path.dirname(__file__)


@pytest.mark.lint
@pytest.mark.parametrize(
    "path",
    sorted(glob.glob(os.path.join(TESTS_DIR, "test_*.py"))),
    ids=os.path.basename,
)
def test_tests_embedded_idl_matches_lint_baseline(path):
    """IDL literals embedded in tests/ stay within the error baseline."""
    report = lint.lint_path(path)
    allowed = TESTS_LINT_BASELINE.get(os.path.basename(path), set())
    unexpected = [
        diagnostic for diagnostic in report
        if diagnostic.is_error and diagnostic.code not in allowed
    ]
    assert not unexpected, "\n".join(
        diagnostic.render() for diagnostic in unexpected
    )
