"""Unit tests for the IdlEngine facade."""

from __future__ import annotations

import pytest

from repro import IdlEngine
from repro.errors import (
    SemanticError,
    UnknownNameError,
    UpdateError,
)
from repro.objects import to_python
from tests.conftest import answers_set


@pytest.fixture
def engine():
    built = IdlEngine()
    built.add_database(
        "euter",
        {"r": [
            {"date": "d1", "stkCode": "hp", "clsPrice": 50},
            {"date": "d2", "stkCode": "hp", "clsPrice": 65},
        ]},
    )
    return built


class TestQueries:
    def test_query_returns_python_values(self, engine):
        [answer] = engine.query("?.euter.r(.date=d1, .stkCode=S, .clsPrice=P)")
        assert answer["S"] == "hp" and answer["P"] == 50
        assert answer.get("missing") is None
        assert set(answer.keys()) == {"S", "P"}

    def test_query_with_parameters(self, engine):
        results = engine.query("?.euter.r(.date=D, .clsPrice=P)", D="d2")
        assert answers_set(results, "P") == {65}

    def test_ask(self, engine):
        assert engine.ask("?.euter.r(.clsPrice>60)")
        assert not engine.ask("?.euter.r(.clsPrice>600)")

    def test_query_rejects_update_requests(self, engine):
        with pytest.raises(SemanticError):
            engine.query("?.euter.r+(.date=d3)")
        with pytest.raises(SemanticError):
            engine.ask("?.euter.r-(.date=d1)")

    def test_query_rejects_multiple_statements(self, engine):
        with pytest.raises(SemanticError):
            engine.query("?.euter.r\n?.euter.r")

    def test_aggregate_variable_binding(self, engine):
        [answer] = engine.query("?.euter.r=R")
        assert isinstance(answer["R"], list) and len(answer["R"]) == 2


class TestUpdatesAndTransactions:
    def test_update_applies_and_invalidates(self, engine):
        engine.define(".v.prices(.p=P) <- .euter.r(.clsPrice=P)")
        assert answers_set(engine.query("?.v.prices(.p=P)"), "P") == {50, 65}
        engine.update("?.euter.r+(.date=d3, .stkCode=hp, .clsPrice=70)")
        assert answers_set(engine.query("?.v.prices(.p=P)"), "P") == {50, 65, 70}

    def test_atomic_update_rolls_back_on_error(self, engine):
        before = to_python(engine.universe)
        # Second conjunct errors (atomic plus on a set); first applied.
        with pytest.raises(UpdateError):
            engine.update(
                "?.euter.r+(.date=d9, .stkCode=x, .clsPrice=1), .euter.r+=5"
            )
        assert to_python(engine.universe) == before

    def test_non_atomic_update_keeps_partial_work(self, engine):
        with pytest.raises(UpdateError):
            engine.update(
                "?.euter.r+(.date=d9, .stkCode=x, .clsPrice=1), .euter.r+=5",
                atomic=False,
            )
        assert engine.ask("?.euter.r(.date=d9)")

    def test_failed_request_is_not_an_error(self, engine):
        # A request that matches nothing simply does not succeed.
        result = engine.update("?.euter.r(.date=zzz, .clsPrice=C), .euter.r-(.clsPrice=C)")
        assert not result.succeeded

    def test_call_quotes_string_arguments(self, engine):
        engine.universe.add_database("ctl")
        engine.invalidate()
        engine.define_update(".ctl.del(.d=D) -> .euter.r-(.date=D)")
        result = engine.call("ctl", "del", d="d1")
        assert result.deleted == 1

    def test_call_rejects_unrepresentable_arguments(self, engine):
        engine.universe.add_database("ctl")
        engine.define_update(".ctl.del(.d=D) -> .euter.r-(.date=D)")
        with pytest.raises(SemanticError):
            engine.call("ctl", "del", d=True)

    def test_update_reindexes_mutated_sets(self, engine):
        # Atomic update mutates a tuple in place inside the set; the
        # set's value index must be rebuilt so value lookups stay sound.
        engine.update("?.euter.r(.date=d1, .clsPrice+=51)")
        relation = engine.universe.relation("euter", "r")
        from repro.objects import from_python

        assert relation.contains_value(
            from_python({"date": "d1", "stkCode": "hp", "clsPrice": 51})
        )


class TestMaterializationCache:
    def test_overlay_is_cached_until_invalidated(self, engine):
        engine.define(".v.all(.p=P) <- .euter.r(.clsPrice=P)")
        first = engine.overlay
        assert engine.overlay is first
        engine.invalidate()
        assert engine.overlay is not first

    def test_no_rules_means_no_overlay_cost(self, engine):
        assert engine.materialized_view() is engine.universe

    def test_fixpoint_stats_exposed(self, engine):
        engine.define(".v.all(.p=P) <- .euter.r(.clsPrice=P)")
        stats = engine.fixpoint_stats
        assert stats.rounds >= 1 and stats.derivations == 2

    def test_define_invalidates(self, engine):
        engine.define(".v.a(.p=P) <- .euter.r(.clsPrice=P)")
        engine.overlay
        engine.define(".v.b(.p=P) <- .euter.r(.clsPrice=P)")
        assert engine.overlay.get("v").has("b")


class TestDatabaseManagement:
    def test_add_and_drop(self, engine):
        engine.add_database("tmp", {"t": [{"a": 1}]})
        assert engine.ask("?.tmp.t(.a=1)")
        engine.drop_database("tmp")
        with pytest.raises(UnknownNameError):
            engine.universe.database("tmp")

    def test_repr(self, engine):
        assert "euter" in repr(engine)
