"""Property-based tests: pretty-printer/parser round trip.

For every generated expression ``e``: ``parse(to_source(e)) == e``. The
generators produce exactly the normal forms the parser itself emits
(e.g. conjunctions only as the inner part of set expressions or at the
top level), so structural equality is the right check.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ast
from repro.core.parser import parse_expression, parse_program
from repro.core.pretty import to_source
from repro.core.terms import Arith, Const, Var

names = st.sampled_from(["a", "bb", "price", "stk_code", "r2", "weird name", "x-y"])
var_names = st.sampled_from(["X", "Y", "Z", "Price", "S"])
ops = st.sampled_from(["<", "<=", "=", "!=", ">", ">="])

scalar_consts = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.integers(min_value=-10000, max_value=10000).map(lambda n: n / 100.0),
    names,
    st.sampled_from(["3/3/85", "12/31/99", "it's", 'say "hi"']),
)


def const_terms():
    return scalar_consts.map(Const)


def var_terms():
    return var_names.map(Var)


def arith_terms():
    # Left-nested only: the term grammar is parenthesis-free.
    operand = st.one_of(
        st.integers(min_value=0, max_value=99).map(Const), var_terms()
    )
    op = st.sampled_from(["+", "-", "*", "/"])
    return st.builds(Arith, op, operand, operand)


terms = st.one_of(const_terms(), var_terms())
value_terms = st.one_of(const_terms(), var_terms(), arith_terms())

attr_terms = st.one_of(names.map(Const), var_terms())


def atomic_exprs():
    # Plain (unsigned) atomic query expressions.
    return st.builds(lambda op, t: ast.AtomicExpr(op, t), ops, value_terms)


def expressions(max_depth=3):
    def extend(children):
        set_exprs = st.builds(
            lambda inner: ast.SetExpr(inner), conjunctions(children)
        )
        attr_steps = st.builds(
            lambda attr, expr: ast.AttrStep(attr, expr),
            attr_terms,
            st.one_of(children, st.just(ast.Epsilon())),
        )
        negations = st.builds(ast.NegExpr, st.one_of(attr_steps, set_exprs))
        return st.one_of(attr_steps, set_exprs, negations)

    return st.recursive(atomic_exprs(), extend, max_leaves=8)


def conjunctions(children):
    conjunct = st.one_of(
        st.builds(
            lambda attr, expr: ast.AttrStep(attr, expr),
            attr_terms,
            st.one_of(children, st.just(ast.Epsilon())),
        ),
        st.builds(ast.Constraint, terms, ops, value_terms),
    )
    return st.lists(conjunct, min_size=1, max_size=3).map(ast.TupleExpr)


top_level = conjunctions(expressions())


@given(top_level)
@settings(max_examples=300, deadline=None)
def test_expression_round_trip(expr):
    source = "?" + to_source(expr)
    parsed = parse_expression(source)
    assert parsed == expr


@given(top_level, top_level)
@settings(max_examples=150, deadline=None)
def test_rule_round_trip(head, body):
    source = f"{to_source(head)} <- {to_source(body)}"
    [statement] = parse_program(source)
    assert isinstance(statement, ast.Rule)
    assert statement.head == head and statement.body == body


@given(top_level, top_level)
@settings(max_examples=150, deadline=None)
def test_update_clause_round_trip(head, body):
    source = f"{to_source(head)} -> {to_source(body)}"
    [statement] = parse_program(source)
    assert isinstance(statement, ast.UpdateClause)
    assert statement.head == head and statement.body == body


signed_set = st.builds(
    lambda inner, sign: ast.SetExpr(inner, sign=sign),
    conjunctions(expressions(2)),
    st.sampled_from(["+", "-"]),
)


@given(names, names, signed_set)
@settings(max_examples=150, deadline=None)
def test_signed_expression_round_trip(db, rel, update):
    expr = ast.TupleExpr(
        [ast.AttrStep(Const(db), ast.AttrStep(Const(rel), update))]
    )
    parsed = parse_expression("?" + to_source(expr))
    assert parsed == expr


@given(st.lists(top_level, min_size=1, max_size=4))
@settings(max_examples=100, deadline=None)
def test_program_round_trip(bodies):
    statements = [ast.Query(body) for body in bodies]
    from repro.core.pretty import program_to_source

    parsed = parse_program(program_to_source(statements))
    assert parsed == statements
