"""Tests for persistence (save/load of universes and engines)."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import IdlEngine
from repro.io import (
    PersistenceError,
    decode_object,
    encode_object,
    engine_from_dict,
    engine_to_dict,
    load_engine,
    load_universe,
    save_engine,
    save_universe,
)
from repro.objects import from_python, to_python
from repro.workloads.stocks import paper_universe
from tests.conftest import (
    UNIFIED_VIEW_RULES,
    UPDATE_PROGRAMS,
    answers_set,
)


class TestObjectCodec:
    def test_round_trip_nested(self):
        obj = from_python({"db": {"r": [{"a": 1, "b": None}, {"a": "x"}]}})
        assert decode_object(encode_object(obj)) == obj

    def test_heterogeneous_set(self):
        obj = from_python([1, "two", {"three": 3}, [4]])
        assert decode_object(encode_object(obj)) == obj

    def test_null_atoms_survive(self):
        obj = from_python({"a": None})
        again = decode_object(encode_object(obj))
        assert again.get("a").is_null

    def test_json_safe(self):
        obj = from_python({"db": {"r": [{"a": 1.5}]}})
        json.dumps(encode_object(obj))  # must not raise

    def test_malformed_payloads_rejected(self):
        with pytest.raises(PersistenceError):
            decode_object({"bad": 1})
        with pytest.raises(PersistenceError):
            decode_object([1, 2])

    @given(
        st.recursive(
            st.one_of(st.integers(), st.text(max_size=8), st.none()),
            lambda children: st.one_of(
                st.dictionaries(st.text(min_size=1, max_size=5), children,
                                max_size=3),
                st.lists(children, max_size=3),
            ),
            max_leaves=12,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_property_round_trip(self, value):
        obj = from_python(value)
        assert decode_object(encode_object(obj)) == obj


class TestUniverseFiles:
    def test_save_load(self, tmp_path):
        universe = paper_universe()
        path = tmp_path / "u.json"
        save_universe(universe, path)
        again = load_universe(path)
        assert to_python(again) == to_python(universe)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"format": "other"}')
        with pytest.raises(PersistenceError):
            load_universe(path)


class TestEngineFiles:
    def build(self):
        engine = IdlEngine(universe=paper_universe())
        engine.universe.add_database("dbU")
        engine.define(UNIFIED_VIEW_RULES)
        engine.define(
            ".dbC.r(.date=D, .S=P) <- .dbI.p(.date=D, .stk=S, .price=P)",
            merge_on=("date",),
        )
        engine.define_update(UPDATE_PROGRAMS)
        return engine

    def test_round_trip_preserves_answers(self, tmp_path):
        engine = self.build()
        path = tmp_path / "engine.json"
        save_engine(engine, path)
        loaded = load_engine(path)
        for source in (
            "?.dbI.p(.date=3/3/85, .stk=S, .price=P)",
            "?.dbC.r(.date=3/3/85, .hp=P)",
        ):
            assert answers_set(engine.query(source), "P") == answers_set(
                loaded.query(source), "P"
            )

    def test_round_trip_preserves_programs(self, tmp_path):
        engine = self.build()
        path = tmp_path / "engine.json"
        save_engine(engine, path)
        loaded = load_engine(path)
        result = loaded.call("dbU", "delStk", stk="hp", date="3/3/85")
        assert result.succeeded
        assert not loaded.ask("?.euter.r(.stkCode=hp, .date=3/3/85)")

    def test_merge_on_travels(self, tmp_path):
        engine = self.build()
        loaded = engine_from_dict(engine_to_dict(engine))
        merge_rules = [r for r in loaded.program.rules if r.merge_on]
        assert merge_rules and merge_rules[0].merge_on == ("date",)

    def test_double_round_trip_is_stable(self):
        engine = self.build()
        once = engine_to_dict(engine)
        twice = engine_to_dict(engine_from_dict(once))
        assert once == twice

    def test_wildcard_program_round_trip(self, tmp_path):
        """Higher-order (wildcard) view-update programs survive
        persistence — their heads are reconstructed from analysis."""
        from tests.conftest import (
            CUSTOMIZED_VIEW_RULES,
            UNIFIED_VIEW_RULES,
            UPDATE_PROGRAMS,
            VIEW_UPDATE_PROGRAMS,
        )

        engine = IdlEngine(universe=paper_universe())
        engine.universe.add_database("dbU")
        engine.define(UNIFIED_VIEW_RULES)
        engine.define(CUSTOMIZED_VIEW_RULES)
        engine.define_update(UPDATE_PROGRAMS)
        engine.define_update(VIEW_UPDATE_PROGRAMS)
        loaded = engine_from_dict(engine_to_dict(engine))
        assert ("dbO", None, "+") in loaded.program.clauses
        result = loaded.update("?.dbO.hp+(.date=9/9/99, .clsPrice=5)")
        assert result.succeeded
        assert loaded.ask("?.euter.r(.date=9/9/99, .stkCode=hp)")

    def test_constraints_round_trip(self):
        engine = IdlEngine(universe=paper_universe())
        engine.declare_key("euter", "r", ("date", "stkCode"))
        engine.declare_type("euter", "r", "clsPrice", "num", nullable=False)
        loaded = engine_from_dict(engine_to_dict(engine))
        assert len(loaded.constraints) == 2
        from repro.errors import IntegrityError

        with pytest.raises(IntegrityError):
            loaded.update(
                "?.euter.r+(.date=3/3/85, .stkCode=hp, .clsPrice=999)"
            )

    def test_version_check(self):
        engine = self.build()
        data = engine_to_dict(engine)
        data["version"] = 99
        with pytest.raises(PersistenceError):
            engine_from_dict(data)
