"""Indexed set access: pushdown applicability, invalidation, caches.

The selection-pushdown machinery (``SetObject.index_on`` +
``EvalContext.use_indexes``) must be invisible semantically: every test
here checks either that a probe was (or was not) used via the
``index.*`` counters, or that answers after an update path match a
freshly scanned evaluation.
"""

from __future__ import annotations

import io

import pytest

from repro import IdlEngine
from repro.core import evaluator
from repro.core.evaluator import EvalContext, answers, holds
from repro.core.parser import parse_query
from repro.objects import Universe, from_python
from repro.objects.atom import Atom
from repro.objects.set import SetObject
from repro.objects.tuple import TupleObject

ROWS = [
    {"date": "3/3/85", "stkCode": "hp", "clsPrice": 50},
    {"date": "3/4/85", "stkCode": "hp", "clsPrice": 65},
    {"date": "3/3/85", "stkCode": "ibm", "clsPrice": 160},
    {"date": "3/4/85", "stkCode": "ibm", "clsPrice": 155},
]


def small_universe():
    return Universe.from_python({"euter": {"r": list(ROWS)}})


def profiled(query, universe, use_indexes=True):
    context = EvalContext(profile=True, use_indexes=use_indexes)
    results = answers(parse_query(query), universe, None, context)
    return results, context.counters


def signatures(results):
    """Order-free comparison key for evaluator or engine answers."""
    rendered = set()
    for answer in results:
        if hasattr(answer, "signature"):  # Substitution
            rendered.add(answer.signature())
        else:  # QueryAnswer: plain-Python bindings
            rendered.add(frozenset(answer.bindings.items()))
    return rendered


# -- the index itself ---------------------------------------------------------


class TestSetIndex:
    def test_buckets_by_value_key(self):
        relation = from_python(
            [
                {"k": 1, "id": "a"},
                {"k": 1.0, "id": "b"},
                {"k": True, "id": "c"},
                {"k": "x", "id": "d"},
            ]
        )
        index = relation.index_on("k")
        # 1 and 1.0 share a value key; True does not (bool is tagged).
        assert len(index.candidates(Atom(1).value_key())) == 2
        assert len(index.candidates(Atom(True).value_key())) == 1
        assert len(index.candidates(Atom("x").value_key())) == 1

    def test_residual_holds_unclassifiable_elements(self):
        relation = from_python(
            [{"k": 1}, {"j": 2}, "atom", [1, 2], {"k": [3]}]
        )
        index = relation.index_on("k")
        # Elements without an atomic .k can never satisfy `.k = atom`
        # themselves, but they are returned with every probe so the
        # caller's evaluation stays complete for other plan shapes.
        assert len(index.residual) == 4
        assert len(index.candidates(Atom(1).value_key())) == 5
        assert len(index.candidates(Atom(99).value_key())) == 4

    def test_index_reused_until_mutation(self):
        relation = from_python([{"k": 1}])
        first = relation.index_on("k")
        assert relation.index_on("k") is first
        assert relation.peek_index("k") is first
        relation.add(from_python({"k": 2}))
        assert relation.peek_index("k") is None
        assert relation.index_on("k") is not first

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda s: s.add(from_python({"k": 9})),
            lambda s: s.discard_value(from_python({"k": 1})),
            lambda s: s.remove_where(lambda o: True),
            lambda s: s.clear(),
        ],
    )
    def test_every_mutator_bumps_version(self, mutate):
        relation = from_python([{"k": 1}, {"k": 2}])
        before = relation.version
        mutate(relation)
        assert relation.version > before

    def test_noop_mutations_keep_version(self):
        relation = from_python([{"k": 1}])
        before = relation.version
        relation.add(from_python({"k": 1}))  # already present
        relation.discard_value(from_python({"k": 7}))  # absent
        relation.remove_where(lambda o: False)
        assert relation.version == before

    def test_reindex_detects_in_place_mutation(self):
        relation = from_python([{"k": 1, "v": "a"}, {"k": 2, "v": "b"}])
        relation.index_on("v")
        element = next(iter(relation))
        element.set("v", Atom("changed"))
        before = relation.version
        relation.reindex()
        assert relation.version > before
        assert relation.peek_index("v") is None

    def test_reindex_detects_value_swap(self):
        # Two elements exchange values: the key *set* is unchanged, but
        # every bucket now points at the wrong object — reindex must
        # still invalidate (it compares per-key object identity).
        first = TupleObject([("k", Atom(1))])
        second = TupleObject([("k", Atom(2))])
        relation = SetObject([first, second])
        relation.index_on("k")
        before = relation.version
        first.set("k", Atom(2))
        second.set("k", Atom(1))
        relation.reindex()
        assert relation.version > before

    def test_elements_returns_snapshot_iter_is_live(self):
        relation = from_python([{"k": 1}, {"k": 2}])
        snapshot = relation.elements()
        relation.add(from_python({"k": 3}))
        assert len(snapshot) == 2
        assert len(list(iter(relation))) == 3


# -- when pushdown applies ----------------------------------------------------


class TestPushdownApplies:
    def test_constant_selection_probes(self):
        results, counters = profiled(
            "?.euter.r(.date=3/3/85, .stkCode=S, .clsPrice=P)",
            small_universe(),
        )
        assert len(results) == 2
        assert counters.get("index.builds") == 1
        assert not counters.get("index.fallbacks")

    def test_second_probe_hits_cached_index(self):
        universe = small_universe()
        query = parse_query("?.euter.r(.date=3/3/85, .stkCode=hp, .clsPrice=P)")
        context = EvalContext(profile=True)
        answers(query, universe, None, context)
        answers(query, universe, None, context)
        assert context.counters.get("index.builds") == 1
        assert context.counters.get("index.hits") == 1

    def test_bound_variable_selection_probes(self):
        # S is bound by the first conjunct; the second probes with it.
        results, counters = profiled(
            "?.euter.r(.date=3/3/85, .stkCode=S, .clsPrice=P),"
            " .euter.r(.date=3/4/85, .stkCode=S, .clsPrice=Q)",
            small_universe(),
        )
        assert len(results) == 2
        assert counters.get("index.builds", 0) >= 1
        assert not counters.get("index.fallbacks")

    def test_bound_higher_order_attribute_probes(self):
        # A ranges over attribute names in the first conjunct; by the
        # time the second conjunct's set is probed, .A is a known name.
        universe = Universe.from_python(
            {
                "d": {
                    "names": [{"attr": "k"}],
                    "data": [{"k": 1}, {"k": 2}, {"j": 1}],
                }
            }
        )
        results, counters = profiled(
            "?.d.names(.attr=A), .d.data(.A=1)", universe
        )
        assert len(results) == 1
        assert counters.get("index.builds") == 1

    def test_probe_and_scan_agree(self):
        universe = small_universe()
        query = "?.euter.r(.date=3/3/85, .stkCode=S, .clsPrice=P)"
        on, _ = profiled(query, universe, use_indexes=True)
        off, counters = profiled(query, universe, use_indexes=False)
        assert signatures(on) == signatures(off)
        # With use_indexes off, no index counter moves at all.
        assert not any(k.startswith("index.") for k in counters)


# -- when pushdown must fall back ---------------------------------------------


class TestPushdownFallsBack:
    @pytest.mark.parametrize(
        "query",
        [
            "?.euter.r(.date=D, .stkCode=S, .clsPrice=P)",  # all unbound
            "?.euter.r(.clsPrice>100, .stkCode=S)",  # no = conjunct first...
            "?.euter.r~(.date=3/3/85)",  # negated set expression
            "?.euter.r(.date~=3/9/99, .stkCode=S)",  # negated comparison
        ],
    )
    def test_unusable_selections_scan(self, query):
        on, counters = profiled(query, small_universe(), use_indexes=True)
        off, _ = profiled(query, small_universe(), use_indexes=False)
        assert signatures(on) == signatures(off)

    def test_all_unbound_counts_fallback(self):
        _, counters = profiled(
            "?.euter.r(.date=D, .stkCode=S, .clsPrice=P)", small_universe()
        )
        assert counters.get("index.fallbacks") == 1
        assert not counters.get("index.builds")

    def test_unbound_higher_order_attribute_falls_back(self):
        universe = Universe.from_python(
            {"chwab": {"r": [{"date": "3/3/85", "hp": 50, "ibm": 160}]}}
        )
        results, counters = profiled("?.chwab.r(.date=D, .S=P)", universe)
        assert counters.get("index.fallbacks") == 1
        assert len(results) == 3  # S also ranges over "date"

    def test_non_atomic_comparison_falls_back(self):
        # .k(...) descends into a nested set — no atomic = selection.
        universe = Universe.from_python(
            {"d": {"r": [{"k": [{"a": 1}]}, {"k": [{"a": 2}]}]}}
        )
        results, counters = profiled("?.d.r(.k(.a=1))", universe)
        assert len(results) == 1
        # The outer relation probe has no plan; the nested descent may
        # itself count, so only the outer fallback is asserted.
        assert counters.get("index.fallbacks", 0) >= 1

    def test_merged_set_falls_back(self):
        # A base relation shadowed by a view rule of the same name
        # evaluates through a MergedSet overlay — not a SetObject, so
        # the probe declines and the scan answers.
        engine = IdlEngine(universe=small_universe())
        engine.define(
            ".euter.r(.date=D, .stkCode=S, .clsPrice=P) <-"
            " .euter.r(.date=D, .stkCode=S, .clsPrice=P)"
        )
        results = engine.query("?.euter.r(.date=3/3/85, .stkCode=hp, .clsPrice=P)")
        assert len(results) == 1


# -- no stale answers across update paths -------------------------------------


class TestInvalidation:
    QUERY = "?.euter.r(.date=3/3/85, .stkCode=S, .clsPrice=P)"

    def check_fresh(self, engine):
        indexed = engine.query(self.QUERY)
        scan = IdlEngine(universe=engine.universe, use_indexes=False)
        assert signatures(indexed) == signatures(scan.query(self.QUERY))
        return indexed

    def test_insert_after_probe(self):
        engine = IdlEngine(universe=small_universe())
        assert len(self.check_fresh(engine)) == 2
        engine.update("?.euter.r+(.date=3/3/85, .stkCode=sun, .clsPrice=30)")
        assert len(self.check_fresh(engine)) == 3

    def test_delete_after_probe(self):
        engine = IdlEngine(universe=small_universe())
        self.check_fresh(engine)
        engine.update("?.euter.r-(.date=3/3/85, .stkCode=hp)")
        assert len(self.check_fresh(engine)) == 1

    def test_in_place_modify_after_probe(self):
        engine = IdlEngine(universe=small_universe())
        query = "?.euter.r(.clsPrice=50, .stkCode=S)"
        assert len(engine.query(query)) == 1  # builds the clsPrice index
        # .clsPrice-=C nulls the value *in place* (the element object is
        # mutated, not replaced); the engine's post-update reindex must
        # invalidate the clsPrice index built above.
        engine.update("?.euter.r(.stkCode=hp, .date=3/3/85, .clsPrice-=C)")
        assert engine.query(query) == []
        scan = IdlEngine(universe=engine.universe, use_indexes=False)
        assert scan.query(query) == []

    def test_no_op_update_leaves_consistent_state(self):
        engine = IdlEngine(universe=small_universe())
        self.check_fresh(engine)
        result = engine.update("?.euter.r-(.date=9/9/99, .stkCode=nope)")
        assert result.deleted == 0
        assert len(self.check_fresh(engine)) == 2

    def test_view_materialization_is_indexable(self):
        # Derived relations are plain SetObjects: probes apply to them.
        engine = IdlEngine(universe=small_universe(), obs=None)
        engine.define(
            ".dbI.p(.date=D, .stk=S, .price=P) <-"
            " .euter.r(.date=D, .stkCode=S, .clsPrice=P)"
        )
        context = EvalContext(profile=True)
        results = answers(
            parse_query("?.dbI.p(.date=3/3/85, .stk=S, .price=P)"),
            engine.materialized_view(),
            None,
            context,
        )
        assert len(results) == 2
        assert context.counters.get("index.builds", 0) >= 1

    def test_recursive_program_stays_correct(self):
        engine = IdlEngine()
        engine.add_database(
            "g", {"edge": [{"a": i, "b": i + 1} for i in range(6)]}
        )
        engine.define(".g.tc(.a=X, .b=Y) <- .g.edge(.a=X, .b=Y)")
        engine.define(
            ".g.tc(.a=X, .b=Y) <- .g.tc(.a=X, .b=Z), .g.edge(.a=Z, .b=Y)"
        )
        indexed = engine.query("?.g.tc(.a=0, .b=B)")
        scan = IdlEngine(universe=engine.universe, use_indexes=False)
        scan.define(".g.tc(.a=X, .b=Y) <- .g.edge(.a=X, .b=Y)")
        scan.define(
            ".g.tc(.a=X, .b=Y) <- .g.tc(.a=X, .b=Z), .g.edge(.a=Z, .b=Y)"
        )
        assert signatures(indexed) == signatures(scan.query("?.g.tc(.a=0, .b=B)"))
        assert len(indexed) == 6


# -- bounded caches -----------------------------------------------------------


class TestBoundedCaches:
    def test_order_cache_is_bounded(self, monkeypatch):
        monkeypatch.setattr(evaluator, "ORDER_CACHE_LIMIT", 4)
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        context = EvalContext(metrics=metrics)
        universe = small_universe()
        for day in range(20):
            query = parse_query(
                f"?.euter.r(.date=3/{day}/85, .stkCode=S), "
                f".euter.r(.stkCode=S, .clsPrice=P)"
            )
            answers(query, universe, None, context)
        assert len(context._order_cache) <= 4
        assert metrics.counter_value("evaluator.order_cache.evictions") > 0

    def test_probe_cache_is_bounded(self, monkeypatch):
        monkeypatch.setattr(evaluator, "PROBE_CACHE_LIMIT", 4)
        context = EvalContext()
        universe = small_universe()
        for day in range(20):
            query = parse_query(f"?.euter.r(.date=3/{day % 9 + 1}/85)")
            answers(query, universe, None, context)
        assert len(context._probe_cache) <= 4

    def test_lru_keeps_recent_entries(self, monkeypatch):
        monkeypatch.setattr(evaluator, "PROBE_CACHE_LIMIT", 2)
        context = EvalContext()
        universe = small_universe()
        hot = parse_query("?.euter.r(.date=3/3/85)")
        answers(hot, universe, None, context)
        for day in range(5):
            answers(hot, universe, None, context)  # refresh the hot entry
            cold = parse_query(f"?.euter.r(.date=4/{day + 1}/85)")
            answers(cold, universe, None, context)
        from repro.core import ast

        node = hot.expr
        while not isinstance(node, ast.SetExpr):  # descend to .euter.r(...)
            node = node.conjuncts[0] if isinstance(node, ast.TupleExpr) else node.expr
        assert any(
            entry[0] is node for entry in context._probe_cache.values()
        )


# -- observability ------------------------------------------------------------


class TestObservability:
    def test_metrics_counters_move(self):
        from repro.obs import Observability

        engine = IdlEngine(universe=small_universe(), obs=Observability())
        engine.query("?.euter.r(.date=3/3/85, .stkCode=S, .clsPrice=P)")
        engine.query("?.euter.r(.date=D, .stkCode=S, .clsPrice=P)")
        metrics = engine.obs.metrics
        assert metrics.counter_value("evaluator.index.builds") >= 1
        assert metrics.counter_value("evaluator.index.fallbacks") >= 1

    def test_profile_index_stats(self):
        from repro.obs import InMemoryCollector, Observability, QueryProfile

        obs = Observability()
        collector = InMemoryCollector()
        obs.add_exporter(collector)
        engine = IdlEngine(universe=small_universe(), obs=obs)
        engine.query("?.euter.r(.date=3/3/85, .stkCode=S, .clsPrice=P)")
        stats = QueryProfile(collector.last).index_stats
        assert stats["builds"] == 1
        assert stats["fallbacks"] == 0

    def test_repl_profile_shows_index_line(self):
        from repro.tools.repl import IdlRepl

        out = io.StringIO()
        repl = IdlRepl(out=out)
        repl.engine.add_database("euter", {"r": list(ROWS)})
        repl.handle(":profile ?.euter.r(.date=3/3/85, .stkCode=S, .clsPrice=P)")
        text = out.getvalue()
        assert "index: builds=1" in text

    def test_repl_metrics_shows_index_counters(self):
        from repro.tools.repl import IdlRepl

        out = io.StringIO()
        repl = IdlRepl(out=out)
        repl.engine.add_database("euter", {"r": list(ROWS)})
        repl.handle("?.euter.r(.date=3/3/85, .stkCode=S, .clsPrice=P)")
        repl.handle(":metrics")
        assert "evaluator.index." in out.getvalue()

    def test_engine_flag_disables_probing(self):
        from repro.obs import Observability

        engine = IdlEngine(
            universe=small_universe(), obs=Observability(), use_indexes=False
        )
        engine.query("?.euter.r(.date=3/3/85, .stkCode=S, .clsPrice=P)")
        metrics = engine.obs.metrics
        assert metrics.counter_value("evaluator.index.builds") == 0
        assert metrics.counter_value("evaluator.index.fallbacks") == 0
