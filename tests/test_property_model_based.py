"""Model-based property tests: random operation sequences against a
reference model.

* the storage substrate (insert/delete/update/abort) is mirrored by a
  plain dict-of-rows model; after every sequence the observable state
  must match, including across transaction aborts;
* IDL set updates (``+``/``-``) on a relation are mirrored by a Python
  set model.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parser import parse_query
from repro.core.updates import apply_request
from repro.objects import Universe, to_python
from repro.storage import StorageDatabase

# ---------------------------------------------------------------------------
# Storage vs model
# ---------------------------------------------------------------------------

keys = st.integers(min_value=0, max_value=9)
values = st.integers(min_value=-5, max_value=5)

storage_ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), keys, values),
        st.tuples(st.just("delete"), keys),
        st.tuples(st.just("update"), keys, values),
    ),
    max_size=30,
)


def run_storage(ops, transactional, abort):
    storage = StorageDatabase("m")
    storage.create_relation("r", [("k", "int", False), ("v", "int")], key=("k",))
    model = {}
    committed_model = {}

    transaction = storage.begin() if transactional else None
    for op in ops:
        if op[0] == "insert":
            _, key, value = op
            if key in model:
                continue  # the key index would reject it
            storage.insert("r", {"k": key, "v": value})
            model[key] = value
        elif op[0] == "delete":
            _, key = op
            storage.delete("r", k=key)
            model.pop(key, None)
        else:
            _, key, value = op
            storage.update("r", {"v": value}, k=key)
            if key in model:
                model[key] = value
    if transaction is not None:
        if abort:
            transaction.abort()
            model = committed_model
        else:
            transaction.commit()
    observed = {row["k"]: row["v"] for row in storage.scan("r")}
    return observed, model


@given(storage_ops)
@settings(max_examples=100, deadline=None)
def test_storage_matches_model(ops):
    observed, model = run_storage(ops, transactional=False, abort=False)
    assert observed == model


@given(storage_ops)
@settings(max_examples=100, deadline=None)
def test_storage_commit_matches_model(ops):
    observed, model = run_storage(ops, transactional=True, abort=False)
    assert observed == model


@given(storage_ops)
@settings(max_examples=100, deadline=None)
def test_storage_abort_restores_empty(ops):
    observed, model = run_storage(ops, transactional=True, abort=True)
    assert observed == {} and model == {}


@given(storage_ops, storage_ops)
@settings(max_examples=60, deadline=None)
def test_storage_abort_restores_prior_commit(first, second):
    storage = StorageDatabase("m")
    storage.create_relation("r", [("k", "int", False), ("v", "int")], key=("k",))
    model = {}
    for op in first:
        if op[0] == "insert":
            _, key, value = op
            if key in model:
                continue
            storage.insert("r", {"k": key, "v": value})
            model[key] = value
        elif op[0] == "delete":
            storage.delete("r", k=op[1])
            model.pop(op[1], None)
        else:
            _, key, value = op
            storage.update("r", {"v": value}, k=key)
            if key in model:
                model[key] = value
    snapshot = dict(model)
    transaction = storage.begin()
    for op in second:
        if op[0] == "insert":
            _, key, value = op
            current = {row["k"] for row in storage.scan("r")}
            if key in current:
                continue
            storage.insert("r", {"k": key, "v": value})
        elif op[0] == "delete":
            storage.delete("r", k=op[1])
        else:
            _, key, value = op
            storage.update("r", {"v": value}, k=key)
    transaction.abort()
    observed = {row["k"]: row["v"] for row in storage.scan("r")}
    assert observed == snapshot


# ---------------------------------------------------------------------------
# IDL set updates vs model
# ---------------------------------------------------------------------------

idl_ops = st.lists(
    st.one_of(
        st.tuples(st.just("+"), keys, values),
        st.tuples(st.just("-"), keys, values),
        st.tuples(st.just("-k"), keys),
    ),
    max_size=25,
)


@given(idl_ops)
@settings(max_examples=100, deadline=None)
def test_idl_set_updates_match_model(ops):
    universe = Universe.from_python({"d": {"r": []}})
    model = set()
    for op in ops:
        if op[0] == "+":
            _, key, value = op
            apply_request(
                parse_query(f"?.d.r+(.k={key}, .v={value})"), universe
            )
            model.add((key, value))
        elif op[0] == "-":
            _, key, value = op
            apply_request(
                parse_query(f"?.d.r-(.k={key}, .v={value})"), universe
            )
            model.discard((key, value))
        else:
            _, key = op
            apply_request(parse_query(f"?.d.r-(.k={key})"), universe)
            model = {(k, v) for k, v in model if k != key}
    observed = {
        (row["k"], row["v"]) for row in to_python(universe.relation("d", "r"))
    }
    assert observed == model


@given(idl_ops)
@settings(max_examples=60, deadline=None)
def test_idl_updates_preserve_other_relations(ops):
    universe = Universe.from_python(
        {"d": {"r": [], "s": [{"a": 1}]}, "e": {"t": [{"b": 2}]}}
    )
    for op in ops:
        if op[0] == "+":
            apply_request(
                parse_query(f"?.d.r+(.k={op[1]}, .v={op[2]})"), universe
            )
        elif op[0] == "-":
            apply_request(
                parse_query(f"?.d.r-(.k={op[1]}, .v={op[2]})"), universe
            )
        else:
            apply_request(parse_query(f"?.d.r-(.k={op[1]})"), universe)
    assert to_python(universe.relation("d", "s")) == [{"a": 1}]
    assert to_python(universe.relation("e", "t")) == [{"b": 2}]
