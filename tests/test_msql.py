"""Tests for the MSQL compatibility layer (IDL subsumes MSQL)."""

from __future__ import annotations

import pytest

from repro import IdlEngine
from repro.multidb.msql import MsqlError, MsqlSession, parse_msql
from repro.workloads.stocks import StockWorkload, paper_universe


@pytest.fixture
def session():
    return MsqlSession(IdlEngine(universe=paper_universe()))


class TestParsing:
    def test_use(self):
        statement = parse_msql("USE euter chwab")
        assert statement.databases == ("euter", "chwab")

    def test_select_shapes(self):
        statement = parse_msql(
            "SELECT e.date AS d, e.clsPrice FROM euter.r e, ource.hp h"
            " WHERE e.date = h.date AND e.clsPrice > 100"
        )
        assert len(statement.refs) == 2
        assert statement.refs[0] == ("euter", "r", "e")
        assert len(statement.conditions) == 2

    @pytest.mark.parametrize(
        "bad",
        [
            "USE",
            "DROP TABLE r",
            "SELECT FROM r",
            "SELECT a FROM r x, s x",
            "SELECT x FROM r WHERE a ~ 1",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(MsqlError):
            parse_msql(bad)


class TestScope:
    def test_use_validates_names(self, session):
        with pytest.raises(MsqlError):
            session.execute("USE euter nosuchdb")

    def test_default_scope_is_everything(self, session):
        rows = session.execute("SELECT date FROM hp")
        assert all(row["_db"] == "ource" for row in rows)

    def test_use_narrows_broadcast(self, session):
        session.execute("USE euter chwab")
        assert session.execute("SELECT date FROM hp") == []


class TestBroadcast:
    def test_broadcast_tags_rows_with_member(self, session):
        session.execute("USE euter chwab ource")
        rows = session.execute("SELECT date FROM r WHERE date = '3/3/85'")
        assert {row["_db"] for row in rows} == {"euter", "chwab"}

    def test_broadcast_respects_relation_presence(self, session):
        rows = session.execute("SELECT clsPrice FROM ibm")
        assert all(row["_db"] == "ource" for row in rows)
        assert {row["clsPrice"] for row in rows} == {160, 155}

    def test_translation_is_idl(self, session):
        session.execute("USE euter")
        [source] = session.translate("SELECT stkCode FROM r WHERE clsPrice > 100")
        assert source.startswith("?.euter.r(")
        assert ".clsPrice>100" in source


class TestSelect:
    def test_qualified_member(self, session):
        rows = session.execute(
            "SELECT e.stkCode AS s FROM euter.r e WHERE e.clsPrice > 100"
        )
        assert {row["s"] for row in rows} == {"ibm"}
        assert all("_db" not in row for row in rows)

    def test_literal_string_condition(self, session):
        rows = session.execute(
            "SELECT e.clsPrice AS p FROM euter.r e WHERE e.stkCode = 'hp'"
        )
        assert {row["p"] for row in rows} == {50, 65}

    def test_select_star(self, session):
        rows = session.execute("SELECT * FROM euter.r WHERE clsPrice > 150")
        assert rows == [
            {"date": "3/3/85", "stkCode": "ibm", "clsPrice": 160},
            {"date": "3/4/85", "stkCode": "ibm", "clsPrice": 155},
        ]

    def test_star_needs_single_reference(self, session):
        with pytest.raises(MsqlError):
            session.execute("SELECT * FROM euter.r e, ource.hp h")

    def test_distinct(self, session):
        rows = session.execute("SELECT DISTINCT e.stkCode AS s FROM euter.r e")
        assert len(rows) == 2

    def test_unqualified_needs_single_reference(self, session):
        with pytest.raises(MsqlError):
            session.execute("SELECT date FROM euter.r e, ource.hp h")


class TestInterdatabaseJoins:
    def test_fixed_member_join(self, session):
        rows = session.execute(
            "SELECT e.date AS d FROM euter.r e, ource.hp h"
            " WHERE e.date = h.date AND e.stkCode = 'hp'"
            " AND e.clsPrice = h.clsPrice"
        )
        assert {row["d"] for row in rows} == {"3/3/85", "3/4/85"}

    def test_inequality_join(self, session):
        rows = session.execute(
            "SELECT e.stkCode AS s FROM euter.r e, ource.hp h"
            " WHERE e.date = h.date AND e.clsPrice > h.clsPrice"
        )
        assert {row["s"] for row in rows} == {"ibm"}

    def test_broadcast_join(self, session):
        # Join a broadcast reference against a fixed member: the _db
        # column says which member satisfied it.
        session.execute("USE euter chwab ource")
        rows = session.execute(
            "SELECT e.date AS d FROM r e, ource.hp h WHERE e.date = h.date"
        )
        assert {row["_db"] for row in rows} == {"euter", "chwab"}

    def test_consistency_across_members(self):
        workload = StockWorkload(n_stocks=4, n_days=3, seed=8)
        engine = IdlEngine(universe=workload.universe())
        session = MsqlSession(engine)
        symbol = workload.symbols[0]
        rows = session.execute(
            f"SELECT e.date AS d, e.clsPrice AS p FROM euter.r e,"
            f" ource.{symbol} o WHERE e.date = o.date"
            f" AND e.stkCode = '{symbol}' AND e.clsPrice = o.clsPrice"
        )
        assert len(rows) == workload.n_days
