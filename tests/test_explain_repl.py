"""Tests for the explain facility and the interactive console."""

from __future__ import annotations

import io

import pytest

from repro import IdlEngine
from repro.core.explain import explain_query, higher_order_variables
from repro.core.parser import parse_expression
from repro.tools.repl import IdlRepl
from repro.workloads.stocks import paper_universe


class TestExplain:
    def test_variable_classification(self):
        report = explain_query("?.chwab.r(.date=D, .S=P)")
        assert report.variables == {"D", "S", "P"}
        assert report.higher_order == {"S"}

    def test_higher_order_detection_all_positions(self):
        expr = parse_expression("?.X.Y(.A=V)")
        assert higher_order_variables(expr) == {"X", "Y", "A"}

    def test_schedule_reordering_is_visible(self):
        report = explain_query("?.a.r(.x>P), .b.s(.y=P)")
        assert report.safe
        assert report.schedule[0].source.startswith(".b.s")
        assert "P" in report.schedule[0].produces
        assert "P" in report.schedule[1].consumes

    def test_unsafe_query_reported(self):
        report = explain_query("?.a.r(.x>P)")
        assert not report.safe
        assert "P" in report.safety_error
        assert "UNSAFE" in report.render()

    def test_negation_and_update_flags(self):
        report = explain_query("?.a.r(.x=P), .a.r~(.x>P), .a.r-(.x=P)")
        flags = {plan.source: (plan.negated, plan.is_update)
                 for plan in report.schedule}
        assert flags[".a.r~(.x>P)"][0] is True
        assert flags[".a.r-(.x=P)"][1] is True

    def test_bound_parameters_make_queries_safe(self):
        report = explain_query("?.a.r(.x>P)", bound={"P"})
        assert report.safe

    def test_render_is_stable(self):
        text = explain_query("?.ource.S(.clsPrice>100)").render()
        assert "higher-order" in text and ".ource.S" in text

    def test_profile_counts_visits(self):
        from repro.core.explain import profile_query

        universe = paper_universe()
        results, counters = profile_query(
            "?.euter.r(.stkCode=S, .clsPrice>100)", universe
        )
        assert len(results) == 1
        assert counters["visits"] > 4
        assert counters["AtomicExpr"] >= 4  # one comparison per tuple

    def test_profiling_off_by_default(self):
        from repro.core.evaluator import EvalContext

        assert EvalContext().counters is None
        context = EvalContext(profile=True)
        context.count("x")
        assert context.counters == {"x": 1}


@pytest.fixture
def repl():
    out = io.StringIO()
    console = IdlRepl(engine=IdlEngine(universe=paper_universe()), out=out)
    return console, out


def feed(console, *lines):
    console.run(lines)
    return console.out.getvalue()


class TestRepl:
    def test_query_table(self, repl):
        console, out = repl
        text = feed(console, "?.euter.r(.stkCode=S, .clsPrice>100)")
        assert "ibm" in text and "(1 answer)" in text

    def test_boolean_answers(self, repl):
        console, _ = repl
        text = feed(console, "?.euter.r(.stkCode=hp)", "?.euter.r(.stkCode=zzz)")
        assert "true" in text and "false" in text

    def test_define_and_query_view(self, repl):
        console, _ = repl
        text = feed(
            console,
            ".v.p(.s=S) <- .euter.r(.stkCode=S)",
            "?.v.p(.s=S)",
        )
        assert "rule defined" in text and "hp" in text

    def test_update_request_summary(self, repl):
        console, _ = repl
        text = feed(console, "?.euter.r-(.stkCode=hp)")
        assert "-2" in text

    def test_program_call_dispatch(self, repl):
        console, _ = repl
        text = feed(
            console,
            ".u.del(.s=S) -> .euter.r-(.stkCode=S)",
            "?.u.del(.s=hp)",
            "?.euter.r(.stkCode=hp)",
        )
        assert "update program defined" in text
        assert "false" in text

    def test_errors_are_caught(self, repl):
        console, _ = repl
        text = feed(console, "?.euter.r(.x>", ":rels nosuchdb", "?.a.r(.x>P)")
        assert text.count("error:") == 3
        assert console.running  # errors never kill the loop

    def test_commands(self, repl):
        console, _ = repl
        text = feed(console, ":help", ":dbs", ":rels ource", ":keys", ":program")
        assert ":explain" in text
        assert "euter" in text and "hp (2 elements)" in text
        assert "(none)" in text and "(empty)" in text

    def test_quit_stops(self, repl):
        console, _ = repl
        feed(console, ":quit", "?.euter.r")
        assert not console.running

    def test_save_and_open(self, repl, tmp_path):
        console, _ = repl
        path = tmp_path / "engine.json"
        text = feed(
            console,
            ".v.p(.s=S) <- .euter.r(.stkCode=S)",
            f":save {path}",
            f":open {path}",
            "?.v.p(.s=hp)",
        )
        assert "saved" in text and "opened" in text and "true" in text

    def test_load_program_file(self, repl, tmp_path):
        console, _ = repl
        path = tmp_path / "prog.idl"
        path.write_text(".v.p(.s=S) <- .euter.r(.stkCode=S)\n")
        text = feed(console, f":load {path}", "?.v.p(.s=ibm)")
        assert "loaded" in text and "true" in text

    def test_explain_command(self, repl):
        console, _ = repl
        text = feed(console, ":explain ?.ource.S(.clsPrice>100)")
        assert "higher-order" in text

    def test_profile_command(self, repl):
        console, _ = repl
        text = feed(console, ":profile ?.ource.S(.clsPrice>100)")
        assert "answers: 1" in text and "visits" in text

    def test_profile_update_reports_maintenance(self):
        out = io.StringIO()
        from repro.obs import Observability

        engine = IdlEngine(obs=Observability())
        engine.add_database("a", {"r": [{"x": 1}]})
        engine.define(".v.p(.x=X) <- .a.r(.x=X)")
        engine.materialized_view()
        console = IdlRepl(engine=engine, out=out)
        text = feed(console, ":profile ?.a.r+(.x=2)")
        assert "ok: +1" in text
        assert "maintenance: repaired=1/1 fallbacks=0" in text
        assert "engine.update" in text

    def test_profile_update_without_tracing(self):
        out = io.StringIO()
        engine = IdlEngine()  # no observability attached
        engine.add_database("a", {"r": [{"x": 1}]})
        console = IdlRepl(engine=engine, out=out)
        text = feed(console, ":profile ?.a.r+(.x=2)")
        assert "ok: +1" in text
        assert "enable tracing" in text

    def test_comments_and_blanks_ignored(self, repl):
        console, out = repl
        feed(console, "", "% comment", "# comment")
        assert out.getvalue() == ""
