"""E4: the update-expression examples of paper Section 5, verbatim."""

from __future__ import annotations

import pytest

from repro.core.parser import parse_query
from repro.core.updates import apply_request
from repro.errors import UpdateError
from repro.objects import to_python
from tests.conftest import answers_set


def rows_of(universe, db, rel):
    return to_python(universe.relation(db, rel))


class TestSetUpdates:
    def test_insert_tuple(self, universe):
        # ?.euter.r+(.date=3/3/85, .stkCode=hp, .clsPrice=50) -- idempotent
        before = len(universe.relation("euter", "r"))
        result = apply_request(
            parse_query("?.euter.r+(.date=3/5/85, .stkCode=hp, .clsPrice=50)"),
            universe,
        )
        assert result.succeeded and result.inserted == 1
        assert len(universe.relation("euter", "r")) == before + 1

    def test_insert_is_value_deduplicated(self, universe):
        request = parse_query("?.euter.r+(.date=3/3/85, .stkCode=hp, .clsPrice=50)")
        result = apply_request(request, universe)
        assert result.inserted == 0  # the tuple already exists

    def test_delete_all_matching(self, universe):
        # ?.euter.r-(.date=3/3/85, .stkCode=hp)
        result = apply_request(
            parse_query("?.euter.r-(.date=3/3/85, .stkCode=hp)"), universe
        )
        assert result.deleted == 1
        remaining = rows_of(universe, "euter", "r")
        assert {"date": "3/3/85", "stkCode": "hp", "clsPrice": 50} not in remaining

    def test_ground_delete_of_nothing_still_succeeds(self, universe):
        result = apply_request(
            parse_query("?.euter.r-(.date=9/9/99, .stkCode=hp)"), universe
        )
        assert result.succeeded and result.deleted == 0

    def test_query_dependent_delete_binds_old_values(self, universe):
        # The paper's equivalent-delete example: the minus expression with
        # a variable acts as a series of deletes, one per matching value.
        result = apply_request(
            parse_query(
                "?.euter.r(.date=3/3/85, .stkCode=hp, .clsPrice=C),"
                " .euter.r-(.date=3/3/85, .stkCode=hp, .clsPrice=C)"
            ),
            universe,
        )
        assert result.deleted == 1
        assert [s.lookup("C").value for s in result.substitutions] == [50]


class TestAtomicAndTupleUpdates:
    def test_atomic_minus_nulls_the_value(self, universe):
        # ?.chwab.r(.date=3/3/85, .hp-=C): value nulled, attribute kept
        result = apply_request(
            parse_query("?.chwab.r(.date=3/3/85, .hp-=C)"), universe
        )
        assert result.modified == 1
        row = next(
            r for r in rows_of(universe, "chwab", "r") if r["date"] == "3/3/85"
        )
        assert "hp" in row and row["hp"] is None
        assert [s.lookup("C").value for s in result.substitutions] == [50]

    def test_tuple_minus_deletes_the_attribute(self, universe):
        # ?.chwab.r(.date=3/3/85, -.hp=C): the attribute itself is removed
        result = apply_request(
            parse_query("?.chwab.r(.date=3/3/85, -.hp=C)"), universe
        )
        assert result.deleted == 1
        row = next(
            r for r in rows_of(universe, "chwab", "r") if r["date"] == "3/3/85"
        )
        assert "hp" not in row

    def test_both_deletions_behave_identically_for_queries(self, universe):
        """Section 5.2: under null semantics the nulled and the dropped
        attribute satisfy the same (no) atomic expressions."""
        apply_request(parse_query("?.chwab.r(.date=3/3/85, .hp-=C)"), universe)
        from repro.core.evaluator import holds

        assert not holds(
            parse_query("?.chwab.r(.date=3/3/85, .hp=P)"), universe
        )

    def test_heterogeneous_tuples_after_attribute_deletion(self, universe):
        """Attribute deletion affects one tuple only — sets may hold
        tuples of varying arity (a marked contrast to relational DBs)."""
        apply_request(parse_query("?.chwab.r(.date=3/3/85, -.hp)"), universe)
        arities = sorted(len(r) for r in rows_of(universe, "chwab", "r"))
        assert arities == [2, 3]

    def test_atomic_plus_replaces_value(self, universe):
        result = apply_request(
            parse_query("?.chwab.r(.date=3/3/85, .hp+=51)"), universe
        )
        assert result.modified == 1
        row = next(
            r for r in rows_of(universe, "chwab", "r") if r["date"] == "3/3/85"
        )
        assert row["hp"] == 51

    def test_tuple_plus_creates_attribute(self, universe):
        result = apply_request(
            parse_query("?.chwab.r(.date=3/3/85, +.sun=30)"), universe
        )
        assert result.succeeded
        row = next(
            r for r in rows_of(universe, "chwab", "r") if r["date"] == "3/3/85"
        )
        assert row["sun"] == 30

    def test_tuple_plus_overwrites_existing_object(self, universe):
        # Section 5.2: the plus first associates an *empty* object,
        # "implicitly deleting any existing object".
        apply_request(parse_query("?.chwab.r(.date=3/3/85, +.hp=99)"), universe)
        row = next(
            r for r in rows_of(universe, "chwab", "r") if r["date"] == "3/3/85"
        )
        assert row["hp"] == 99


class TestUpdateComposition:
    def test_delete_then_insert_is_an_update(self, universe):
        # ?.chwab.r-(.date=3/3/85, .hp=C), .chwab.r+(.date=3/3/85, .hp=C+10)
        result = apply_request(
            parse_query(
                "?.chwab.r-(.date=3/3/85, .hp=C), .chwab.r+(.date=3/3/85, .hp=C+10)"
            ),
            universe,
        )
        assert result.succeeded
        rows = rows_of(universe, "chwab", "r")
        assert {"date": "3/3/85", "hp": 60} in rows

    def test_reverse_ordering_differs(self, universe):
        """Section 5.2: "the reverse ordering would not result in the
        same semantics" — plus first needs C already bound, so the
        request is rejected as unsafe."""
        from repro.errors import SafetyError

        with pytest.raises(SafetyError):
            apply_request(
                parse_query(
                    "?.chwab.r+(.date=3/3/85, .hp=C+10), .chwab.r-(.date=3/3/85, .hp=C)"
                ),
                universe,
            )

    def test_in_place_atomic_update_preserves_other_attributes(self, universe):
        apply_request(
            parse_query("?.chwab.r(.date=3/3/85, .hp=C), .chwab.r(.date=3/3/85, .hp+=C+10)"),
            universe,
        )
        row = next(
            r for r in rows_of(universe, "chwab", "r") if r["date"] == "3/3/85"
        )
        assert row["hp"] == 60 and row["ibm"] == 160  # ibm untouched


class TestUpdateErrors:
    def test_set_update_on_tuple_object_is_an_error(self, universe):
        # .euter is a tuple (database), not a set
        with pytest.raises(UpdateError):
            apply_request(parse_query("?.euter+(.x=1)"), universe)

    def test_atomic_update_on_set_object_is_an_error(self, universe):
        with pytest.raises(UpdateError):
            apply_request(parse_query("?.euter.r+=5"), universe)

    def test_null_fails_every_atomic_expression(self, universe):
        from repro.core.evaluator import holds

        apply_request(parse_query("?.chwab.r(.date=3/3/85, .hp-=C)"), universe)
        for comparison in ("=50", ">0", "<999", "!=7"):
            assert not holds(
                parse_query(f"?.chwab.r(.date=3/3/85, .hp{comparison})"),
                universe,
            )


class TestMetadataUpdates:
    def test_delete_relation_from_database(self, universe):
        result = apply_request(parse_query("?.ource-.hp"), universe)
        assert result.deleted == 1
        assert universe.relation_names("ource") == ["ibm"]

    def test_create_relation_then_populate(self, universe):
        apply_request(
            parse_query("?.ource+.sun(), .ource.sun+(.date=3/3/85, .clsPrice=30)"),
            universe,
        )
        assert "sun" in universe.relation_names("ource")
        assert rows_of(universe, "ource", "sun") == [
            {"date": "3/3/85", "clsPrice": 30}
        ]

    def test_update_enumeration_exclusion_rule(self, universe):
        """delStk's chwab clause: ``.S-=X`` must not null the sibling
        selector attribute ``date`` (see updates module docstring)."""
        apply_request(parse_query("?.chwab.r(.S-=X, .date=3/3/85)"), universe)
        rows = rows_of(universe, "chwab", "r")
        selected = next(r for r in rows if r["date"] == "3/3/85")
        untouched = next(r for r in rows if r["date"] == "3/4/85")
        assert selected == {"date": "3/3/85", "hp": None, "ibm": None}
        assert untouched == {"date": "3/4/85", "hp": 65, "ibm": 155}

    def test_delete_with_unbound_date_deletes_all_days(self, universe):
        result = apply_request(parse_query("?.ource.hp-(.date=D)"), universe)
        assert result.deleted == 2
        assert rows_of(universe, "ource", "hp") == []
        assert answers_set(
            [{"D": s.lookup("D").value} for s in result.substitutions], "D"
        ) == {"3/3/85", "3/4/85"}
