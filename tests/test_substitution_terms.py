"""Unit tests for substitutions (Section 4.2) and terms."""

from __future__ import annotations

import pytest

from repro.core.substitution import Substitution
from repro.core.terms import (
    Arith,
    Const,
    Var,
    evaluate_term,
    term_name,
)
from repro.errors import EvaluationError, SafetyError
from repro.objects import Atom, from_python


class TestSubstitution:
    def test_empty(self):
        empty = Substitution.empty()
        assert len(empty) == 0
        assert empty.lookup("X") is None
        assert not empty.binds("X")

    def test_bind_and_lookup(self):
        subst = Substitution.empty().bind("X", Atom(5))
        assert subst.lookup("X") == Atom(5)
        assert subst.domain() == {"X"}

    def test_persistence(self):
        base = Substitution.empty().bind("X", Atom(1))
        left = base.bind("Y", Atom(2))
        right = base.bind("Y", Atom(3))
        assert left.lookup("Y") == Atom(2)
        assert right.lookup("Y") == Atom(3)
        assert base.lookup("Y") is None

    def test_rebind_same_value_is_noop(self):
        subst = Substitution.empty().bind("X", Atom(5))
        assert subst.bind("X", Atom(5)) is subst

    def test_rebind_different_value_raises(self):
        subst = Substitution.empty().bind("X", Atom(5))
        with pytest.raises(ValueError):
            subst.bind("X", Atom(6))

    def test_unify(self):
        subst = Substitution.empty().bind("X", Atom(5))
        assert subst.unify("X", Atom(5)) is subst
        assert subst.unify("X", Atom(6)) is None
        extended = subst.unify("Y", Atom(7))
        assert extended.lookup("Y") == Atom(7)

    def test_of_and_as_dict(self):
        subst = Substitution.of({"A": Atom(1), "B": Atom(2)})
        assert subst.as_dict() == {"A": Atom(1), "B": Atom(2)}

    def test_restrict(self):
        subst = Substitution.of({"A": Atom(1), "B": Atom(2)})
        assert subst.restrict({"A"}).domain() == {"A"}

    def test_signature_equality(self):
        left = Substitution.empty().bind("A", Atom(1)).bind("B", Atom(2))
        right = Substitution.empty().bind("B", Atom(2)).bind("A", Atom(1))
        assert left == right and hash(left) == hash(right)

    def test_aggregate_bindings(self):
        rel = from_python([{"a": 1}])
        subst = Substitution.empty().bind("R", rel)
        assert subst.lookup("R").is_set

    def test_non_object_binding_rejected(self):
        with pytest.raises(TypeError):
            Substitution.empty().bind("X", 5)


class TestTerms:
    def test_const_evaluation(self):
        assert evaluate_term(Const(5), Substitution.empty()) == Atom(5)

    def test_var_evaluation(self):
        subst = Substitution.empty().bind("X", Atom("hp"))
        assert evaluate_term(Var("X"), subst) == Atom("hp")

    def test_unbound_var_raises_safety(self):
        with pytest.raises(SafetyError):
            evaluate_term(Var("X"), Substitution.empty())

    def test_arith_operations(self):
        subst = Substitution.empty().bind("C", Atom(50))
        assert evaluate_term(Arith("+", Var("C"), Const(10)), subst) == Atom(60)
        assert evaluate_term(Arith("-", Var("C"), Const(10)), subst) == Atom(40)
        assert evaluate_term(Arith("*", Var("C"), Const(2)), subst) == Atom(100)
        assert evaluate_term(Arith("/", Var("C"), Const(2)), subst) == Atom(25)

    def test_division_by_zero(self):
        with pytest.raises(EvaluationError):
            evaluate_term(Arith("/", Const(1), Const(0)), Substitution.empty())

    def test_arith_requires_numbers(self):
        subst = Substitution.empty().bind("S", Atom("hp"))
        with pytest.raises(EvaluationError):
            evaluate_term(Arith("+", Var("S"), Const(1)), subst)

    def test_arith_over_null_rejected(self):
        subst = Substitution.empty().bind("N", Atom(None))
        with pytest.raises(EvaluationError):
            evaluate_term(Arith("+", Var("N"), Const(1)), subst)

    def test_term_variables(self):
        term = Arith("+", Var("A"), Arith("*", Var("B"), Const(2)))
        assert term.variables() == {"A", "B"}
        assert Const(1).is_ground() and not term.is_ground()


class TestTermName:
    def test_const_name(self):
        assert term_name(Const("r"), Substitution.empty()) == "r"

    def test_numeric_const_rejected(self):
        with pytest.raises(EvaluationError):
            term_name(Const(5), Substitution.empty())

    def test_bound_var_resolves(self):
        subst = Substitution.empty().bind("S", Atom("hp"))
        assert term_name(Var("S"), subst) == "hp"

    def test_unbound_var_returns_none(self):
        assert term_name(Var("S"), Substitution.empty()) is None

    def test_non_string_binding_is_not_a_name(self):
        from repro.core.terms import NOT_A_NAME

        subst = Substitution.empty().bind("S", Atom(5))
        assert term_name(Var("S"), subst) is NOT_A_NAME
        nested = Substitution.empty().bind("S", from_python({"a": 1}))
        assert term_name(Var("S"), nested) is NOT_A_NAME
