"""Shared fixtures: the paper's stock universe and configured engines."""

from __future__ import annotations

import pytest

from repro import IdlEngine
from repro.workloads.stocks import StockWorkload, paper_universe

UNIFIED_VIEW_RULES = """
.dbI.p(.date=D, .stk=S, .price=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P)
.dbI.p(.date=D, .stk=S, .price=P) <- .chwab.r(.date=D, .S=P), S != date
.dbI.p(.date=D, .stk=S, .price=P) <- .ource.S(.date=D, .clsPrice=P)
"""

CUSTOMIZED_VIEW_RULES = """
.dbE.r(.date=D, .stkCode=S, .clsPrice=P) <- .dbI.p(.date=D, .stk=S, .price=P)
.dbO.S(.date=D, .clsPrice=P) <- .dbI.p(.date=D, .stk=S, .price=P)
"""

DBC_VIEW_RULE = ".dbC.r(.date=D, .S=P) <- .dbI.p(.date=D, .stk=S, .price=P)"

UPDATE_PROGRAMS = """
.dbU.delStk(.stk=S, .date=D) -> .euter.r-(.stkCode=S, .date=D)
.dbU.delStk(.stk=S, .date=D) -> .chwab.r(.S-=X, .date=D)
.dbU.delStk(.stk=S, .date=D) -> .ource.S-(.date=D)
.dbU.rmStk(.stk=S) -> .euter.r-(.stkCode=S)
.dbU.rmStk(.stk=S) -> .chwab.r(-.S)
.dbU.rmStk(.stk=S) -> .ource-.S
.dbU.insStk(.stk=S, .date=D, .price=P) -> .euter.r+(.date=D, .stkCode=S, .clsPrice=P)
.dbU.insStk(.stk=S, .date=D, .price=P) -> .chwab.r(.date=D, +.S=P)
.dbU.insStk(.stk=S, .date=D, .price=P) -> ~.chwab.r(.date=D), .chwab.r+(.date=D, .S=P)
.dbU.insStk(.stk=S, .date=D, .price=P) -> .ource.S+(.date=D, .clsPrice=P)
.dbU.insStk(.stk=S, .date=D, .price=P) -> ~.ource.S, .ource+.S(.date=D, .clsPrice=P)
"""

VIEW_UPDATE_PROGRAMS = """
.dbE.r+(.date=D, .stkCode=S, .clsPrice=P) -> .dbU.insStk(.stk=S, .date=D, .price=P)
.dbE.r-(.date=D, .stkCode=S) -> .dbU.delStk(.stk=S, .date=D)
.dbO.S+(.date=D, .clsPrice=P) -> .dbU.insStk(.stk=S, .date=D, .price=P)
.dbO.S-(.date=D) -> .dbU.delStk(.stk=S, .date=D)
"""


@pytest.fixture
def universe():
    """The paper's tiny hand-written universe (two stocks, two days)."""
    return paper_universe()


@pytest.fixture
def engine(universe):
    """An engine over the paper universe, no program loaded."""
    return IdlEngine(universe=universe)


@pytest.fixture
def unified_engine(universe):
    """Engine with the Figure 1 two-level mapping installed."""
    built = IdlEngine(universe=universe)
    built.universe.add_database("dbU")
    built.define(UNIFIED_VIEW_RULES)
    built.define(CUSTOMIZED_VIEW_RULES)
    built.define(DBC_VIEW_RULE, merge_on=("date",))
    built.define_update(UPDATE_PROGRAMS)
    built.define_update(VIEW_UPDATE_PROGRAMS)
    return built


@pytest.fixture
def workload():
    """A small seeded stock workload (5 stocks, 4 days)."""
    return StockWorkload(n_stocks=5, n_days=4, seed=42)


def answers_set(results, *names):
    """Render engine answers as a set of tuples for order-free asserts."""
    if len(names) == 1:
        return {answer[names[0]] for answer in results}
    return {tuple(answer[name] for name in names) for answer in results}
