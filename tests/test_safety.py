"""Unit tests for safety analysis and goal (re)ordering."""

from __future__ import annotations

import pytest

from repro.core import ast
from repro.core.parser import parse_expression
from repro.core.safety import (
    check_query_safe,
    is_ready,
    order_conjuncts,
    produced_vars,
)
from repro.errors import SafetyError


def conjuncts(source):
    return list(parse_expression(source).conjuncts)


class TestProducedVars:
    def test_equality_produces(self):
        [c] = conjuncts("?.db.r(.a=X, .b=Y)")
        assert produced_vars(c) == {"X", "Y"}

    def test_inequality_produces_nothing(self):
        [c] = conjuncts("?.db.r(.a>X)")
        assert produced_vars(c) == set()

    def test_higher_order_attr_produces(self):
        [c] = conjuncts("?.db.r(.S=P)")
        assert produced_vars(c) == {"S", "P"}

    def test_negation_produces_nothing(self):
        [c] = conjuncts("?.db.r~(.a=X)")
        # the whole conjunct is .db.r~(...): the inner neg kills production
        assert produced_vars(c) == set()

    def test_constraint_production(self):
        expr = parse_expression("?.a(.x=1), Y = 2")
        assert produced_vars(expr.conjuncts[1]) == {"Y"}

    def test_set_minus_produces_bindings(self):
        [c] = conjuncts("?.db.r-(.a=X)")
        assert produced_vars(c) == {"X"}


class TestIsReady:
    def test_equality_always_ready(self):
        [c] = conjuncts("?.db.r(.a=X)")
        assert is_ready(c, frozenset())

    def test_inequality_needs_binding(self):
        [c] = conjuncts("?.db.r(.a>X)")
        assert not is_ready(c, frozenset())
        assert is_ready(c, frozenset({"X"}))

    def test_intra_expression_production_counts(self):
        # X produced by .a=X before .b>X needs it (reordered internally).
        [c] = conjuncts("?.db.r(.b>X, .a=X)")
        assert is_ready(c, frozenset())

    def test_arith_needs_all_vars(self):
        [c] = conjuncts("?.db.r(.a=C+1)")
        assert not is_ready(c, frozenset())
        assert is_ready(c, frozenset({"C"}))

    def test_set_plus_needs_ground(self):
        [c] = conjuncts("?.db.r+(.a=X)")
        assert not is_ready(c, frozenset())
        assert is_ready(c, frozenset({"X"}))

    def test_tuple_plus_needs_attr_and_value(self):
        [c] = conjuncts("?.db.r(+.S=P)")
        assert not is_ready(c, frozenset({"S"}))
        assert is_ready(c, frozenset({"S", "P"}))


class TestOrdering:
    def test_producer_moves_before_consumer(self):
        cs = conjuncts("?.a.r(.x>P), .b.s(.y=P)")
        ordered = order_conjuncts(cs, frozenset())
        assert ordered[0] is cs[1] and ordered[1] is cs[0]

    def test_negation_deferred_until_shared_vars_bound(self):
        cs = conjuncts("?.a.r~(.x>P), .a.r(.x=P)")
        ordered = order_conjuncts(cs, frozenset())
        assert isinstance(ordered[1].expr.expr, ast.NegExpr)

    def test_unsatisfiable_order_raises(self):
        cs = conjuncts("?.a.r(.x>P), .b.s(.y>P)")
        with pytest.raises(SafetyError):
            order_conjuncts(cs, frozenset())

    def test_bound_params_satisfy(self):
        cs = conjuncts("?.a.r(.x>P)")
        assert order_conjuncts(cs, frozenset({"P"})) == cs

    def test_updates_are_barriers(self):
        # The query after the insert may not move before it.
        cs = conjuncts("?.a.r+(.x=1), .a.r(.x=Y)")
        ordered = order_conjuncts(cs, frozenset())
        assert ordered == cs

    def test_queries_before_a_barrier_stay_before_it(self):
        cs = conjuncts("?.a.r(.x=Y), .a.r-(.x=Y), .a.s(.z>Y)")
        ordered = order_conjuncts(cs, frozenset())
        assert ordered == cs

    def test_unready_update_raises(self):
        cs = conjuncts("?.a.r+(.x=C), .a.s(.y=C)")
        with pytest.raises(SafetyError):
            order_conjuncts(cs, frozenset())

    def test_purely_local_negation_vars_are_existential(self):
        # Y occurs only inside the negation: ¬∃Y reading, safe.
        cs = conjuncts("?.a.r(.x=X), .a.s~(.y=Y, .x=X)")
        ordered = order_conjuncts(cs, frozenset())
        assert len(ordered) == 2

    def test_embedded_negation_deferred(self):
        # ``.euter.r~(...)`` is an AttrStep *containing* a negation; its
        # shared variable S must be produced by the sibling first, even
        # when the negation is written first.
        cs = conjuncts("?.a.r~(.s=S, .p>100), .a.r(.s=S)")
        ordered = order_conjuncts(cs, frozenset())
        assert ordered[0] is cs[1]

    def test_selectivity_prefers_constants(self):
        # Both ready; the constant-rich conjunct goes first.
        cs = conjuncts("?.a.r(.x=X), .a.r(.x=X, .k=1, .m=2)")
        ordered = order_conjuncts(cs, frozenset())
        assert ordered[0] is cs[1]
        in_order = order_conjuncts(cs, frozenset(), heuristic=False)
        assert in_order[0] is cs[0]

    def test_selectivity_never_breaks_safety(self):
        cs = conjuncts("?.a.r(.x>P, .k=1), .b.s(.y=P)")
        ordered = order_conjuncts(cs, frozenset())
        assert ordered[0] is cs[1]  # the producer must still go first

    def test_check_query_safe_api(self):
        check_query_safe(parse_expression("?.a.r(.x=X), .b.s(.y>X)"))
        with pytest.raises(SafetyError):
            check_query_safe(parse_expression("?.a.r(.x>X)"))
