"""Tests for the pretty-printer details and the bench harness."""

from __future__ import annotations

from repro.bench.harness import Experiment, format_table, throughput, time_call
from repro.core import ast
from repro.core.parser import parse_program, parse_query
from repro.core.pretty import name_to_source, term_to_source, to_source
from repro.core.terms import Arith, Const, Var


class TestPretty:
    def test_bare_names_stay_bare(self):
        assert name_to_source("clsPrice") == "clsPrice"
        assert name_to_source("r2") == "r2"

    def test_weird_names_are_quoted(self):
        assert name_to_source("two words") == "'two words'"
        assert name_to_source("Upper") == "'Upper'"
        assert name_to_source("3x") == "'3x'"

    def test_quotes_escaped(self):
        assert name_to_source("it's") == "'it\\'s'"

    def test_terms(self):
        assert term_to_source(Const(5)) == "5"
        assert term_to_source(Const(-5)) == "-5"
        assert term_to_source(Const("hp")) == "hp"
        assert term_to_source(Const("3/3/85")) == "3/3/85"
        assert term_to_source(Var("X")) == "X"
        assert term_to_source(Arith("+", Var("C"), Const(10))) == "C+10"

    def test_statement_forms(self):
        source = ".v.p(.x=X) <- .d.r(.x=X)"
        [rule] = parse_program(source)
        assert to_source(rule) == source
        source = ".u.del(.x=X) -> .d.r-(.x=X)"
        [clause] = parse_program(source)
        assert to_source(clause) == source

    def test_empty_body_clause(self):
        [clause] = parse_program(".u.noop(.x=X) ->")
        assert to_source(clause) == ".u.noop(.x=X) ->"

    def test_update_signs_render(self):
        query = parse_query("?.d.r(.a+=1, .b-=C, -.x, +.y=2)")
        assert to_source(query) == "?.d.r(.a+=1, .b-=C, -.x, +.y=2)"

    def test_less_than_negative_spaced(self):
        query = parse_query("?.d.r(.a< -5)")
        rendered = to_source(query)
        assert "<-" not in rendered
        assert parse_query(rendered) == query


class TestHarness:
    def test_format_table_alignment(self):
        table = format_table(
            ["name", "value"],
            [{"name": "long-name", "value": 1}, {"name": "x", "value": 22.5}],
        )
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].index("value") == lines[2].index("1") or True
        assert "long-name" in lines[2] and "22.5" in lines[3]

    def test_format_table_missing_cells(self):
        table = format_table(["a", "b"], [{"a": 1}])
        assert "-" in table.splitlines()[2]

    def test_experiment_render(self):
        experiment = Experiment("EX", "a title", "a claim")
        experiment.add_row(metric="m", value=1)
        held = experiment.check(True, "works")
        text = experiment.render()
        assert held is True
        assert "EX" in text and "a claim" in text and "works" in text

    def test_experiment_check_failure_visible(self):
        experiment = Experiment("EX", "t", "c")
        experiment.check(False, "broken")
        assert "NO" in experiment.render()

    def test_time_call_returns_result(self):
        elapsed, result = time_call(lambda x: x + 1, 41, repeat=2)
        assert result == 42 and elapsed >= 0

    def test_throughput_positive(self):
        ops = throughput(lambda: None, 50)
        assert ops > 0


class TestAstHelpers:
    def test_walk_covers_descendants(self):
        query = parse_query("?.d.r(.a=1, ~(.b=2))")
        kinds = {type(node).__name__ for node in query.expr.walk()}
        assert {"TupleExpr", "AttrStep", "SetExpr", "NegExpr",
                "AtomicExpr"} <= kinds

    def test_conjuncts_of(self):
        expr = parse_query("?.a.r, .b.s").expr
        assert len(ast.conjuncts_of(expr)) == 2
        single = ast.conjuncts_of(expr.conjuncts[0])
        assert len(single) == 1

    def test_negation_of_update_rejected(self):
        import pytest

        plus = ast.SetExpr(ast.Epsilon(), sign="+")
        with pytest.raises(ValueError):
            ast.NegExpr(plus)

    def test_equality_and_hash(self):
        left = parse_query("?.d.r(.a=1)").expr
        right = parse_query("?.d.r(.a=1)").expr
        other = parse_query("?.d.r(.a=2)").expr
        assert left == right and hash(left) == hash(right)
        assert left != other
