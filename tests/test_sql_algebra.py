"""Direct tests for the relational-algebra operators."""

from __future__ import annotations

import pytest

from repro.errors import SqlError
from repro.sql.algebra import (
    Aggregate,
    CrossProduct,
    Difference,
    HashJoin,
    Limit,
    OrderBy,
    Project,
    Rename,
    Scan,
    Select,
    Union,
)

LEFT = [{"k": 1, "v": "a"}, {"k": 2, "v": "b"}, {"k": 3, "v": None}]
RIGHT = [{"k": 1, "w": 10}, {"k": 1, "w": 11}, {"k": 9, "w": 90}]


class TestScanSelectProject:
    def test_scan_copies_rows(self):
        rows = Scan(LEFT).to_list()
        rows[0]["k"] = 999
        assert LEFT[0]["k"] == 1

    def test_select_conditions(self):
        rows = Select(Scan(LEFT), conditions=[("k", ">", 1, False)]).to_list()
        assert [row["k"] for row in rows] == [2, 3]

    def test_select_predicate(self):
        rows = Select(Scan(LEFT), predicate=lambda r: r["v"] == "a").to_list()
        assert len(rows) == 1

    def test_select_column_to_column(self):
        data = [{"a": 1, "b": 1}, {"a": 1, "b": 2}]
        rows = Select(Scan(data), conditions=[("a", "=", "b", True)]).to_list()
        assert rows == [{"a": 1, "b": 1}]

    def test_select_unknown_operator(self):
        with pytest.raises(SqlError):
            Select(Scan(LEFT), conditions=[("k", "~", 1, False)]).to_list()

    def test_nulls_fail_comparisons(self):
        rows = Select(Scan(LEFT), conditions=[("v", "=", None, False)]).to_list()
        assert rows == []  # = against null literal matches nothing here

    def test_project_and_rename_columns(self):
        rows = Project(Scan(LEFT), [("k", "key")]).to_list()
        assert rows[0] == {"key": 1}

    def test_project_star(self):
        rows = Project(Scan(LEFT), [("*", "*")]).to_list()
        assert rows[0] == LEFT[0]

    def test_project_distinct(self):
        data = [{"x": 1}, {"x": 1}, {"x": 2}]
        rows = Project(Scan(data), ["x"], distinct=True).to_list()
        assert len(rows) == 2


class TestJoins:
    def test_hash_join(self):
        rows = HashJoin(Scan(LEFT), Scan(RIGHT), [("k", "k")]).to_list()
        assert len(rows) == 2
        assert {row["w"] for row in rows} == {10, 11}

    def test_join_skips_nulls(self):
        left = [{"k": None, "v": 1}]
        right = [{"k": None, "w": 2}]
        assert HashJoin(Scan(left), Scan(right), [("k", "k")]).to_list() == []

    def test_join_requires_pairs(self):
        with pytest.raises(SqlError):
            HashJoin(Scan(LEFT), Scan(RIGHT), [])

    def test_cross_product(self):
        rows = CrossProduct(Scan(LEFT), Scan(RIGHT)).to_list()
        assert len(rows) == 9

    def test_rename_prefixes(self):
        rows = Rename(Scan(LEFT), "l").to_list()
        assert set(rows[0]) == {"l.k", "l.v"}

    def test_self_join_via_rename(self):
        left = Rename(Scan(RIGHT), "a")
        right = Rename(Scan(RIGHT), "b")
        rows = HashJoin(left, right, [("a.k", "b.k")]).to_list()
        assert len(rows) == 5  # (1,1)x2x2 + (9,9)


class TestSetOperators:
    def test_union_deduplicates(self):
        rows = Union(Scan([{"x": 1}, {"x": 2}]), Scan([{"x": 2}, {"x": 3}])).to_list()
        assert len(rows) == 3

    def test_difference(self):
        rows = Difference(
            Scan([{"x": 1}, {"x": 2}]), Scan([{"x": 2}])
        ).to_list()
        assert rows == [{"x": 1}]


class TestOrderingAndLimits:
    def test_order_by_multiple_keys(self):
        data = [{"a": 1, "b": 2}, {"a": 1, "b": 1}, {"a": 0, "b": 9}]
        rows = OrderBy(Scan(data), ["a", "b"]).to_list()
        assert rows == [{"a": 0, "b": 9}, {"a": 1, "b": 1}, {"a": 1, "b": 2}]

    def test_order_by_descending(self):
        rows = OrderBy(Scan(LEFT), ["k"], [True]).to_list()
        assert [row["k"] for row in rows] == [3, 2, 1]

    def test_nulls_sort_last(self):
        data = [{"a": None}, {"a": 1}]
        rows = OrderBy(Scan(data), ["a"]).to_list()
        assert rows[-1] == {"a": None}

    def test_limit(self):
        assert len(Limit(Scan(LEFT), 2).to_list()) == 2
        assert len(Limit(Scan(LEFT), 0).to_list()) == 0


class TestAggregate:
    DATA = [
        {"g": "a", "v": 1},
        {"g": "a", "v": 3},
        {"g": "b", "v": 5},
        {"g": "b", "v": None},
    ]

    def test_group_aggregates(self):
        rows = Aggregate(
            Scan(self.DATA),
            ["g"],
            [("count", "*", "n"), ("sum", "v", "total"), ("avg", "v", "mean"),
             ("min", "v", "low"), ("max", "v", "high")],
        ).to_list()
        by_group = {row["g"]: row for row in rows}
        assert by_group["a"] == {
            "g": "a", "n": 2, "total": 4, "mean": 2, "low": 1, "high": 3,
        }
        # Nulls are ignored by value aggregates but counted by count(*).
        assert by_group["b"]["n"] == 2 and by_group["b"]["total"] == 5

    def test_global_aggregate(self):
        [row] = Aggregate(Scan(self.DATA), [], [("count", "*", "n")]).to_list()
        assert row == {"n": 4}

    def test_empty_input(self):
        assert Aggregate(Scan([]), [], [("count", "*", "n")]).to_list() == [
            {"n": 0}
        ] or Aggregate(Scan([]), [], [("count", "*", "n")]).to_list() == []

    def test_unknown_aggregate(self):
        with pytest.raises(SqlError):
            Aggregate(Scan(self.DATA), [], [("median", "v", "m")])
