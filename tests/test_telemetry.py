"""The production telemetry pipeline: sliding windows, per-request
delta metrics, trace sampling/limits, the slow-query log, SLOs, the
Prometheus/JSON exposition server, and the REPL's live views.

Windows and SLO trackers are tested against injected fake clocks (no
sleeps); sampling against injected rngs; the live-server tests bind an
ephemeral port on 127.0.0.1 and scrape it with urllib.
"""

from __future__ import annotations

import io
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.errors import FederationError
from repro.multidb import Federation, FederationConfig, InMemoryConnector
from repro.multidb.executor import MemberExecutor, MemberTask
from repro.obs import (
    SLO,
    InMemoryCollector,
    JsonLinesExporter,
    MetricsRegistry,
    Observability,
    SLOTracker,
    SlowQueryLog,
    TraceLimits,
    Tracer,
    WindowConfig,
    render_prometheus,
)
from repro.obs.metrics import MetricsSnapshot
from repro.obs.window import CounterWindow, HistogramWindow, percentile
from repro.tools.repl import IdlRepl
from repro.workloads.stocks import StockWorkload

QUERY = "?.dbI.p(.date=D, .stk=S, .price=P)"


class FakeClock:
    """A manually advanced monotonic clock (seconds)."""

    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def build_stock_federation(obs=None, config=None):
    workload = StockWorkload(n_stocks=2, n_days=2, seed=42)
    if config is None:
        config = FederationConfig(obs=obs)
    federation = Federation.from_config(config)
    federation.add_member("euter", "euter", workload.euter_relations())
    federation.add_member(
        "chwab", "chwab",
        connector=InMemoryConnector(workload.chwab_relations()),
    )
    federation.add_member("ource", "ource", workload.ource_relations())
    federation.install()
    return federation


# ---------------------------------------------------------------------------
# Sliding windows
# ---------------------------------------------------------------------------


class TestCounterWindow:
    def test_counts_inside_the_window(self):
        clock = FakeClock()
        window = CounterWindow(WindowConfig(width=60, buckets=6,
                                            clock=clock))
        window.add(5)
        clock.advance(59)
        assert window.total() == 5

    def test_old_buckets_expire(self):
        clock = FakeClock()
        window = CounterWindow(WindowConfig(width=60, buckets=6,
                                            clock=clock))
        window.add(5)
        clock.advance(61)
        assert window.total() == 0
        window.add(2)
        assert window.total() == 2

    def test_rate_uses_lifetime_for_young_windows(self):
        clock = FakeClock()
        window = CounterWindow(WindowConfig(width=60, buckets=6,
                                            clock=clock))
        clock.advance(30)
        for _ in range(10):
            window.add()
        assert window.rate() == pytest.approx(10 / 30)

    def test_rate_uses_width_once_mature(self):
        clock = FakeClock()
        window = CounterWindow(WindowConfig(width=60, buckets=6,
                                            clock=clock))
        clock.advance(600)
        window.add(30)
        assert window.rate() == pytest.approx(30 / 60)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WindowConfig(width=0)
        with pytest.raises(ValueError):
            WindowConfig(buckets=0)
        with pytest.raises(ValueError):
            WindowConfig(samples_per_bucket=0)


class TestHistogramWindow:
    def test_percentiles_nearest_rank(self):
        clock = FakeClock()
        window = HistogramWindow(WindowConfig(width=60, buckets=6,
                                              samples_per_bucket=200,
                                              clock=clock))
        for value in range(1, 101):
            window.observe(float(value))
        snapshot = window.snapshot()
        assert snapshot["count"] == 100
        assert snapshot["p50"] == 50.0
        assert snapshot["p90"] == 90.0
        assert snapshot["p99"] == 99.0
        assert snapshot["max"] == 100.0

    def test_cyclic_reservoir_keeps_exact_count_and_max(self):
        clock = FakeClock()
        window = HistogramWindow(WindowConfig(width=60, buckets=6,
                                              samples_per_bucket=8,
                                              clock=clock))
        for value in range(1, 21):
            window.observe(float(value))
        snapshot = window.snapshot()
        # Count/sum/max are exact; percentiles come from the newest
        # 8 samples (cyclic overwrite), i.e. 13..20.
        assert snapshot["count"] == 20
        assert snapshot["max"] == 20.0
        assert snapshot["p50"] == 16.0

    def test_window_empties_after_width(self):
        clock = FakeClock()
        window = HistogramWindow(WindowConfig(width=60, buckets=6,
                                              clock=clock))
        window.observe(42.0)
        clock.advance(61)
        snapshot = window.snapshot()
        assert snapshot["count"] == 0
        assert snapshot["p50"] is None
        assert snapshot["max"] is None

    def test_percentile_empty_is_none(self):
        assert percentile([], 0.99) is None


# ---------------------------------------------------------------------------
# Registry snapshots: immutability, rates, percentiles
# ---------------------------------------------------------------------------


class TestRegistrySnapshots:
    def test_counters_stay_ints_and_rates_appear(self):
        clock = FakeClock(100.0)
        registry = MetricsRegistry(window=WindowConfig(clock=clock))
        registry.counter("hits", member="m").inc()
        snapshot = registry.snapshot()
        assert snapshot["counters"]["hits{member=m}"] == 1
        assert snapshot["rates"]["hits{member=m}"] > 0

    def test_histogram_summary_carries_percentiles(self):
        clock = FakeClock(100.0)
        registry = MetricsRegistry(window=WindowConfig(clock=clock))
        histogram = registry.histogram("latency")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        summary = registry.snapshot()["histograms"]["latency"]
        assert summary["count"] == 4
        assert summary["p50"] == 2.0
        assert summary["p99"] == 4.0
        assert summary["rate"] > 0

    def test_snapshot_is_immutable(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        snapshot = registry.snapshot()
        assert isinstance(snapshot, MetricsSnapshot)
        with pytest.raises(TypeError):
            snapshot["counters"] = {}
        with pytest.raises(TypeError):
            del snapshot["counters"]
        with pytest.raises(TypeError):
            snapshot.update({})

    def test_window_false_disables_rates(self):
        registry = MetricsRegistry(window=False)
        registry.counter("hits").inc()
        registry.histogram("latency").observe(1.0)
        snapshot = registry.snapshot()
        assert "rates" not in snapshot
        assert "p50" not in snapshot["histograms"]["latency"]

    def test_render_includes_percentiles(self):
        registry = MetricsRegistry()
        registry.histogram("latency").observe(5.0)
        assert "p99=5" in registry.render()


# ---------------------------------------------------------------------------
# Per-request delta snapshots
# ---------------------------------------------------------------------------


class TestRequestDeltas:
    def test_concurrent_requests_see_only_their_own_deltas(self):
        registry = MetricsRegistry(window=False)
        barrier = threading.Barrier(2)
        deltas = {}

        def run(name, count):
            with registry.request() as accumulator:
                barrier.wait()
                for _ in range(count):
                    registry.counter("shared").inc()
                barrier.wait()
                deltas[name] = accumulator.snapshot()

        threads = [threading.Thread(target=run, args=("a", 3)),
                   threading.Thread(target=run, args=("b", 5))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert deltas["a"]["counters"]["shared"] == 3
        assert deltas["b"]["counters"]["shared"] == 5
        assert registry.counter_value("shared") == 8

    def test_nested_requests_both_accumulate(self):
        registry = MetricsRegistry(window=False)
        with registry.request() as outer:
            registry.counter("hits").inc()
            with registry.request() as inner:
                registry.counter("hits").inc()
        assert inner.snapshot()["counters"]["hits"] == 1
        assert outer.snapshot()["counters"]["hits"] == 2

    def test_adopt_requests_feeds_another_threads_accumulator(self):
        registry = MetricsRegistry(window=False)
        with registry.request() as accumulator:
            captured = registry.active_requests()

            def worker():
                with registry.adopt_requests(captured):
                    registry.counter("worker.hits").inc()

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert accumulator.snapshot()["counters"]["worker.hits"] == 1

    def test_request_histogram_deltas_are_exact(self):
        registry = MetricsRegistry(window=False)
        with registry.request() as accumulator:
            for value in (10.0, 20.0, 30.0):
                registry.histogram("lat").observe(value)
        summary = accumulator.snapshot()["histograms"]["lat"]
        assert summary["count"] == 3
        assert summary["mean"] == 20.0
        assert summary["p99"] == 30.0

    def test_query_results_carry_per_request_deltas(self):
        federation = build_stock_federation()
        update = federation.insert_quote(stk="new", date="9/9/99", price=1)
        assert update.metrics["counters"]["engine.updates"] == 1
        result = federation.query(QUERY)
        # The later query's delta contains none of the update's work.
        assert "engine.updates" not in result.metrics["counters"]
        assert "journal.appends" not in result.metrics["counters"]
        # The cumulative registry still has everything.
        assert federation.obs.metrics.counter_value("engine.updates") == 1

    def test_parallel_flush_metrics_land_in_the_request_delta(self):
        # Two connector-backed members so the flush takes the
        # scatter-gather path; its worker threads must still feed the
        # gathering request's accumulator.
        workload = StockWorkload(n_stocks=2, n_days=2, seed=42)
        federation = Federation.from_config(FederationConfig(parallel="on"))
        federation.add_member(
            "euter", "euter",
            connector=InMemoryConnector(workload.euter_relations()),
        )
        federation.add_member(
            "chwab", "chwab",
            connector=InMemoryConnector(workload.chwab_relations()),
        )
        federation.add_member("ource", "ource", workload.ource_relations())
        federation.install()
        result = federation.insert_quote(stk="x", date="1/1/01", price=9)
        counters = result.metrics["counters"]
        assert counters.get("connector.pool.submitted", 0) >= 1
        assert any(key.startswith("connector.pool.latency")
                   for key in result.metrics["histograms"])


# ---------------------------------------------------------------------------
# JsonLinesExporter: concurrency + flush control
# ---------------------------------------------------------------------------


def finished_span(name="op", duration=0.001):
    spans = []
    tracer = Tracer(on_finish=spans.append)
    with tracer.span(name):
        pass
    return spans[0]


class TestJsonLinesExporter:
    def test_concurrent_exports_never_interleave(self):
        stream = io.StringIO()
        exporter = JsonLinesExporter(stream)
        span = finished_span()
        barrier = threading.Barrier(2)

        def run():
            barrier.wait()
            for _ in range(50):
                exporter.export(span)

        threads = [threading.Thread(target=run) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 100
        for line in lines:
            assert json.loads(line)["name"] == "op"
        assert exporter.exported == 100

    def test_flush_every_batches_flushes(self):
        class CountingStream(io.StringIO):
            flushes = 0

            def flush(self):
                CountingStream.flushes += 1
                super().flush()

        stream = CountingStream()
        exporter = JsonLinesExporter(stream, flush_every=10)
        span = finished_span()
        for _ in range(25):
            exporter.export(span)
        assert CountingStream.flushes == 2  # at 10 and 20

    def test_fsync_to_a_real_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonLinesExporter(path, fsync=True) as exporter:
            exporter.export(finished_span())
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1

    def test_flush_every_validated(self):
        with pytest.raises(ValueError):
            JsonLinesExporter(io.StringIO(), flush_every=0)


# ---------------------------------------------------------------------------
# Sampling + tail escapes
# ---------------------------------------------------------------------------


class TestSampling:
    def test_head_sampling_by_injected_rng(self):
        kept, dropped = [], []
        values = iter([0.9, 0.1])
        tracer = Tracer(on_finish=kept.append, on_drop=dropped.append,
                        sample_rate=0.5, rng=lambda: next(values))
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [span.name for span in kept] == ["second"]
        assert [span.name for span in dropped] == ["first"]

    def test_sample_rate_zero_counts_drops(self):
        registry = MetricsRegistry(window=False)
        kept = []
        tracer = Tracer(on_finish=kept.append, sample_rate=0.0,
                        metrics=registry)
        with tracer.span("a"):
            pass
        assert kept == []
        assert registry.counter_value("obs.trace.dropped.sampled") == 1

    def test_error_escape_keeps_sampled_out_traces(self):
        registry = MetricsRegistry(window=False)
        kept = []
        tracer = Tracer(on_finish=kept.append, sample_rate=0.0,
                        metrics=registry)
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        assert [span.name for span in kept] == ["failing"]
        assert registry.counter_value("obs.trace.kept.error") == 1

    def test_slow_escape_keeps_sampled_out_traces(self):
        registry = MetricsRegistry(window=False)
        clock = FakeClock()
        kept, dropped = [], []
        tracer = Tracer(clock=clock, on_finish=kept.append,
                        on_drop=dropped.append, sample_rate=0.0,
                        slow_threshold_ms=50.0, metrics=registry)
        with tracer.span("slow"):
            clock.advance(0.1)
        with tracer.span("fast"):
            clock.advance(0.001)
        assert [span.name for span in kept] == ["slow"]
        assert [span.name for span in dropped] == ["fast"]
        assert registry.counter_value("obs.trace.kept.slow") == 1

    def test_sample_rate_validated(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)

    def test_observability_routes_dropped_roots_to_slo_and_slow_log(self):
        obs = Observability(sample_rate=0.0)
        collector = obs.add_exporter(InMemoryCollector())
        with obs.span("federation.query"):
            pass
        assert len(collector) == 0  # sampled out: not exported
        assert len(obs.recent) == 0
        rows = obs.slo.top()  # ... but the SLO tracker saw it
        assert [row["name"] for row in rows] == ["federation.query"]
        assert len(obs.slow_log.entries()) == 1


# ---------------------------------------------------------------------------
# Per-trace limits
# ---------------------------------------------------------------------------


class TestTraceLimits:
    def test_span_cap_prunes_the_tree(self):
        registry = MetricsRegistry(window=False)
        tracer = Tracer(limits=TraceLimits(max_spans=2), metrics=registry)
        with tracer.span("root") as root:
            with tracer.span("kept"):
                pass
            with tracer.span("capped"):
                pass
        assert root.tree() == ("root", [("kept", [])])
        assert registry.counter_value("obs.trace.dropped.spans") == 1

    def test_attribute_cap(self):
        registry = MetricsRegistry(window=False)
        tracer = Tracer(limits=TraceLimits(max_attributes=2),
                        metrics=registry)
        with tracer.span("s") as span:
            span.set("a", 1).set("b", 2).set("c", 3)
            span.set("a", 9)  # overwrites never count against the cap
        assert span.attributes == {"a": 9, "b": 2}
        assert registry.counter_value("obs.trace.dropped.attributes") == 1

    def test_event_cap(self):
        registry = MetricsRegistry(window=False)
        tracer = Tracer(limits=TraceLimits(max_events=2), metrics=registry)
        with tracer.span("s") as span:
            for index in range(5):
                span.event("tick", index=index)
        assert len(span.events) == 2
        assert registry.counter_value("obs.trace.dropped.events") == 3

    def test_child_span_charges_the_budget(self):
        tracer = Tracer(limits=TraceLimits(max_spans=2))
        with tracer.span("root") as root:
            first = tracer.child_span(root, "member", member="a")
            second = tracer.child_span(root, "member", member="b")
        assert first is not None and second is None
        assert [child.name for child in root.children] == ["member"]

    def test_limits_validated(self):
        with pytest.raises(ValueError):
            TraceLimits(max_spans=0)


# ---------------------------------------------------------------------------
# Tracer under the executor's thread-local adoption
# ---------------------------------------------------------------------------


class TestTracerUnderExecutor:
    def test_sampled_out_parent_with_kept_error_child(self):
        obs = Observability(sample_rate=0.0)
        collector = obs.add_exporter(InMemoryCollector())

        def boom():
            raise RuntimeError("boom")

        executor = MemberExecutor(parallel="on", obs=obs)
        outcomes = executor.map(
            [MemberTask("good", lambda: 1), MemberTask("bad", boom)],
            label="test",
        )
        assert outcomes[0].ok and not outcomes[1].ok
        # The worker's error attribute tripped the trace's error flag,
        # so the sampled-out root was kept anyway.
        root = collector.last
        assert root is not None and root.name == "scatter-gather"
        members = root.find_all("scatter-gather.member")
        assert any("error" in span.attributes for span in members)
        assert obs.metrics.counter_value("obs.trace.kept.error") == 1

    def test_span_cap_enforced_mid_scatter(self):
        obs = Observability(limits=TraceLimits(max_spans=4))
        collector = obs.add_exporter(InMemoryCollector())
        executor = MemberExecutor(parallel="on", obs=obs)
        tasks = [MemberTask(f"m{index}", lambda: 1) for index in range(8)]
        outcomes = executor.map(tasks, label="test")
        assert all(outcome.ok for outcome in outcomes)  # work is unaffected
        root = collector.last
        # Budget: 1 root + 3 members; the other 5 ran untraced.
        assert len(root.find_all("scatter-gather.member")) == 3
        assert obs.metrics.counter_value("obs.trace.dropped.spans") == 5

    def test_deterministic_span_tree_under_parallel_on(self):
        obs = Observability()
        collector = obs.add_exporter(InMemoryCollector())
        executor = MemberExecutor(parallel="on", obs=obs)
        names = [f"m{index}" for index in range(6)]
        executor.map([MemberTask(name, lambda: 1) for name in names],
                     label="test")
        root = collector.last
        assert [span.attributes["member"] for span in root.children] == names


# ---------------------------------------------------------------------------
# Slow-query log
# ---------------------------------------------------------------------------


class TestSlowQueryLog:
    def _span(self, name, duration_ms):
        clock = FakeClock()
        spans = []
        tracer = Tracer(clock=clock, on_finish=spans.append)
        with tracer.span(name):
            clock.advance(duration_ms / 1000.0)
        return spans[0]

    def test_keeps_the_n_worst(self):
        log = SlowQueryLog(capacity=2)
        for duration in (10.0, 30.0, 20.0, 5.0):
            log.record(self._span(f"q{duration:g}", duration))
        durations = [entry["duration_ms"] for entry in log.entries()]
        assert durations == [pytest.approx(30.0), pytest.approx(20.0)]

    def test_threshold_filters(self):
        log = SlowQueryLog(capacity=4, threshold_ms=50.0)
        assert not log.record(self._span("fast", 10.0))
        assert log.record(self._span("slow", 60.0))
        assert len(log.entries()) == 1

    def test_entries_carry_rendered_trees(self):
        log = SlowQueryLog(capacity=2)
        log.record(self._span("federation.query", 25.0))
        entry = log.entries()[0]
        assert entry["name"] == "federation.query"
        assert "federation.query" in entry["rendered"]
        assert entry["spans"] == 1
        assert "federation.query" in log.render()

    def test_render_empty(self):
        assert "empty" in SlowQueryLog().render()


# ---------------------------------------------------------------------------
# SLO tracking
# ---------------------------------------------------------------------------


class TestSLOTracker:
    def test_burn_rate_is_error_rate_over_budget(self):
        clock = FakeClock(1000.0)
        tracker = SLOTracker(objective=SLO(availability=0.9),
                             windows=(60, 300), clock=clock)
        for _ in range(9):
            tracker.record_operation("q", 10.0, ok=True)
        tracker.record_operation("q", 500.0, ok=False)
        burn = tracker.burn_rates("operation", "q")
        # 10% observed errors against a 10% budget: burning at 1x.
        assert burn["60s"] == pytest.approx(1.0)
        assert burn["300s"] == pytest.approx(1.0)

    def test_status_reports_availability_and_latency(self):
        clock = FakeClock(1000.0)
        tracker = SLOTracker(
            objective=SLO(availability=0.999, latency_ms=100.0),
            windows=(60,), clock=clock,
        )
        for value in (10.0, 20.0, 500.0):
            tracker.record_operation("q", value, ok=True)
        status = tracker.status("operation", "q")
        assert status["windows"]["60s"]["availability"] == 1.0
        assert status["latency"]["p99"] == 500.0
        assert status["latency_ok"] is False

    def test_member_outcomes_without_latency(self):
        tracker = SLOTracker(windows=(60,))
        tracker.record_member("chwab", None, ok=False)
        status = tracker.status("member", "chwab")
        assert status["windows"]["60s"]["errors"] == 1
        assert status["latency"]["count"] == 0

    def test_top_sorts_slowest_first(self):
        clock = FakeClock(1000.0)
        tracker = SLOTracker(windows=(60,), clock=clock)
        tracker.record_operation("fast", 1.0)
        tracker.record_operation("slow", 100.0)
        rows = tracker.top()
        assert [row["name"] for row in rows] == ["slow", "fast"]
        assert "KEY" in tracker.render_top()

    def test_report_sections(self):
        tracker = SLOTracker(windows=(60,))
        tracker.record_operation("q", 1.0)
        tracker.record_member("m", 1.0)
        report = tracker.report()
        assert list(report["operations"]) == ["q"]
        assert list(report["members"]) == ["m"]
        assert report["windows"] == [60]

    def test_unknown_key_and_validation(self):
        tracker = SLOTracker()
        assert tracker.burn_rates("operation", "nope") == {}
        with pytest.raises(ValueError):
            SLO(availability=1.5)
        with pytest.raises(ValueError):
            SLOTracker(windows=(0,))

    def test_executor_feeds_member_slos(self):
        obs = Observability()

        def boom():
            raise RuntimeError("down")

        executor = MemberExecutor(parallel="on", obs=obs)
        executor.map([MemberTask("good", lambda: 1),
                      MemberTask("bad", boom)], label="test")
        good = obs.slo.status("member", "good")
        bad = obs.slo.status("member", "bad")
        assert good["windows"]["60s"]["errors"] == 0
        assert bad["windows"]["60s"]["errors"] == 1


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------


class TestPrometheusRendering:
    def test_golden_text_without_windows(self):
        registry = MetricsRegistry(window=False)
        registry.counter("fixpoint.runs").inc(3)
        registry.counter("connector.scan.attempts", member="chwab").inc()
        registry.histogram("connector.pool.latency",
                           member="chwab").observe(2.0)
        assert render_prometheus(registry) == (
            '# TYPE connector_scan_attempts counter\n'
            'connector_scan_attempts{member="chwab"} 1\n'
            '# TYPE fixpoint_runs counter\n'
            'fixpoint_runs 3\n'
            '# TYPE connector_pool_latency summary\n'
            'connector_pool_latency_count{member="chwab"} 1\n'
            'connector_pool_latency_sum{member="chwab"} 2.0\n'
            '# TYPE connector_pool_latency_max gauge\n'
            'connector_pool_latency_max{member="chwab"} 2.0\n'
        )

    def test_windowed_registry_emits_quantiles_and_rates(self):
        clock = FakeClock(100.0)
        registry = MetricsRegistry(window=WindowConfig(clock=clock))
        registry.counter("fixpoint.maintain.runs").inc()
        registry.histogram("connector.pool.latency",
                           member="chwab").observe(2.0)
        text = render_prometheus(registry)
        assert "# TYPE fixpoint_maintain_runs counter" in text
        assert "fixpoint_maintain_runs 1" in text
        assert "fixpoint_maintain_runs_rate" in text
        assert ('connector_pool_latency{member="chwab",quantile="0.99"} 2.0'
                in text)

    def test_slo_gauges(self):
        tracker = SLOTracker(windows=(60,))
        tracker.record_operation("q", 5.0, ok=False)
        text = render_prometheus(MetricsRegistry(window=False), slo=tracker)
        assert ('slo_burn_rate{kind="operation",name="q",window="60s"}'
                in text)
        assert "slo_availability" in text

    def test_label_escaping(self):
        registry = MetricsRegistry(window=False)
        registry.counter("hits", member='we"ird\\name').inc()
        text = render_prometheus(registry)
        assert r'member="we\"ird\\name"' in text


# ---------------------------------------------------------------------------
# The live telemetry server
# ---------------------------------------------------------------------------


def fetch(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.read().decode("utf-8")


class TestTelemetryServer:
    @pytest.fixture
    def federation(self):
        federation = build_stock_federation(
            config=FederationConfig(telemetry_port=0)
        )
        yield federation
        federation.stop_telemetry()

    def test_metrics_endpoint_serves_prometheus_text(self, federation):
        federation.query(QUERY)
        federation.insert_quote(stk="new", date="9/9/99", price=7)
        body = fetch(federation.telemetry.url + "/metrics")
        assert "connector_pool_latency" in body
        assert 'quantile="0.99"' in body
        assert "fixpoint_maintain_runs" in body
        assert "engine_query_ms" in body

    def test_health_endpoint(self, federation):
        report = json.loads(fetch(federation.telemetry.url + "/health"))
        assert report["status"] == "ok"
        assert report["chwab"]["status"] == "ok"
        assert report["journal"]["backend"] == "InMemoryJournal"

    def test_slo_and_traces_endpoints(self, federation):
        federation.query(QUERY)
        url = federation.telemetry.url
        slo = json.loads(fetch(url + "/slo"))
        assert "federation.query" in slo["operations"]
        recent = json.loads(fetch(url + "/traces/recent"))
        assert any(trace["name"] == "federation.query" for trace in recent)
        slow = json.loads(fetch(url + "/traces/slow"))
        assert any(entry["name"] == "federation.query" for entry in slow)

    def test_unknown_path_is_404(self, federation):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch(federation.telemetry.url + "/nope")
        assert excinfo.value.code == 404

    def test_start_stop_idempotent(self):
        federation = build_stock_federation()
        assert federation.telemetry is None
        server = federation.start_telemetry(port=0)
        assert federation.start_telemetry() is server  # already running
        port = server.port
        assert port != 0
        federation.stop_telemetry()
        assert federation.telemetry is None

    def test_telemetry_port_validation(self):
        with pytest.raises(FederationError):
            FederationConfig(telemetry_port="8080")
        with pytest.raises(FederationError):
            FederationConfig(telemetry_port=70000)
        with pytest.raises(FederationError):
            FederationConfig(telemetry_port=True)

    def test_demo_cli_builder(self):
        from repro.tools.telemetry import build_demo_federation, demo_tick

        federation = build_demo_federation(port=0)
        try:
            for tick in range(2):
                demo_tick(federation, tick)
            body = fetch(federation.telemetry.url + "/metrics")
            assert "federation" in body or "fixpoint_runs" in body
        finally:
            federation.stop_telemetry()


# ---------------------------------------------------------------------------
# REPL: :top / :slow / :slo
# ---------------------------------------------------------------------------


def feed(console, *lines):
    console.run(lines)
    return console.out.getvalue()


class TestReplTelemetryCommands:
    @pytest.fixture
    def console(self):
        federation = build_stock_federation()
        federation.query(QUERY)
        federation.insert_quote(stk="x", date="1/1/01", price=2)
        return IdlRepl(federation=federation, out=io.StringIO())

    def test_top_lists_operations_and_members(self, console):
        text = feed(console, ":top")
        assert "P99MS" in text and "BURN" in text
        assert "operation:federation.query" in text
        assert "member:chwab" in text

    def test_slow_renders_worst_traces(self, console):
        text = feed(console, ":slow")
        assert "federation.query" in text and "ms" in text

    def test_slo_shows_targets_and_burn(self, console):
        text = feed(console, ":slo")
        assert "target=99.9%" in text
        assert "burn=" in text and "availability=" in text

    def test_commands_degrade_without_observability(self):
        from repro.core.engine import IdlEngine

        console = IdlRepl(engine=IdlEngine(), out=io.StringIO())
        text = feed(console, ":top", ":slow", ":slo")
        assert text.count("enable observability") == 3

    def test_help_mentions_the_new_commands(self):
        console = IdlRepl(out=io.StringIO())
        text = feed(console, ":help")
        for command in (":top", ":slow", ":slo"):
            assert command in text
