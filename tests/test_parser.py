"""Unit tests for the IDL parser (AST construction)."""

from __future__ import annotations

import pytest

from repro.core import ast
from repro.core.parser import (
    parse_expression,
    parse_program,
    parse_query,
    parse_rule,
    parse_update_clause,
)
from repro.core.terms import Arith, Const, Var
from repro.errors import ParseError


def single_conjunct(source):
    expr = parse_expression(source)
    assert len(expr.conjuncts) == 1
    return expr.conjuncts[0]


class TestQueryParsing:
    def test_simple_path(self):
        step = single_conjunct("?.euter.r")
        assert isinstance(step, ast.AttrStep)
        assert step.attr == Const("euter")
        inner = step.expr
        assert isinstance(inner, ast.AttrStep) and inner.attr == Const("r")
        assert isinstance(inner.expr, ast.Epsilon)

    def test_set_expression_with_items(self):
        step = single_conjunct("?.euter.r(.stkCode=hp, .clsPrice>60)")
        set_expr = step.expr.expr
        assert isinstance(set_expr, ast.SetExpr) and set_expr.sign is None
        items = set_expr.inner.conjuncts
        assert items[0].attr == Const("stkCode")
        assert items[0].expr == ast.AtomicExpr("=", Const("hp"))
        assert items[1].expr == ast.AtomicExpr(">", Const(60))

    def test_higher_order_variables(self):
        step = single_conjunct("?.X.Y(.stkCode)")
        assert step.attr == Var("X")
        assert step.expr.attr == Var("Y")

    def test_negated_set_expression(self):
        step = single_conjunct("?.euter.r~(.clsPrice>P)")
        neg = step.expr.expr
        assert isinstance(neg, ast.NegExpr)
        assert isinstance(neg.inner, ast.SetExpr)

    def test_conjunction_of_paths(self):
        expr = parse_expression("?.a.b(.x=1), .c.d(.y=2)")
        assert len(expr.conjuncts) == 2

    def test_date_literal(self):
        step = single_conjunct("?.euter.r(.date=3/3/85)")
        item = step.expr.expr.inner.conjuncts[0]
        assert item.expr == ast.AtomicExpr("=", Const("3/3/85"))

    def test_quoted_attribute_name(self):
        step = single_conjunct("?.db.'weird name'(.x=1)")
        assert step.expr.attr == Const("weird name")

    def test_standalone_constraint(self):
        expr = parse_expression("?.X.Y, X = ource, Y != r")
        constraint = expr.conjuncts[1]
        assert isinstance(constraint, ast.Constraint)
        assert constraint.left == Var("X") and constraint.right == Const("ource")
        assert expr.conjuncts[2].op == "!="

    def test_empty_set_expression(self):
        step = single_conjunct("?.db.r()")
        assert isinstance(step.expr.expr, ast.SetExpr)
        assert isinstance(step.expr.expr.inner, ast.Epsilon)

    def test_nested_set_of_sets(self):
        step = single_conjunct("?.db.r((.x=1))")
        outer = step.expr.expr
        assert isinstance(outer.inner.conjuncts[0], ast.SetExpr)

    def test_variable_binding_whole_object(self):
        step = single_conjunct("?.db.r=X")
        assert step.expr.expr == ast.AtomicExpr("=", Var("X"))


class TestArithmetic:
    def test_simple_arith(self):
        step = single_conjunct("?.db.r(.p=C+10)")
        term = step.expr.expr.inner.conjuncts[0].expr.term
        assert term == Arith("+", Var("C"), Const(10))

    def test_left_associative_chain(self):
        expr = parse_expression("?.a(.x=1), Y = A+B-C")
        term = expr.conjuncts[1].right
        assert term == Arith("-", Arith("+", Var("A"), Var("B")), Var("C"))

    def test_unary_minus_constant(self):
        expr = parse_expression("?.a(.x=-5)")
        assert expr.conjuncts[0].expr.inner.conjuncts[0].expr.term == Const(-5)

    def test_arith_does_not_swallow_update_items(self):
        # ``.x=C, +.y=2``: the + starts a new (signed) item, not C+...
        expr = parse_expression("?.a(.x=C, +.y=2)")
        items = expr.conjuncts[0].expr.inner.conjuncts
        assert items[0].expr.term == Var("C")
        assert items[1].sign == ast.PLUS


class TestUpdateParsing:
    def test_set_plus(self):
        step = single_conjunct("?.euter.r+(.date=3/3/85)")
        plus = step.expr.expr
        assert isinstance(plus, ast.SetExpr) and plus.sign == ast.PLUS

    def test_set_minus(self):
        step = single_conjunct("?.euter.r-(.stkCode=hp)")
        assert step.expr.expr.sign == ast.MINUS

    def test_tuple_plus_item(self):
        step = single_conjunct("?.chwab.r(.date=D, +.sun=30)")
        items = step.expr.expr.inner.conjuncts
        assert items[1].sign == ast.PLUS and items[1].attr == Const("sun")

    def test_tuple_minus_item(self):
        step = single_conjunct("?.chwab.r(-.hp)")
        item = step.expr.expr.inner.conjuncts[0]
        assert item.sign == ast.MINUS and isinstance(item.expr, ast.Epsilon)

    def test_atomic_plus_minus_shorthand(self):
        step = single_conjunct("?.chwab.r(.hp+=51, .ibm-=C)")
        items = step.expr.expr.inner.conjuncts
        assert items[0].expr == ast.AtomicExpr("=", Const(51), sign=ast.PLUS)
        assert items[1].expr == ast.AtomicExpr("=", Var("C"), sign=ast.MINUS)

    def test_database_level_tuple_minus(self):
        step = single_conjunct("?.ource-.S")
        item = step.expr
        assert isinstance(item, ast.AttrStep)
        assert item.sign == ast.MINUS and item.attr == Var("S")

    def test_update_flag_propagates(self):
        assert parse_query("?.a.r+(.x=1)").is_update_request
        assert not parse_query("?.a.r(.x=1)").is_update_request


class TestStatements:
    def test_rule(self):
        rule = parse_rule(".dbI.p(.s=S) <- .euter.r(.stkCode=S)")
        assert isinstance(rule, ast.Rule)
        assert rule.head.variables() == {"S"}

    def test_update_clause(self):
        clause = parse_update_clause(".dbU.del(.s=S) -> .euter.r-(.stkCode=S)")
        assert isinstance(clause, ast.UpdateClause)

    def test_update_clause_with_empty_body(self):
        clause = parse_update_clause(".dbX.p(.e=E) ->")
        assert clause.body.conjuncts == ()

    def test_program_with_mixed_statements(self):
        statements = parse_program(
            "% stock program\n"
            ".dbI.p(.s=S) <- .euter.r(.stkCode=S)\n"
            ".dbU.del(.s=S) -> .euter.r-(.stkCode=S)\n"
            "?.dbI.p(.s=hp)\n"
        )
        kinds = [type(s).__name__ for s in statements]
        assert kinds == ["Rule", "UpdateClause", "Query"]

    def test_multiline_rule_via_continuation(self):
        rule = parse_rule(
            ".dbI.p(.d=D, .s=S) <-\n  .euter.r(.date=D,\n           .stkCode=S)"
        )
        assert rule.body.variables() == {"D", "S"}


class TestParseErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "?.a(",  # unclosed paren
            "?.a(.x=)",  # missing term
            "?.(.x=1)",  # missing attribute name
            ".h(.x=X)",  # bare expression is not a statement
            "?.a.b(.x=1) extra",  # trailing junk
            "?.a(.x ~ 1)",  # stray negation
            "? .a(.x=1) <- .b",  # rule cannot start with ?
        ],
    )
    def test_rejected(self, source):
        with pytest.raises(ParseError):
            parse_program(source)

    def test_error_position(self):
        with pytest.raises(ParseError) as info:
            parse_program("?.a(.x=1,\n.y=)")
        assert info.value.line == 2

    def test_parse_query_requires_single_query(self):
        with pytest.raises(ParseError):
            parse_query("?.a\n?.b")
        with pytest.raises(ParseError):
            parse_rule("?.a")
