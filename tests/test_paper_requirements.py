"""Traceability: the six "typical needs of a multidatabase user" from
the paper's introduction, each verified end to end on one federation.

    1. same intention, same formal expression, despite discrepancies;
    2. queries spanning several databases;
    3. queries about the databases and the information they contain;
    4. a unified view of all the databases (database transparency);
    5. seeing all databases as the schema the user knew before
       integration (integration transparency);
    6. updating all the databases through the individual views or the
       unified view (multidatabase view updatability).
"""

from __future__ import annotations

import pytest

from repro.multidb import Federation
from repro.workloads.stocks import StockWorkload


@pytest.fixture(scope="module")
def setup():
    workload = StockWorkload(n_stocks=5, n_days=4, seed=1991)
    federation = Federation()
    federation.add_member("euter", relations=workload.euter_relations())
    federation.add_member("chwab", relations=workload.chwab_relations())
    federation.add_member("ource", relations=workload.ource_relations())
    federation.add_user_view("dbE", "euter")
    federation.add_user_view("dbC", "chwab")
    federation.add_user_view("dbO", "ource")
    federation.install()
    return federation, workload


def test_need_1_same_intention_same_expression(setup):
    federation, workload = setup
    median = sorted(p for _, _, p in workload.quotes())[len(workload.quotes()) // 2]
    via = {
        "euter": {a["S"] for a in federation.query(
            f"?.euter.r(.stkCode=S, .clsPrice>{median})")},
        "chwab": {a["S"] for a in federation.query(
            f"?.chwab.r(.S>{median}), S != date")},
        "ource": {a["S"] for a in federation.query(
            f"?.ource.S(.clsPrice>{median})")},
    }
    assert via["euter"] == via["chwab"] == via["ource"] != set()


def test_need_2_queries_spanning_databases(setup):
    federation, workload = setup
    # "all stocks that are quoted in all the three databases, for the
    # same day" — euter by value, chwab by attribute, ource by relation.
    results = federation.query(
        "?.euter.r(.date=D, .stkCode=S, .clsPrice=P1),"
        " .chwab.r(.date=D, .S=P2), .ource.S(.date=D, .clsPrice=P3)"
    )
    stocks = {answer["S"] for answer in results}
    assert stocks == set(workload.symbols)


def test_need_3_queries_about_the_databases(setup):
    federation, workload = setup
    # "list the stocks in ource and chwab that have the same closing
    # price" — relation names joined with attribute names via values.
    results = federation.query(
        "?.chwab.r(.date=D, .S=P), .ource.S(.date=D, .clsPrice=P)"
    )
    assert {answer["S"] for answer in results} == set(workload.symbols)
    # Catalog browsing across every member at once.
    pairs = {(a["X"], a["Y"]) for a in federation.query("?.X.Y")}
    assert ("euter", "r") in pairs and ("ource", workload.symbols[0]) in pairs


def test_need_4_database_transparency(setup):
    federation, workload = setup
    assert federation.unified_quotes() == sorted(workload.quotes())
    # One expression answers for every member at once.
    top = max(p for _, _, p in workload.quotes())
    assert federation.ask(f"?.dbI.p(.price={top})")


def test_need_5_integration_transparency(setup):
    federation, workload = setup
    day = workload.days[0]
    symbol = workload.symbols[0]
    price = workload.price(day, symbol)
    # Each user group sees its own pre-integration schema shape.
    assert federation.ask(
        f"?.dbE.r(.date={day}, .stkCode={symbol}, .clsPrice={price})"
    )
    assert federation.ask(f"?.dbC.r(.date={day}, .{symbol}={price})")
    assert federation.ask(f"?.dbO.{symbol}(.date={day}, .clsPrice={price})")
    # ...including the data-dependent relation family.
    assert sorted(
        federation.engine.overlay.get("dbO").attr_names()
    ) == sorted(workload.symbols)


def test_need_6_view_updatability(setup):
    federation, workload = setup
    federation.update("?.dbE.r+(.date=9/9/99, .stkCode=zeta, .clsPrice=7)")
    # The update reached every base...
    assert federation.ask("?.euter.r(.stkCode=zeta)")
    assert federation.ask("?.chwab.r(.date=9/9/99, .zeta=7)")
    assert federation.ask("?.ource.zeta(.clsPrice=7)")
    # ...and every view, including the other groups'.
    assert federation.ask("?.dbC.r(.date=9/9/99, .zeta=7)")
    assert federation.ask("?.dbO.zeta(.clsPrice=7)")
    # Through the higher-order view as well.
    federation.update("?.dbO.zeta-(.date=9/9/99)")
    assert not federation.ask("?.euter.r(.stkCode=zeta)")
