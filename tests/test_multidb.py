"""Integration tests for the federation layer (Figure 1, end to end)."""

from __future__ import annotations

import pytest

from repro.errors import FederationError
from repro.multidb import (
    Federation,
    FirstOrderFederation,
    attach_storage,
    convert,
    detect_discrepancies,
    detect_style,
    flush_to_storage,
    from_long,
    report,
    styles_equivalent,
    to_long,
)
from repro.storage import StorageDatabase
from repro.workloads.stocks import StockWorkload
from tests.conftest import answers_set


@pytest.fixture
def workload():
    return StockWorkload(n_stocks=4, n_days=3, seed=9)


@pytest.fixture
def federation(workload):
    fed = Federation()
    fed.add_member("euter", "euter", workload.euter_relations())
    fed.add_member("chwab", "chwab", workload.chwab_relations())
    fed.add_member("ource", "ource", workload.ource_relations())
    fed.add_user_view("dbE", "euter")
    fed.add_user_view("dbC", "chwab")
    fed.add_user_view("dbO", "ource")
    fed.install()
    return fed


class TestFederation:
    def test_unified_view_union(self, federation, workload):
        quotes = federation.unified_quotes()
        assert quotes == sorted(workload.quotes())

    def test_customized_views_mirror_original_schemas(self, federation, workload):
        day = workload.days[0]
        symbol = workload.symbols[0]
        price = workload.price(day, symbol)
        assert federation.ask(
            f"?.dbE.r(.date={day}, .stkCode={symbol}, .clsPrice=P)", P=price
        )
        assert federation.ask(f"?.dbC.r(.date={day}, .{symbol}={price})")
        assert federation.ask(f"?.dbO.{symbol}(.date={day}, .clsPrice={price})")

    def test_higher_order_view_relation_count(self, federation, workload):
        overlay = federation.engine.overlay
        assert sorted(overlay.get("dbO").attr_names()) == sorted(workload.symbols)

    def test_insert_quote_reaches_every_member_and_view(self, federation):
        federation.insert_quote("newco", "4/1/85", 42)
        assert federation.ask("?.euter.r(.stkCode=newco, .clsPrice=42)")
        assert federation.ask("?.chwab.r(.date=4/1/85, .newco=42)")
        assert federation.ask("?.ource.newco(.clsPrice=42)")
        assert federation.ask("?.dbO.newco(.clsPrice=42)")
        assert federation.ask("?.dbE.r(.stkCode=newco)")

    def test_delete_quote(self, federation, workload):
        day = workload.days[0]
        symbol = workload.symbols[0]
        federation.delete_quote(symbol, day)
        assert not federation.ask(f"?.dbE.r(.date={day}, .stkCode={symbol})")
        # other days survive
        assert federation.ask(f"?.dbE.r(.stkCode={symbol})")

    def test_remove_stock_updates_metadata_everywhere(self, federation, workload):
        symbol = workload.symbols[0]
        federation.remove_stock(symbol)
        assert symbol not in federation.engine.universe.relation_names("ource")
        assert not federation.ask(f"?.chwab.r(.{symbol})")
        assert symbol not in sorted(
            federation.engine.overlay.get("dbO").attr_names()
        )

    def test_view_update_through_euter_user_view(self, federation):
        federation.update("?.dbE.r+(.date=4/2/85, .stkCode=zip, .clsPrice=7)")
        assert federation.ask("?.ource.zip(.date=4/2/85, .clsPrice=7)")

    def test_duplicate_member_rejected(self, federation, workload):
        with pytest.raises(FederationError):
            federation.add_member("euter", "euter", workload.euter_relations())

    def test_style_auto_detection(self, workload):
        fed = Federation()
        fed.add_member("a", relations=workload.euter_relations())
        fed.add_member("b", relations=workload.chwab_relations())
        fed.add_member("c", relations=workload.ource_relations())
        assert fed.members == {"a": "euter", "b": "chwab", "c": "ource"}
        fed.install()
        assert fed.unified_quotes() == sorted(workload.quotes())

    def test_undetectable_style_rejected(self):
        fed = Federation()
        with pytest.raises(FederationError):
            fed.add_member("weird", relations={"t": [{"q": 1}], "u": [{"z": 2}]})

    def test_discrepancy_report_convenience(self, federation):
        assert "euter.r.stkCode" in federation.discrepancy_report()

    def test_install_twice_is_noop(self, federation):
        before = federation.unified_quotes()
        rules_before = len(federation.engine.program.rules)
        assert federation.install() is federation
        assert len(federation.engine.program.rules) == rules_before
        assert federation.unified_quotes() == before

    def test_reconciliation(self, workload):
        fed = Federation()
        fed.add_member("euter", "euter", workload.euter_relations())
        fed.add_member("chwab", "chwab", workload.chwab_relations())
        fed.install(reconcile=True)
        day = workload.days[0]
        symbol = workload.symbols[0]
        # introduce a value discrepancy, then pnew picks the max
        fed.engine.update(f"?.chwab.r(.date={day}, .{symbol}+=99999)")
        results = fed.query(f"?.dbI.pnew(.date={day}, .stk={symbol}, .price=P)")
        assert answers_set(results, "P") == {99999}


class TestNameMappings:
    def test_federation_with_private_codes(self, workload):
        universe_free = Federation()
        universe_free.add_member("euter", "euter", workload.euter_relations())
        # chwab uses c_-prefixed codes
        chwab = {"r": []}
        for row in workload.chwab_relations()["r"]:
            renamed = {"date": row["date"]}
            for key, value in row.items():
                if key != "date":
                    renamed[f"c_{key}"] = value
            chwab["r"].append(renamed)
        universe_free.add_member("chwab", "chwab", chwab)
        universe_free.add_mapping_relation(
            "chwab", "mapCE", {f"c_{s}": s for s in workload.symbols}, "c", "e"
        )
        universe_free.install()
        assert universe_free.unified_quotes() == sorted(workload.quotes())


class TestStorageBackedFederation:
    def _storage_member(self, workload):
        storage = StorageDatabase("euter")
        storage.create_relation(
            "r",
            [("date", "str", False), ("stkCode", "str", False),
             ("clsPrice", "float")],
            key=("date", "stkCode"),
        )
        for day, symbol, price in workload.quotes():
            storage.insert(
                "r", {"date": day, "stkCode": symbol, "clsPrice": price}
            )
        return storage

    def test_attach_and_query(self, workload):
        storage = self._storage_member(workload)
        fed = Federation()
        fed.add_member("euter", "euter", storage=storage)
        fed.install()
        assert fed.unified_quotes() == sorted(workload.quotes())

    def test_update_flushes_back_to_storage(self, workload):
        storage = self._storage_member(workload)
        fed = Federation()
        fed.add_member("euter", "euter", storage=storage)
        fed.install()
        fed.insert_quote("newco", "4/1/85", 42)
        assert storage.relation("r").get_by_key("4/1/85", "newco")["clsPrice"] == 42
        fed.delete_quote("newco", "4/1/85")
        assert storage.relation("r").get_by_key("4/1/85", "newco") is None

    def test_attach_with_catalog_exposes_metadata_as_data(self, workload):
        from repro import IdlEngine

        storage = self._storage_member(workload)
        engine = IdlEngine()
        attach_storage(engine, "euter", storage, include_catalog=True)
        results = engine.query("?.euter.'_columns'(.relname=r, .colname=C)")
        assert answers_set(results, "C") == {"date", "stkCode", "clsPrice"}


class TestSchemaStyles:
    def test_long_round_trip(self, workload):
        for style in ("euter", "chwab", "ource"):
            relations = workload.relations_for(style)
            assert to_long(relations, style) == sorted(workload.quotes())
            rebuilt = from_long(to_long(relations, style), style)
            assert to_long(rebuilt, style) == sorted(workload.quotes())

    def test_convert_between_styles(self, workload):
        chwab = convert(workload.euter_relations(), "euter", "chwab")
        assert styles_equivalent(
            chwab, "chwab", workload.ource_relations(), "ource"
        )

    def test_detect_style(self, workload):
        assert detect_style(workload.euter_relations()) == "euter"
        assert detect_style(workload.chwab_relations()) == "chwab"
        assert detect_style(workload.ource_relations()) == "ource"
        assert detect_style({}) is None


class TestDiscrepancyDetection:
    def test_detects_both_kinds(self, workload):
        universe = workload.universe()
        findings = detect_discrepancies(universe)
        kinds = {
            (finding.kind, finding.source[0], finding.target_db)
            for finding in findings
        }
        # euter's stkCode values appear as chwab attributes...
        assert ("value-vs-attribute", "euter", "chwab") in kinds
        # ...and as ource relation names.
        assert ("value-vs-relation", "euter", "ource") in kinds

    def test_scores_are_full_overlap(self, workload):
        findings = detect_discrepancies(workload.universe())
        best = [
            finding for finding in findings
            if finding.source == ("euter", "r", "stkCode")
        ]
        assert best and all(finding.score == 1.0 for finding in best)

    def test_report_renders(self, workload):
        text = report(detect_discrepancies(workload.universe()))
        assert "euter.r.stkCode" in text

    def test_no_findings_on_disjoint_universe(self):
        from repro.objects import Universe

        universe = Universe.from_python(
            {"a": {"r": [{"x": "one"}]}, "b": {"s": [{"y": "two"}]}}
        )
        assert detect_discrepancies(universe) == []


class TestFirstOrderCounterfactual:
    def _members(self, workload):
        fed = FirstOrderFederation()
        for style in ("euter", "chwab", "ource"):
            storage = StorageDatabase(style)
            if style == "euter":
                storage.create_relation(
                    "r", [("date", "str"), ("stkCode", "str"), ("clsPrice", "float")]
                )
                for day, symbol, price in workload.quotes():
                    storage.insert("r", {"date": day, "stkCode": symbol,
                                         "clsPrice": price})
            elif style == "chwab":
                columns = [("date", "str")] + [
                    (symbol, "float") for symbol in workload.symbols
                ]
                storage.create_relation("r", columns)
                for row in workload.chwab_relations()["r"]:
                    storage.insert("r", row)
            else:
                for symbol in workload.symbols:
                    storage.create_relation(
                        symbol, [("date", "str"), ("clsPrice", "float")]
                    )
                    for row in workload.ource_relations()[symbol]:
                        storage.insert(symbol, row)
            fed.add_member(style, storage, style)
        return fed

    def test_query_count_explosion(self, workload):
        fed = self._members(workload)
        _, queries = fed.stocks_above(0)
        # euter: 1 query; chwab: one per stock; ource: one per stock.
        assert queries == 1 + len(workload.symbols) * 2

    def test_agrees_with_idl(self, workload):
        fed = self._members(workload)
        prices = [price for _, _, price in workload.quotes()]
        threshold = sorted(prices)[len(prices) // 2]
        stocks, _ = fed.stocks_above(threshold)

        from repro import IdlEngine

        idl = IdlEngine(universe=workload.universe())
        expected = answers_set(
            idl.query(f"?.euter.r(.stkCode=S, .clsPrice>{threshold})"), "S"
        )
        assert stocks == expected

    def test_unified_quotes_match(self, workload):
        fed = self._members(workload)
        quotes, queries = fed.unified_quotes()
        # three copies of the same market collapse into one set
        assert quotes == sorted(workload.quotes())
        assert queries == 1 + len(workload.symbols) * 2
