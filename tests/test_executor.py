"""MemberExecutor: bounded scatter-gather of per-member I/O.

The contract under test, from ``docs/concurrency.md``: outcomes come
back in *task order* no matter how the pool interleaved the work;
ordinary ``Exception`` failures are captured per-outcome while a
``BaseException`` (a simulated crash) is fatal; ``parallel="off"`` and
single-task calls degrade to the deterministic inline loop; deadlines
abandon stragglers without stalling the rest; hedged reads give a
straggling scan a second worker and keep whichever attempt wins.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import DeadlineExceededError, FederationError
from repro.multidb.executor import (
    DEFAULT_WORKER_CAP,
    MemberExecutor,
    MemberOutcome,
    MemberTask,
)
from repro.obs import InMemoryCollector, Observability

pytestmark = pytest.mark.concurrency


def make_obs():
    collector = InMemoryCollector()
    obs = Observability(enabled=True, exporters=[collector])
    return obs, collector


def names_and_values(outcomes):
    return [(outcome.name, outcome.value) for outcome in outcomes]


class TestConstruction:
    def test_rejects_bad_parallel_mode(self):
        with pytest.raises(FederationError, match="parallel must be"):
            MemberExecutor(parallel="maybe")

    @pytest.mark.parametrize("bad", [0, -1, 2.5, "four"])
    def test_rejects_bad_max_workers(self, bad):
        with pytest.raises(FederationError, match="max_workers"):
            MemberExecutor(max_workers=bad)

    @pytest.mark.parametrize("bad", [0, -0.5])
    def test_rejects_bad_hedge_after(self, bad):
        with pytest.raises(FederationError, match="hedge_after"):
            MemberExecutor(hedge_after=bad)

    def test_default_pool_is_capped(self):
        executor = MemberExecutor(parallel="on")
        try:
            executor.map([MemberTask(f"m{i}", lambda i=i: i)
                          for i in range(DEFAULT_WORKER_CAP + 4)])
            assert executor._pool_size == DEFAULT_WORKER_CAP
        finally:
            executor.shutdown()


class TestSerialFallback:
    def test_parallel_off_runs_inline_in_order(self):
        calls = []

        def record(name):
            calls.append(name)
            return name.upper()

        executor = MemberExecutor(parallel="off")
        outcomes = executor.map(
            [MemberTask(n, lambda n=n: record(n)) for n in ("a", "b", "c")]
        )
        assert calls == ["a", "b", "c"]
        assert names_and_values(outcomes) == [
            ("a", "A"), ("b", "B"), ("c", "C")
        ]
        assert all(o.ok and o.latency is not None for o in outcomes)
        assert executor._pool is None  # no threads were harmed

    def test_empty_task_list(self):
        assert MemberExecutor().map([]) == []

    def test_exceptions_are_captured_per_outcome(self):
        executor = MemberExecutor(parallel="off")
        boom = ValueError("boom")

        def fail():
            raise boom

        outcomes = executor.map([
            MemberTask("good", lambda: 1),
            MemberTask("bad", fail),
            MemberTask("rest", lambda: 3),
        ])
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[1].error is boom

    def test_fail_fast_skips_the_rest(self):
        executor = MemberExecutor(parallel="off")
        ran = []

        def fail():
            ran.append("bad")
            raise ValueError("boom")

        outcomes = executor.map(
            [
                MemberTask("good", lambda: ran.append("good")),
                MemberTask("bad", fail),
                MemberTask("never", lambda: ran.append("never")),
            ],
            fail_fast=True,
        )
        assert ran == ["good", "bad"]
        assert [o.skipped for o in outcomes] == [False, False, True]
        assert not outcomes[2].ok

    def test_base_exception_propagates_immediately(self):
        executor = MemberExecutor(parallel="off")
        ran = []

        def die():
            raise KeyboardInterrupt()

        with pytest.raises(KeyboardInterrupt):
            executor.map([
                MemberTask("dying", die),
                MemberTask("never", lambda: ran.append("never")),
            ])
        assert ran == []

    def test_single_task_is_inline_even_when_parallel(self):
        executor = MemberExecutor(parallel="on")
        try:
            (outcome,) = executor.map([MemberTask("only", lambda: 42)])
            assert outcome.value == 42
            assert executor._pool is None
        finally:
            executor.shutdown()


class TestScatterGather:
    def test_outcomes_come_back_in_task_order(self):
        """The first task finishes last; the gathered list is still in
        task order with every value in its slot."""
        release = threading.Event()

        def slow():
            assert release.wait(5.0)
            return "slow"

        executor = MemberExecutor(parallel="on", max_workers=4)
        try:
            finished = []

            def quick(name):
                finished.append(name)
                if len(finished) >= 2:
                    release.set()
                return name

            outcomes = executor.map([
                MemberTask("a", slow),
                MemberTask("b", lambda: quick("b")),
                MemberTask("c", lambda: quick("c")),
            ])
            assert names_and_values(outcomes) == [
                ("a", "slow"), ("b", "b"), ("c", "c")
            ]
        finally:
            executor.shutdown()

    def test_every_task_runs_despite_failures(self):
        executor = MemberExecutor(parallel="on", max_workers=2)
        try:
            ran = []

            def fail(name):
                ran.append(name)
                raise ValueError(name)

            outcomes = executor.map([
                MemberTask("a", lambda: fail("a")),
                MemberTask("b", lambda: ran.append("b") or "b"),
                MemberTask("c", lambda: fail("c")),
            ])
            assert sorted(ran) == ["a", "b", "c"]
            assert [o.ok for o in outcomes] == [False, True, False]
            assert str(outcomes[0].error) == "a"
            assert str(outcomes[2].error) == "c"
        finally:
            executor.shutdown()

    def test_fatal_error_reraises_after_gathering(self):
        """A BaseException is gathered, then re-raised — the other
        tasks still ran to completion."""
        executor = MemberExecutor(parallel="on", max_workers=2)
        try:
            ran = []

            def die():
                raise KeyboardInterrupt()

            with pytest.raises(KeyboardInterrupt):
                executor.map([
                    MemberTask("dying", die),
                    MemberTask("other", lambda: ran.append("other")),
                ])
            assert ran == ["other"]
        finally:
            executor.shutdown()

    def test_deadline_abandons_the_straggler(self):
        release = threading.Event()

        def straggler():
            assert release.wait(5.0)
            return "late"

        obs, _ = make_obs()
        executor = MemberExecutor(parallel="on", max_workers=2, obs=obs)
        try:
            outcomes = executor.map([
                MemberTask("slow", straggler, deadline=0.05),
                MemberTask("fast", lambda: "ok"),
            ])
            assert outcomes[0].timed_out
            assert isinstance(outcomes[0].error, DeadlineExceededError)
            assert outcomes[1].value == "ok"
            assert obs.metrics.counter_value("connector.pool.rejected") >= 1
        finally:
            release.set()
            executor.shutdown()

    def test_hedge_wins_when_the_primary_stalls(self):
        release = threading.Event()
        attempts = []

        def scan():
            attempts.append(threading.get_ident())
            if len(attempts) == 1:
                assert release.wait(5.0)  # the primary stalls
                return "stale"
            return "fresh"  # the hedge returns immediately

        obs, _ = make_obs()
        executor = MemberExecutor(parallel="on", max_workers=4,
                                  hedge_after=0.02, obs=obs)
        try:
            outcomes = executor.map([
                MemberTask("m", scan, hedge=True),
                MemberTask("other", lambda: "other"),
            ])
            assert outcomes[0].hedged
            assert outcomes[0].value == "fresh"
            metrics = obs.metrics
            assert metrics.counter_value("connector.pool.hedges") == 1
            assert metrics.counter_value("connector.pool.rejected") >= 1
        finally:
            release.set()
            executor.shutdown()

    def test_pool_counters_balance(self):
        obs, _ = make_obs()
        executor = MemberExecutor(parallel="on", max_workers=4, obs=obs)
        try:
            executor.map([MemberTask(f"m{i}", lambda i=i: i)
                          for i in range(6)])
            metrics = obs.metrics
            assert metrics.counter_value("connector.pool.submitted") == 6
            assert metrics.counter_value("connector.pool.completed") == 6
            assert metrics.counter_value("connector.pool.rejected") == 0
        finally:
            executor.shutdown()

    def test_latency_histogram_is_tagged_by_member(self):
        obs, _ = make_obs()
        executor = MemberExecutor(parallel="on", max_workers=2, obs=obs)
        try:
            executor.map([
                MemberTask("alpha", lambda: time.sleep(0.01)),
                MemberTask("beta", lambda: None),
            ])
            snapshot = obs.metrics.snapshot()["histograms"]
            tagged = {name for name in snapshot
                      if name.startswith("connector.pool.latency")}
            assert any("alpha" in name for name in tagged)
            assert any("beta" in name for name in tagged)
        finally:
            executor.shutdown()


class TestSpans:
    def test_scatter_span_has_a_child_per_member_in_task_order(self):
        obs, collector = make_obs()
        executor = MemberExecutor(parallel="on", max_workers=4, obs=obs)
        try:
            executor.map(
                [MemberTask(n, lambda n=n: n) for n in ("c", "a", "b")],
                label="probe",
            )
            root = collector.find("scatter-gather")
            assert root is not None
            assert root.attributes["op"] == "probe"
            assert root.attributes["tasks"] == 3
            assert [child.name for child in root.children] == \
                ["scatter-gather.member"] * 3
            assert [child.attributes["member"] for child in root.children] \
                == ["c", "a", "b"]
            assert all(child.attributes["latency_ms"] >= 0.0
                       for child in root.children)
        finally:
            executor.shutdown()

    def test_worker_spans_nest_under_their_member_span(self):
        """A span opened by the task callable on the worker thread lands
        under that task's pre-attached member span."""
        obs, collector = make_obs()
        executor = MemberExecutor(parallel="on", max_workers=2, obs=obs)

        def traced(name):
            with obs.span("connector.scan", member=name):
                return name

        try:
            executor.map([
                MemberTask("x", lambda: traced("x")),
                MemberTask("y", lambda: traced("y")),
            ])
            root = collector.find("scatter-gather")
            for child in root.children:
                inner = [grand.name for grand in child.children]
                assert inner == ["connector.scan"]
                assert child.children[0].attributes["member"] == \
                    child.attributes["member"]
        finally:
            executor.shutdown()

    def test_serial_path_opens_no_scatter_span(self):
        obs, collector = make_obs()
        executor = MemberExecutor(parallel="off", obs=obs)
        executor.map([MemberTask(n, lambda n=n: n) for n in ("a", "b")])
        assert collector.find("scatter-gather") is None

    def test_failed_member_span_records_the_error(self):
        obs, collector = make_obs()
        executor = MemberExecutor(parallel="on", max_workers=2, obs=obs)

        def fail():
            raise ValueError("boom")

        try:
            executor.map([
                MemberTask("bad", fail),
                MemberTask("good", lambda: 1),
            ])
            root = collector.find("scatter-gather")
            by_member = {child.attributes["member"]: child
                         for child in root.children}
            assert by_member["bad"].attributes["error"] == "ValueError"
            assert "error" not in by_member["good"].attributes
        finally:
            executor.shutdown()


class TestOutcomeRepr:
    def test_reprs_are_stable(self):
        assert "ok" in repr(MemberOutcome("m", value=1))
        assert "skipped" in repr(MemberOutcome("m", skipped=True))
        assert "ValueError" in repr(MemberOutcome("m", error=ValueError()))
        assert "hedge" in repr(MemberTask("m", lambda: 1)).lower()
