"""Unit tests for rule analysis, pattern overlap, stratification and
make-true semantics."""

from __future__ import annotations

import pytest

from repro.core.parser import parse_rule
from repro.core.rules import (
    analyze_rule,
    body_references,
    make_true,
    patterns_overlap,
    resolve_target,
)
from repro.core.stratify import is_recursive_stratum, stratify
from repro.core.substitution import Substitution
from repro.core.terms import Const, Var
from repro.errors import SemanticError, StratificationError
from repro.objects import Atom, TupleObject, from_python, to_python


def analyzed(source, merge_on=()):
    return analyze_rule(parse_rule(source), merge_on=merge_on)


class TestAnalyzeRule:
    def test_target_extraction(self):
        rule = analyzed(".dbI.p(.x=X) <- .euter.r(.stkCode=X)")
        assert rule.target == (Const("dbI"), Const("p"))
        assert not rule.is_higher_order

    def test_higher_order_target(self):
        rule = analyzed(".dbO.S(.x=X) <- .euter.r(.stkCode=S, .clsPrice=X)")
        assert rule.target == (Const("dbO"), Var("S"))
        assert rule.is_higher_order

    def test_deep_target(self):
        rule = analyzed(".a.b.c(.x=X) <- .euter.r(.stkCode=X)")
        assert rule.target == (Const("a"), Const("b"), Const("c"))

    def test_relation_only_head(self):
        rule = analyzed(".dbI.flag() <- .euter.r(.stkCode=hp)")
        assert rule.constructor is None

    def test_unsafe_body_rejected(self):
        with pytest.raises(SemanticError):
            analyzed(".dbI.p(.x=X) <- .euter.r(.stkCode=X, .clsPrice>Y)")

    def test_merge_on_must_be_in_head(self):
        with pytest.raises(SemanticError):
            analyzed(".dbI.p(.x=X) <- .euter.r(.stkCode=X)", merge_on=("zzz",))

    def test_merge_on_with_higher_order_constructor_allowed(self):
        rule = analyzed(
            ".dbC.r(.date=D, .S=P) <- .dbI.p(.date=D, .stk=S, .price=P)",
            merge_on=("date",),
        )
        assert rule.merge_on == ("date",)


class TestBodyReferences:
    def test_simple_positive(self):
        rule = parse_rule(".h.x(.a=A) <- .d.r(.a=A), .e.s(.b=A)")
        refs = body_references(rule.body)
        patterns = {(tuple(t.value for t in p), pos) for p, pos in refs}
        assert (("d", "r"), True) in patterns
        assert (("e", "s"), True) in patterns

    def test_negated_reference(self):
        rule = parse_rule(".h.x(.a=A) <- .d.r(.a=A), .d.s~(.a=A)")
        refs = body_references(rule.body)
        flags = {tuple(getattr(t, "value", None) for t in p): pos for p, pos in refs}
        assert flags[("d", "s")] is False

    def test_higher_order_reference(self):
        rule = parse_rule(".h.x(.a=Y) <- .X.Y(.a=A)")
        [(pattern, positive)] = body_references(rule.body)
        assert isinstance(pattern[0], Var) and isinstance(pattern[1], Var)


class TestPatternsOverlap:
    def test_constants(self):
        assert patterns_overlap((Const("a"), Const("b")), (Const("a"), Const("b")))
        assert not patterns_overlap((Const("a"), Const("b")), (Const("a"), Const("c")))

    def test_variables_match_anything(self):
        assert patterns_overlap((Var("X"), Const("b")), (Const("a"), Const("b")))
        assert patterns_overlap((Const("a"), Var("Y")), (Const("a"), Const("b")))

    def test_prefix_matches(self):
        assert patterns_overlap((Const("a"),), (Const("a"), Const("b")))
        assert patterns_overlap((Const("a"), Const("b")), (Const("a"),))


class TestStratify:
    def test_independent_rules_one_each(self):
        rules = [
            analyzed(".v.a(.x=X) <- .d.r(.x=X)"),
            analyzed(".v.b(.x=X) <- .d.s(.x=X)"),
        ]
        strata = stratify(rules)
        assert sum(len(s) for s in strata) == 2

    def test_dependency_ordering(self):
        first = analyzed(".v.b(.x=X) <- .v.a(.x=X)")
        second = analyzed(".v.a(.x=X) <- .d.r(.x=X)")
        strata = stratify([first, second])
        # a's rule must evaluate before b's rule.
        flat = [rule for stratum in strata for rule in stratum]
        assert flat.index(second) < flat.index(first)

    def test_recursive_scc_groups_together(self):
        rules = [
            analyzed(".v.even(.x=X) <- .d.zero(.x=X)"),
            analyzed(".v.even(.x=X) <- .v.odd(.y=X)"),
            analyzed(".v.odd(.y=X) <- .v.even(.x=X)"),
        ]
        strata = stratify(rules)
        recursive = [s for s in strata if is_recursive_stratum(s)]
        assert recursive and len(recursive[0]) == 2

    def test_negative_cycle_rejected(self):
        rules = [
            analyzed(".v.a(.x=X) <- .d.r(.x=X), .v.b~(.x=X)"),
            analyzed(".v.b(.x=X) <- .v.a(.x=X)"),
        ]
        with pytest.raises(StratificationError):
            stratify(rules)

    def test_higher_order_negative_edge(self):
        # A negated higher-order reference depends on every head.
        rules = [
            analyzed(".v.a(.x=X) <- .d.r(.x=X), .X.Y~(.q=X)"),
            analyzed(".v.b(.x=X) <- .v.a(.x=X)"),
        ]
        # v.a negatively references .X.Y which overlaps v.b's target, and
        # v.b references v.a: a negative cycle.
        with pytest.raises(StratificationError):
            stratify(rules)


class TestMakeTrue:
    def build(self, source, merge_on=()):
        return analyzed(source, merge_on=merge_on)

    def test_inserts_fact(self):
        rule = self.build(".v.p(.x=X) <- .d.r(.x=X)")
        overlay = TupleObject()
        subst = Substitution.of({"X": Atom(1)})
        assert make_true(rule, subst, overlay) is not None
        assert to_python(overlay) == {"v": {"p": [{"x": 1}]}}

    def test_duplicate_fact_reports_no_change(self):
        rule = self.build(".v.p(.x=X) <- .d.r(.x=X)")
        overlay = TupleObject()
        subst = Substitution.of({"X": Atom(1)})
        make_true(rule, subst, overlay)
        assert make_true(rule, subst, overlay) is None

    def test_higher_order_target_resolution(self):
        rule = self.build(".dbO.S(.x=X) <- .d.r(.s=S, .x=X)")
        overlay = TupleObject()
        make_true(rule, Substitution.of({"S": Atom("hp"), "X": Atom(1)}), overlay)
        make_true(rule, Substitution.of({"S": Atom("ibm"), "X": Atom(2)}), overlay)
        assert sorted(overlay.get("dbO").attr_names()) == ["hp", "ibm"]

    def test_unbound_target_variable_raises(self):
        rule = self.build(".dbO.S(.x=X) <- .d.r(.s=S, .x=X)")
        with pytest.raises(SemanticError):
            resolve_target(rule.target, Substitution.of({"X": Atom(1)}))

    def test_merge_on_extends_matching_element(self):
        rule = self.build(
            ".v.r(.date=D, .S=P) <- .d.q(.date=D, .s=S, .p=P)",
            merge_on=("date",),
        )
        overlay = TupleObject()
        make_true(
            rule,
            Substitution.of({"D": Atom("d1"), "S": Atom("hp"), "P": Atom(1)}),
            overlay,
        )
        make_true(
            rule,
            Substitution.of({"D": Atom("d1"), "S": Atom("ibm"), "P": Atom(2)}),
            overlay,
        )
        make_true(
            rule,
            Substitution.of({"D": Atom("d2"), "S": Atom("hp"), "P": Atom(3)}),
            overlay,
        )
        rows = to_python(overlay.get("v").get("r"))
        assert {"date": "d1", "hp": 1, "ibm": 2} in rows
        assert {"date": "d2", "hp": 3} in rows
        assert len(rows) == 2

    def test_merge_is_idempotent(self):
        rule = self.build(
            ".v.r(.date=D, .S=P) <- .d.q(.date=D, .s=S, .p=P)",
            merge_on=("date",),
        )
        overlay = TupleObject()
        subst = Substitution.of({"D": Atom("d1"), "S": Atom("hp"), "P": Atom(1)})
        assert make_true(rule, subst, overlay) is not None
        assert make_true(rule, subst, overlay) is None

    def test_relation_creation_counts_as_change(self):
        rule = self.build(".v.flag() <- .d.r(.x=X)")
        overlay = TupleObject()
        assert make_true(rule, Substitution.empty(), overlay) is not None
        assert make_true(rule, Substitution.empty(), overlay) is None
        assert len(overlay.get("v").get("flag")) == 0

    def test_path_collision_detected(self):
        rule = self.build(".v.p(.x=X) <- .d.r(.x=X)")
        overlay = from_python({"v": 5})  # v is an atom, not a tuple
        with pytest.raises(SemanticError):
            make_true(rule, Substitution.of({"X": Atom(1)}), overlay)
