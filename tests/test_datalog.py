"""Unit tests for the first-order Datalog engine and the IDL compiler."""

from __future__ import annotations

import pytest

from repro.core.parser import parse_query
from repro.core.terms import Const, Var
from repro.datalog import (
    Comparison,
    DatalogEngine,
    answers_via_datalog,
    compile_query,
    encode_universe,
    lit,
    notlit,
)
from repro.datalog.rules import DatalogRule, NegatedConjunction
from repro.errors import DatalogError, RewriteError, StratificationError
from repro.workloads.stocks import paper_universe


@pytest.fixture
def tc_engine():
    engine = DatalogEngine()
    for a, b in [(1, 2), (2, 3), (3, 4), (5, 6)]:
        engine.fact("edge", a, b)
    engine.rule(lit("tc", "X", "Y"), lit("edge", "X", "Y"))
    engine.rule(lit("tc", "X", "Y"), lit("tc", "X", "Z"), lit("edge", "Z", "Y"))
    return engine


class TestEvaluation:
    def test_transitive_closure(self, tc_engine):
        idb = tc_engine.evaluate()
        assert idb.facts("tc") == {
            (1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4), (5, 6),
        }

    def test_naive_agrees_with_seminaive(self, tc_engine):
        assert tc_engine.evaluate("naive").facts("tc") == tc_engine.evaluate(
            "seminaive"
        ).facts("tc")

    def test_query_with_constants(self, tc_engine):
        results = tc_engine.query([lit("tc", 1, "Y")])
        assert {row["Y"] for row in results} == {2, 3, 4}

    def test_comparison_builtin(self, tc_engine):
        results = tc_engine.query(
            [lit("tc", "X", "Y"), Comparison(Var("Y"), ">", Const(3))]
        )
        assert {(row["X"], row["Y"]) for row in results} == {
            (1, 4), (2, 4), (3, 4), (5, 6),
        }

    def test_negated_literal_requires_bound_vars(self, tc_engine):
        tc_engine.rule(lit("node", "X"), lit("edge", "X", "Y"))
        # Y unbound in the negation -> rejected at rule construction.
        with pytest.raises(DatalogError):
            tc_engine.rule(
                lit("source", "X"), lit("node", "X"), notlit("tc", "Y", "X"),
            )

    def test_sources_via_negated_conjunction(self, tc_engine):
        tc_engine.rule(lit("node", "X"), lit("edge", "X", "Y"))
        tc_engine.rule(
            lit("source", "X"),
            lit("node", "X"),
            NegatedConjunction([lit("edge", "Y", "X")]),
        )
        assert tc_engine.evaluate().facts("source") == {(1,), (5,)}

    def test_negation_semantics(self):
        engine = DatalogEngine()
        engine.fact("p", 1)
        engine.fact("p", 2)
        engine.fact("q", 1)
        engine.rule(lit("only_p", "X"), lit("p", "X"), notlit("q", "X"))
        assert engine.evaluate().facts("only_p") == {(2,)}

    def test_unsafe_rule_rejected(self):
        with pytest.raises(DatalogError):
            DatalogRule(lit("h", "X", "Y"), [lit("p", "X")])
        with pytest.raises(DatalogError):
            DatalogRule(lit("h", "X"), [lit("p", "X"), notlit("q", "Z")])

    def test_negation_through_recursion_rejected(self):
        engine = DatalogEngine()
        engine.fact("p", 1)
        engine.rule(lit("a", "X"), lit("p", "X"), notlit("b", "X"))
        engine.rule(lit("b", "X"), lit("a", "X"))
        with pytest.raises(StratificationError):
            engine.evaluate()

    def test_stratified_negation(self):
        engine = DatalogEngine()
        for value in (1, 2, 3):
            engine.fact("p", value)
        engine.fact("bad", 2)
        engine.rule(lit("good", "X"), lit("p", "X"), notlit("bad", "X"))
        engine.rule(lit("best", "X"), lit("good", "X"), notlit("bad", "X"))
        assert engine.evaluate().facts("best") == {(1,), (3,)}

    def test_inline_negated_conjunction(self):
        engine = DatalogEngine()
        engine.fact("p", 1, 10)
        engine.fact("p", 2, 20)
        engine.fact("p", 1, 5)
        # max per key: p(K, V) with no p(K, W), W > V
        body = [
            lit("p", "K", "V"),
            NegatedConjunction(
                [lit("p", "K", "W"), Comparison(Var("W"), ">", Var("V"))]
            ),
        ]
        results = engine.query(body)
        assert {(row["K"], row["V"]) for row in results} == {(1, 10), (2, 20)}


class TestEncoding:
    def test_encode_paper_universe(self):
        edb = encode_universe(paper_universe())
        assert edb.count("db") == 3
        assert edb.count("rel") == 4
        # euter: 4 rows x 3 attrs; chwab: 2 x 3; ource: 4 x 2
        assert edb.count("cell") == 12 + 6 + 8

    def test_encode_rejects_nested_objects(self):
        from repro.objects import Universe

        universe = Universe.from_python({"d": {"r": [{"a": {"deep": 1}}]}})
        with pytest.raises(RewriteError):
            encode_universe(universe)


class TestCompilation:
    @pytest.mark.parametrize(
        "source",
        [
            "?.euter.r(.stkCode=S, .clsPrice>60)",
            "?.euter.r(.stkCode=hp, .clsPrice>60, .date=D),"
            " .euter.r(.stkCode=ibm, .clsPrice>150, .date=D)",
            "?.euter.r(.stkCode=hp, .clsPrice=P, .date=D),"
            " .euter.r~(.stkCode=hp, .clsPrice>P)",
            "?.chwab.r(.S>100), S != date",
            "?.ource.S(.clsPrice>100)",
            "?.X.Y",
            "?.X.hp",
            "?.X.Y(.stkCode)",
            "?.chwab.r(.date=D, .S=P), .ource.S(.date=D, .clsPrice=P)",
            "?.euter.Y, .chwab.Y, .ource.Y",
        ],
    )
    def test_compiled_agrees_with_interpreter(self, source):
        """The headline equivalence: compiled Datalog == IDL interpreter
        on every paper query."""
        from repro.core.evaluator import answers

        universe = paper_universe()
        query = parse_query(source)
        via_idl = {
            tuple(sorted((name, obj.value) for name, obj in a.as_dict().items()))
            for a in answers(query, universe)
        }
        via_datalog = {
            tuple(sorted(row.items()))
            for row in answers_via_datalog(query, universe)
        }
        assert via_idl == via_datalog

    def test_update_expressions_rejected(self):
        with pytest.raises(RewriteError):
            compile_query(parse_query("?.euter.r+(.stkCode=hp)"))

    def test_whole_set_binding_rejected(self):
        with pytest.raises(RewriteError):
            compile_query(parse_query("?.euter.r=X"))

    def test_compiled_shape(self):
        compiled = compile_query(parse_query("?.ource.S(.clsPrice>100)"))
        predicates = [
            item.predicate
            for item in compiled.body
            if hasattr(item, "predicate")
        ]
        assert predicates[0] == "rel"
        assert "cell" in predicates
        assert compiled.variables == ["S"]
