"""Parallel/serial equivalence: scatter-gather is an optimization,
never a semantics change.

The central property: a federation built with ``parallel="on"`` and
one built with ``parallel="off"`` — same members, same fault schedule
— produce identical ``QueryResult``/``UpdateResult`` *contents*
(answers, member outcomes, flushed flags, journal update ids) and,
when a flush fails partway, converge to identical member states after
recovery. Pool-level metrics (submitted/completed counters, latency
histograms) legitimately differ between the modes and are exactly the
things these tests never compare.

Fault schedules are per-member scripted counters
(:meth:`FaultyConnector.fail_next`), which are order-independent: each
member's connector is only ever driven by its own task, so the same
schedule bites identically no matter how the pool interleaves members.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MemberUnavailableError, StaleMemberError
from repro.multidb import (
    FaultyConnector,
    Federation,
    FederationConfig,
    InMemoryConnector,
    InMemoryJournal,
    ResiliencePolicy,
)
from repro.multidb.resilience import FakeClock
from repro.workloads.stocks import StockWorkload

pytestmark = pytest.mark.concurrency

STYLES = ("euter", "chwab", "ource")


def canon(relations):
    return {
        rel: sorted(json.dumps(row, sort_keys=True) for row in rows)
        for rel, rows in relations.items()
    }


class Twin:
    """One federation (either mode) over per-member fault injectors."""

    def __init__(self, workload, parallel):
        self.clock = FakeClock()
        self.faulty = {
            style: FaultyConnector(
                InMemoryConnector(workload.relations_for(style)),
                clock=self.clock,
            )
            for style in STYLES
        }
        policy = ResiliencePolicy(max_attempts=2, failure_threshold=100,
                                  jitter=0.0)
        self.federation = Federation.from_config(
            FederationConfig(parallel=parallel, journal=InMemoryJournal())
        )
        for style in STYLES:
            self.federation.add_member(style, style,
                                       connector=self.faulty[style],
                                       policy=policy, clock=self.clock)

    def schedule(self, counts):
        for style, count in zip(STYLES, counts):
            if count:
                self.faulty[style].fail_next(count)

    def member_states(self):
        return {style: canon(self.faulty[style].inner.scan())
                for style in STYLES}

    def statuses(self):
        return {entry.member: entry.status
                for entry in self.federation.availability()}


def run_schedule(workload, parallel, install_faults, update_faults):
    """Drive one federation through the schedule; return the full
    observable record (everything but pool metrics)."""
    twin = Twin(workload, parallel)
    record = {}

    twin.schedule(install_faults)
    try:
        twin.federation.install()
    except MemberUnavailableError as exc:
        # Every member down: both modes must refuse identically.
        record["install"] = ("raised", str(exc))
        return record
    record["quarantined"] = sorted(twin.federation.quarantined)
    record["statuses"] = twin.statuses()

    answers = twin.federation.query(
        "?.dbI.p(.date=D, .stk=S, .price=P)", on_unavailable="partial"
    )
    record["answers"] = sorted(
        (a["D"], a["S"], a["P"]) for a in answers
    )
    record["complete"] = answers.complete

    twin.schedule(update_faults)
    try:
        result = twin.federation.insert_quote("nova", "9/9/99", 7.0)
    except (MemberUnavailableError, StaleMemberError) as exc:
        record["update"] = ("raised", type(exc).__name__)
    else:
        record["update"] = (
            "ok", result.member_outcomes, result.flushed, result.update_id,
            result.inserted, result.succeeded,
        )

    # Converge: recovery replays drain any scripted failures still
    # queued, probe sweeps re-attach/resync whatever they left behind.
    for _ in range(3):
        twin.federation.recover()
        twin.federation.probe_all()
    record["pending"] = len(twin.federation.journal.pending())
    record["final_statuses"] = twin.statuses()
    record["states"] = twin.member_states()
    return record


@given(
    install_faults=st.lists(st.integers(0, 2), min_size=3, max_size=3),
    update_faults=st.lists(st.integers(0, 3), min_size=3, max_size=3),
)
@settings(max_examples=25, deadline=None, derandomize=True)
def test_parallel_and_serial_runs_are_observably_identical(
    install_faults, update_faults
):
    workload = StockWorkload(n_stocks=2, n_days=2, seed=5)
    parallel = run_schedule(workload, "on", install_faults, update_faults)
    serial = run_schedule(workload, "off", install_faults, update_faults)
    assert parallel == serial
    assert parallel.get("pending", 0) == 0


class TestHealthyEquivalence:
    """Spot checks on the fault-free fast path."""

    def setup_method(self):
        self.workload = StockWorkload(n_stocks=3, n_days=3, seed=11)

    def build(self, parallel):
        twin = Twin(self.workload, parallel)
        twin.federation.install()
        return twin.federation

    def test_queries_and_updates_agree(self):
        parallel = self.build("on")
        serial = self.build("off")
        assert parallel.unified_quotes() == serial.unified_quotes()
        left = parallel.insert_quote("nova", "9/9/99", 7.0)
        right = serial.insert_quote("nova", "9/9/99", 7.0)
        assert left.member_outcomes == right.member_outcomes
        assert left.flushed is right.flushed is True
        assert left.update_id == right.update_id
        assert parallel.unified_quotes() == serial.unified_quotes()

    def test_probe_all_agrees(self):
        parallel = self.build("on")
        serial = self.build("off")
        assert parallel.probe_all() == serial.probe_all()
        left = parallel.health_report()
        right = serial.health_report()
        assert {name: left[name]["status"] for name in STYLES} == \
            {name: right[name]["status"] for name in STYLES}
        assert left["journal"] == right["journal"]

    def test_parallel_flush_traces_a_scatter(self):
        federation = self.build("on")
        result = federation.insert_quote("nova", "9/9/99", 7.0)
        scatter = result.trace.find("scatter-gather")
        assert scatter is not None
        members = sorted(
            child.attributes["member"]
            for child in scatter.children
            if child.name == "scatter-gather.member"
        )
        assert members == sorted(result.member_outcomes)

    def test_parallel_flush_reports_pool_metrics(self):
        federation = self.build("on")
        result = federation.insert_quote("nova", "9/9/99", 7.0)
        counters = result.metrics["counters"]
        assert counters.get("connector.pool.submitted", 0) >= len(STYLES)
        latencies = [name for name in result.metrics["histograms"]
                     if name.startswith("connector.pool.latency")]
        assert latencies

    def test_serial_flush_stays_scatter_free(self):
        federation = self.build("off")
        result = federation.insert_quote("nova", "9/9/99", 7.0)
        assert result.trace.find("scatter-gather") is None
