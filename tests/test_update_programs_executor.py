"""Unit tests for the update-program executor beyond the paper examples."""

from __future__ import annotations

import pytest

from repro import IdlEngine
from repro.errors import BindingError, UpdateError
from tests.conftest import answers_set


@pytest.fixture
def engine():
    built = IdlEngine()
    built.add_database(
        "d", {"r": [{"k": 1, "v": 10}, {"k": 2, "v": 20}], "log": []}
    )
    built.add_database("u", {})
    return built


class TestDispatch:
    def test_query_conjuncts_still_work_in_requests(self, engine):
        # Atomic plus REPLACES the value: v becomes V+1 (Section 5.2).
        engine.define_update(".u.bump(.k=K) -> .d.r(.k=K, .v=V), .d.r(.k=K, .v+=V+1)")
        engine.call("u", "bump", k=1)
        assert engine.ask("?.d.r(.k=1, .v=11)")

    def test_same_shape_without_registration_is_plain_query(self, engine):
        # .d.r(.k=1) looks like a call but no program exists: plain query.
        result = engine.update("?.d.r(.k=1, .v=V), .d.log+(.saw=V)")
        assert result.succeeded
        assert engine.ask("?.d.log(.saw=10)")

    def test_call_failure_drops_the_branch(self, engine):
        engine.define_update(".u.del(.k=K) -> .d.r(.k=K, .v=V), .d.r-(.k=K, .v=V)")
        # k=3 matches nothing: the clause body fails, so the call fails.
        result = engine.update("?.u.del(.k=3)")
        assert not result.succeeded

    def test_call_per_substitution(self, engine):
        engine.define_update(".u.del(.k=K) -> .d.r-(.k=K)")
        result = engine.update("?.d.r(.k=K), .u.del(.k=K)")
        assert result.succeeded
        assert not engine.ask("?.d.r(.k=K)")

    def test_programs_bind_nothing_outward(self, engine):
        engine.define_update(".u.peek(.k=K) -> .d.r(.k=K, .v=V)")
        result = engine.update("?.u.peek(.k=1)")
        [subst] = result.substitutions
        assert subst.lookup("V") is None

    def test_unknown_argument_name_rejected(self, engine):
        engine.define_update(".u.del(.k=K) -> .d.r-(.k=K)")
        with pytest.raises(BindingError):
            engine.update("?.u.del(.zzz=1)")

    def test_malformed_argument_item_rejected(self, engine):
        engine.define_update(".u.del(.k=K) -> .d.r-(.k=K)")
        with pytest.raises(UpdateError):
            engine.update("?.u.del(.k>1)")

    def test_update_request_queries_see_base_only(self, engine):
        """Documented limitation (semantics_notes.md §10): derived views
        are not visible to query conjuncts inside update requests."""
        engine.define(".v.p(.k=K) <- .d.r(.k=K)")
        assert engine.ask("?.v.p(.k=1)")
        result = engine.update("?.v.p(.k=K), .d.log+(.saw=K)")
        assert not result.succeeded  # the view is invisible mid-request
        # The supported pattern: bind outside, pass in.
        [answer] = engine.query("?.v.p(.k=K)", K=1)
        result = engine.update("?.d.log+(.saw=K)", K=1)
        assert result.succeeded and engine.ask("?.d.log(.saw=1)")


class TestClauseSelection:
    def test_constant_params_select_clauses(self, engine):
        engine.define_update(
            ".u.route(.dir=up, .k=K) -> .d.log+(.event=up, .k=K)\n"
            ".u.route(.dir=down, .k=K) -> .d.log+(.event=down, .k=K)"
        )
        engine.update("?.u.route(.dir=up, .k=1)")
        results = engine.query("?.d.log(.event=E, .k=1)")
        assert answers_set(results, "E") == {"up"}

    def test_no_matching_constant_raises_binding_error(self, engine):
        engine.define_update(".u.route(.dir=up) -> .d.log+(.event=up)")
        with pytest.raises(BindingError):
            engine.update("?.u.route(.dir=sideways)")

    def test_signature_incompatible_clauses_are_skipped(self, engine):
        engine.define_update(
            # Clause A needs v (a plus); clause B only needs k.
            ".u.set(.k=K, .v=V) -> .d.r(.k=K, .v+=V)\n"
            ".u.set(.k=K, .v=V) -> .d.log+(.touched=K)"
        )
        result = engine.update("?.u.set(.k=1)")  # v not given
        assert result.succeeded
        assert engine.ask("?.d.log(.touched=1)")
        assert engine.ask("?.d.r(.k=1, .v=10)")  # clause A skipped

    def test_all_compatible_clauses_execute(self, engine):
        engine.define_update(
            ".u.twice(.k=K) -> .d.log+(.a=K)\n.u.twice(.k=K) -> .d.log+(.b=K)"
        )
        engine.update("?.u.twice(.k=1)")
        assert engine.ask("?.d.log(.a=1)") and engine.ask("?.d.log(.b=1)")


class TestViewUpdateDispatch:
    def test_view_plus_requires_program(self, engine):
        engine.define(".v.big(.k=K) <- .d.r(.k=K, .v>15)")
        with pytest.raises(UpdateError):
            engine.update("?.v.big+(.k=9)")

    def test_view_minus_requires_program(self, engine):
        engine.define(".v.big(.k=K) <- .d.r(.k=K, .v>15)")
        with pytest.raises(UpdateError):
            engine.update("?.v.big-(.k=2)")

    def test_registered_program_intercepts(self, engine):
        engine.define(".v.big(.k=K) <- .d.r(.k=K, .v>15)")
        engine.define_update(".v.big-(.k=K) -> .d.r-(.k=K)")
        result = engine.update("?.v.big-(.k=2)")
        assert result.succeeded
        assert not engine.ask("?.v.big(.k=2)")
        assert not engine.ask("?.d.r(.k=2)")

    def test_self_guarding_base_program_is_recursive(self, engine):
        # A '+' program on a base relation whose body performs the same
        # '+' would dispatch to itself: rejected by the nonrecursion
        # check. Guarding base updates needs a differently-named program.
        from repro.errors import RecursionError_

        with pytest.raises(RecursionError_):
            engine.define_update(
                ".d.r+(.k=K, .v=V) -> .d.r+(.k=K, .v=V), .d.log+(.ins=K)"
            )

    def test_wildcard_binds_relation_name(self, engine):
        engine.add_database("views", {})
        engine.define(".views.S(.k=K) <- .d.r(.k=K, .v=V), S = mirror")
        engine.define_update(
            ".views.S-(.k=K) -> .d.r-(.k=K), .d.log+(.via=S)"
        )
        result = engine.update("?.views.mirror-(.k=1)")
        assert result.succeeded
        assert engine.ask("?.d.log(.via=mirror)")
