"""Unit tests for the fixpoint module internals."""

from __future__ import annotations

import pytest

from repro.core.fixpoint import count_overlay_facts, materialize
from repro.core.parser import parse_rule
from repro.core.rules import analyze_rule
from repro.objects import Universe, to_python


def rules(*sources, merge_on=None):
    analyzed = []
    for index, source in enumerate(sources):
        keys = ()
        if merge_on and index in merge_on:
            keys = merge_on[index]
        analyzed.append(analyze_rule(parse_rule(source), merge_on=keys))
    return analyzed


@pytest.fixture
def graph():
    return Universe.from_python(
        {"g": {"edge": [{"a": 1, "b": 2}, {"a": 2, "b": 3}, {"a": 3, "b": 1}]}}
    )


TC = (
    ".g.tc(.a=X, .b=Y) <- .g.edge(.a=X, .b=Y)",
    ".g.tc(.a=X, .b=Y) <- .g.tc(.a=X, .b=Z), .g.edge(.a=Z, .b=Y)",
)


class TestMethods:
    def test_unknown_method_rejected(self, graph):
        with pytest.raises(ValueError):
            materialize(rules(*TC), graph, method="magic")

    def test_cycle_closure_is_complete(self, graph):
        overlay, _ = materialize(rules(*TC), graph)
        assert len(overlay.get("g").get("tc")) == 9  # 3x3 full closure

    def test_methods_agree_on_cycles(self, graph):
        naive, _ = materialize(rules(*TC), graph, method="naive")
        semi, _ = materialize(rules(*TC), graph, method="seminaive")
        assert naive == semi

    def test_seminaive_does_less_work_on_chains(self):
        chain = Universe.from_python(
            {"g": {"edge": [{"a": i, "b": i + 1} for i in range(12)]}}
        )
        _, naive_stats = materialize(rules(*TC), chain, method="naive")
        _, semi_stats = materialize(rules(*TC), chain, method="seminaive")
        assert semi_stats.rounds <= naive_stats.rounds + 1
        assert semi_stats.derivations == naive_stats.derivations

    def test_stats_fields(self, graph):
        _, stats = materialize(rules(*TC), graph)
        assert stats.strategy == "seminaive"
        assert stats.rounds >= 2
        assert "seminaive" in repr(stats)


class TestDeltaVariants:
    def test_mutual_recursion(self):
        universe = Universe.from_python(
            {"g": {"zero": [{"n": 0}], "succ": [{"a": i, "b": i + 1}
                                                for i in range(6)]}}
        )
        program = rules(
            ".g.even(.n=N) <- .g.zero(.n=N)",
            ".g.even(.n=N) <- .g.odd(.n=M), .g.succ(.a=M, .b=N)",
            ".g.odd(.n=N) <- .g.even(.n=M), .g.succ(.a=M, .b=N)",
        )
        for method in ("naive", "seminaive"):
            overlay, _ = materialize(program, universe, method=method)
            evens = {row["n"] for row in to_python(overlay.get("g").get("even"))}
            odds = {row["n"] for row in to_python(overlay.get("g").get("odd"))}
            assert evens == {0, 2, 4, 6}
            assert odds == {1, 3, 5}

    def test_doubly_recursive_rule(self):
        # Both body conjuncts reference the head: two delta variants.
        universe = Universe.from_python(
            {"g": {"edge": [{"a": 1, "b": 2}, {"a": 2, "b": 3},
                            {"a": 3, "b": 4}, {"a": 4, "b": 5}]}}
        )
        program = rules(
            ".g.tc(.a=X, .b=Y) <- .g.edge(.a=X, .b=Y)",
            ".g.tc(.a=X, .b=Y) <- .g.tc(.a=X, .b=Z), .g.tc(.a=Z, .b=Y)",
        )
        for method in ("naive", "seminaive"):
            overlay, _ = materialize(program, universe, method=method)
            assert len(overlay.get("g").get("tc")) == 10

    def test_merge_rule_in_recursive_stratum_falls_back(self):
        # A merge_on rule mutually recursive with a plain rule still
        # converges (the merge rule re-evaluates fully each round).
        universe = Universe.from_python(
            {"d": {"q": [{"date": "d1", "s": "hp", "p": 1},
                         {"date": "d1", "s": "ibm", "p": 2}]}}
        )
        program = rules(
            ".v.r(.date=D, .S=P) <- .d.q(.date=D, .s=S, .p=P)",
            ".v.r(.date=D, .S=P) <- .v.echo(.date=D, .s=S, .p=P)",
            ".v.echo(.date=D, .s=S, .p=P) <- .d.q(.date=D, .s=S, .p=P)",
            merge_on={0: ("date",), 1: ("date",)},
        )
        overlay, _ = materialize(program, universe)
        rows = to_python(overlay.get("v").get("r"))
        assert rows == [{"date": "d1", "hp": 1, "ibm": 2}]

    def test_higher_order_recursive_view(self):
        # Head relation name data-dependent AND recursive through it.
        universe = Universe.from_python(
            {"d": {"q": [{"g": "grp", "n": 1}]},
             "meta": {"next": [{"a": 1, "b": 2}, {"a": 2, "b": 3}]}}
        )
        program = rules(
            ".v.G(.n=N) <- .d.q(.g=G, .n=N)",
            ".v.G(.n=N) <- .v.G(.n=M), .meta.next(.a=M, .b=N)",
        )
        for method in ("naive", "seminaive"):
            overlay, _ = materialize(program, universe, method=method)
            values = {row["n"] for row in to_python(overlay.get("v").get("grp"))}
            assert values == {1, 2, 3}


class TestOverlayHelpers:
    def test_count_overlay_facts(self, graph):
        overlay, _ = materialize(rules(*TC), graph)
        assert count_overlay_facts(overlay) == 9

    def test_base_is_never_mutated(self, graph):
        before = to_python(graph)
        materialize(rules(*TC), graph)
        assert to_python(graph) == before
