"""Unit tests for the mini-SQL baseline engine."""

from __future__ import annotations

import pytest

from repro.errors import SqlError
from repro.sql import SqlEngine, parse_sql
from repro.storage import StorageDatabase


@pytest.fixture
def engine():
    database = StorageDatabase("euter")
    sql = SqlEngine(database)
    sql.execute(
        "CREATE TABLE r (date str NOT NULL, stkCode str NOT NULL,"
        " clsPrice float, PRIMARY KEY (date, stkCode))"
    )
    sql.execute(
        "INSERT INTO r (date, stkCode, clsPrice) VALUES"
        " ('3/3/85', 'hp', 50), ('3/4/85', 'hp', 65), ('3/3/85', 'ibm', 160),"
        " ('3/4/85', 'ibm', 155)"
    )
    return sql


class TestSelect:
    def test_select_star(self, engine):
        rows = engine.execute("SELECT * FROM r")
        assert len(rows) == 4

    def test_projection_and_alias(self, engine):
        rows = engine.execute("SELECT stkCode AS s FROM r WHERE date = '3/3/85'")
        assert sorted(row["s"] for row in rows) == ["hp", "ibm"]

    def test_where_comparisons(self, engine):
        rows = engine.execute("SELECT stkCode FROM r WHERE clsPrice > 100")
        assert {row["stkCode"] for row in rows} == {"ibm"}
        rows = engine.execute(
            "SELECT date FROM r WHERE clsPrice >= 65 AND stkCode = 'hp'"
        )
        assert [row["date"] for row in rows] == ["3/4/85"]

    def test_distinct(self, engine):
        rows = engine.execute("SELECT DISTINCT stkCode FROM r")
        assert len(rows) == 2

    def test_order_by_and_limit(self, engine):
        rows = engine.execute("SELECT clsPrice FROM r ORDER BY clsPrice DESC LIMIT 2")
        assert [row["clsPrice"] for row in rows] == [160, 155]

    def test_self_join(self, engine):
        rows = engine.execute(
            "SELECT a.date FROM r a, r b WHERE a.date = b.date"
            " AND a.stkCode = 'hp' AND b.stkCode = 'ibm'"
            " AND a.clsPrice > 60 AND b.clsPrice > 150"
        )
        assert [row["date"] for row in rows] == ["3/4/85"]

    def test_aggregates(self, engine):
        rows = engine.execute(
            "SELECT stkCode, max(clsPrice) AS high, count(*) AS days"
            " FROM r GROUP BY stkCode"
        )
        by_stock = {row["stkCode"]: row for row in rows}
        assert by_stock["hp"]["high"] == 65 and by_stock["hp"]["days"] == 2
        assert by_stock["ibm"]["high"] == 160

    def test_global_aggregate(self, engine):
        [row] = engine.execute("SELECT avg(clsPrice) AS mean FROM r")
        assert row["mean"] == pytest.approx((50 + 65 + 160 + 155) / 4)

    def test_aggregate_requires_grouped_columns(self, engine):
        with pytest.raises(SqlError):
            engine.execute("SELECT date, max(clsPrice) FROM r GROUP BY stkCode")

    def test_index_lookup_path(self, engine):
        engine.database.create_index("r", "by_stk", ("stkCode",))
        rows = engine.execute("SELECT date FROM r WHERE stkCode = 'hp'")
        assert len(rows) == 2

    def test_nulls_never_satisfy_comparisons(self, engine):
        engine.execute("INSERT INTO r (date, stkCode) VALUES ('3/5/85', 'hp')")
        rows = engine.execute("SELECT date FROM r WHERE clsPrice < 99999")
        assert "3/5/85" not in {row["date"] for row in rows}


class TestDml:
    def test_insert_returns_count(self, engine):
        count = engine.execute(
            "INSERT INTO r (date, stkCode, clsPrice) VALUES ('3/5/85', 'sun', 30)"
        )
        assert count == 1
        assert len(engine.execute("SELECT * FROM r")) == 5

    def test_delete(self, engine):
        count = engine.execute("DELETE FROM r WHERE stkCode = 'hp'")
        assert count == 2
        assert len(engine.execute("SELECT * FROM r")) == 2

    def test_update(self, engine):
        count = engine.execute(
            "UPDATE r SET clsPrice = 51 WHERE date = '3/3/85' AND stkCode = 'hp'"
        )
        assert count == 1
        [row] = engine.execute(
            "SELECT clsPrice FROM r WHERE date = '3/3/85' AND stkCode = 'hp'"
        )
        assert row["clsPrice"] == 51

    def test_update_to_null(self, engine):
        engine.execute("UPDATE r SET clsPrice = null WHERE stkCode = 'hp'")
        rows = engine.execute("SELECT date FROM r WHERE clsPrice = null")
        assert len(rows) == 2


class TestParserErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "SELEC * FROM r",
            "SELECT FROM r",
            "SELECT * FROM r WHERE",
            "INSERT INTO r (a, b) VALUES (1)",
            "CREATE TABLE t (x sometype)",
            "SELECT * FROM r; DROP TABLE r",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(SqlError):
            parse_sql(bad)

    def test_unknown_alias(self, engine):
        with pytest.raises(SqlError):
            engine.execute("SELECT z.date FROM r a, r b WHERE a.date = b.date")

    def test_ambiguous_column(self, engine):
        with pytest.raises(SqlError):
            engine.execute("SELECT date FROM r a, r b")


class TestFirstOrderLimitation:
    """The Section 2 argument, demonstrated: SQL needs the application to
    enumerate metadata that IDL quantifies over in one expression."""

    def test_chwab_needs_one_query_per_stock(self):
        database = StorageDatabase("chwab")
        sql = SqlEngine(database)
        sql.execute(
            "CREATE TABLE r (date str NOT NULL, hp float, ibm float,"
            " PRIMARY KEY (date))"
        )
        sql.execute(
            "INSERT INTO r (date, hp, ibm) VALUES ('3/3/85', 50, 160),"
            " ('3/4/85', 65, 155)"
        )
        # "Did any stock close above 100?" — SQL has no way to quantify
        # over columns; the host program must consult the catalog:
        stock_columns = [
            row["colname"]
            for row in database.system_relations()["_columns"]
            if row["relname"] == "r" and row["colname"] != "date"
        ]
        assert stock_columns == ["hp", "ibm"]
        hits = []
        for column in stock_columns:  # one query per column
            hits.extend(
                sql.execute(f"SELECT date FROM r WHERE {column} > 100")
            )
        assert len(hits) == 2

        # IDL: a single higher-order expression.
        from repro import IdlEngine

        idl = IdlEngine()
        idl.add_database(
            "chwab",
            {"r": [{"date": "3/3/85", "hp": 50, "ibm": 160},
                   {"date": "3/4/85", "hp": 65, "ibm": 155}]},
        )
        assert idl.ask("?.chwab.r(.S>100)")
