"""Further update-evaluator coverage: constructors, nested updates,
result accounting and error paths."""

from __future__ import annotations

import pytest

from repro.core.parser import parse_expression, parse_query
from repro.core.substitution import Substitution
from repro.core.updates import UpdateResult, apply_request, build_object
from repro.errors import UpdateError
from repro.objects import Atom, Universe, from_python, to_python


class TestBuildObject:
    def ground(self, source, **bindings):
        expr = parse_expression("?" + source)
        if len(expr.conjuncts) == 1:
            expr = expr.conjuncts[0]
        subst = Substitution.of(
            {name: Atom(value) for name, value in bindings.items()}
        )
        return build_object(expr, subst)

    def test_flat_tuple(self):
        built = self.ground(".a=1, .b=x")
        assert to_python(built) == {"a": 1, "b": "x"}

    def test_nested_path(self):
        built = self.ground(".a.b=1")
        assert to_python(built) == {"a": {"b": 1}}

    def test_nested_set(self):
        built = self.ground(".a(.b=1)")
        assert to_python(built) == {"a": [{"b": 1}]}

    def test_variables_resolved(self):
        built = self.ground(".k=K, .v=V", K="key", V=7)
        assert to_python(built) == {"k": "key", "v": 7}

    def test_higher_order_attribute_name(self):
        built = self.ground(".S=P", S="hp", P=50)
        assert to_python(built) == {"hp": 50}

    def test_arithmetic_in_constructor(self):
        built = self.ground(".v=C+10", C=50)
        assert to_python(built) == {"v": 60}

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(UpdateError):
            self.ground(".a=1, .a=2")

    def test_unbound_variable_rejected(self):
        from repro.errors import SafetyError

        with pytest.raises((UpdateError, SafetyError)):
            self.ground(".a=X")

    def test_inequality_rejected(self):
        with pytest.raises(UpdateError):
            self.ground(".a>1")


class TestNestedUpdates:
    def test_update_inside_nested_set(self):
        universe = Universe.from_python(
            {"d": {"r": [[{"x": 1}, {"x": 2}], [{"x": 3}]]}}
        )
        result = apply_request(parse_query("?.d.r((.x-=C))"), universe)
        assert result.modified == 3
        # Value-based set semantics: the nulled tuples become equal and
        # collapse, inside the groups and then between the groups.
        nested = to_python(universe.relation("d", "r"))
        assert nested == [[{"x": None}]]

    def test_update_nested_tuple_attribute(self):
        universe = Universe.from_python(
            {"d": {"r": [{"name": "a", "meta": {"tag": "old"}}]}}
        )
        result = apply_request(
            parse_query("?.d.r(.name=a, .meta.tag+=new)"), universe
        )
        assert result.modified == 1
        [row] = to_python(universe.relation("d", "r"))
        assert row["meta"]["tag"] == "new"

    def test_insert_nested_element(self):
        universe = Universe.from_python({"d": {"r": []}})
        apply_request(
            parse_query("?.d.r+(.name=a, .hist(.y=1990, .v=7))"), universe
        )
        [row] = to_python(universe.relation("d", "r"))
        assert row == {"name": "a", "hist": [{"y": 1990, "v": 7}]}


class TestAccounting:
    def test_update_result_properties(self):
        result = UpdateResult([Substitution.empty()], 1, 2, 3)
        assert result.succeeded and result.changed
        empty = UpdateResult([], 0, 0, 0)
        assert not empty.succeeded and not empty.changed
        assert "inserted=1" in repr(result)

    def test_ground_set_minus_yields_once(self):
        universe = Universe.from_python(
            {"d": {"r": [{"k": 1}, {"k": 1, "x": 2}]}}
        )
        result = apply_request(parse_query("?.d.r-(.k=1)"), universe)
        assert len(result.substitutions) == 1
        assert result.deleted == 2

    def test_open_set_minus_yields_per_match(self):
        universe = Universe.from_python(
            {"d": {"r": [{"k": 1}, {"k": 2}, {"k": 3}]}}
        )
        result = apply_request(parse_query("?.d.r-(.k=K)"), universe)
        assert len(result.substitutions) == 3
        assert {s.lookup("K").value for s in result.substitutions} == {1, 2, 3}

    def test_counts_compose_across_conjuncts(self):
        universe = Universe.from_python({"d": {"r": [{"k": 1}]}})
        result = apply_request(
            parse_query("?.d.r-(.k=1), .d.r+(.k=2), .d.r+(.k=3)"), universe
        )
        assert (result.inserted, result.deleted) == (2, 1)


class TestErrorPaths:
    def test_update_on_missing_relation_fails_quietly(self):
        universe = Universe.from_python({"d": {"r": []}})
        result = apply_request(parse_query("?.d.zzz-(.k=1)"), universe)
        assert not result.succeeded  # conjunct found nothing to navigate

    def test_plus_on_missing_relation_is_error(self):
        universe = Universe.from_python({"d": {}})
        result = apply_request(parse_query("?.d.zzz+(.k=1)"), universe)
        # Navigation to a missing attribute fails the conjunct.
        assert not result.succeeded

    def test_wrong_category_raises(self):
        universe = Universe.from_python({"d": {"r": [{"k": 1}]}})
        with pytest.raises(UpdateError):
            apply_request(parse_query("?.d.r(.k(+.x=1))"), universe)

    def test_tuple_plus_unbound_attr_name(self):
        universe = Universe.from_python({"d": {"r": [{"k": 1}]}})
        from repro.errors import SafetyError

        with pytest.raises(SafetyError):
            apply_request(parse_query("?.d.r(+.S=1)"), universe)

    def test_updates_never_touch_merged_objects(self):
        from repro.objects.merged import MergedTuple
        from repro.objects import TupleObject

        base = Universe.from_python({"d": {"r": [{"k": 1}]}})
        merged = MergedTuple(base, TupleObject())
        with pytest.raises(UpdateError):
            apply_request(parse_query("?.d.r(+.x=1)"), merged)
