"""Property tests: the MSQL gateway agrees with direct IDL access."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import IdlEngine
from repro.multidb.msql import MsqlSession
from repro.workloads.stocks import StockWorkload

thresholds = st.integers(min_value=50, max_value=150)
seeds = st.integers(min_value=0, max_value=50)


def build(seed):
    workload = StockWorkload(n_stocks=4, n_days=3, seed=seed)
    engine = IdlEngine(universe=workload.universe())
    return MsqlSession(engine), engine, workload


@given(seeds, thresholds)
@settings(max_examples=40, deadline=None)
def test_qualified_select_matches_idl(seed, threshold):
    session, engine, _ = build(seed)
    via_msql = {
        row["s"]
        for row in session.execute(
            f"SELECT e.stkCode AS s FROM euter.r e WHERE e.clsPrice > {threshold}"
        )
    }
    via_idl = {
        answer["S"]
        for answer in engine.query(f"?.euter.r(.stkCode=S, .clsPrice>{threshold})")
    }
    assert via_msql == via_idl


@given(seeds, thresholds)
@settings(max_examples=30, deadline=None)
def test_broadcast_covers_each_member_once(seed, threshold):
    session, engine, workload = build(seed)
    session.execute("USE euter chwab")
    rows = session.execute(f"SELECT date FROM r WHERE date = '{workload.days[0]}'")
    by_member = {}
    for row in rows:
        by_member.setdefault(row["_db"], 0)
        by_member[row["_db"]] += 1
    assert set(by_member) == {"euter", "chwab"}
    # IDL answers are substitution SETS, so a projection to `date`
    # collapses to one row per member — the gateway inherits set
    # semantics (SQL's SELECT DISTINCT).
    assert by_member["chwab"] == 1
    assert by_member["euter"] == 1


@given(seeds)
@settings(max_examples=30, deadline=None)
def test_interdatabase_join_is_total(seed):
    session, engine, workload = build(seed)
    symbol = workload.symbols[0]
    rows = session.execute(
        f"SELECT e.date AS d FROM euter.r e, ource.{symbol} o"
        f" WHERE e.date = o.date AND e.stkCode = '{symbol}'"
        f" AND e.clsPrice = o.clsPrice"
    )
    # The members carry identical data: every day joins.
    assert {row["d"] for row in rows} == set(workload.days)


@given(seeds)
@settings(max_examples=30, deadline=None)
def test_select_star_round_trips_rows(seed):
    session, engine, workload = build(seed)
    rows = session.execute("SELECT * FROM euter.r")
    expected = [
        {"date": day, "stkCode": symbol, "clsPrice": price}
        for day, symbol, price in workload.quotes()
    ]
    key = lambda row: (row["date"], row["stkCode"])
    assert sorted(rows, key=key) == sorted(expected, key=key)
