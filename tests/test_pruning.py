"""Member pruning and narrowed journal intents.

The static effect analysis (src/repro/analysis/effects.py) tells the
engine which view rules a query can reach and tells the federation
which members an update can write. Both optimizations are **on by
default** and must be invisible to semantics:

* the engine's pruned materialization answers every query exactly as
  the full materialization does (differential Hypothesis property,
  including faulty connectors, quarantined members and
  ``on_unavailable="partial"``);
* the federation's narrowed flush journals and stages exactly the
  update's write set; members outside it report ``unchanged``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.effects import EffectAnalysis, Effects, EffectSet
from repro.core.engine import IdlEngine
from repro.errors import FederationError, MemberUnavailableError
from repro.multidb import (
    FakeClock,
    FaultyConnector,
    Federation,
    FederationConfig,
    InMemoryConnector,
    ResiliencePolicy,
)
from repro.workloads.stocks import StockWorkload

STYLES = ("euter", "chwab", "ource")
ATTEMPTS = 2

seeds = st.integers(min_value=0, max_value=30)
fault_schedules = st.fixed_dictionaries({
    "euter": st.integers(min_value=0, max_value=4),
    "chwab": st.integers(min_value=0, max_value=4),
    "ource": st.integers(min_value=0, max_value=4),
})


def build_federation(workload, prune, schedule=None, seed=0):
    """A three-style federation; ``schedule`` scripts connector faults."""
    clock = FakeClock()
    federation = Federation.from_config(FederationConfig(prune=prune))
    for style in STYLES:
        relations = workload.relations_for(style)
        connector = InMemoryConnector(relations)
        if schedule is not None:
            connector = FaultyConnector(connector)
            connector.fail_next(schedule[style])
        federation.add_member(
            style, style, connector=connector,
            policy=ResiliencePolicy(
                max_attempts=ATTEMPTS, base_delay=0.01, jitter=0.0,
                failure_threshold=100, seed=seed,
            ),
            clock=clock,
        )
    return federation


def queries_for(workload):
    """A query mix touching one member, one style pair, and the unified
    view — the shapes whose pruning decisions differ."""
    symbol = workload.symbols[0]
    day = workload.days[0]
    return [
        "?.dbI.p(.date=D, .stk=S, .price=P)",
        f"?.dbI.p(.stk={symbol}, .date=D, .price=P)",
        f"?.euter.r(.stkCode={symbol}, .date=D, .clsPrice=P)",
        f"?.chwab.r(.date={day}, .{symbol}=P)",
        f"?.ource.{symbol}(.date=D, .clsPrice=P)",
    ]


def answer_set(result):
    return frozenset(
        frozenset(answer.items()) for answer in result
    )


# ---------------------------------------------------------------------------
# The differential property
# ---------------------------------------------------------------------------


@given(seeds)
@settings(max_examples=25, deadline=None)
def test_pruned_answers_equal_unpruned_answers(seed):
    workload = StockWorkload(n_stocks=4, n_days=3, seed=seed)
    pruned = build_federation(workload, "on")
    full = build_federation(workload, "off")
    pruned.install()
    full.install()
    for source in queries_for(workload):
        assert answer_set(pruned.query(source)) == \
            answer_set(full.query(source)), source


@given(seeds, fault_schedules)
@settings(max_examples=25, deadline=None)
def test_pruned_answers_equal_unpruned_under_faults(seed, schedule):
    """Pruning commutes with degradation: for any fault schedule the
    pruned and unpruned federations quarantine the same members and
    return identical partial answers."""
    workload = StockWorkload(n_stocks=4, n_days=2, seed=seed)
    failed = {name for name, n in schedule.items() if n >= ATTEMPTS}
    federations = []
    for prune in ("on", "off"):
        federation = build_federation(
            workload, prune, schedule=schedule, seed=seed
        )
        if len(failed) == len(STYLES):
            with pytest.raises(MemberUnavailableError):
                federation.install()
            return
        federation.install()
        federations.append(federation)
    pruned, full = federations
    assert set(pruned.quarantined) == set(full.quarantined) == failed
    for source in queries_for(workload):
        lhs = pruned.query(source, on_unavailable="partial")
        rhs = full.query(source, on_unavailable="partial")
        assert answer_set(lhs) == answer_set(rhs), source
        assert lhs.availability.unavailable == rhs.availability.unavailable
        assert lhs.complete == rhs.complete


@given(seeds)
@settings(max_examples=15, deadline=None)
def test_pruned_updates_leave_identical_member_states(seed):
    """Narrowed intents are invisible to member state: after the same
    update sequence, every member holds the same rows either way."""
    workload = StockWorkload(n_stocks=3, n_days=2, seed=seed)
    symbol = workload.symbols[0]
    day = workload.days[-1]
    requests = [
        f"?.euter.r-(.stkCode={symbol}, .date={day})",
        f"?.dbU.insStk(.stk=zzcorp, .date={day}, .price=17)",
        f"?.ource.zzcorp+(.date={day}, .clsPrice=41)",
    ]
    states = []
    for prune in ("on", "off"):
        federation = build_federation(workload, prune)
        federation.install()
        for source in requests:
            federation.update(source)
        states.append({
            style: federation.connectors[style].scan()
            for style in STYLES
        })
    assert states[0] == states[1]


# ---------------------------------------------------------------------------
# Pruning decisions and counters
# ---------------------------------------------------------------------------


class TestQueryPruning:
    def fed(self, prune="on"):
        workload = StockWorkload(n_stocks=3, n_days=2, seed=7)
        federation = build_federation(workload, prune)
        federation.install()
        return workload, federation

    def test_prune_rejects_unknown_mode(self):
        with pytest.raises(FederationError):
            Federation(prune="maybe")

    def test_member_query_skips_the_other_members(self):
        workload, federation = self.fed()
        symbol = workload.symbols[0]
        result = federation.query(f"?.euter.r(.stkCode={symbol}, "
                                  ".date=D, .clsPrice=P)")
        counters = result.metrics["counters"]
        assert counters.get("analysis.prune.skipped") == 2
        assert counters.get("analysis.prune.scanned") == 1
        decision = federation.engine.last_prune
        assert decision.applied and decision.reason == "pruned"
        assert decision.rules_used == 0

    def test_unified_query_scans_everyone(self):
        _, federation = self.fed()
        result = federation.query("?.dbI.p(.date=D, .stk=S, .price=P)")
        counters = result.metrics["counters"]
        assert "analysis.prune.skipped" not in counters
        assert counters.get("analysis.prune.scanned") == 3
        decision = federation.engine.last_prune
        assert decision.reason == "full"
        assert decision.rules_used == decision.rules_total

    def test_prune_off_never_skips(self):
        workload, federation = self.fed("off")
        symbol = workload.symbols[0]
        result = federation.query(f"?.euter.r(.stkCode={symbol}, "
                                  ".date=D, .clsPrice=P)")
        counters = result.metrics["counters"]
        assert "analysis.prune.skipped" not in counters
        assert federation.engine.last_prune.reason == "off"

    def test_query_span_carries_the_pruning_event(self):
        workload, federation = self.fed()
        symbol = workload.symbols[0]
        result = federation.query(f"?.euter.r(.stkCode={symbol}, "
                                  ".date=D, .clsPrice=P)")
        events = {name: attrs for name, attrs in result.trace.events}
        assert "member-pruning" in events
        attrs = events["member-pruning"]
        assert attrs["reason"] == "pruned"
        assert sorted(attrs["skipped"]) == ["chwab", "ource"]


# ---------------------------------------------------------------------------
# Narrowed journal intents
# ---------------------------------------------------------------------------


class TestNarrowedIntents:
    def fed(self, prune="on"):
        workload = StockWorkload(n_stocks=3, n_days=2, seed=9)
        federation = build_federation(workload, prune)
        federation.install()
        return workload, federation

    def intent_members(self, federation, update_id):
        for record in federation.journal.records():
            if record["type"] == "intent" and record["update"] == update_id:
                return sorted(record["members"])
        raise AssertionError(f"no intent for update {update_id}")

    def test_direct_member_update_journals_only_that_member(self):
        workload, federation = self.fed()
        symbol = workload.symbols[0]
        day = workload.days[0]
        result = federation.update(
            f"?.euter.r-(.stkCode={symbol}, .date={day})"
        )
        assert result.member_outcomes["euter"] == "applied"
        assert result.member_outcomes["chwab"] == "unchanged"
        assert result.member_outcomes["ource"] == "unchanged"
        assert self.intent_members(federation, result.update_id) == ["euter"]

    def test_control_program_update_journals_every_style(self):
        _, federation = self.fed()
        result = federation.call("insStk", stk="zzcorp",
                                 date="1/1/91", price=42)
        assert all(outcome == "applied"
                   for outcome in result.member_outcomes.values())
        assert self.intent_members(federation, result.update_id) == \
            sorted(STYLES)

    def test_prune_off_stages_every_member(self):
        workload, federation = self.fed("off")
        symbol = workload.symbols[0]
        day = workload.days[0]
        result = federation.update(
            f"?.euter.r-(.stkCode={symbol}, .date={day})"
        )
        assert result.member_outcomes["chwab"] == "applied"
        assert self.intent_members(federation, result.update_id) == \
            sorted(STYLES)

    def test_narrowed_flush_emits_the_span_event(self):
        workload, federation = self.fed()
        symbol = workload.symbols[0]
        day = workload.days[0]
        result = federation.update(
            f"?.euter.r-(.stkCode={symbol}, .date={day})"
        )
        events = [
            (name, attrs)
            for span in result.trace.walk()
            for name, attrs in span.events
        ]
        narrowed = dict(events)["intent-narrowed"]
        assert narrowed["staged"] == ["euter"]
        assert sorted(narrowed["outside_write_set"]) == ["chwab", "ource"]

    def test_write_footprint_is_inspectable(self):
        _, federation = self.fed()
        effects = federation.write_footprint("?.dbU.insStk(.stk=zzz)")
        assert isinstance(effects, Effects)
        assert effects.writes.bounded
        assert effects.writes.dbs == set(STYLES)


# ---------------------------------------------------------------------------
# Effect-set mechanics
# ---------------------------------------------------------------------------


class TestEffectSets:
    def test_describe_and_bounds(self):
        concrete = EffectSet(frozenset({("euter", "r"), ("ource", None)}))
        assert concrete.describe() == ".euter.r, .ource.*"
        assert concrete.bounded
        assert concrete.dbs == {"euter", "ource"}
        assert concrete.touches_db("ource")
        assert not concrete.touches_db("chwab")

    def test_symbolic_database_touches_everything(self):
        symbolic = EffectSet(frozenset({(None, "r")}))
        assert not symbolic.bounded
        assert symbolic.touches_db("anything")
        assert symbolic.describe() == ".*.r"

    def test_empty_set(self):
        empty = EffectSet(frozenset())
        assert empty.describe() == "(none)"
        assert empty.bounded
        assert not empty.touches_db("euter")

    def test_request_footprint_on_a_bare_engine(self):
        engine = IdlEngine()
        engine.add_database("d", {"r": [{"x": 1}]})
        engine.define_update(".dbU.drop(.x=X) -> .d.r-(.x=X)")
        analysis = EffectAnalysis(engine.program)
        statement = engine._one_query("?.dbU.drop(.x=1)", allow_update=True)
        effects = analysis.request_footprint(statement)
        assert effects.writes.dbs == {"d"}
        assert ("d", "r") in effects.writes.patterns
