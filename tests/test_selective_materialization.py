"""Tests for selective re-materialization (touched-path invalidation)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import IdlEngine
from tests.conftest import answers_set


def build_engine(maintain=True):
    engine = IdlEngine(maintain=maintain)
    engine.add_database("a", {"r": [{"x": 1}, {"x": 2}]})
    engine.add_database("b", {"s": [{"y": 10}]})
    engine.define(".va.p(.x=X) <- .a.r(.x=X)")
    engine.define(".vb.q(.y=Y) <- .b.s(.y=Y)")
    engine.define(".vc.j(.x=X, .y=Y) <- .va.p(.x=X), .vb.q(.y=Y)")
    return engine


class TestTouchedPaths:
    def test_update_reports_touched(self):
        engine = build_engine()
        result = engine.update("?.a.r+(.x=3)")
        assert result.touched == {("a", "r")}

    def test_program_calls_accumulate_touched(self):
        engine = build_engine()
        engine.universe.add_database("u")
        engine.invalidate()
        engine.define_update(
            ".u.both(.v=V) -> .a.r+(.x=V)\n.u.both(.v=V) -> .b.s+(.y=V)"
        )
        result = engine.call("u", "both", v=99)
        assert result.touched == {("a", "r"), ("b", "s")}

    def test_metadata_updates_report_touched(self):
        engine = build_engine()
        result = engine.update("?.a-.r")
        assert result.touched == {("a", "r")}

    def test_no_match_touches_nothing(self):
        engine = build_engine()
        result = engine.update("?.a.r(.x=999, .x-=C)")
        assert result.touched == set()


class TestSelectiveRebuild:
    def test_untouched_stratum_is_reused(self):
        engine = build_engine(maintain=False)
        engine.materialized_view()
        engine.update("?.b.s+(.y=20)")
        engine.materialized_view()
        # va's stratum (reading only a.r) must have been reused.
        assert engine.fixpoint_stats.reused_strata >= 1
        assert answers_set(engine.query("?.vb.q(.y=Y)"), "Y") == {10, 20}

    def test_maintained_stratum_is_repaired_in_place(self):
        engine = build_engine()
        engine.materialized_view()
        overlay = engine.overlay
        engine.update("?.b.s+(.y=20)")
        engine.materialized_view()
        # With maintenance on, the update repairs the live materialization:
        # no stratum is rebuilt at all, and the overlay stays live.
        stats = engine.fixpoint_stats
        assert stats.maintained_strata >= 1
        assert stats.maintain_fallbacks == 0
        assert engine.overlay is overlay
        assert answers_set(engine.query("?.vb.q(.y=Y)"), "Y") == {10, 20}

    def test_dependent_strata_are_rebuilt(self):
        engine = build_engine(maintain=False)
        engine.materialized_view()
        engine.update("?.a.r+(.x=3)")
        # vc depends on va depends on a.r: both rebuilt, vb reused.
        assert answers_set(engine.query("?.vc.j(.x=X, .y=Y)"), "X", "Y") == {
            (1, 10), (2, 10), (3, 10),
        }
        assert engine.fixpoint_stats.reused_strata == 1

    def test_deletes_propagate(self):
        engine = build_engine()
        engine.materialized_view()
        engine.update("?.a.r-(.x=1)")
        assert answers_set(engine.query("?.va.p(.x=X)"), "X") == {2}
        assert answers_set(engine.query("?.vc.j(.x=X, .y=Y)"), "X", "Y") == {
            (2, 10),
        }

    def test_unchanged_request_keeps_cache(self):
        engine = build_engine()
        engine.materialized_view()
        first = engine.overlay
        engine.update("?.a.r-(.x=999)")  # matches nothing
        assert engine.overlay is first

    def test_define_fully_invalidates(self):
        engine = build_engine()
        engine.materialized_view()
        engine.define(".vd.k(.x=X) <- .a.r(.x=X)")
        engine.materialized_view()
        assert engine.fixpoint_stats.reused_strata == 0

    def test_higher_order_views_track_touched_families(self):
        engine = IdlEngine(maintain=False)
        engine.add_database("euter", {"r": [
            {"date": "d1", "stkCode": "hp", "clsPrice": 50},
        ]})
        engine.add_database("other", {"t": [{"z": 1}]})
        engine.define(".dbO.S(.date=D, .p=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P)")
        engine.define(".vz.w(.z=Z) <- .other.t(.z=Z)")
        engine.materialized_view()
        engine.update("?.euter.r+(.date=d2, .stkCode=sun, .clsPrice=9)")
        assert sorted(engine.overlay.get("dbO").attr_names()) == ["hp", "sun"]
        assert engine.fixpoint_stats.reused_strata == 1


class TestInvalidateEdgeCases:
    def test_empty_touched_prefix_forces_full_invalidate(self):
        engine = build_engine()
        engine.materialized_view()
        # An empty prefix means "somewhere unknown": everything goes.
        engine._selective_invalidate({()})
        assert engine._strata is None
        assert engine._overlay is None
        assert engine._reusable == {}
        assert engine._pruned_cache == {}

    def test_derived_target_only_touch_dirties_view(self):
        # A touch landing on a path that is only a view's *target* (not
        # read by any rule body) still dirties that view — and
        # transitively its readers — while unrelated strata survive.
        engine = build_engine(maintain=False)
        engine.materialized_view()
        engine._selective_invalidate({("va", "p")})
        assert engine._strata is None
        # va is dirty (target touched), vc is dirty (reads va.p);
        # only vb's stratum remains reusable.
        assert len(engine._reusable) == 1
        engine.materialized_view()
        assert engine.fixpoint_stats.reused_strata == 1

    def test_transitive_stratum_dirtying(self):
        # v2 never reads a.r, but depends on v1 which does: an update to
        # a.r must dirty both, while the unrelated v3 stays reusable.
        engine = IdlEngine(maintain=False)
        engine.add_database("a", {"r": [{"x": 1}]})
        engine.add_database("b", {"s": [{"z": 7}]})
        engine.define(".v1.p(.x=X) <- .a.r(.x=X)")
        engine.define(".v2.q(.x=X) <- .v1.p(.x=X)")
        engine.define(".v3.w(.z=Z) <- .b.s(.z=Z)")
        engine.materialized_view()
        engine.update("?.a.r+(.x=2)")
        assert engine._strata is None
        assert len(engine._reusable) == 1  # only v3's stratum survives
        engine.materialized_view()
        assert engine.fixpoint_stats.reused_strata == 1
        assert answers_set(engine.query("?.v2.q(.x=X)"), "X") == {1, 2}


class TestPrunedCacheRetention:
    def test_pruned_overlay_survives_unrelated_update(self):
        engine = IdlEngine(prune=True)
        engine.add_database("a", {"r": [{"x": 1}, {"x": 2}]})
        engine.add_database("b", {"s": [{"y": 10}]})
        engine.define(".va.p(.x=X) <- .a.r(.x=X)")
        engine.define(".vb.q(.y=Y) <- .b.s(.y=Y)")
        assert answers_set(engine.query("?.va.p(.x=X)"), "X") == {1, 2}
        assert len(engine._pruned_cache) == 1
        (key,) = engine._pruned_cache
        # b.s feeds only vb: the cached va-only overlay spans clean
        # strata exclusively and must survive the selective invalidate.
        engine.update("?.b.s+(.y=20)")
        assert list(engine._pruned_cache) == [key]
        assert answers_set(engine.query("?.va.p(.x=X)"), "X") == {1, 2}

    def test_pruned_overlay_dropped_when_input_changes(self):
        engine = IdlEngine(prune=True)
        engine.add_database("a", {"r": [{"x": 1}]})
        engine.add_database("b", {"s": [{"y": 10}]})
        engine.define(".va.p(.x=X) <- .a.r(.x=X)")
        engine.define(".vb.q(.y=Y) <- .b.s(.y=Y)")
        engine.query("?.va.p(.x=X)")
        assert len(engine._pruned_cache) == 1
        engine.update("?.a.r+(.x=2)")
        assert engine._pruned_cache == {}
        assert answers_set(engine.query("?.va.p(.x=X)"), "X") == {1, 2}


# -- property: selective == full rebuild --------------------------------------

ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert_a"), st.integers(0, 5)),
        st.tuples(st.just("delete_a"), st.integers(0, 5)),
        st.tuples(st.just("insert_b"), st.integers(0, 5)),
    ),
    max_size=12,
)


@given(ops)
@settings(max_examples=60, deadline=None)
def test_selective_equals_full_rebuild(sequence):
    selective = build_engine()
    reference = build_engine()
    for op, value in sequence:
        if op == "insert_a":
            request = f"?.a.r+(.x={value})"
        elif op == "delete_a":
            request = f"?.a.r-(.x={value})"
        else:
            request = f"?.b.s+(.y={value})"
        selective.update(request)
        selective.materialized_view()  # exercise the cache each step
        reference.update(request)
        reference.invalidate()  # force full rebuild
    for source in ("?.va.p(.x=X)", "?.vb.q(.y=Y)", "?.vc.j(.x=X, .y=Y)"):
        lhs = {tuple(sorted(a.items())) for a in selective.query(source)}
        rhs = {tuple(sorted(a.items())) for a in reference.query(source)}
        assert lhs == rhs
