"""Incremental view maintenance: delta capture, repair plans, DRed.

The tentpole guarantee is differential: after any schedule of updates,
an engine that repairs its materialization in place answers exactly
like one that rebuilds from scratch every step. The unit tests pin the
pieces — :class:`~repro.core.updates.UpdateDelta` folding,
:func:`~repro.core.fixpoint.maintenance_plan` fallback reasons, and
the maintenance counters/spans the repair emits.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import IdlEngine
from repro.core.fixpoint import maintenance_plan
from repro.core.parser import parse_rule
from repro.core.rules import analyze_rule
from repro.core.terms import Const
from repro.core.updates import UpdateDelta
from repro.obs import InMemoryCollector, Observability
from repro.objects import from_python
from tests.conftest import answers_set


def rules(*sources, merge_on=None):
    analyzed = []
    for index, source in enumerate(sources):
        keys = ()
        if merge_on and index in merge_on:
            keys = merge_on[index]
        analyzed.append(analyze_rule(parse_rule(source), merge_on=keys))
    return analyzed


def pattern(*names):
    return tuple(Const(name) for name in names)


def element(**attrs):
    return from_python(attrs)


class TestUpdateDelta:
    def test_insert_then_delete_cancels(self):
        delta = UpdateDelta()
        delta.record_insert(("a", "r"), element(x=1))
        delta.record_delete(("a", "r"), element(x=1))
        inserts, deletes, symbolic = delta.fold()
        assert inserts == {} and deletes == {} and symbolic == set()

    def test_delete_then_insert_cancels(self):
        delta = UpdateDelta()
        delta.record_delete(("a", "r"), element(x=1))
        delta.record_insert(("a", "r"), element(x=1))
        inserts, deletes, _ = delta.fold()
        assert inserts == {} and deletes == {}

    def test_distinct_values_both_survive(self):
        delta = UpdateDelta()
        delta.record_insert(("a", "r"), element(x=1))
        delta.record_delete(("a", "r"), element(x=2))
        inserts, deletes, _ = delta.fold()
        assert len(inserts[("a", "r")]) == 1
        assert len(deletes[("a", "r")]) == 1

    def test_symbolic_paths_are_reported(self):
        delta = UpdateDelta()
        delta.mark_symbolic(("a", "r", "x"))
        _, _, symbolic = delta.fold()
        assert symbolic == {("a", "r", "x")}

    def test_rollback_discards_suffix(self):
        delta = UpdateDelta()
        delta.record_insert(("a", "r"), element(x=1))
        mark = delta.mark()
        delta.record_delete(("a", "r"), element(x=1))
        delta.mark_symbolic(("a", "r"))
        delta.rollback(mark)
        inserts, deletes, symbolic = delta.fold()
        assert len(inserts[("a", "r")]) == 1
        assert deletes == {} and symbolic == set()

    def test_changed_flag(self):
        delta = UpdateDelta()
        assert not delta.changed
        delta.record_insert(("a", "r"), element(x=1))
        assert delta.changed


class TestDeltaCapture:
    """Updates on an engine with a live materialization carry a delta."""

    def build(self):
        engine = IdlEngine()
        engine.add_database("a", {"r": [{"x": 1}, {"x": 2}]})
        engine.define(".v.p(.x=X) <- .a.r(.x=X)")
        engine.materialized_view()
        return engine

    def test_insert_is_recorded(self):
        result = self.build().update("?.a.r+(.x=3)")
        inserts, deletes, symbolic = result.delta.fold()
        assert list(inserts) == [("a", "r")]
        assert deletes == {} and symbolic == set()

    def test_delete_is_recorded(self):
        result = self.build().update("?.a.r-(.x=1)")
        inserts, deletes, _ = result.delta.fold()
        assert inserts == {}
        assert list(deletes) == [("a", "r")]

    def test_no_match_folds_empty(self):
        result = self.build().update("?.a.r-(.x=999)")
        inserts, deletes, symbolic = result.delta.fold()
        assert inserts == {} and deletes == {} and symbolic == set()

    def test_inplace_mutation_rewrites_as_delete_insert(self):
        # Mutating a set element in place folds to one whole-element
        # delete+insert pair at the owning set's path — not symbolic.
        result = self.build().update("?.a.r(.x=1, .x-=C)")
        inserts, deletes, symbolic = result.delta.fold()
        assert list(inserts) == [("a", "r")]
        assert list(deletes) == [("a", "r")]
        assert symbolic == set()

    def test_metadata_update_is_symbolic(self):
        result = self.build().update("?.a-.r")
        _, _, symbolic = result.delta.fold()
        assert symbolic == {("a", "r")}  # unknown delta: fall back

    def test_no_capture_without_materialization(self):
        engine = IdlEngine()
        engine.add_database("a", {"r": [{"x": 1}]})
        engine.define(".v.p(.x=X) <- .a.r(.x=X)")
        # No materialized view yet: capture would be wasted work.
        result = engine.update("?.a.r+(.x=2)")
        assert result.delta is None

    def test_no_capture_when_disabled(self):
        engine = IdlEngine(maintain=False)
        engine.add_database("a", {"r": [{"x": 1}]})
        engine.define(".v.p(.x=X) <- .a.r(.x=X)")
        engine.materialized_view()
        assert engine.update("?.a.r+(.x=2)").delta is None


TC = (
    ".g.tc(.a=X, .b=Y) <- .g.edge(.a=X, .b=Y)",
    ".g.tc(.a=X, .b=Y) <- .g.tc(.a=X, .b=Z), .g.edge(.a=Z, .b=Y)",
)


class TestMaintenancePlan:
    def test_recursive_stratum_is_rewritable(self):
        variants, reason = maintenance_plan(rules(*TC), [pattern("g", "edge")])
        assert reason is None
        assert len(variants) == 2
        assert all(variants)  # both rules read changed paths

    def test_untouched_rule_gets_no_variants(self):
        stratum = rules(".v.p(.x=X) <- .a.r(.x=X)")
        variants, reason = maintenance_plan(stratum, [pattern("b", "s")])
        assert reason is None
        assert variants == [[]]  # nothing it reads changed: never fires

    def test_merge_rule_falls_back(self):
        stratum = rules(
            ".v.p(.k=K, .n=N) <- .a.r(.k=K, .n=N)", merge_on={0: ("k",)}
        )
        variants, reason = maintenance_plan(stratum, [pattern("a", "r")])
        assert variants is None and reason == "merge-rule"

    def test_negation_over_changed_falls_back(self):
        stratum = rules(".v.p(.x=X) <- .a.r(.x=X), .b.s~(.y=X)")
        variants, reason = maintenance_plan(stratum, [pattern("b", "s")])
        assert variants is None and reason == "negation"

    def test_negation_over_unchanged_is_fine(self):
        stratum = rules(".v.p(.x=X) <- .a.r(.x=X), .b.s~(.y=X)")
        variants, reason = maintenance_plan(stratum, [pattern("a", "r")])
        assert reason is None


class TestMaintenanceObservability:
    def build(self, obs):
        engine = IdlEngine(obs=obs)
        engine.add_database("g", {"edge": [{"a": 1, "b": 2}, {"a": 2, "b": 3}]})
        engine.define(TC[0])
        engine.define(TC[1])
        engine.materialized_view()
        return engine

    def test_counters_accumulate(self):
        obs = Observability(enabled=False)  # metrics stay on regardless
        engine = self.build(obs)
        engine.update("?.g.edge+(.a=3, .b=4)")
        assert obs.metrics.counter_value("fixpoint.maintain.runs") == 1
        assert obs.metrics.counter_value("fixpoint.maintain.seeded") == 1
        assert obs.metrics.counter_value("fixpoint.maintain.fallbacks") == 0
        engine.update("?.g.edge-(.a=1, .b=2)")
        assert obs.metrics.counter_value("fixpoint.maintain.runs") == 2
        assert obs.metrics.counter_value("fixpoint.maintain.overdeleted") > 0

    def test_stats_counters(self):
        engine = self.build(Observability(enabled=False))
        engine.update("?.g.edge+(.a=3, .b=4)")
        stats = engine.fixpoint_stats
        assert stats.maintained_strata >= 1
        assert stats.maintain_seeded >= 1
        assert stats.maintain_fallbacks == 0
        assert "maintained" in repr(stats)

    def test_maintain_span_shape(self):
        obs = Observability(enabled=True)
        collector = obs.add_exporter(InMemoryCollector())
        engine = self.build(obs)
        engine.update("?.g.edge+(.a=3, .b=4)")
        span = collector.find("fixpoint.maintain")
        assert span is not None
        assert span.attributes["repaired"] >= 1
        assert span.attributes["fallbacks"] == 0
        assert span.attributes["seeded"] == 1
        events = [name for name, _ in span.events if name == "stratum-repaired"]
        assert events

    def test_fallback_span_reason(self):
        obs = Observability(enabled=True)
        collector = obs.add_exporter(InMemoryCollector())
        engine = IdlEngine(obs=obs)
        engine.add_database("a", {"r": [{"x": 1}]})
        engine.add_database("b", {"s": [{"y": 1}]})
        engine.define(".v.p(.x=X) <- .a.r(.x=X), .b.s~(.y=X)")
        engine.materialized_view()
        engine.update("?.b.s+(.y=2)")
        span = collector.find("fixpoint.maintain")
        assert span is not None
        assert span.attributes["fallbacks"] == 1
        events = [attributes for name, attributes in span.events
                  if name == "stratum-fallback"]
        assert events and events[0]["reason"] == "negation"
        # The fallback dropped the materialization; the answer is right.
        assert answers_set(engine.query("?.v.p(.x=X)"), "X") == set()


# -- property: incremental repair == full rebuild ------------------------------


def build_tc_engine():
    engine = IdlEngine()
    engine.add_database("g", {"edge": [{"a": 0, "b": 1}]})
    engine.define(TC[0])
    engine.define(TC[1])
    return engine


edge_ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete"]),
        st.integers(0, 3),
        st.integers(0, 3),
    ),
    max_size=10,
)


@given(edge_ops)
@settings(max_examples=60, deadline=None)
def test_recursive_maintenance_equals_rebuild(sequence):
    incremental = build_tc_engine()
    reference = build_tc_engine()
    incremental.materialized_view()
    for op, a, b in sequence:
        sign = "+" if op == "insert" else "-"
        request = f"?.g.edge{sign}(.a={a}, .b={b})"
        incremental.update(request)
        incremental.materialized_view()
        reference.update(request)
        reference.invalidate()
    lhs = answers_set(incremental.query("?.g.tc(.a=X, .b=Y)"), "X", "Y")
    rhs = answers_set(reference.query("?.g.tc(.a=X, .b=Y)"), "X", "Y")
    assert lhs == rhs


mixed_ops = st.lists(
    st.one_of(
        st.tuples(st.just("insert_r"), st.integers(0, 4)),
        st.tuples(st.just("delete_r"), st.integers(0, 4)),
        st.tuples(st.just("insert_s"), st.integers(0, 4)),
        st.tuples(st.just("delete_s"), st.integers(0, 4)),
    ),
    max_size=12,
)


@given(mixed_ops)
@settings(max_examples=60, deadline=None)
def test_join_and_negation_maintenance_equals_rebuild(sequence):
    def build():
        engine = IdlEngine()
        engine.add_database("a", {"r": [{"x": 1}]})
        engine.add_database("b", {"s": [{"y": 1}]})
        engine.define(".vj.p(.x=X, .y=Y) <- .a.r(.x=X), .b.s(.y=Y)")
        engine.define(".vn.q(.x=X) <- .a.r(.x=X), .b.s~(.y=X)")
        return engine

    incremental = build()
    reference = build()
    incremental.materialized_view()
    for op, value in sequence:
        kind, relation = op.split("_")
        sign = "+" if kind == "insert" else "-"
        attr = "x" if relation == "r" else "y"
        db = "a" if relation == "r" else "b"
        request = f"?.{db}.{relation}{sign}(.{attr}={value})"
        incremental.update(request)
        incremental.materialized_view()
        reference.update(request)
        reference.invalidate()
    for source in ("?.vj.p(.x=X, .y=Y)", "?.vn.q(.x=X)"):
        lhs = {tuple(sorted(a.items())) for a in incremental.query(source)}
        rhs = {tuple(sorted(a.items())) for a in reference.query(source)}
        assert lhs == rhs
