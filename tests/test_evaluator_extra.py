"""Further evaluator coverage: paper Section 2's motivating queries,
aggregate bindings, nulls, nesting, tracing and context options."""

from __future__ import annotations

import pytest

from repro.core.evaluator import EvalContext, answers, holds, satisfy
from repro.core.parser import parse_query
from repro.errors import EvaluationError, SafetyError
from repro.objects import Universe, from_python
from tests.conftest import answers_set


class TestSection2Queries:
    """Section 2: "1) Did any stock ever close above $200? 2) For each
    day, list the stock with the highest closing price." — against every
    schema."""

    def test_highest_per_day_euter(self, engine):
        results = engine.query(
            "?.euter.r(.date=D, .stkCode=S, .clsPrice=P),"
            " .euter.r~(.date=D, .clsPrice>P)"
        )
        assert answers_set(results, "D", "S") == {
            ("3/3/85", "ibm"), ("3/4/85", "ibm"),
        }

    def test_highest_per_day_chwab(self, engine):
        results = engine.query(
            "?.chwab.r(.date=D, .S=P), S != date,"
            " .chwab.r~(.date=D, .S2>P, S2 != date)"
        )
        assert answers_set(results, "D", "S") == {
            ("3/3/85", "ibm"), ("3/4/85", "ibm"),
        }

    def test_highest_per_day_ource(self, engine):
        # Negation placement matters: ``~.ource.S2(...)`` is "no relation
        # has a higher close" (what we want), while ``.ource.S2~(...)``
        # would be "some relation has no higher close" (true for every
        # stock's own relation).
        results = engine.query(
            "?.ource.S(.date=D, .clsPrice=P),"
            " ~.ource.S2(.date=D, .clsPrice>P)"
        )
        assert answers_set(results, "D", "S") == {
            ("3/3/85", "ibm"), ("3/4/85", "ibm"),
        }

    def test_negation_scope_distinction(self, engine):
        """The ∃¬ reading: every stock trivially has *some* relation (its
        own) with no higher close that day."""
        results = engine.query(
            "?.ource.S(.date=3/3/85, .clsPrice=P),"
            " .ource.S2~(.date=3/3/85, .clsPrice>P)"
        )
        assert answers_set(results, "S") == {"hp", "ibm"}


class TestAggregateBindings:
    def test_bind_whole_relation(self, universe):
        query = parse_query("?.euter.r=R")
        [solution] = answers(query, universe)
        assert solution.lookup("R").is_set

    def test_bind_whole_database(self, universe):
        query = parse_query("?.ource=D")
        [solution] = answers(query, universe)
        assert solution.lookup("D").is_tuple

    def test_join_on_aggregate_equality(self):
        universe = Universe.from_python(
            {"a": {"r": [{"x": 1}], "s": [{"x": 1}], "t": [{"x": 2}]}}
        )
        # Which relations hold exactly the same set of tuples?
        query = parse_query("?.a.Y1=V, .a.Y2=V, Y1 != Y2")
        results = answers(query, universe)
        pairs = {
            frozenset((s.lookup("Y1").value, s.lookup("Y2").value))
            for s in results
        }
        assert pairs == {frozenset({"r", "s"})}


class TestNullsAndMismatches:
    def test_null_never_binds(self):
        universe = Universe.from_python({"d": {"r": [{"a": None, "b": 1}]}})
        assert not holds(parse_query("?.d.r(.a=X)"), universe)
        assert holds(parse_query("?.d.r(.b=X)"), universe)

    def test_category_mismatch_is_false(self, universe):
        # .euter is a tuple; comparing it atomically fails, not errors.
        assert not holds(parse_query("?.euter>5"), universe)
        assert not holds(parse_query("?.euter.r(.stkCode(.x=1))"), universe)

    def test_epsilon_matches_anything(self, universe):
        assert holds(parse_query("?.euter"), universe)
        assert holds(parse_query("?.euter.r"), universe)

    def test_attribute_absence(self, universe):
        assert not holds(parse_query("?.euter.zzz"), universe)
        assert not holds(parse_query("?.euter.r(.volume=V)"), universe)


class TestNestedObjects:
    def test_three_levels_of_nesting(self):
        universe = Universe.from_python(
            {"d": {"r": [{"name": "a", "history": [{"y": 1990, "v": 7}]}]}}
        )
        results = answers(
            parse_query("?.d.r(.name=N, .history(.y=Y, .v>5))"), universe
        )
        assert answers_set(
            [{"N": s.lookup("N").value, "Y": s.lookup("Y").value} for s in results],
            "N", "Y",
        ) == {("a", 1990)}

    def test_set_of_sets(self):
        universe = Universe.from_python({"d": {"r": [[{"x": 1}], [{"x": 2}]]}})
        results = answers(parse_query("?.d.r((.x=X))"), universe)
        assert {s.lookup("X").value for s in results} == {1, 2}

    def test_heterogeneous_set_matching(self):
        universe = Universe.from_python({"d": {"r": [1, {"x": 2}, "three"]}})
        assert holds(parse_query("?.d.r(=1)"), universe)
        assert holds(parse_query("?.d.r(.x=2)"), universe)
        assert holds(parse_query("?.d.r(=three)"), universe)


class TestContext:
    def test_trace_hook_fires(self, universe):
        seen = []
        context = EvalContext(trace=lambda expr, obj, subst: seen.append(expr))
        list(satisfy(parse_query("?.euter.r(.stkCode=hp)").expr, universe,
                     None, context))
        assert seen

    def test_reorder_off_rejects_unsafe_order(self, universe):
        context = EvalContext(reorder=False)
        query = parse_query("?.euter.r(.clsPrice>P), .euter.r(.clsPrice=P)")
        with pytest.raises(SafetyError):
            list(satisfy(query.expr, universe, None, context))

    def test_update_in_query_context_rejected(self, universe):
        with pytest.raises(EvaluationError):
            list(satisfy(parse_query("?.euter.r+(.x=1)").expr, universe))

    def test_prebound_parameters(self, universe):
        query = parse_query("?.euter.r(.stkCode=S, .clsPrice=P)")
        results = answers(query, universe, {"S": "ibm"})
        assert {s.lookup("P").value for s in results} == {160, 155}

    def test_python_scalars_accepted_as_bindings(self, universe):
        query = parse_query("?.euter.r(.clsPrice=P)")
        assert holds(query, universe, {"P": 160})
        assert not holds(query, universe, {"P": -1})


class TestSelfJoins:
    def test_pairs_of_stocks_same_day(self, universe):
        results = answers(
            parse_query(
                "?.euter.r(.date=D, .stkCode=S1, .clsPrice=P1),"
                " .euter.r(.date=D, .stkCode=S2, .clsPrice=P2),"
                " P1 > P2"
            ),
            universe,
        )
        pairs = {
            (s.lookup("S1").value, s.lookup("S2").value) for s in results
        }
        assert pairs == {("ibm", "hp")}

    def test_duplicate_attr_items_conjoin(self):
        universe = Universe.from_python({"d": {"r": [{"a": 5}, {"a": 11}]}})
        results = answers(parse_query("?.d.r(.a>4, .a<10, .a=X)"), universe)
        assert {s.lookup("X").value for s in results} == {5}
