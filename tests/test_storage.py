"""Unit tests for the relational storage substrate."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError, StorageError, TransactionError
from repro.storage import Column, Schema, StorageDatabase


@pytest.fixture
def db():
    database = StorageDatabase("euter")
    database.create_relation(
        "r",
        [("date", "str", False), ("stkCode", "str", False), ("clsPrice", "float")],
        key=("date", "stkCode"),
    )
    database.insert_many(
        "r",
        [
            {"date": "3/3/85", "stkCode": "hp", "clsPrice": 50.0},
            {"date": "3/4/85", "stkCode": "hp", "clsPrice": 65.0},
            {"date": "3/3/85", "stkCode": "ibm", "clsPrice": 160.0},
        ],
    )
    return database


class TestSchema:
    def test_column_type_validation(self):
        column = Column("n", "int", nullable=False)
        column.validate(5)
        with pytest.raises(SchemaError):
            column.validate("x")
        with pytest.raises(SchemaError):
            column.validate(None)
        with pytest.raises(SchemaError):
            column.validate(True)  # bool is not int in IDL-land

    def test_float_accepts_int(self):
        Column("p", "float").validate(5)

    def test_schema_rejects_duplicates_and_bad_keys(self):
        with pytest.raises(SchemaError):
            Schema([("a", "int"), ("a", "str")])
        with pytest.raises(SchemaError):
            Schema([("a", "int")], key=("zzz",))

    def test_validate_row_normalizes_missing_nullables(self):
        schema = Schema([("a", "int"), ("b", "str")])
        assert schema.validate_row({"a": 1}) == {"a": 1, "b": None}

    def test_validate_row_rejects_unknown_columns(self):
        schema = Schema([("a", "int")])
        with pytest.raises(SchemaError):
            schema.validate_row({"a": 1, "zzz": 2})


class TestRelationBasics:
    def test_insert_and_scan(self, db):
        rows = db.scan("r")
        assert len(rows) == 3

    def test_primary_key_uniqueness(self, db):
        with pytest.raises(StorageError):
            db.insert("r", {"date": "3/3/85", "stkCode": "hp", "clsPrice": 1.0})
        assert len(db.relation("r")) == 3  # failed insert left no garbage

    def test_key_cannot_be_null(self, db):
        with pytest.raises(SchemaError):
            db.insert("r", {"date": "3/5/85", "stkCode": None, "clsPrice": 1.0})

    def test_get_by_key(self, db):
        row = db.relation("r").get_by_key("3/3/85", "hp")
        assert row["clsPrice"] == 50.0
        assert db.relation("r").get_by_key("9/9/99", "hp") is None

    def test_lookup_via_secondary_index(self, db):
        db.create_index("r", "by_stk", ("stkCode",))
        rows = db.lookup("r", stkCode="hp")
        assert {row["date"] for row in rows} == {"3/3/85", "3/4/85"}

    def test_lookup_without_index_scans(self, db):
        rows = db.lookup("r", stkCode="ibm")
        assert len(rows) == 1

    def test_delete_with_equalities(self, db):
        assert db.delete("r", stkCode="hp") == 2
        assert len(db.relation("r")) == 1

    def test_delete_with_predicate(self, db):
        assert db.delete("r", predicate=lambda row: row["clsPrice"] > 100) == 1

    def test_update(self, db):
        count = db.update("r", {"clsPrice": 51.0}, date="3/3/85", stkCode="hp")
        assert count == 1
        assert db.relation("r").get_by_key("3/3/85", "hp")["clsPrice"] == 51.0

    def test_update_maintains_indexes(self, db):
        db.create_index("r", "by_price", ("clsPrice",))
        db.update("r", {"clsPrice": 51.0}, date="3/3/85", stkCode="hp")
        assert db.lookup("r", clsPrice=51.0)
        assert not db.lookup("r", clsPrice=50.0)

    def test_unique_index_violation_on_update_rolls_back(self, db):
        db.create_index("r", "by_price", ("clsPrice",), unique=True)
        with pytest.raises(StorageError):
            db.update("r", {"clsPrice": 160.0}, date="3/3/85", stkCode="hp")
        # Old row intact, indexes consistent.
        assert db.relation("r").get_by_key("3/3/85", "hp")["clsPrice"] == 50.0
        assert len(db.lookup("r", clsPrice=50.0)) == 1


class TestDDL:
    def test_create_and_drop(self, db):
        db.create_relation("s", [("a", "int")])
        assert db.has_relation("s")
        db.drop_relation("s")
        assert not db.has_relation("s")

    def test_duplicate_relation_rejected(self, db):
        with pytest.raises(SchemaError):
            db.create_relation("r", [("a", "int")])

    def test_catalog_reflection(self, db):
        system = db.system_relations()
        assert {"relname": "r", "arity": 3, "keycols": "date,stkCode"} in system[
            "_relations"
        ]
        column_names = {
            row["colname"] for row in system["_columns"] if row["relname"] == "r"
        }
        assert column_names == {"date", "stkCode", "clsPrice"}


class TestTransactions:
    def test_commit_keeps_changes(self, db):
        with db.begin():
            db.insert("r", {"date": "3/5/85", "stkCode": "hp", "clsPrice": 70.0})
        assert len(db.relation("r")) == 4

    def test_abort_undoes_insert(self, db):
        transaction = db.begin()
        db.insert("r", {"date": "3/5/85", "stkCode": "hp", "clsPrice": 70.0})
        transaction.abort()
        assert len(db.relation("r")) == 3

    def test_abort_undoes_delete(self, db):
        transaction = db.begin()
        db.delete("r", stkCode="hp")
        transaction.abort()
        assert len(db.relation("r")) == 3
        assert db.relation("r").get_by_key("3/3/85", "hp") is not None

    def test_abort_undoes_update(self, db):
        transaction = db.begin()
        db.update("r", {"clsPrice": 999.0}, stkCode="hp")
        transaction.abort()
        assert db.relation("r").get_by_key("3/3/85", "hp")["clsPrice"] == 50.0

    def test_abort_undoes_ddl(self, db):
        transaction = db.begin()
        db.create_relation("s", [("a", "int")])
        db.insert("s", {"a": 1})
        db.drop_relation("r")
        transaction.abort()
        assert not db.has_relation("s")
        assert db.has_relation("r") and len(db.relation("r")) == 3

    def test_exception_in_context_manager_aborts(self, db):
        with pytest.raises(RuntimeError):
            with db.begin():
                db.delete("r", stkCode="hp")
                raise RuntimeError("boom")
        assert len(db.relation("r")) == 3

    def test_savepoints(self, db):
        transaction = db.begin()
        db.insert("r", {"date": "3/5/85", "stkCode": "hp", "clsPrice": 70.0})
        transaction.savepoint("sp1")
        db.delete("r", stkCode="ibm")
        transaction.rollback_to("sp1")
        assert len(db.relation("r")) == 4  # insert kept, delete undone
        transaction.commit()
        assert len(db.relation("r")) == 4

    def test_single_transaction_at_a_time(self, db):
        db.begin()
        with pytest.raises(TransactionError):
            db.begin()

    def test_undo_order_is_reverse(self, db):
        """Insert then update the same row: abort must undo the update
        before the insert."""
        transaction = db.begin()
        rid = db.insert("r", {"date": "3/5/85", "stkCode": "sun", "clsPrice": 30.0})
        db.update("r", {"clsPrice": 31.0}, stkCode="sun")
        transaction.abort()
        assert db.relation("r").get_by_key("3/5/85", "sun") is None
        assert len(db.relation("r")) == 3
        assert rid is not None

    def test_mixed_workload_abort_restores_exact_state(self, db):
        before = sorted(db.scan("r"), key=lambda row: (row["date"], row["stkCode"]))
        transaction = db.begin()
        db.insert("r", {"date": "4/1/85", "stkCode": "sun", "clsPrice": 1.0})
        db.update("r", {"clsPrice": 77.0}, stkCode="hp")
        db.delete("r", stkCode="ibm")
        db.create_relation("t", [("x", "int")])
        transaction.abort()
        after = sorted(db.scan("r"), key=lambda row: (row["date"], row["stkCode"]))
        assert before == after
        assert not db.has_relation("t")
