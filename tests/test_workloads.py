"""Unit tests for the workload generators."""

from __future__ import annotations

import pytest

from repro.workloads import (
    StockWorkload,
    empdept_universe,
    paper_universe,
    random_walk_prices,
    rng,
    ticker_symbols,
    trading_days,
)
from repro.workloads.stocks import STYLES


class TestGenerators:
    def test_rng_is_deterministic(self):
        assert rng(42).random() == rng(42).random()
        assert rng((1, "a")).random() == rng((1, "a")).random()
        assert rng((1, "a")).random() != rng((1, "b")).random()

    def test_ticker_symbols_distinct_and_stable(self):
        symbols = ticker_symbols(50)
        assert len(symbols) == len(set(symbols)) == 50
        assert symbols[:2] == ["hp", "ibm"]  # the paper's own names first
        assert ticker_symbols(50) == symbols

    def test_trading_days_are_weekdays(self):
        from datetime import datetime

        days = trading_days(30)
        assert len(days) == 30
        for day in days:
            month, dom, year = day.split("/")
            stamp = datetime(1900 + int(year), int(month), int(dom))
            assert stamp.weekday() < 5

    def test_random_walk_bounds(self):
        walk = random_walk_prices(rng(1), 100, start=100, volatility=0.05,
                                  minimum=1.0)
        assert len(walk) == 100
        assert all(price >= 1.0 for price in walk)
        assert all(price == round(price, 2) for price in walk)


class TestStockWorkload:
    def test_quotes_cover_the_grid(self):
        workload = StockWorkload(n_stocks=4, n_days=3, seed=1)
        assert len(workload.quotes()) == 12
        assert len({(d, s) for d, s, _ in workload.quotes()}) == 12

    def test_same_seed_same_prices(self):
        left = StockWorkload(n_stocks=3, n_days=3, seed=5)
        right = StockWorkload(n_stocks=3, n_days=3, seed=5)
        assert left.prices == right.prices
        other = StockWorkload(n_stocks=3, n_days=3, seed=6)
        assert left.prices != other.prices

    def test_styles_encode_the_same_quotes(self):
        from repro.multidb import to_long

        workload = StockWorkload(n_stocks=5, n_days=4, seed=2)
        reference = sorted(workload.quotes())
        for style in STYLES:
            assert to_long(workload.relations_for(style), style) == reference

    def test_universe_members(self):
        workload = StockWorkload(n_stocks=3, n_days=2, seed=3)
        universe = workload.universe()
        assert universe.database_names() == ["euter", "chwab", "ource"]
        assert universe.relation_names("ource") == workload.symbols

    def test_overlap_subsets(self):
        workload = StockWorkload(n_stocks=10, n_days=2, seed=4, overlap=0.5)
        members = {
            name: set(workload.member_symbols(name))
            for name in ("euter", "chwab", "ource")
        }
        assert any(members["euter"] != other for other in members.values())
        for subset in members.values():
            assert subset and subset <= set(workload.symbols)

    def test_name_conflict_universe_has_mappings(self):
        workload = StockWorkload(n_stocks=3, n_days=2, seed=5)
        universe = workload.universe_with_name_conflicts()
        assert len(universe.relation("dbU", "mapCE")) == 3
        assert len(universe.relation("dbU", "mapOE")) == 3
        # No shared stock names across members.
        chwab_attrs = set()
        for element in universe.relation("chwab", "r").elements():
            chwab_attrs |= set(element.attr_names()) - {"date"}
        assert all(name.startswith("c_") for name in chwab_attrs)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            StockWorkload(n_stocks=0, n_days=1)

    def test_paper_universe_matches_the_text(self):
        universe = paper_universe()
        assert len(universe.relation("euter", "r")) == 4
        assert universe.relation_names("ource") == ["hp", "ibm"]


class TestEmpDept:
    def test_managers_are_department_members(self):
        universe = empdept_universe(n_employees=12, n_departments=3, seed=1)
        from repro.objects import to_python

        emps = to_python(universe.relation("hr", "emp"))
        depts = to_python(universe.relation("hr", "dept"))
        members = {}
        for row in emps:
            members.setdefault(row["dno"], set()).add(row["name"])
        for row in depts:
            assert row["mgr"] in members[row["dno"]]

    def test_sizes(self):
        universe = empdept_universe(n_employees=12, n_departments=3, seed=1)
        assert len(universe.relation("hr", "emp")) == 12
        assert len(universe.relation("hr", "dept")) == 3

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            empdept_universe(n_employees=2, n_departments=3)
