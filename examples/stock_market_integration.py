"""The full paper walkthrough: integrating three stock-market vendors.

A brokerage consumes market data from three vendors with schematically
discrepant schemata (the paper's euter/chwab/ource). This example:

1. generates a realistic seeded workload and loads each vendor;
2. *detects* the schematic discrepancies automatically;
3. installs the Figure 1 two-level mapping (unified view + one
   customized view per trading desk);
4. runs the desks' everyday queries through their own views;
5. performs maintenance through update programs and shows every member
   and every view staying consistent;
6. updates through a customized view (view updatability).

Run:  python examples/stock_market_integration.py
"""

from __future__ import annotations

from repro.multidb import Federation, detect_discrepancies, report
from repro.workloads.stocks import StockWorkload


def main():
    workload = StockWorkload(n_stocks=6, n_days=5, seed=1985)

    federation = Federation()
    federation.add_member("euter", "euter", workload.euter_relations())
    federation.add_member("chwab", "chwab", workload.chwab_relations())
    federation.add_member("ource", "ource", workload.ource_relations())

    print("== 1. schematic discrepancy scan ==")
    findings = detect_discrepancies(federation.engine.universe)
    print(report(findings))

    print("\n== 2. install the two-level mapping (Figure 1) ==")
    federation.add_user_view("dbE", "euter")   # the quant desk
    federation.add_user_view("dbC", "chwab")   # the retail desk
    federation.add_user_view("dbO", "ource")   # the data vendors desk
    federation.install(reconcile=True)
    print(federation)

    print("\n== 3. each desk queries its own schema ==")
    day = workload.days[0]
    best = max(workload.symbols, key=lambda s: workload.price(day, s))
    print(f"  quant desk   : ?.dbE.r(.date={day}, .stkCode=S, .clsPrice>150)")
    for answer in federation.query(
        f"?.dbE.r(.date={day}, .stkCode=S, .clsPrice=P),"
        f" .dbE.r~(.date={day}, .clsPrice>P)"
    ):
        print(f"    top stock {answer['S']} at {answer['P']} "
              f"(expected {best})")
    print(f"  retail desk  : ?.dbC.r(.date={day}, .{best}=P)")
    for answer in federation.query(f"?.dbC.r(.date={day}, .{best}=P)"):
        print(f"    {best} closed at {answer['P']}")
    print(f"  vendor desk  : ?.dbO.{best}(.date={day}, .clsPrice=P)")
    for answer in federation.query(f"?.dbO.{best}(.date={day}, .clsPrice=P)"):
        print(f"    {best} closed at {answer['P']}")

    print("\n== 4. cross-database metadata query ==")
    print("  stocks quoted identically in chwab and ource today:")
    for answer in federation.query(
        f"?.chwab.r(.date={day}, .S=P), .ource.S(.date={day}, .clsPrice=P)"
    ):
        print(f"    {answer['S']} at {answer['P']}")

    print("\n== 5. maintenance through update programs ==")
    federation.insert_quote("nova", workload.days[-1], 73.5)
    print("  inserted nova @ 73.5 via insStk; visible as:")
    print("    euter tuple  :",
          federation.ask("?.euter.r(.stkCode=nova, .clsPrice=73.5)"))
    print("    chwab column :",
          federation.ask(f"?.chwab.r(.date={workload.days[-1]}, .nova=73.5)"))
    print("    ource relation:",
          federation.ask("?.ource.nova(.clsPrice=73.5)"))
    print("    dbO relation  :",
          "nova" in federation.engine.overlay.get("dbO").attr_names())

    federation.remove_stock(workload.symbols[-1])
    gone = workload.symbols[-1]
    print(f"  removed {gone} via rmStk (data AND metadata):")
    print(f"    ource relations: {federation.engine.universe.relation_names('ource')}")

    print("\n== 6. the quant desk updates through its view ==")
    federation.update("?.dbE.r+(.date=9/9/99, .stkCode=nova, .clsPrice=80)")
    print("    base ource sees it:",
          federation.ask("?.ource.nova(.date=9/9/99, .clsPrice=80)"))
    print("    retail desk sees it:",
          federation.ask("?.dbC.r(.date=9/9/99, .nova=80)"))

    print("\nunified view now holds", len(federation.unified_quotes()),
          "quotes")


if __name__ == "__main__":
    main()
