"""Schema migration between discrepant styles, on the storage substrate.

A data vendor stores quotes chwab-style (one column per stock) on its
relational database and wants to migrate to ource-style (one relation
per stock) without interrupting clients. The plan:

1. attach the live storage database to an IDL engine;
2. define the target schema as a *higher-order view* — the migration is
   one rule, and the number of target relations follows the data;
3. validate the view against the source (per-quote equivalence);
4. cut over: materialize the view into a new storage database and
   verify with the storage engine's own SQL.

Run:  python examples/brokerage_migration.py
"""

from __future__ import annotations

from repro import IdlEngine
from repro.multidb import attach_storage, detect_style, flush_to_storage, to_long
from repro.sql import SqlEngine
from repro.storage import StorageDatabase
from repro.workloads.stocks import StockWorkload


def build_source(workload):
    storage = StorageDatabase("vendor")
    columns = [("date", "str", False)] + [
        (symbol, "float") for symbol in workload.symbols
    ]
    storage.create_relation("r", columns, key=("date",))
    for row in workload.chwab_relations()["r"]:
        storage.insert("r", row)
    return storage


def main():
    workload = StockWorkload(n_stocks=5, n_days=6, seed=77)
    source = build_source(workload)
    print("== 1. the live source database ==")
    print("   relations:", source.relation_names(),
          "rows:", source.row_count())
    detected = detect_style(
        {name: source.scan(name) for name in source.relation_names()}
    )
    print("   detected schema style:", detected)

    print("\n== 2. the migration, as one higher-order rule ==")
    engine = IdlEngine()
    attach_storage(engine, "vendor", source)
    rule = (
        ".target.S(.date=D, .clsPrice=P) <- .vendor.r(.date=D, .S=P),"
        " S != date"
    )
    print("  ", rule)
    engine.define(rule)
    overlay = engine.overlay
    print("   target relations (data-dependent):",
          sorted(overlay.get("target").attr_names()))

    print("\n== 3. validation: per-quote equivalence ==")
    source_quotes = to_long(
        {"r": source.scan("r")}, "chwab"
    )
    target_quotes = sorted(
        (answer["D"], answer["S"], answer["P"])
        for answer in engine.query("?.target.S(.date=D, .clsPrice=P)")
    )
    print("   source quotes:", len(source_quotes),
          " target quotes:", len(target_quotes),
          " equal:", source_quotes == target_quotes)
    assert source_quotes == target_quotes

    print("\n== 4. cutover: materialize into a new storage database ==")
    target_storage = StorageDatabase("vendor_v2")
    # Move the derived view into a real universe member, then flush.
    engine.universe.add_database("target_base")
    for rel_name in overlay.get("target").attr_names():
        relation = overlay.get("target").get(rel_name)
        engine.universe.database("target_base").set(rel_name, relation.copy())
    flush_to_storage(engine.universe, "target_base", target_storage)
    print("   new storage relations:", target_storage.relation_names())

    sql = SqlEngine(target_storage)
    symbol = workload.symbols[0]
    rows = sql.execute(
        f"SELECT date, clsPrice FROM {symbol} ORDER BY date LIMIT 3"
    )
    print(f"   SELECT ... FROM {symbol}:")
    for row in rows:
        print("    ", row)
    check = sql.execute(f"SELECT count(*) AS n FROM {symbol}")
    assert check[0]["n"] == workload.n_days
    print("\nmigration complete and verified.")


if __name__ == "__main__":
    main()
