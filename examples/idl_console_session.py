"""A scripted tour of the IDL console.

Drives :class:`repro.tools.repl.IdlRepl` through a complete session —
exploration, view definition, explain, integrity declaration, update
programs, persistence — echoing every input so the output reads as a
transcript. (For a live console: ``python -m repro.tools.repl``.)

Run:  python examples/idl_console_session.py
"""

from __future__ import annotations

import sys
import tempfile

from repro import IdlEngine
from repro.tools.repl import IdlRepl
from repro.workloads.stocks import paper_universe

SESSION = [
    "% look around",
    ":dbs",
    ":rels ource",
    "",
    "% the same intention against each schema",
    "?.euter.r(.stkCode=S, .clsPrice>100)",
    "?.chwab.r(.S>100), S != date",
    "?.ource.S(.clsPrice>100)",
    "",
    "% how is that last one evaluated?",
    ":explain ?.ource.S(.clsPrice>100)",
    "",
    "% a unified view over all three members",
    ".dbI.p(.date=D, .stk=S, .price=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P)",
    ".dbI.p(.date=D, .stk=S, .price=P) <- .chwab.r(.date=D, .S=P), S != date",
    ".dbI.p(.date=D, .stk=S, .price=P) <- .ource.S(.date=D, .clsPrice=P)",
    "?.dbI.p(.date=3/3/85, .stk=S, .price=P)",
    "",
    "% an update program; calling it is just another request",
    ".dbU.delStk(.stk=S, .date=D) -> .euter.r-(.stkCode=S, .date=D)",
    ".dbU.delStk(.stk=S, .date=D) -> .chwab.r(.S-=X, .date=D)",
    ".dbU.delStk(.stk=S, .date=D) -> .ource.S-(.date=D)",
    ":program",
    "?.dbU.delStk(.stk=hp, .date=3/3/85)",
    "?.dbI.p(.date=3/3/85, .stk=S, .price=P)",
    "",
    ":quit",
]


def main():
    engine = IdlEngine(universe=paper_universe())
    engine.universe.add_database("dbU")
    repl = IdlRepl(engine=engine, out=sys.stdout)
    for line in SESSION:
        if line and not line.startswith("%"):
            print(f"idl> {line}")
        elif line:
            print(line)
        repl.handle(line)
    # Bonus: persist the session's engine and reload it.
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        path = handle.name
    repl2 = IdlRepl(engine=engine, out=sys.stdout)
    print(f"idl> :save <tmp>")
    repl2.handle(f":save {path}")
    print(f"idl> :open <tmp>")
    repl2.handle(f":open {path}")
    print("idl> ?.dbI.p(.stk=ibm, .price=P)")
    repl2.handle("?.dbI.p(.stk=ibm, .price=P)")


if __name__ == "__main__":
    main()
