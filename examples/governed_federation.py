"""A governed federation: keys, types and per-desk authorization.

The paper's Section 2 lists the metadata a multidatabase language must
eventually model: "relation names, attribute names, keys, types,
authorization, etc." — this example exercises all of them at once:

1. the usual stock federation, with declared key and type constraints
   (including a wildcard key over the ource-style *family* of
   relations, whose membership is data-dependent);
2. per-principal grants: the quant desk may read and write euter, the
   intern may only read the unified view;
3. every rule enforced: bad updates roll back atomically, unauthorized
   fan-outs roll back across members, and the intern sees exactly the
   granted slice of the catalog.

Run:  python examples/governed_federation.py
"""

from __future__ import annotations

from repro.errors import AuthorizationError, BindingError, IntegrityError
from repro.multidb import AccessPolicy, AuthorizedSession, Federation
from repro.workloads.stocks import StockWorkload


def main():
    workload = StockWorkload(n_stocks=4, n_days=3, seed=55)
    federation = Federation()
    federation.add_member("euter", relations=workload.euter_relations())
    federation.add_member("ource", relations=workload.ource_relations())
    federation.install()
    engine = federation.engine

    print("== 1. integrity constraints (keys + types) ==")
    engine.declare_key("euter", "r", ("date", "stkCode"))
    engine.declare_type("euter", "r", "clsPrice", "num")
    engine.declare_key("ource", "*", ("date",))  # the whole family
    print("   declared:", engine.constraints.as_relations())

    day = workload.days[0]
    symbol = workload.symbols[0]
    try:
        engine.update(
            f"?.euter.r+(.date={day}, .stkCode={symbol}, .clsPrice=1)"
        )
    except IntegrityError as exc:
        print(f"   duplicate key rejected: {str(exc)[:68]}...")
    try:
        engine.update("?.euter.r+(.date=9/9/99, .stkCode=zzz, .clsPrice=pricey)")
    except IntegrityError as exc:
        print(f"   type violation rejected: {str(exc)[:68]}...")
    assert not engine.ask("?.euter.r(.stkCode=zzz)")
    print("   base state intact after both rollbacks")

    print("\n== 2. authorization ==")
    policy = AccessPolicy()
    policy.grant("quant", "euter", actions=("read", "write"))
    policy.grant("quant", "dbU", actions=("read", "write"))
    policy.grant("intern", "dbI", "p", actions=("read",))
    quant = AuthorizedSession(engine, "quant", policy)
    intern = AuthorizedSession(engine, "intern", policy)

    print("   intern's whole catalog:", intern.query("?.X.Y"))
    print("   intern sees prices via the unified view:",
          len(intern.query("?.dbI.p(.stk=S, .price=P)")), "quotes")
    print("   intern cannot see euter directly:",
          not intern.ask("?.euter.r"))

    print("\n== 3. write enforcement across members ==")
    result = quant.update(
        "?.euter.r+(.date=9/9/99, .stkCode=nova, .clsPrice=5)"
    )
    print("   quant writes euter:", result)
    try:
        # insStk fans out to ource too, which quant may not write.
        quant.call("dbU", "insStk", stk="nova", date="9/8/99", price=5)
    except AuthorizationError as exc:
        print(f"   fan-out blocked and rolled back: {str(exc)[:60]}...")
    assert not engine.ask("?.euter.r(.date=9/8/99)")
    assert not engine.ask("?.ource.nova(.date=9/8/99)")
    print("   neither member kept the partial insert")

    print("\n== 4. binding signatures still apply underneath ==")
    try:
        quant.call("dbU", "insStk", stk="nova")
    except BindingError as exc:
        print(f"   partial insStk rejected: {str(exc)[:60]}...")

    print("\ngoverned federation behaving as specified.")


if __name__ == "__main__":
    main()
