"""idlcheck: catching bad multidatabase programs before they run.

Builds the paper's stock federation, validates it strictly at install
time, then shows what the analyzer reports for a deliberately broken
program: unknown relations, negation through recursion, dead rules,
uncovered update calls — each with a stable code and source position.

Run:  python examples/static_analysis_demo.py
"""

from __future__ import annotations

from repro.analysis import CallShape, Catalog, check_source
from repro.errors import ValidationError
from repro.multidb.connectors import InMemoryConnector
from repro.multidb.federation import Federation
from repro.workloads.stocks import StockWorkload


def clean_federation():
    # Connector-backed members attach at install time, not before — so
    # strict validation really does run against un-attached members.
    workload = StockWorkload(n_stocks=4, n_days=3, seed=1991)
    federation = Federation()
    for name, style in (("euter", "euter"), ("chwab", "chwab"),
                        ("ource", "ource")):
        federation.add_member(
            name, style=style,
            connector=InMemoryConnector(workload.relations_for(style)),
        )
    federation.add_user_view("dbE", "euter")
    federation.add_user_view("dbO", "ource")
    return federation


def main():
    print("== strict install of a healthy federation ==")
    federation = clean_federation()
    federation.install(validate="strict")
    print("validated:", federation.last_validation.summary())
    print("quotes in unified view:", len(federation.unified_quotes()))

    print("\n== the same check, on a broken administrator program ==")
    # The broken statements are assembled from fragments so that this
    # example itself stays clean under `python -m repro.tools.lint`.
    arrow = "<" + "-"
    broken = "\n".join([
        ".dbV.avg(.stk=S) " + arrow + " .euter.quotes(.stkCode=S)",
        ".dbV.odd(.s=S) " + arrow + " .euter.r(.stkCode=S), ~.dbV.odd(.s=S)",
        ".dbV.loop(.x=X) " + arrow + " .dbV.loop(.x=X)",
    ])
    catalog = Catalog()
    catalog.add_relation("euter", "r", ["date", "stkCode", "clsPrice"])
    report = check_source(broken, catalog=catalog, required=[
        CallShape("dbU", "insStk", None, ["stk", "date", "price"],
                  origin="the maintenance API"),
    ])
    print(report.render())

    print("\n== strict install refuses a federation with such a program ==")
    federation = clean_federation()
    federation.engine.define(
        ".dbV.avg(.stk=S) " + arrow + " .euter.quotes(.stkCode=S)"
    )
    try:
        federation.install(validate="strict")
        print("unexpectedly installed")
    except ValidationError as exc:
        codes = ", ".join(exc.report.codes)
        print(f"rejected before attaching any member ({codes})")
        print("members attached:", sorted(federation._attached) or "none")


if __name__ == "__main__":
    main()
