"""Crash a federation mid-flush, restart it, and recover — on disk.

Translated updates must reach every member or none (the paper's
all-or-nothing update semantics), but the flush that delivers them is
member-by-member. This example runs the durability story end to end on
a :class:`~repro.multidb.journal.FileJournal`:

1. a federation over the three schema styles journals every flush to a
   JSON-lines write-ahead log (intent → per-member outcome → commit);
2. a :class:`~repro.multidb.journal.CrashInjector` kills the "process"
   after the intent and the first member's apply — the classic
   half-flushed state;
3. a *new* federation (the restarted process) reopens the journal,
   sees the pending intent, and ``recover()`` rolls the remaining
   members forward — every member ends at the post-update state;
4. a second ``recover()`` is a no-op, and the journal shows the update
   committed.

Run it::

    PYTHONPATH=src python examples/durable_federation.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.multidb import (
    CrashInjector,
    CrashPoint,
    Federation,
    FederationConfig,
    FileJournal,
    InMemoryConnector,
)
from repro.workloads.stocks import StockWorkload


def build(connectors, journal, crash=None):
    # parallel="off": the serial flush keeps this demo's crash schedule
    # pinned to "the intent, then the first member's apply" — with the
    # default scatter-gather flush, *which* member died mid-apply would
    # vary run to run (recovery handles either; see docs/concurrency.md).
    config = FederationConfig(journal=journal, crash=crash, parallel="off")
    federation = Federation.from_config(config)
    for style in ("euter", "chwab", "ource"):
        federation.add_member(style, style, connector=connectors[style])
    federation.install()
    return federation


def show_journal(federation, title):
    status = federation.health_report()["journal"]
    print(f"\n== {title}")
    print(f"   backend:   {status['backend']}")
    print(f"   updates:   {status['updates']} "
          f"(committed {status['committed']}, aborted {status['aborted']}, "
          f"pending {status['pending'] or 'none'})")
    print(f"   torn tails truncated: {status['truncated_tails']}")


def quote_count(connectors):
    return {
        name: sum(len(rows) for rows in connector.scan().values())
        for name, connector in sorted(connectors.items())
    }


def main():
    workload = StockWorkload(n_stocks=3, n_days=2, seed=1985)
    # The members survive the federation's "process": real member
    # databases do not die when the federation host does.
    connectors = {
        style: InMemoryConnector(workload.relations_for(style))
        for style in ("euter", "chwab", "ource")
    }
    wal = Path(tempfile.mkdtemp()) / "federation.wal"

    crash = CrashInjector()
    federation = build(connectors, FileJournal(wal), crash)
    print(f"journaling to {wal}")
    print(f"member row counts before: {quote_count(connectors)}")

    # Crash after op 0 (the intent append) and op 1 (the first member's
    # apply): the intent is durable, exactly one member took the update.
    crash.arm(2)
    try:
        federation.insert_quote("nova", "9/9/99", 7.0)
    except CrashPoint as death:
        print(f"\nprocess died: {death}")
    print(f"member row counts after the crash: {quote_count(connectors)}")
    show_journal(federation, "journal the crashed process left behind")

    # --- restart: a new process, the same members, the same log file.
    restarted = build(connectors, FileJournal(wal))
    show_journal(restarted, "journal as the restarted process opens it")

    replayed = restarted.recover()
    print(f"\nrecover() replayed: {replayed or 'nothing'}")
    print(f"member row counts after recovery: {quote_count(connectors)}")
    show_journal(restarted, "journal after recovery")

    assert restarted.recover() == {}  # idempotent: nothing left to do
    quotes = set(restarted.unified_quotes())
    assert ("9/9/99", "nova", 7.0) in quotes
    print("\nthe unified view serves the update from every member;")
    print("a second recover() found nothing to replay.")
    restarted.journal.close()


if __name__ == "__main__":
    main()
