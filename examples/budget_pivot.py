"""A second domain in five minutes: the budget pivot discrepancy.

Three agencies record departmental budgets: long (years as data), wide
(years as columns, labelled 'y1990'), and relation-per-department. The
same IDL machinery that integrated the stock vendors integrates them —
including a *mapping-mediated* dimension: the wide schema's column
labels translate to numeric years through an ordinary relation.

Run:  python examples/budget_pivot.py
"""

from __future__ import annotations

from repro import IdlEngine
from repro.multidb import detect_discrepancies, report
from repro.workloads.budgets import UNIFIED_RULES, BudgetWorkload


def main():
    workload = BudgetWorkload(n_departments=3, n_years=3, first_year=1989)
    engine = IdlEngine(universe=workload.universe())

    print("== the three schemata ==")
    print("  fin.budget  :", engine.query("?.fin.budget(.dept=D, .year=Y)")[:2],
          "...")
    print("  plan.budget columns:",
          sorted({a["C"] for a in engine.query("?.plan.budget(.C)")}))
    print("  acct relations:", engine.universe.relation_names("acct"))

    print("\n== discrepancy scan ==")
    print(report(detect_discrepancies(engine.universe)))

    print("\n== unify (note the label->year mapping join) ==")
    for line in UNIFIED_RULES.strip().splitlines():
        print("  ", line)
    engine.define(UNIFIED_RULES)
    rows = engine.query("?.dbB.b(.dept=D, .year=Y, .amount=A)")
    print(f"   unified: {len(rows)} facts "
          f"({len(workload.departments)} depts x {len(workload.years)} years)")

    print("\n== one intention, three phrasings ==")
    threshold = 300
    for label, source in (
        ("long", f"?.fin.budget(.dept=D, .amount>{threshold})"),
        ("wide",
         f"?.plan.budget(.dept=D, .YL>{threshold}), .dbU.yearName(.label=YL)"),
        ("per-dept", f"?.acct.D(.amount>{threshold})"),
    ):
        departments = sorted({a["D"] for a in engine.query(source)})
        print(f"   over {threshold} via {label:<9}: {departments}")

    print("\n== pivot back out as a customized view ==")
    engine.define(
        ".dbW.budget(.dept=D, .YL=A) <- .dbB.b(.dept=D, .year=Y, .amount=A),"
        " .dbU.yearName(.label=YL, .year=Y)",
        merge_on=("dept",),
    )
    for answer in engine.query("?.dbW.budget(.dept=sales, .y1989=A)"):
        print(f"   dbW.budget(sales).y1989 = {answer['A']}")

    print("\nsame machinery, different domain — nothing stock-specific.")


if __name__ == "__main__":
    main()
