"""An MSQL gateway: serving legacy multidatabase SQL on top of IDL.

The paper positions IDL as subsuming MSQL (Litwin's multidatabase SQL).
This example plays a realistic integration story: a legacy reporting
tool speaks MSQL; we serve it from the IDL engine, showing per-statement
how each MSQL form translates into a single IDL expression — including
broadcasts and inter-database joins the legacy tool believes require
server-side magic.

Run:  python examples/msql_gateway.py
"""

from __future__ import annotations

from repro import IdlEngine
from repro.multidb.msql import MsqlSession
from repro.workloads.stocks import StockWorkload


def show(session, statement):
    print(f"msql> {statement}")
    if statement.upper().startswith("USE"):
        scope = session.execute(statement)
        print(f"      scope = {scope}")
        return
    for source in session.translate(statement):
        print(f"      -> {source}")
    rows = session.execute(statement)
    for row in rows[:6]:
        print(f"      {row}")
    if len(rows) > 6:
        print(f"      ... ({len(rows)} rows)")
    print()


def main():
    workload = StockWorkload(n_stocks=4, n_days=4, seed=31)
    engine = IdlEngine(universe=workload.universe())
    session = MsqlSession(engine)

    print("== the legacy tool connects ==\n")
    show(session, "USE euter chwab ource")

    print("== broadcast: one statement, every member that has `r` ==\n")
    show(session, "SELECT date FROM r WHERE date = '3/3/85'")

    print("== member-qualified access ==\n")
    symbol = workload.symbols[0]
    show(
        session,
        f"SELECT e.date AS d, e.clsPrice AS p FROM euter.r e"
        f" WHERE e.stkCode = '{symbol}'",
    )

    print("== inter-database join (euter data vs ource metadata) ==\n")
    show(
        session,
        f"SELECT e.date AS d FROM euter.r e, ource.{symbol} o"
        f" WHERE e.date = o.date AND e.stkCode = '{symbol}'"
        f" AND e.clsPrice = o.clsPrice",
    )

    print("== SELECT * without knowing the schema ==\n")
    show(session, "SELECT * FROM euter.r WHERE clsPrice > 105")

    print("== but IDL can go where MSQL cannot ==\n")
    print("idl > ?.chwab.r(.S>105), S != date")
    stocks = sorted(
        {answer["S"] for answer in engine.query("?.chwab.r(.S>105), S != date")}
    )
    print(f"      stocks-above-105 via attribute-name quantification: {stocks}")
    print("      (no MSQL statement can range over column names)")


if __name__ == "__main__":
    main()
