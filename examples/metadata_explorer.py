"""Metadata exploration and the first-order counterfactual.

Shows what Section 2 of the paper is about, on a bigger federation:

* IDL treats catalogs as data — browsing databases, relations and
  attributes is ordinary querying, across autonomous members at once;
* the pre-IDL alternative (catalog-driven SQL generation) needs a
  growing set of statements for one intention, and silently needs MORE
  statements whenever a stock is added.

Run:  python examples/metadata_explorer.py
"""

from __future__ import annotations

from repro import IdlEngine
from repro.multidb import FirstOrderFederation, attach_storage
from repro.storage import StorageDatabase
from repro.workloads.stocks import StockWorkload


def storage_members(workload):
    members = {}
    for style in ("euter", "chwab", "ource"):
        storage = StorageDatabase(style)
        if style == "euter":
            storage.create_relation(
                "r", [("date", "str"), ("stkCode", "str"), ("clsPrice", "float")]
            )
            for day, symbol, price in workload.quotes():
                storage.insert(
                    "r", {"date": day, "stkCode": symbol, "clsPrice": price}
                )
        elif style == "chwab":
            storage.create_relation(
                "r", [("date", "str")] + [(s, "float") for s in workload.symbols]
            )
            for row in workload.chwab_relations()["r"]:
                storage.insert("r", row)
        else:
            for symbol in workload.symbols:
                storage.create_relation(
                    symbol, [("date", "str"), ("clsPrice", "float")]
                )
                for row in workload.ource_relations()[symbol]:
                    storage.insert(symbol, row)
        members[style] = storage
    return members


def main():
    workload = StockWorkload(n_stocks=8, n_days=5, seed=11)
    members = storage_members(workload)

    print("== IDL: the catalog is just data ==")
    engine = IdlEngine()
    for name, storage in members.items():
        attach_storage(engine, name, storage, include_catalog=True)

    print("  every database:", [a["X"] for a in engine.query("?.X")])
    print("  relations per database:")
    for answer in engine.query("?.X.Y"):
        if not answer["Y"].startswith("_"):
            print(f"    .{answer['X']}.{answer['Y']}")

    print("\n  which member knows a relation named", workload.symbols[0], "?")
    for answer in engine.query(f"?.X.{workload.symbols[0]}"):
        print("   ", answer["X"])

    print("\n  members whose *stored catalog* lists a clsPrice column:")
    for answer in engine.query(
        "?.X.'_columns'(.relname=R, .colname=clsPrice)"
    ):
        print(f"    {answer['X']}.{answer['R']}")

    print("\n  one expression, all members: any stock above 100?")
    hits = set()
    for source in (
        "?.euter.r(.stkCode=S, .clsPrice>100)",
        "?.chwab.r(.S>100), S != date",
        "?.ource.S(.clsPrice>100)",
    ):
        hits |= {answer["S"] for answer in engine.query(source)}
    print("   ", sorted(hits))

    print("\n== the first-order counterfactual ==")
    federation = FirstOrderFederation()
    for name, storage in members.items():
        federation.add_member(name, storage, name)
    stocks, statements = federation.stocks_above(100)
    print(f"  same question in SQL: {statements} statements "
          f"({1} + {workload.n_stocks} + {workload.n_stocks}), "
          f"answer {sorted(stocks)}")
    assert stocks == hits

    print("\n  now the vendor adds one stock...")
    members["ource"].create_relation(
        "newco", [("date", "str"), ("clsPrice", "float")]
    )
    members["ource"].insert("newco", {"date": workload.days[0],
                                      "clsPrice": 500.0})
    _, statements_after = federation.stocks_above(100)
    print(f"  SQL statement count grew: {statements} -> {statements_after}")
    print("  the IDL expression is unchanged:")
    engine2 = IdlEngine()
    attach_storage(engine2, "ource", members["ource"])
    above = {a["S"] for a in engine2.query("?.ource.S(.clsPrice>100)")}
    print("    ?.ource.S(.clsPrice>100) ->", sorted(above))
    assert "newco" in above


if __name__ == "__main__":
    main()
