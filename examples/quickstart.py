"""Quickstart: five minutes of IDL.

Builds the paper's three stock databases, runs first-order and
higher-order queries, defines a unified view, and updates through an
update program.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import IdlEngine


def main():
    engine = IdlEngine()

    # Three databases, same information, three schemata (paper Section 1).
    engine.add_database(
        "euter",
        {"r": [
            {"date": "3/3/85", "stkCode": "hp", "clsPrice": 50},
            {"date": "3/4/85", "stkCode": "hp", "clsPrice": 65},
            {"date": "3/3/85", "stkCode": "ibm", "clsPrice": 160},
        ]},
    )
    engine.add_database(
        "chwab",
        {"r": [
            {"date": "3/3/85", "hp": 50, "ibm": 160},
            {"date": "3/4/85", "hp": 65, "ibm": 155},
        ]},
    )
    engine.add_database(
        "ource",
        {
            "hp": [{"date": "3/3/85", "clsPrice": 50}],
            "ibm": [{"date": "3/3/85", "clsPrice": 160}],
        },
    )

    print("== queries ==")
    print("did hp ever close above 60?",
          engine.ask("?.euter.r(.stkCode=hp, .clsPrice>60)"))

    # The same intention against each schema: S ranges over data in
    # euter, over ATTRIBUTE NAMES in chwab, over RELATION NAMES in ource.
    for source in (
        "?.euter.r(.stkCode=S, .clsPrice>100)",
        "?.chwab.r(.S>100), S != date",
        "?.ource.S(.clsPrice>100)",
    ):
        stocks = sorted({answer["S"] for answer in engine.query(source)})
        print(f"  above 100 via {source.split('.')[1]:<6} -> {stocks}")

    print("\n== metadata is data ==")
    print("databases:", [a["X"] for a in engine.query("?.X")])
    print("db/relation pairs:",
          [(a["X"], a["Y"]) for a in engine.query("?.X.Y")])

    print("\n== a unified view (database transparency) ==")
    engine.define(
        ".dbI.p(.date=D, .stk=S, .price=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P)\n"
        ".dbI.p(.date=D, .stk=S, .price=P) <- .chwab.r(.date=D, .S=P), S != date\n"
        ".dbI.p(.date=D, .stk=S, .price=P) <- .ource.S(.date=D, .clsPrice=P)"
    )
    for answer in engine.query("?.dbI.p(.date=3/3/85, .stk=S, .price=P)"):
        print(f"  {answer['S']:<4} closed at {answer['P']}")

    print("\n== an update program (one logical update, three databases) ==")
    engine.universe.add_database("dbU")
    engine.invalidate()
    engine.define_update(
        ".dbU.delStk(.stk=S, .date=D) -> .euter.r-(.stkCode=S, .date=D)\n"
        ".dbU.delStk(.stk=S, .date=D) -> .chwab.r(.S-=X, .date=D)\n"
        ".dbU.delStk(.stk=S, .date=D) -> .ource.S-(.date=D)"
    )
    result = engine.call("dbU", "delStk", stk="hp", date="3/3/85")
    print("delStk(hp, 3/3/85):", result)
    print("hp on 3/3 anywhere?",
          engine.ask("?.dbI.p(.date=3/3/85, .stk=hp)"))


if __name__ == "__main__":
    main()
