"""The stock federation with a flaky member, end to end.

The paper's premise is that euter, chwab and ource are *autonomous*
systems — the multidatabase layer cannot assume they are up. This
example runs the full degradation-and-recovery story:

1. chwab is down when the federation installs → it is quarantined,
   not fatal;
2. strict queries refuse to answer from a subset;
   ``on_unavailable="partial"`` answers from the surviving members
   with an availability report;
3. updates are refused while a member is unreachable (all-or-nothing);
4. the fault clears → a health probe closes the breaker, re-attaches
   the member, and the unified view equals the fault-free result;
5. a mid-flight outage during a flush leaves the member stale → the
   next probe resyncs it automatically.

Everything runs on a fake clock: retries and backoff happen logically,
never as real sleeps.
"""

from __future__ import annotations

from repro.errors import MemberUnavailableError
from repro.multidb import (
    FakeClock,
    FaultyConnector,
    Federation,
    InMemoryConnector,
    ResiliencePolicy,
)
from repro.workloads.stocks import StockWorkload


def show(title, report):
    print(f"\n== {title}")
    for entry in report:
        detail = f" ({entry.detail})" if entry.detail else ""
        print(f"   {entry.member:8} {entry.status}{detail}")


def main():
    workload = StockWorkload(n_stocks=3, n_days=2, seed=1985)
    clock = FakeClock()
    flaky = FaultyConnector(
        InMemoryConnector(workload.chwab_relations()), outage=True
    )
    policy = ResiliencePolicy(
        max_attempts=2, base_delay=0.05, failure_threshold=2,
        recovery_timeout=30, seed=7,
    )

    federation = Federation()
    federation.add_member("euter", "euter", workload.euter_relations())
    federation.add_member("chwab", "chwab", connector=flaky, policy=policy,
                          clock=clock)
    federation.add_member("ource", "ource", workload.ource_relations())

    print("installing with chwab down...")
    federation.install()
    show("availability after install", federation.availability())

    try:
        federation.unified_quotes()
    except MemberUnavailableError as exc:
        print(f"\nstrict query refused: {exc}")

    result = federation.query(
        "?.dbI.p(.date=D, .stk=S, .price=P)", on_unavailable="partial"
    )
    print(f"\npartial query: {len(result)} quotes from "
          f"{sorted(result.availability.contributed)}, "
          f"skipped {sorted(result.availability.unavailable)}")

    try:
        federation.insert_quote("nova", "9/9/99", 101.5)
    except MemberUnavailableError as exc:
        print(f"update refused while degraded: {exc}")

    print("\nchwab comes back up...")
    flaky.restore()
    print(f"probe(chwab) -> {federation.probe('chwab')}")
    show("availability after recovery", federation.availability())
    quotes = federation.unified_quotes()
    print(f"unified view serves all {len(quotes)} quotes "
          f"({workload.n_stocks} stocks x {workload.n_days} days, "
          f"all three members agreeing)")

    print("\nchwab dies again, mid-update...")
    flaky.set_outage(True)
    try:
        federation.insert_quote("nova", "9/9/99", 101.5)
    except MemberUnavailableError as exc:
        print(f"flush failed: {exc}")
    show("availability after failed flush", federation.availability())

    flaky.restore()
    print(f"\nprobe(chwab) -> {federation.probe('chwab')} "
          f"(stale member resynced automatically)")
    rows = flaky.inner.scan()["r"]
    assert any(row.get("nova") == 101.5 for row in rows)
    print("the repaired member now holds the quote it missed")

    print("\nbreaker history for chwab:")
    for when, before, after in federation.connectors["chwab"].breaker.transitions:
        print(f"   t={when:6.2f}s  {before} -> {after}")

    health = federation.health_report()["chwab"]
    print(f"\nchwab health: {health['attempts']} attempts, "
          f"{health['failures']} failures, {health['retries']} retries, "
          f"{health['probes']} probes, breaker {health['breaker']}")


if __name__ == "__main__":
    main()
