"""Shim for legacy editable installs (environments without `wheel`).

All metadata lives in pyproject.toml; install with:

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
