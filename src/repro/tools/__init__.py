"""Developer tools: the interactive IDL console and query explanation."""

from repro.tools.repl import IdlRepl

__all__ = ["IdlRepl"]
