"""Serve a federation's telemetry over HTTP from the command line.

``python -m repro.tools.telemetry [--port N] [--host H] [saved.json]``
builds a federation — the paper's three-member stock demo by default,
or one wrapped around a saved engine (``repro.io`` JSON) — starts a
:class:`~repro.obs.server.TelemetryServer` on it, and keeps generating
light demo traffic so ``/metrics``, ``/slo`` and ``/traces/recent``
have something to show. Point a browser or a Prometheus scrape at the
printed URL; Ctrl-C stops it.

The federation builder is importable (:func:`build_demo_federation`)
so tests and notebooks can get the same wired-up demo without the
serving loop.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.multidb import Federation, FederationConfig, InMemoryConnector
from repro.workloads.stocks import StockWorkload


def build_demo_federation(port=0, host="127.0.0.1", obs=None):
    """The paper's three-member stock federation with the telemetry
    server already listening (``port=0`` binds an ephemeral port)."""
    workload = StockWorkload(n_stocks=4, n_days=4, seed=1991)
    config = FederationConfig(obs=obs, telemetry_port=port)
    federation = Federation.from_config(config)
    if host != "127.0.0.1":
        federation.stop_telemetry()
        federation.start_telemetry(port=port, host=host)
    federation.add_member("euter", "euter", workload.euter_relations())
    federation.add_member(
        "chwab", "chwab",
        connector=InMemoryConnector(workload.chwab_relations()),
    )
    federation.add_member("ource", "ource", workload.ource_relations())
    federation.install()
    return federation


def demo_tick(federation, tick):
    """One round of demo traffic: a unified query plus, every fourth
    tick, an insert that exercises the flush fan-out and incremental
    maintenance."""
    federation.query(
        f"?.{federation.unified_db}.{federation.unified_relation}"
        "(.date=D, .stk=S, .price=P)"
    )
    if tick % 4 == 0:
        federation.insert_quote(
            stk="TICK", date=f"d{tick}", price=100 + tick % 17
        )


def main(argv=None):  # pragma: no cover - thin CLI wrapper
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.telemetry",
        description="serve /metrics, /health, /slo and /traces/* for a "
                    "live federation",
    )
    parser.add_argument("--port", type=int, default=8787,
                        help="port to bind (0 = ephemeral; default 8787)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="seconds between demo traffic ticks")
    parser.add_argument("saved", nargs="?",
                        help="optional saved engine JSON to serve instead "
                             "of the stock demo")
    args = parser.parse_args(argv)
    if args.saved:
        from repro.io import load_engine

        engine = load_engine(args.saved)
        federation = Federation(engine=engine)
        federation.start_telemetry(port=args.port, host=args.host)
        traffic = None
    else:
        federation = build_demo_federation(port=args.port, host=args.host)
        traffic = demo_tick
    print(f"telemetry listening on {federation.telemetry.url} "
          f"(/metrics /health /slo /traces/recent /traces/slow)")
    tick = 0
    try:
        while True:
            if traffic is not None:
                traffic(federation, tick)
                tick += 1
            time.sleep(args.interval)
    except KeyboardInterrupt:
        print("\nstopping")
    finally:
        federation.stop_telemetry()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
