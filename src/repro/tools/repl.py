"""An interactive IDL console.

Reads IDL statements line by line and executes them against an
:class:`~repro.core.engine.IdlEngine`:

* ``?...``            — query (answers printed as a table) or update
                        request (result summary printed); program calls
                        are dispatched automatically;
* ``head <- body``    — define a view rule;
* ``head -> body``    — define an update program clause;
* ``:``-commands      — console controls (see ``:help``).

Designed to be driven programmatically (tests, scripted demos): pass
any iterable of lines and a writable stream.
"""

from __future__ import annotations

import sys

from repro.bench.harness import format_table
from repro.core import ast
from repro.core.engine import IdlEngine
from repro.core.explain import explain_query
from repro.core.parser import parse_program
from repro.core.program import parse_call_shape
from repro.errors import IdlError
from repro.obs import InMemoryCollector, Observability, QueryProfile

HELP = """\
IDL console commands:
  ?<expr>              query, or update request (+/- or program calls)
  <head> <- <body>     define a view rule
  <head> -> <body>     define an update program clause
  :dbs                 list databases
  :rels <db>           list relations of a database
  :program             show loaded rules and update programs
  :explain ?<expr>     show the evaluation plan of a query
  :profile ?<expr>     evaluate with node-visit counters (including the
                       evaluator's index probe stats) and, when tracing
                       is on, the span tree of the run; an update
                       request reports the incremental-maintenance
                       summary (repaired/fallback strata) instead
  :metrics             show the engine's metrics registry (fixpoint
                       totals, fixpoint.maintain.* repair counters,
                       evaluator.index.* probe counters, ...)
  :top                 live per-operation/per-member table: request
                       count, rate/s, p50/p99 latency, SLO burn rate
  :slow                the slow-query log (the N worst root spans,
                       rendered trees included)
  :slo                 objectives and multi-window burn rates for every
                       tracked operation and member
  :health              per-member availability/health and the write-
                       ahead journal's status (federation consoles)
  :check [<path>]      run idlcheck over the loaded program (or a file);
                       federation consoles validate the full install
                       program, including update footprints (IDL060)
  :footprint ?<expr>   show the statically inferred read/write effect
                       sets of a request without executing it
  :load <path>         load a program file (rules + clauses)
  :save <path>         persist the engine (data + program) to JSON
  :open <path>         replace the engine from a persisted JSON file
  :keys                list declared integrity constraints
  :help                this text
  :quit                leave
"""


class IdlRepl:
    """A scriptable read-eval-print loop over one engine.

    A console started without an engine gets one with observability
    enabled, so ``:profile`` renders span trees and ``:metrics`` has
    counters to show; a supplied engine keeps whatever (if any)
    observability it was built with.

    Pass a :class:`~repro.multidb.federation.Federation` as
    ``federation`` to drive a federation console: the engine defaults
    to the federation's, and ``:health`` reports member availability
    and journal status.
    """

    def __init__(self, engine=None, out=None, federation=None):
        self.federation = federation
        if engine is None and federation is not None:
            engine = federation.engine
        self.engine = (engine if engine is not None
                       else IdlEngine(obs=Observability()))
        self.out = out if out is not None else sys.stdout
        self.running = True

    # -- output ------------------------------------------------------------

    def write(self, text=""):
        self.out.write(text + "\n")

    # -- main loop -----------------------------------------------------------

    def run(self, lines):
        """Process an iterable of input lines until exhausted or :quit."""
        for line in lines:
            if not self.running:
                break
            self.handle(line)
        return self

    def handle(self, line):
        line = line.strip()
        if not line or line.startswith("%") or line.startswith("#"):
            return
        try:
            if line.startswith(":"):
                self._command(line)
            else:
                self._statement(line)
        except IdlError as exc:
            self.write(f"error: {exc}")
        except OSError as exc:
            self.write(f"error: {exc}")

    # -- commands ------------------------------------------------------------

    def _command(self, line):
        parts = line.split(None, 1)
        command = parts[0]
        argument = parts[1].strip() if len(parts) > 1 else ""

        if command in (":quit", ":q", ":exit"):
            self.running = False
            self.write("bye")
        elif command == ":help":
            self.write(HELP.rstrip())
        elif command == ":dbs":
            for name in self.engine.universe.database_names():
                self.write(f"  {name}")
        elif command == ":rels":
            if not argument:
                self.write("usage: :rels <db>")
                return
            for name in self.engine.universe.relation_names(argument):
                size = len(self.engine.universe.relation(argument, name))
                self.write(f"  {name} ({size} elements)")
        elif command == ":program":
            from repro.core.pretty import to_source

            if not self.engine.program.rules and not self.engine.program.clauses:
                self.write("  (empty)")
            for analyzed in self.engine.program.rules:
                suffix = (
                    f"   % merge on {', '.join(analyzed.merge_on)}"
                    if analyzed.merge_on
                    else ""
                )
                self.write(f"  {to_source(analyzed.rule)}{suffix}")
            for name in self.engine.program.program_names():
                self.write(f"  program {name}")
        elif command == ":explain":
            if not argument:
                self.write("usage: :explain ?<expr>")
                return
            self.write(explain_query(argument).render())
        elif command == ":profile":
            if not argument:
                self.write("usage: :profile ?<expr>")
                return
            self._profile(argument)
        elif command == ":metrics":
            obs = self.engine.obs
            if obs is None:
                self.write("(observability disabled)")
            else:
                self.write(obs.metrics.render())
        elif command == ":top":
            self._top()
        elif command == ":slow":
            self._slow()
        elif command == ":slo":
            self._slo()
        elif command == ":health":
            self._health()
        elif command == ":check":
            from repro.analysis import Catalog, check_engine, check_source

            if argument:
                with open(argument) as handle:
                    report = check_source(
                        handle.read(),
                        catalog=Catalog.from_universe(self.engine.universe),
                    )
            elif self.federation is not None:
                # The federation knows the required call shapes and
                # declared write footprints; checking through it wires
                # up coverage (IDL030) and footprint (IDL060) findings
                # a bare engine check cannot see.
                report = self.federation.validation_report()
            else:
                report = check_engine(self.engine)
            self.write(report.render())
        elif command == ":footprint":
            if not argument:
                self.write("usage: :footprint ?<expr>")
                return
            self._footprint(argument)
        elif command == ":load":
            with open(argument) as handle:
                self.engine.load(handle.read())
            self.write(f"loaded {argument}")
        elif command == ":save":
            from repro.io import save_engine

            save_engine(self.engine, argument)
            self.write(f"saved {argument}")
        elif command == ":open":
            from repro.io import load_engine

            self.engine = load_engine(argument)
            self.write(f"opened {argument}")
        elif command == ":keys":
            rendered = self.engine.constraints.as_relations()
            for row in rendered["keys"]:
                self.write(f"  key  .{row['db']}.{row['rel']} ({row['columns']})")
            for row in rendered["types"]:
                nullable = "" if row["nullable"] else " not null"
                self.write(
                    f"  type .{row['db']}.{row['rel']}.{row['attr']} "
                    f": {row['type']}{nullable}"
                )
            if not rendered["keys"] and not rendered["types"]:
                self.write("  (none)")
        else:
            self.write(f"unknown command {command}; try :help")

    def _slo_tracker(self):
        obs = self.engine.obs
        return getattr(obs, "slo", None) if obs is not None else None

    def _top(self):
        """Live per-operation / per-member summary table, slowest p99
        first (see docs/observability.md, "The :top walkthrough")."""
        tracker = self._slo_tracker()
        if tracker is None:
            self.write("(no SLO tracker; enable observability)")
            return
        self.write(tracker.render_top())

    def _slow(self):
        """The slow-query log: the worst root spans with their trees."""
        obs = self.engine.obs
        log = getattr(obs, "slow_log", None) if obs is not None else None
        if log is None:
            self.write("(no slow-query log; enable observability)")
            return
        self.write(log.render())

    def _slo(self):
        """Objectives and burn rates per tracked operation/member."""
        tracker = self._slo_tracker()
        if tracker is None:
            self.write("(no SLO tracker; enable observability)")
            return
        report = tracker.report()
        if not report["operations"] and not report["members"]:
            self.write("(nothing recorded yet)")
            return
        for section in ("operations", "members"):
            for name, status in sorted(report[section].items()):
                objective = status["objective"]
                target = f"{objective['availability'] * 100:g}%"
                if objective["latency_ms"] is not None:
                    target += (f" / p{int(objective['percentile'] * 100)}"
                               f" <= {objective['latency_ms']:g}ms")
                self.write(f"  {status['kind']}:{name}  target={target}")
                for window, stats in status["windows"].items():
                    availability = stats["availability"]
                    rendered = (f"{availability * 100:.3f}%"
                                if availability is not None else "-")
                    self.write(
                        f"    {window:>6}  n={stats['total']:<6} "
                        f"errors={stats['errors']:<4} "
                        f"availability={rendered:<9} "
                        f"burn={stats['burn_rate']:.2f}"
                    )

    def _health(self):
        """Render the federation's health report: one line per member,
        then the write-ahead journal's status."""
        if self.federation is None:
            self.write("(no federation attached; pass federation= to "
                       "IdlRepl)")
            return
        report = self.federation.health_report()
        journal = report.pop("journal")
        for name, entry in sorted(report.items()):
            error = f"  last_error={entry['last_error']}" \
                if entry["last_error"] else ""
            self.write(
                f"  {name:<10} {entry['status']:<12} "
                f"breaker={entry['breaker']:<9} "
                f"ok={entry['successes']} fail={entry['failures']} "
                f"retry={entry['retries']}{error}"
            )
        pending = ", ".join(str(uid) for uid in journal["pending"]) or "none"
        self.write(
            f"  journal    {journal['backend']}: "
            f"{journal['updates']} update(s), "
            f"{journal['committed']} committed, "
            f"{journal['aborted']} aborted, pending: {pending}"
        )
        if journal["truncated_tails"] or journal["dropped_records"]:
            self.write(
                f"             truncated_tails={journal['truncated_tails']} "
                f"dropped_records={journal['dropped_records']}"
            )

    def _footprint(self, argument):
        """Render the static read/write effect sets of one request.

        Nothing is evaluated: the effect analysis closes the request
        over the loaded views and update programs, so the output is
        exactly what drives member pruning and narrowed journal
        intents (see docs/static_analysis.md)."""
        if self.federation is not None:
            effects = self.federation.write_footprint(argument)
        else:
            statement = self.engine._one_query(argument, allow_update=True)
            effects = self.engine.effect_analysis().request_footprint(
                statement
            )
        self.write(f"  reads:  {effects.reads.describe()}")
        self.write(f"  writes: {effects.writes.describe()}")
        for label, effect_set in (("read", effects.reads),
                                  ("write", effects.writes)):
            if not effect_set.bounded:
                self.write(
                    f"  note: the {label} set is symbolic (a database "
                    f"name is run-time data); pruning treats it as "
                    f"unbounded"
                )

    def _profile(self, argument):
        """Evaluate once with profiling; with tracing on, one observed
        run yields the answers, the counters and the span tree. An
        update request is executed instead, reporting its counts and —
        when the materialization was repaired in place — the
        incremental-maintenance summary."""
        statements = parse_program(argument)
        statement = statements[0] if statements else None
        if (isinstance(statement, ast.Query)
                and self._is_update(statement)):
            self._profile_update(statement)
            return
        obs = self.engine.obs
        if obs is not None and obs.enabled:
            collector = InMemoryCollector()
            obs.add_exporter(collector)
            try:
                self.engine.query(argument)
            finally:
                obs.exporters.remove(collector)
            root = collector.last
            profile = QueryProfile(root)
            counters = profile.counters
            answers = root.attributes.get("answers", 0)
            self.write(f"answers: {answers}")
            for kind in sorted(counters):
                self.write(f"  {kind:<12} {counters[kind]}")
            self.write(self._index_summary(profile.index_stats))
            self.write(profile.render())
            return
        from repro.core.explain import profile_query

        results, counters = profile_query(
            argument, self.engine.materialized_view()
        )
        self.write(f"answers: {len(results)}")
        for kind in sorted(counters):
            self.write(f"  {kind:<12} {counters[kind]}")
        stats = {
            kind[len("index."):]: count
            for kind, count in counters.items() if kind.startswith("index.")
        }
        self.write(self._index_summary(stats))

    def _profile_update(self, statement):
        """Run an update once, reporting what it changed and how the
        cached materialization coped (repaired in place vs rebuild)."""
        obs = self.engine.obs
        collector = None
        if obs is not None and obs.enabled:
            collector = InMemoryCollector()
            obs.add_exporter(collector)
        try:
            result = self.engine.update(statement)
        finally:
            if collector is not None:
                obs.exporters.remove(collector)
        status = "ok" if result.succeeded else "no match"
        self.write(
            f"{status}: +{result.inserted} -{result.deleted} "
            f"~{result.modified}"
        )
        if collector is None:
            self.write("(enable tracing for the maintenance summary)")
            return
        maintain = collector.find("fixpoint.maintain")
        if maintain is None:
            self.write("maintenance: (not attempted — no live "
                       "materialization or nothing dirtied)")
        else:
            attributes = maintain.attributes
            self.write(self._maintenance_summary(attributes))
            for name, event in maintain.events:
                if name == "stratum-fallback":
                    self.write(f"  fallback: {event.get('reason')}")
        update_root = collector.find("engine.update")
        if update_root is not None:
            self.write(update_root.render())

    @staticmethod
    def _maintenance_summary(attributes):
        """One line summarizing an in-place view repair (see
        docs/performance.md, "Incremental maintenance")."""
        return (
            "maintenance: repaired={repaired}/{strata} "
            "fallbacks={fallbacks} seeded={seeded} "
            "overdeleted={overdeleted} rederived={rederived}".format(
                **{key: attributes.get(key, 0) for key in (
                    "repaired", "strata", "fallbacks", "seeded",
                    "overdeleted", "rederived")}
            )
        )

    @staticmethod
    def _index_summary(stats):
        """One line summarizing the selection-pushdown behavior of a
        profiled query (see docs/performance.md)."""
        if not stats or not any(stats.values()):
            return "index: (no set expressions probed)"
        rendered = " ".join(
            f"{kind}={stats.get(kind, 0)}"
            for kind in ("builds", "hits", "misses", "fallbacks")
        )
        return f"index: {rendered}"

    # -- statements ------------------------------------------------------------

    def _statement(self, line):
        statements = parse_program(line)
        for statement in statements:
            if isinstance(statement, ast.Rule):
                self.engine.define(statement)
                self.write("rule defined")
            elif isinstance(statement, ast.UpdateClause):
                self.engine.define_update(statement)
                self.write("update program defined")
            elif isinstance(statement, ast.Query):
                self._query_or_update(statement)
            else:  # pragma: no cover - parser yields only the above
                self.write(f"cannot execute {statement!r}")

    def _is_update(self, statement):
        if statement.is_update_request:
            return True
        for conjunct in ast.conjuncts_of(statement.expr):
            shape = parse_call_shape(conjunct)
            if shape is not None:
                clauses, _ = self.engine.program.clauses_for(*shape[:3])
                if clauses:
                    return True
        return False

    def _query_or_update(self, statement):
        if self._is_update(statement):
            result = self.engine.update(statement)
            status = "ok" if result.succeeded else "no match"
            self.write(
                f"{status}: +{result.inserted} -{result.deleted} "
                f"~{result.modified}"
            )
            return
        answers = self.engine.query(statement)
        if not answers:
            names = sorted(statement.variables())
            self.write("false" if not names else "(no answers)")
            return
        names = sorted(answers[0].keys())
        if not names:
            self.write("true")
            return
        rows = [
            {name: answer[name] for name in names} for answer in answers
        ]
        self.write(format_table(names, rows))
        self.write(f"({len(rows)} answer{'s' if len(rows) != 1 else ''})")


def main(argv=None):  # pragma: no cover - thin CLI wrapper
    """Entry point: ``python -m repro.tools.repl [saved-engine.json]``."""
    argv = argv if argv is not None else sys.argv[1:]
    engine = None
    if argv:
        from repro.io import load_engine

        engine = load_engine(argv[0])
    repl = IdlRepl(engine=engine)
    repl.write("IDL console — :help for commands")
    try:
        while repl.running:
            repl.out.write("idl> ")
            repl.out.flush()
            line = sys.stdin.readline()
            if not line:
                break
            repl.handle(line)
    except KeyboardInterrupt:
        repl.write("")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
