"""``idlcheck`` as a command line tool.

Usage::

    python -m repro.tools.lint [options] <file> [<file> ...]

Plain files are treated as IDL program text and fully checked
(including syntax). Files ending in ``.py`` are scanned for embedded
IDL — string literals whose every line starts like an IDL statement
(``.``, ``?`` or ``~``) and that parse cleanly are each checked as an
independent snippet; everything else in the Python file is ignored.
That is how CI lints ``examples/``: every IDL program and query an
example ships must be statically clean.

Options:

* ``--engine saved.json`` — validate schema references against the
  universe of a persisted engine (see ``repro.io``); without it the
  catalog-based checks (IDL020/IDL021/IDL040) are skipped;
* ``--strict`` — exit nonzero on warnings too;
* ``--format {human,json}`` — ``human`` (default) renders grouped
  reports; ``json`` emits one JSON object per diagnostic per line
  (keys: ``code``, ``severity``, ``path``, ``line``, ``col``,
  ``message``) for editor and CI integration.

Exit status: 0 when clean, 1 when diagnostics failed the run, 2 on
usage errors (unreadable file).
"""

from __future__ import annotations

import argparse
import ast as python_ast
import json
import sys

from repro.analysis import Catalog, DiagnosticReport, check_source, check_statements
from repro.core.parser import parse_program
from repro.errors import IdlSyntaxError


def looks_like_idl(snippet):
    """Could this string literal be IDL statements?

    Every non-blank, non-comment line must start like an IDL statement;
    prose, format strings and REPL ``:``-commands all fail the gate.
    """
    lines = [line.strip() for line in snippet.strip().splitlines()]
    lines = [line for line in lines if line and not line.startswith("%")]
    if not lines:
        return False
    return all(line.startswith((".", "?", "~")) for line in lines)


def python_snippets(text):
    """Yield ``(lineno, statements)`` for embedded IDL literals.

    Candidates that fail to parse are skipped silently — a string that
    merely *looks* like IDL (``".date"``, a format spec) is not a
    finding. Real IDL files get full syntax checking via
    :func:`lint_text` instead.
    """
    try:
        module = python_ast.parse(text)
    except SyntaxError:
        return
    for node in python_ast.walk(module):
        if not isinstance(node, python_ast.Constant):
            continue
        if not isinstance(node.value, str) or not looks_like_idl(node.value):
            continue
        try:
            statements = parse_program(node.value)
        except IdlSyntaxError:
            continue
        if statements:
            yield node.lineno, statements


def lint_text(text, catalog=None, required=()):
    """Check one IDL program text; returns a DiagnosticReport."""
    return check_source(text, catalog=catalog, required=required)


def lint_python(text, catalog=None):
    """Check every embedded IDL snippet of a Python source text.

    Snippets are checked independently — they come from unrelated
    engine setups, so whole-program checks (duplicates, stratification)
    apply within a snippet only.
    """
    combined = DiagnosticReport()
    for lineno, statements in python_snippets(text):
        report = check_statements(statements)
        for diagnostic in report:
            # Point at the embedding line; the snippet-relative position
            # is kept in the message context.
            snippet_loc = diagnostic.loc
            diagnostic.loc = (lineno, 1)
            if snippet_loc and snippet_loc != (1, 1):
                diagnostic.message += (
                    f" (at {snippet_loc[0]}:{snippet_loc[1]} in the snippet)"
                )
        combined.extend(report)
    return combined


def lint_path(path, catalog=None, required=()):
    with open(path) as handle:
        text = handle.read()
    if path.endswith(".py"):
        return lint_python(text, catalog=catalog)
    return lint_text(text, catalog=catalog, required=required)


def render_json(report, path):
    """Yield one JSON line per diagnostic, sorted like the human report.

    Diagnostics without a source position report ``line``/``col`` of
    ``None`` (JSON ``null``) rather than a sentinel a consumer could
    mistake for a real location.
    """
    from repro.analysis.diagnostics import Diagnostic

    for diagnostic in sorted(report, key=Diagnostic._sort_key):
        line, col = diagnostic.loc if diagnostic.loc else (None, None)
        yield json.dumps(
            {
                "code": diagnostic.code,
                "severity": diagnostic.severity,
                "path": path,
                "line": line,
                "col": col,
                "message": diagnostic.message,
            },
            sort_keys=True,
        )


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.lint",
        description="Static analysis (idlcheck) for IDL programs.",
    )
    parser.add_argument("files", nargs="+", help="IDL program or Python files")
    parser.add_argument(
        "--engine", metavar="SAVED.json", default=None,
        help="persisted engine whose universe provides the schema catalog",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit nonzero on warnings as well as errors",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="output format: grouped human reports (default) or one "
        "JSON object per diagnostic per line",
    )
    options = parser.parse_args(argv)

    catalog = None
    if options.engine:
        from repro.io import load_engine

        catalog = Catalog.from_universe(load_engine(options.engine).universe)

    failed = False
    for path in options.files:
        try:
            report = lint_path(path, catalog=catalog)
        except OSError as exc:
            print(f"{path}: {exc}", file=sys.stderr)
            return 2
        if options.format == "json":
            for line in render_json(report, path):
                print(line)
        elif len(report):
            print(f"== {path} ==")
            print(report.render())
        else:
            print(f"{path}: ok")
        if report.has_errors or (options.strict and len(report)):
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
