"""Safety analysis and goal ordering.

The paper's evaluation semantics (Section 4.2) quantifies existentially
over substitutions; an implementation must ensure every variable is
*grounded by enumeration* before it is consumed by an ordered comparison
(``>P``), arithmetic (``C+10``) or a negated expression. Following the
standard range-restriction treatment of safe Datalog, we:

* compute which variables a conjunct can **produce** (bind by matching);
* greedily **reorder** the conjuncts of each conjunction so that every
  conjunct is *ready* (all consumed variables already bound) when it
  runs, raising :class:`SafetyError` when no order works;
* never reorder across an **update conjunct** — Section 5.2 makes update
  order significant ("the reverse ordering would not result in the same
  semantics"), so update conjuncts act as barriers and queries are only
  reordered within the runs between them.
"""

from __future__ import annotations

from repro.core import ast
from repro.core.terms import Arith, Const, Var
from repro.errors import SafetyError


def describe_conjunct(conjunct):
    """``<source text> (at line:column)`` for error messages."""
    from repro.core.pretty import to_source

    rendered = to_source(conjunct)
    if conjunct.loc is not None:
        rendered += f" (at {ast.format_loc(conjunct.loc)})"
    return rendered


def produced_vars(expr):
    """Variables that positive evaluation of ``expr`` binds."""
    if isinstance(expr, ast.Epsilon):
        return frozenset()
    if isinstance(expr, ast.AtomicExpr):
        if expr.op == "=" and isinstance(expr.term, Var) and expr.sign != ast.PLUS:
            # ``=X`` binds X; the atomic minus ``-=X`` binds X to the old
            # value before nulling it (Section 5.2's delStk example).
            return frozenset((expr.term.name,))
        return frozenset()
    if isinstance(expr, ast.AttrStep):
        produced = produced_vars(expr.expr)
        if isinstance(expr.attr, Var) and expr.sign != ast.PLUS:
            produced = produced | frozenset((expr.attr.name,))
        return produced
    if isinstance(expr, ast.SetExpr):
        if expr.sign == ast.PLUS:
            return frozenset()
        return produced_vars(expr.inner)
    if isinstance(expr, ast.TupleExpr):
        produced = frozenset()
        for conjunct in expr.conjuncts:
            produced |= produced_vars(conjunct)
        return produced
    if isinstance(expr, ast.Constraint):
        if expr.op == "=":
            # If eligible (one side ground), the other side's variables
            # end up bound; over-approximation is safe because readiness
            # is re-checked before the conjunct is scheduled.
            return expr.left.variables() | expr.right.variables()
        return frozenset()
    if isinstance(expr, ast.NegExpr):
        return frozenset()
    raise TypeError(f"not an expression: {expr!r}")


def is_ready(expr, bound):
    """Can ``expr`` be evaluated with exactly ``bound`` variables bound?"""
    bound = frozenset(bound)
    if isinstance(expr, ast.Epsilon):
        return True
    if isinstance(expr, ast.AtomicExpr):
        return _atomic_ready(expr, bound)
    if isinstance(expr, ast.AttrStep):
        return _attr_step_ready(expr, bound)
    if isinstance(expr, ast.SetExpr):
        if expr.sign == ast.PLUS:
            # Set plus must be ground when applied (simple ground expr).
            return expr.inner.variables() <= bound
        return is_ready(expr.inner, bound)
    if isinstance(expr, ast.TupleExpr):
        try:
            order_conjuncts(list(expr.conjuncts), bound)
            return True
        except SafetyError:
            return False
    if isinstance(expr, ast.Constraint):
        if expr.op == "=":
            return (
                expr.left.variables() <= bound or expr.right.variables() <= bound
            )
        return expr.variables() <= bound
    if isinstance(expr, ast.NegExpr):
        # At this level all non-bound inner variables are treated as
        # existential; sharing with sibling conjuncts is handled by
        # order_conjuncts, which defers the negation until shared
        # variables are produced.
        return is_ready(expr.inner, bound)
    raise TypeError(f"not an expression: {expr!r}")


def _atomic_ready(expr, bound):
    term = expr.term
    if expr.sign == ast.PLUS:
        return term.variables() <= bound
    if isinstance(term, Const):
        return True
    if isinstance(term, Var):
        if expr.op == "=":
            return True  # binds or checks
        return term.name in bound
    if isinstance(term, Arith):
        return term.variables() <= bound
    raise TypeError(f"not a term: {term!r}")


def _attr_step_ready(expr, bound):
    attr_bound = bound
    if isinstance(expr.attr, Var):
        if expr.sign == ast.PLUS and expr.attr.name not in bound:
            return False  # cannot create an attribute with an unknown name
        attr_bound = bound | frozenset((expr.attr.name,))
    if expr.sign == ast.PLUS:
        # Tuple plus builds an object: the whole inner expression must be
        # ground once the attribute variable is resolved.
        return expr.expr.variables() <= attr_bound
    return is_ready(expr.expr, attr_bound)


def selectivity_score(conjunct, bound):
    """Heuristic cost of scheduling ``conjunct`` next (lower = better).

    Among *ready* conjuncts we prefer the more constrained: negations
    and constraints are pure filters (cheapest), then conjuncts with
    fewer unbound variables (each unbound variable is an enumeration)
    and more constants (each constant is a selection). Purely a
    performance heuristic — any ready order is semantically equivalent
    for queries.
    """
    if isinstance(conjunct, (ast.NegExpr, ast.Constraint)):
        return (-1, 0)
    unbound = len(conjunct.variables() - bound)
    constants = 0
    for node in conjunct.walk():
        if isinstance(node, ast.AttrStep) and not isinstance(node.attr, Var):
            constants += 1
        elif isinstance(node, ast.AtomicExpr) and not node.term.variables():
            constants += 1
    return (unbound, -constants)


def order_conjuncts(conjuncts, bound, heuristic=True):
    """Reorder ``conjuncts`` so each is ready when reached.

    Returns the reordered list. Pure-query conjuncts may move freely
    within their run; update conjuncts stay in place and bound queries to
    their side of the barrier. Among ready conjuncts, the selectivity
    heuristic picks the most constrained first (``heuristic=False``
    keeps document order among ready conjuncts). Raises
    :class:`SafetyError` when no safe order exists.
    """
    ordered = []
    bound = set(bound)
    segment = []

    def flush_segment():
        pending = list(segment)
        segment.clear()
        while pending:
            eligible = [
                (index, conjunct)
                for index, conjunct in enumerate(pending)
                if _eligible(conjunct, bound, pending, index)
            ]
            if not eligible:
                raise SafetyError(
                    "no safe evaluation order: cannot ground "
                    + ", ".join(sorted(_unbound_of(pending, bound)))
                    + "; blocked conjunct(s): "
                    + "; ".join(describe_conjunct(c) for c in pending)
                )
            if heuristic and len(eligible) > 1:
                chosen = min(
                    range(len(eligible)),
                    key=lambda position: selectivity_score(
                        eligible[position][1], bound
                    ),
                )
            else:
                chosen = 0
            conjunct = pending.pop(eligible[chosen][0])
            ordered.append(conjunct)
            bound.update(produced_vars(conjunct))

    for conjunct in conjuncts:
        if conjunct.has_update():
            flush_segment()
            if not is_ready(conjunct, frozenset(bound)):
                raise SafetyError(
                    "update expression is not ground when reached: "
                    + describe_conjunct(conjunct)
                )
            ordered.append(conjunct)
            bound.update(produced_vars(conjunct))
        else:
            segment.append(conjunct)
    flush_segment()
    return ordered


def _negated_vars(expr):
    """Variables occurring under any negation within ``expr``."""
    names = frozenset()
    for node in expr.walk():
        if isinstance(node, ast.NegExpr):
            names |= node.inner.variables()
    return names


def _eligible(conjunct, bound, pending, index):
    # A negation (at any depth) whose variables co-occur in *other*
    # conjuncts must wait until those variables are produced — otherwise
    # they would be read existentially inside the negation, changing the
    # quantifier structure. Variables the conjunct itself produces
    # positively (outside the negation) do not defer it.
    negated = _negated_vars(conjunct)
    if negated:
        exposed = negated - set(bound) - produced_vars(conjunct)
        if exposed:
            for other_index, other in enumerate(pending):
                if other_index != index and exposed & other.variables():
                    return False
    if isinstance(conjunct, ast.NegExpr):
        return is_ready(conjunct.inner, frozenset(bound))
    return is_ready(conjunct, frozenset(bound))


def _unbound_of(pending, bound):
    unbound = set()
    for conjunct in pending:
        unbound |= conjunct.variables()
    return unbound - set(bound)


def check_query_safe(expr, bound=frozenset()):
    """Validate a whole query conjunction; raises SafetyError if unsafe."""
    order_conjuncts(ast.conjuncts_of(expr), frozenset(bound))


def contains_update(expr):
    return expr.has_update()
