"""Terms: constants, variables and arithmetic over them.

Terms occupy two positions in IDL expressions (Section 4.1):

* the operand of an atomic expression — ``=hp``, ``>60``, ``=C+10``;
* the attribute position of a tuple item — ``.stkCode`` (constant) or
  ``.S`` (a *higher-order* variable, Section 4.3).

The paper's grammar allows only constants and variables; arithmetic
(``C+10``) appears in its Section 5 examples with the remark "we have
assumed the use of arithmetic here even though it was not included in
the grammar" — we include it, as :class:`Arith`.
"""

from __future__ import annotations

from repro.errors import EvaluationError, SafetyError
from repro.objects.atom import Atom
from repro.objects.base import IdlObject


class Term:
    """Abstract term."""

    __slots__ = ()

    def variables(self):
        """The set of variable names occurring in this term."""
        raise NotImplementedError

    def is_ground(self):
        return not self.variables()


class Const(Term):
    """A scalar constant (string, number or bool)."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def variables(self):
        return frozenset()

    def __eq__(self, other):
        return isinstance(other, Const) and self.value == other.value and (
            isinstance(self.value, bool) == isinstance(other.value, bool)
        )

    def __hash__(self):
        return hash((Const, type(self.value).__name__, self.value))

    def __repr__(self):
        return f"Const({self.value!r})"


class Var(Term):
    """A logical variable; words beginning with a capital letter."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def variables(self):
        return frozenset((self.name,))

    def __eq__(self, other):
        return isinstance(other, Var) and self.name == other.name

    def __hash__(self):
        return hash((Var, self.name))

    def __repr__(self):
        return f"Var({self.name!r})"


class Arith(Term):
    """A binary arithmetic term: ``left op right`` with op in + - * /."""

    __slots__ = ("op", "left", "right")

    OPS = ("+", "-", "*", "/")

    def __init__(self, op, left, right):
        if op not in self.OPS:
            raise ValueError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def variables(self):
        return self.left.variables() | self.right.variables()

    def __eq__(self, other):
        return (
            isinstance(other, Arith)
            and self.op == other.op
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self):
        return hash((Arith, self.op, self.left, self.right))

    def __repr__(self):
        return f"Arith({self.op!r}, {self.left!r}, {self.right!r})"


def evaluate_term(term, subst):
    """Evaluate ``term`` under ``subst`` to an :class:`IdlObject`.

    Constants become atoms. A bound variable yields its binding (which
    may be any object category — the paper's aggregate-variable
    extension). An unbound variable raises :class:`SafetyError`; the
    evaluator's goal ordering is supposed to prevent that. Arithmetic
    requires numeric atoms.
    """
    if isinstance(term, Const):
        return Atom(term.value)
    if isinstance(term, Var):
        bound = subst.lookup(term.name)
        if bound is None:
            raise SafetyError(f"variable {term.name} is unbound where a value is needed")
        return bound
    if isinstance(term, Arith):
        left = _numeric(evaluate_term(term.left, subst), term)
        right = _numeric(evaluate_term(term.right, subst), term)
        if term.op == "+":
            return Atom(left + right)
        if term.op == "-":
            return Atom(left - right)
        if term.op == "*":
            return Atom(left * right)
        if right == 0:
            raise EvaluationError(f"division by zero in {term!r}")
        return Atom(left / right)
    raise TypeError(f"not a term: {term!r}")


def _numeric(obj, term):
    if not isinstance(obj, IdlObject) or not obj.is_atom:
        raise EvaluationError(f"arithmetic over a non-atomic object in {term!r}")
    if obj.is_null or isinstance(obj.value, (str, bool)):
        raise EvaluationError(
            f"arithmetic needs numeric operands, got {obj.value!r} in {term!r}"
        )
    return obj.value


#: Sentinel: a variable in attribute position is bound to something that
#: cannot be an attribute name (a number, a tuple, ...). Only strings
#: name attributes, so such a step matches nothing — false, not an
#: error, keeping satisfaction total over heterogeneous bindings.
NOT_A_NAME = object()


def term_name(term, subst):
    """Resolve a term in *attribute position*.

    Returns the name string; or None for an unbound variable (the
    evaluator then enumerates attribute names — higher-order
    quantification); or :data:`NOT_A_NAME` when the binding cannot name
    an attribute (the step is unsatisfiable).
    """
    if isinstance(term, Const):
        if not isinstance(term.value, str):
            raise EvaluationError(
                f"attribute names are strings, got constant {term.value!r}"
            )
        return term.value
    if isinstance(term, Var):
        bound = subst.lookup(term.name)
        if bound is None:
            return None
        if not bound.is_atom or not isinstance(bound.value, str):
            return NOT_A_NAME
        return bound.value
    raise EvaluationError(f"arithmetic term {term!r} cannot name an attribute")
