"""The IDL engine facade.

:class:`IdlEngine` is the one-stop public entry point: it owns a base
:class:`~repro.objects.universe.Universe`, an
:class:`~repro.core.program.IdlProgram` of views and update programs, a
materialization cache, and an update executor. Typical use::

    engine = IdlEngine()
    engine.add_database("euter", {"r": [...]})
    engine.define(".dbI.p(.date=D,.stk=S,.price=P) <- "
                  ".euter.r(.date=D,.stkCode=S,.clsPrice=P)")
    engine.query("?.dbI.p(.stk=S, .price>200)")
    engine.update("?.euter.r+(.date=3/5/85,.stkCode=hp,.clsPrice=70)")

Queries run against the *merged* view (base universe plus materialized
derived overlay); updates run against the base universe only, wrapped in
a snapshot transaction (atomic by default) and invalidate the cache.
"""

from __future__ import annotations

import time

from repro.core import ast
from repro.core.evaluator import EvalContext, answers, holds
from repro.core.parser import parse_program
from repro.core.program import IdlProgram
from repro.core.update_programs import UpdateExecutor
from repro.errors import IdlError, SemanticError
from repro.objects.merged import MergedTuple
from repro.objects.tuple import TupleObject
from repro.objects.universe import Universe


class QueryAnswer:
    """One answer: variable bindings rendered as plain Python values."""

    __slots__ = ("bindings",)

    def __init__(self, bindings):
        self.bindings = bindings

    def __getitem__(self, name):
        return self.bindings[name]

    def __contains__(self, name):
        return name in self.bindings

    def get(self, name, default=None):
        return self.bindings.get(name, default)

    def keys(self):
        return self.bindings.keys()

    def items(self):
        return self.bindings.items()

    def __eq__(self, other):
        if isinstance(other, QueryAnswer):
            return self.bindings == other.bindings
        if isinstance(other, dict):
            return self.bindings == other
        return NotImplemented

    def __hash__(self):
        return hash(frozenset(self.bindings.items()))

    def __repr__(self):
        return f"QueryAnswer({self.bindings!r})"


class PruneDecision:
    """Why the last query did (or did not) run against a pruned view.

    ``applied`` — a subset materialization was used; ``reads`` — the
    query's closed read :class:`~repro.analysis.effects.EffectSet`
    (None when the analysis did not run); ``rules_used`` /
    ``rules_total`` — how many view rules were materialized out of the
    program; ``reason`` — ``"off"``, ``"no-rules"``, ``"full"`` (the
    read set needs every rule) or ``"pruned"``.
    """

    __slots__ = ("applied", "reads", "rules_used", "rules_total", "reason")

    def __init__(self, applied, reads, rules_used, rules_total, reason):
        self.applied = applied
        self.reads = reads
        self.rules_used = rules_used
        self.rules_total = rules_total
        self.reason = reason

    def __repr__(self):
        return (f"PruneDecision({self.reason}, "
                f"rules={self.rules_used}/{self.rules_total})")


class IdlEngine:
    """A multidatabase engine speaking IDL.

    ``obs`` optionally attaches a :class:`repro.obs.Observability`:
    queries and updates then run inside spans (federation → engine →
    fixpoint strata), evaluation collects node-visit counters, and
    coarse metrics (``fixpoint.iterations``, ...) accumulate in its
    registry. With ``obs=None`` (the default) the engine takes the
    exact pre-observability code path — benchmark B3 asserts a
    disabled :class:`~repro.obs.Observability` costs within 5% of it.

    With ``prune`` True (the federation turns it on by default),
    queries are first run through the static effect analysis
    (:mod:`repro.analysis.effects`): only the view rules the query's
    read set can reach are materialized, so a query that provably
    touches one member never pays for the others. Pruned overlays are
    cached per needed-rule set (LRU, dropped when their rules'
    inputs change); :attr:`last_prune` records the most recent
    decision.

    With ``maintain`` True (the default), an update against a fully
    materialized view repairs the dirty strata in place from the
    update's concrete insert/delete deltas (incremental view
    maintenance: DRed for deletions, delta-seeded semi-naive for
    insertions) instead of rebuilding them — see
    :func:`repro.core.fixpoint.maintain_stratum`. Any shape whose
    repair could be unsound falls back to the full rebuild; set
    ``maintain=False`` to force the rebuild path everywhere.
    """

    #: Max distinct pruned rule subsets whose overlays are kept alive
    #: (an LRU: lookups refresh recency, overflow evicts the least
    #: recently used entry).
    PRUNED_CACHE_SIZE = 8

    def __init__(self, universe=None, program=None, fixpoint_method="seminaive",
                 reorder=True, obs=None, use_indexes=True, prune=False,
                 maintain=True):
        from repro.core.integrity import ConstraintSet

        self.universe = universe if universe is not None else Universe()
        self.program = program if program is not None else IdlProgram()
        self.fixpoint_method = fixpoint_method
        self.eval_ctx = EvalContext(reorder=reorder, use_indexes=use_indexes)
        self.constraints = ConstraintSet()
        self.obs = None
        if obs is not None:
            self.use_observability(obs)
        self.prune = prune
        self.maintain = maintain
        self.last_prune = None
        self._overlay = None
        self._overlay_stats = None
        self._strata = None  # [(key, stratum, overlay)] in evaluation order
        self._reusable = {}  # stratum key -> overlay (selective rebuild)
        self._pruned_cache = {}  # needed-rule id tuple -> (overlay, stats)
        self._last_stats = None  # stats of the last query's materialization
        self._effects = None
        self._effects_version = None

    def use_observability(self, obs):
        """Attach an :class:`~repro.obs.Observability` (the federation
        shares its own with the engine so spans nest in one trace)."""
        self.obs = obs
        self.eval_ctx.tracer = obs.tracer if obs.enabled else None
        self.eval_ctx.metrics = obs.metrics
        return self

    # -- data management -----------------------------------------------------

    def add_database(self, name, relations=None):
        """Register a database; ``relations`` maps names to row dicts."""
        from repro.objects import encode

        db = encode.database(relations or {})
        self.universe.add_database(name, db)
        self.invalidate()
        return db

    def drop_database(self, name):
        self.universe.drop_database(name)
        self.invalidate()

    # -- program management -----------------------------------------------------

    def define(self, source_or_rule, merge_on=()):
        """Register view definition rule(s); returns the analyzed rules."""
        added = self.program.add_rule(source_or_rule, merge_on=merge_on)
        self.invalidate()
        return added

    def define_update(self, source_or_clause):
        """Register update program clause(s)."""
        return self.program.add_update_clause(source_or_clause)

    def load(self, source):
        """Load a mixed program text (rules and update clauses)."""
        added = self.program.load(source)
        self.invalidate()
        return added

    # -- materialization -----------------------------------------------------

    def invalidate(self):
        """Drop every materialized overlay (after out-of-band changes)."""
        self._overlay = None
        self._overlay_stats = None
        self._strata = None
        self._reusable = {}
        self._pruned_cache = {}

    def _selective_invalidate(self, touched, delta=None):
        """Invalidate — or repair — the view strata an update affected.

        ``touched`` is the set of ``(db, rel)`` prefixes reported by the
        update evaluator; ``delta`` (optional) its concrete
        :class:`~repro.core.updates.UpdateDelta`. A rule is dirty when
        it reads (or defines) a target overlapping a touched path or a
        dirty rule's target, transitively. Pruned-query overlays whose
        rule sets are entirely clean survive. With a full
        materialization live and a concrete delta, dirty strata are
        repaired in place (:meth:`_repair_strata`); otherwise clean
        strata keep their overlays for reuse by the next
        materialization and dirty ones are dropped.
        """
        from repro.core.terms import Const

        if any(len(prefix) == 0 for prefix in touched):
            self.invalidate()
            return

        touched_patterns = [
            tuple(Const(name) for name in prefix) for prefix in touched
        ]
        dirty_ids = {id(rule) for rule in self._dirty_rules(touched_patterns)}
        self._retain_pruned_overlays(dirty_ids)

        if self._strata is None:
            # Nothing fully materialized; keep previously salvaged
            # overlays of strata whose rules all stayed clean.
            if self._reusable and dirty_ids:
                self._reusable = {
                    key: overlay for key, overlay in self._reusable.items()
                    if not dirty_ids.intersection(key)
                }
            self._overlay = None
            self._overlay_stats = None
            return

        if not dirty_ids:
            # The update touched nothing any view reads: the whole
            # materialization stays valid (queries merge the live base
            # underneath the overlay).
            return

        if (self.maintain and delta is not None
                and self._overlay_stats is not None):
            self._repair_strata(dirty_ids, touched_patterns, delta)
            return

        reusable = {
            key: overlay
            for key, _, overlay in self._strata
            if not dirty_ids.intersection(key)
        }
        self._overlay = None
        self._overlay_stats = None
        self._strata = None
        self._reusable = reusable

    def _dirty_rules(self, touched_patterns):
        """Rules whose output the update may have changed: those reading
        or defining a touched path, closed transitively through the
        targets of dirty rules."""
        from repro.core.rules import patterns_overlap

        dirty = []
        dirty_ids = set()
        frontier = list(touched_patterns)
        progress = True
        while progress:
            progress = False
            for rule in self.program.rules:
                if id(rule) in dirty_ids:
                    continue
                if any(
                    patterns_overlap(pattern, changed)
                    for pattern, _ in rule.references
                    for changed in frontier
                ) or any(
                    patterns_overlap(rule.target, changed)
                    for changed in frontier
                ):
                    dirty.append(rule)
                    dirty_ids.add(id(rule))
                    frontier.append(rule.target)
                    progress = True
        return dirty

    def _retain_pruned_overlays(self, dirty_ids):
        """Keep pruned-query overlays whose needed-rule sets are
        entirely clean — their inputs did not change, so the cached
        subset materialization is still exact."""
        if self._pruned_cache and dirty_ids:
            self._pruned_cache = {
                key: value for key, value in self._pruned_cache.items()
                if not dirty_ids.intersection(key)
            }

    def _repair_strata(self, dirty_ids, touched_patterns, delta):
        """Incremental view maintenance over the cached materialization.

        Walks the strata in evaluation order, repairing each dirty
        overlay in place from the accumulated concrete deltas (the
        update's own changes plus the derived changes of already
        repaired strata). When every dirty stratum repairs, the cached
        materialization stays live and the combined overlay is patched
        with the net derived changes; when any stratum must fall back
        (see :func:`repro.core.fixpoint.maintenance_plan`), the clean
        and repaired overlays are salvaged into ``_reusable`` and the
        next query rebuilds the rest.
        """
        from repro.core import fixpoint
        from repro.core.rules import patterns_overlap
        from repro.core.terms import Const
        from repro.obs.trace import NOOP_SPAN

        stats = self._overlay_stats
        metrics = self.eval_ctx.metrics
        obs = self.obs
        span = (obs.span("fixpoint.maintain")
                if obs is not None and obs.enabled else NOOP_SPAN)

        acc_inserts, acc_deletes, symbolic = delta.fold()
        acc_inserts = {path: dict(elems) for path, elems in acc_inserts.items()}
        acc_deletes = {path: dict(elems) for path, elems in acc_deletes.items()}
        # Paths whose delta is unknown: symbolic records, plus the
        # targets of any stratum that fell back — strata reading them
        # cannot be repaired.
        unknown = [tuple(Const(name) for name in path)
                   for path in sorted(symbolic)]
        changed_patterns = list(touched_patterns)
        seeded = (sum(len(v) for v in acc_inserts.values())
                  + sum(len(v) for v in acc_deletes.values()))
        overdeleted_before = stats.maintain_overdeleted
        rederived_before = stats.maintain_rederived
        derived_added = {}
        derived_removed = {}
        repaired = 0
        fallbacks = 0
        salvage = {}
        with span:
            view_base = self.universe
            for key, stratum, overlay in self._strata:
                if not dirty_ids.intersection(key):
                    salvage[key] = overlay
                    view_base = MergedTuple(view_base, overlay)
                    continue
                variants = None
                if any(
                    patterns_overlap(pattern, unk)
                    for rule in stratum
                    for pattern, _ in rule.references
                    for unk in unknown
                ) or any(
                    patterns_overlap(rule.target, unk)
                    for rule in stratum
                    for unk in unknown
                ):
                    reason = "unknown-delta"
                else:
                    variants, reason = fixpoint.maintenance_plan(
                        stratum, changed_patterns
                    )
                if reason is None:
                    try:
                        added, removed = fixpoint.maintain_stratum(
                            stratum, variants, view_base, overlay,
                            fixpoint.paths_overlay(acc_inserts),
                            fixpoint.paths_overlay(acc_deletes),
                            stats, self.eval_ctx,
                        )
                    except fixpoint.MaintenanceAborted as aborted:
                        # The overlay is partially mutated: unusable.
                        reason = aborted.reason
                        added = removed = None
                if reason is None:
                    for names, elements in added.items():
                        acc_inserts.setdefault(names, {}).update(elements)
                        derived_added.setdefault(names, {}).update(elements)
                    for names, elements in removed.items():
                        acc_deletes.setdefault(names, {}).update(elements)
                        derived_removed.setdefault(names, {}).update(elements)
                    salvage[key] = overlay
                    repaired += 1
                    stats.maintained_strata += 1
                    span.event(
                        "stratum-repaired",
                        added=sum(len(v) for v in added.values()),
                        removed=sum(len(v) for v in removed.values()),
                    )
                else:
                    fallbacks += 1
                    unknown = unknown + [rule.target for rule in stratum]
                    span.event("stratum-fallback", reason=reason)
                changed_patterns.extend(rule.target for rule in stratum)
                view_base = MergedTuple(view_base, overlay)
            stats.maintain_seeded += seeded
            stats.maintain_fallbacks += fallbacks
            span.set("strata", len(self._strata))
            span.set("repaired", repaired)
            span.set("fallbacks", fallbacks)
            span.set("seeded", seeded)
            span.set("overdeleted",
                     stats.maintain_overdeleted - overdeleted_before)
            span.set("rederived",
                     stats.maintain_rederived - rederived_before)
        if metrics is not None:
            metrics.counter("fixpoint.maintain.runs").inc()
            metrics.counter("fixpoint.maintain.seeded").inc(seeded)
            metrics.counter("fixpoint.maintain.overdeleted").inc(
                stats.maintain_overdeleted - overdeleted_before)
            metrics.counter("fixpoint.maintain.rederived").inc(
                stats.maintain_rederived - rederived_before)
            metrics.counter("fixpoint.maintain.fallbacks").inc(fallbacks)
        if fallbacks == 0:
            # A fact removed from one stratum's overlay may still be
            # derived by another stratum into the same path (two strata
            # can share a target, e.g. the base and recursive rules of
            # a closure): only facts absent from every repaired overlay
            # leave the combined view.
            surviving = {}
            for names, elements in derived_removed.items():
                keep = {
                    key: element
                    for key, element in elements.items()
                    if not self._any_stratum_holds(names, element)
                }
                if keep:
                    surviving[names] = keep
            fixpoint.apply_path_deltas(
                self._overlay, derived_added, surviving
            )
            return True
        self._strata = None
        self._overlay = None
        self._overlay_stats = None
        self._reusable = salvage
        return False

    def _any_stratum_holds(self, names, element):
        """Does any stratum overlay still contain ``element`` at path
        ``names``?"""
        from repro.core.fixpoint import overlay_relation

        for _, _, overlay in self._strata:
            relation = overlay_relation(overlay, names)
            if relation is not None and relation.contains_value(element):
                return True
        return False

    def materialized_view(self):
        """The merged (base + derived) universe for querying."""
        from repro.core.fixpoint import combine_overlays, materialize_strata

        if not self.program.rules:
            return self.universe
        if self._strata is None:
            self._strata, self._overlay_stats = materialize_strata(
                self.program.rules,
                self.universe,
                method=self.fixpoint_method,
                context=self.eval_ctx,
                reuse=self._reusable,
            )
            self._reusable = {}
            self._overlay = combine_overlays(
                [overlay for _, _, overlay in self._strata]
            )
        return MergedTuple(self.universe, self._overlay)

    @property
    def overlay(self):
        """The derived overlay (materializing if needed)."""
        self.materialized_view()
        return self._overlay if self._overlay is not None else TupleObject()

    @property
    def fixpoint_stats(self):
        self.materialized_view()
        return self._overlay_stats

    @property
    def last_fixpoint_stats(self):
        """Stats of the materialization the last query actually used —
        unlike :attr:`fixpoint_stats` this never forces a full
        materialization (which would defeat pruning)."""
        return self._last_stats

    # -- effect analysis -----------------------------------------------------

    def effect_analysis(self):
        """The (cached) static effect analysis of the current program."""
        from repro.analysis.effects import EffectAnalysis

        version = (
            len(self.program.rules),
            sum(len(clauses) for clauses in self.program.clauses.values()),
        )
        if self._effects is None or self._effects_version != version:
            self._effects = EffectAnalysis(self.program)
            self._effects_version = version
        return self._effects

    def _view_for(self, statement):
        """The view a query statement should evaluate against.

        Without pruning this is :meth:`materialized_view`. With pruning,
        the statement's read set (closed through view rules) selects the
        subset of rules that must be materialized; the subset's combined
        overlay is cached per rule set until the next invalidation. The
        needed set is dependency-downward-closed, so the pruned overlay
        agrees with the full one on every relation the query can read.
        """
        from repro.core.fixpoint import combine_overlays, materialize_strata

        rules = self.program.rules
        total = len(rules)
        if not self.prune or not rules:
            view = self.materialized_view()
            self._last_stats = self._overlay_stats
            self.last_prune = PruneDecision(
                False, None, total, total,
                "no-rules" if not rules else "off",
            )
            return view
        analysis = self.effect_analysis()
        reads, needed = analysis.query_footprint(statement)
        if len(needed) == total:
            view = self.materialized_view()
            self._last_stats = self._overlay_stats
            self.last_prune = PruneDecision(False, reads, total, total, "full")
            return view
        self.last_prune = PruneDecision(
            True, reads, len(needed), total, "pruned"
        )
        if not needed:
            self._last_stats = None
            return self.universe
        key = tuple(sorted(id(rule) for rule in needed))
        metrics = self.eval_ctx.metrics
        cached = self._pruned_cache.pop(key, None)
        if cached is not None:
            # Re-insert to mark the entry most recently used.
            self._pruned_cache[key] = cached
            if metrics is not None:
                metrics.counter("evaluator.pruned_cache.hits").inc()
        else:
            if metrics is not None:
                metrics.counter("evaluator.pruned_cache.misses").inc()
            strata, stats = materialize_strata(
                needed,
                self.universe,
                method=self.fixpoint_method,
                context=self.eval_ctx,
                reuse={},
            )
            overlay = combine_overlays(
                [overlay for _, _, overlay in strata]
            )
            if len(self._pruned_cache) >= self.PRUNED_CACHE_SIZE:
                self._pruned_cache.pop(next(iter(self._pruned_cache)))
                if metrics is not None:
                    metrics.counter("evaluator.pruned_cache.evictions").inc()
            self._pruned_cache[key] = cached = (overlay, stats)
        overlay, stats = cached
        self._last_stats = stats
        return MergedTuple(self.universe, overlay)

    # -- queries ------------------------------------------------------------

    def query(self, source, **params):
        """Answer a query; returns a list of :class:`QueryAnswer`.

        ``params`` pre-bind variables: ``engine.query("?.db.r(.a=X,.b=Y)",
        X=3)``. With observability attached and enabled, the evaluation
        runs inside ``engine.query``/``engine.evaluate`` spans and the
        profiling counters land on the ``engine.evaluate`` span.
        """
        statement = self._one_query(source)
        if statement.is_update_request:
            raise SemanticError(
                "this is an update request; use IdlEngine.update()"
            )
        obs = self.obs
        if obs is None or not obs.enabled:
            if obs is None:
                view = self._view_for(statement)
                results = answers(statement, view, params or None,
                                  self.eval_ctx)
                return self._render_answers(results)
            # Tracing off but metrics on: time the query explicitly so
            # the engine.query.ms window (rates, percentiles) keeps
            # feeding /metrics and the SLO layer.
            started = time.perf_counter()
            view = self._view_for(statement)
            results = answers(statement, view, params or None, self.eval_ctx)
            obs.metrics.histogram("engine.query.ms").observe(
                (time.perf_counter() - started) * 1000.0
            )
            return self._render_answers(results)
        with obs.span("engine.query") as span:
            view = self._view_for(statement)
            context = self._profiled_context()
            with obs.span("engine.evaluate") as evaluate_span:
                results = answers(statement, view, params or None, context)
                evaluate_span.set("answers", len(results))
                if context.counters is not None:
                    evaluate_span.set("counters", dict(context.counters))
            span.set("answers", len(results))
        duration_ms = span.duration_ms
        if duration_ms is not None:
            obs.metrics.histogram("engine.query.ms").observe(duration_ms)
        return self._render_answers(results)

    def ask(self, source, **params):
        """Boolean query: is the expression satisfiable?"""
        statement = self._one_query(source)
        if statement.is_update_request:
            raise SemanticError("this is an update request; use IdlEngine.update()")
        obs = self.obs
        if obs is None or not obs.enabled:
            return holds(statement, self._view_for(statement), params or None,
                         self.eval_ctx)
        with obs.span("engine.ask") as span:
            view = self._view_for(statement)
            result = holds(statement, view, params or None,
                           self._profiled_context())
            span.set("satisfiable", result)
        return result

    def _render_answers(self, results):
        return [
            QueryAnswer(
                {
                    name: obj.to_python()
                    for name, obj in sorted(substitution.as_dict().items())
                }
            )
            for substitution in results
        ]

    def _profiled_context(self):
        """A per-statement evaluation context that collects node-visit
        counters (when the observability asks for profiles) while
        sharing the engine tracer and metrics. The shared ``eval_ctx``
        keeps serving the un-observed path and the fixpoint."""
        obs = self.obs
        return EvalContext(
            reorder=self.eval_ctx.reorder,
            profile=obs.profile_queries,
            tracer=self.eval_ctx.tracer,
            metrics=self.eval_ctx.metrics,
            use_indexes=self.eval_ctx.use_indexes,
        )

    # -- updates ------------------------------------------------------------

    def update(self, source, atomic=True, **params):
        """Execute an update request (program calls and view updates
        included). ``atomic=True`` snapshots the universe and rolls back
        on any error; the request still *succeeds-or-not* per the paper's
        success/failure semantics — inspect the returned UpdateResult."""
        from repro.core.updates import UpdateContext, UpdateDelta
        from repro.obs.trace import NOOP_SPAN

        statement = self._one_query(source, allow_update=True)
        obs = self.obs
        span = (obs.span("engine.update")
                if obs is not None and obs.enabled else NOOP_SPAN)
        executor = UpdateExecutor(self.program, self.universe, self.eval_ctx)
        # Capture concrete element-level deltas only when there is a
        # live materialization to maintain with them; otherwise the
        # capture hooks stay no-ops and the update pays nothing.
        capture = (self.maintain and self._strata is not None
                   and bool(self.program.rules))
        uctx = UpdateContext(self.eval_ctx,
                             delta=UpdateDelta() if capture else None)
        snapshot = self.universe.snapshot() if atomic else None
        with span:
            try:
                result = executor.execute_request(statement, params or None,
                                                  uctx=uctx)
                # Value-keyed set indexes only go stale when an element
                # was mutated in place; pure insert/delete requests keep
                # every surviving key intact.
                if uctx.modified:
                    self._reindex_universe()
                if len(self.constraints):
                    self.constraints.enforce(self.universe)
            except IdlError:
                if snapshot is not None:
                    self._restore(snapshot)
                else:
                    # Non-atomic failure: the base may be partially mutated,
                    # so cached views (and set indexes) must not survive.
                    self._reindex_universe()
                    self.invalidate()
                span.set("rolled_back", snapshot is not None)
                raise
            span.set("inserted", result.inserted)
            span.set("deleted", result.deleted)
            span.set("modified", result.modified)
            span.set("touched", sorted(".".join(p) for p in result.touched))
        if obs is not None:
            obs.metrics.counter("engine.updates").inc()
        if result.changed:
            self._selective_invalidate(result.touched, result.delta)
        return result

    def declare_key(self, db, rel, columns):
        """Declare a key constraint (``rel`` may be ``"*"``); the current
        state must already satisfy it, else the declaration is refused."""
        constraint = self.constraints.declare_key(db, rel, columns)
        try:
            self.constraints.enforce(self.universe)
        except IdlError:
            self.constraints.keys.remove(constraint)
            raise
        return constraint

    def declare_type(self, db, rel, attr, type_class, nullable=True):
        """Declare a type constraint; the current state must satisfy it."""
        constraint = self.constraints.declare_type(
            db, rel, attr, type_class, nullable
        )
        try:
            self.constraints.enforce(self.universe)
        except IdlError:
            self.constraints.types.remove(constraint)
            raise
        return constraint

    def call(self, db, program, **args):
        """Convenience: call an update program with keyword arguments.

        ``engine.call("dbU", "insStk", stk="hp", date="3/5/85", price=70)``
        is ``engine.update("?.dbU.insStk(.stk='hp', ...)")``.
        """
        items = ", ".join(f".{key}={_literal(value)}" for key, value in args.items())
        return self.update(f"?.{db}.{program}({items})")

    def _restore(self, snapshot):
        for name in list(self.universe.attr_names()):
            self.universe.remove(name)
        for name in snapshot.attr_names():
            self.universe.set(name, snapshot.get(name))
        self.invalidate()

    def _reindex_universe(self):
        """Rebuild set value-indexes after in-place element mutation."""
        _reindex(self.universe)

    # -- helpers ------------------------------------------------------------

    def _one_query(self, source, allow_update=False):
        if isinstance(source, ast.Query):
            return source
        statements = parse_program(source)
        if len(statements) != 1 or not isinstance(statements[0], ast.Query):
            raise SemanticError("expected a single '?' statement")
        statement = statements[0]
        return statement

    def __repr__(self):
        return (
            f"IdlEngine(databases={self.universe.database_names()}, "
            f"rules={len(self.program.rules)}, "
            f"programs={len(self.program.clauses)})"
        )


def _literal(value):
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    if isinstance(value, bool):
        raise SemanticError("boolean literals are not part of IDL syntax")
    if isinstance(value, (int, float)):
        return repr(value)
    raise SemanticError(f"cannot render {type(value).__name__} as an IDL literal")


def _reindex(obj):
    if obj.is_set:
        # Direct view iteration is safe: recursing mutates the elements'
        # own internals, never this set's key dict; reindex() runs after
        # the loop completes (and only bumps the version — invalidating
        # attribute indexes — when the mapping actually changed).
        for element in obj:
            _reindex(element)
        obj.reindex()
    elif obj.is_tuple:
        for name in obj.attr_names():
            _reindex(obj.get(name))
