"""Abstract syntax of IDL expressions and statements.

The expression AST mirrors the paper's grammar (Section 4.1), extended
with the Section 4.3 higher-order attribute terms and the Section 5
update signs:

* :class:`Epsilon` — the tautological empty expression;
* :class:`AtomicExpr` — ``<op> term``; an optional sign makes it the
  atomic plus/minus update ``+=c`` / ``-=c``;
* :class:`AttrStep` — one tuple-expression item ``.A exp``; the
  attribute term may be a constant or a (higher-order) variable, and an
  optional sign makes it the tuple plus/minus ``+.A exp`` / ``-.A exp``;
* :class:`TupleExpr` — a conjunction of expressions evaluated against
  the *same* object (tuple items, and negated sub-conjunctions);
* :class:`SetExpr` — ``( exp )``; an optional sign makes it the set
  plus/minus ``+(exp)`` / ``-(exp)``;
* :class:`NegExpr` — ``~exp``.

Statements:

* :class:`Query` — ``? exp`` (also an *update request* when the
  expression contains signed subexpressions, Section 5.1);
* :class:`Rule` — ``head <- body`` (view definition, Section 6);
* :class:`UpdateClause` — ``head -> body`` (update program, Section 7).
"""

from __future__ import annotations

from repro.core.terms import Const, Term, Var

PLUS = "+"
MINUS = "-"
SIGNS = (None, PLUS, MINUS)


def format_loc(loc):
    """Render a ``(line, column)`` pair as ``line:column`` (or ``?``)."""
    if not loc:
        return "?"
    return f"{loc[0]}:{loc[1]}"


class Expr:
    """Abstract expression node.

    Every node carries an optional ``loc`` — the ``(line, column)`` of
    the token that started it, threaded through by the parser so later
    passes (safety, stratification, the ``idlcheck`` analyzer) can cite
    source positions. ``loc`` never participates in equality or hashing.
    """

    __slots__ = ("loc",)

    def variables(self):
        """All variable names occurring in the expression."""
        raise NotImplementedError

    def has_update(self):
        """True if any subexpression carries a + or - sign."""
        raise NotImplementedError

    def children(self):
        """Direct subexpressions (for generic walks)."""
        return ()

    def walk(self):
        """Yield this node and every descendant, pre-order."""
        yield self
        for child in self.children():
            for node in child.walk():
                yield node

    def __eq__(self, other):
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self):
        return hash((type(self).__name__, self._key()))

    def _key(self):
        raise NotImplementedError

    def __repr__(self):
        from repro.core.pretty import to_source

        return f"<{type(self).__name__} {to_source(self)}>"


class Epsilon(Expr):
    """The empty (tautological) expression, satisfied by any object."""

    __slots__ = ()

    def __init__(self, loc=None):
        self.loc = loc

    def variables(self):
        return frozenset()

    def has_update(self):
        return False

    def _key(self):
        return ()


class AtomicExpr(Expr):
    """``<op> term`` — or the atomic update ``+=term`` / ``-=term``."""

    __slots__ = ("op", "term", "sign")

    def __init__(self, op, term, sign=None, loc=None):
        if sign not in SIGNS:
            raise ValueError(f"bad sign {sign!r}")
        if sign is not None and op != "=":
            raise ValueError("atomic updates use '=' only (simple expressions)")
        if not isinstance(term, Term):
            raise TypeError(f"atomic operand must be a Term, got {type(term).__name__}")
        self.op = op
        self.term = term
        self.sign = sign
        self.loc = loc

    def variables(self):
        return self.term.variables()

    def has_update(self):
        return self.sign is not None

    def _key(self):
        return (self.op, self.term, self.sign)


class AttrStep(Expr):
    """One tuple item ``.A exp`` (or signed: ``+.A exp`` / ``-.A exp``).

    Evaluated against a tuple object: descend into (or create/delete)
    attribute ``A`` and evaluate ``expr`` on the attribute's object.
    ``attr`` is a Const (name) or Var (higher-order variable).
    """

    __slots__ = ("sign", "attr", "expr")

    def __init__(self, attr, expr, sign=None, loc=None):
        if sign not in SIGNS:
            raise ValueError(f"bad sign {sign!r}")
        if not isinstance(attr, (Const, Var)):
            raise TypeError("attribute position takes a constant or variable")
        self.sign = sign
        self.attr = attr
        self.expr = expr
        self.loc = loc

    def variables(self):
        return self.attr.variables() | self.expr.variables()

    def has_update(self):
        return self.sign is not None or self.expr.has_update()

    def children(self):
        return (self.expr,)

    def _key(self):
        return (self.sign, self.attr, self.expr)


class TupleExpr(Expr):
    """A conjunction of expressions over the same object.

    Conjuncts are typically :class:`AttrStep` items (the paper's
    ``.a1 exp1, .a2 exp2, ...``) and :class:`NegExpr` wrappers. A
    one-conjunct TupleExpr is semantically identical to its conjunct.
    """

    __slots__ = ("conjuncts",)

    def __init__(self, conjuncts, loc=None):
        self.conjuncts = tuple(conjuncts)
        if loc is None and self.conjuncts:
            loc = self.conjuncts[0].loc
        self.loc = loc

    def variables(self):
        names = frozenset()
        for conjunct in self.conjuncts:
            names |= conjunct.variables()
        return names

    def has_update(self):
        return any(conjunct.has_update() for conjunct in self.conjuncts)

    def children(self):
        return self.conjuncts

    def _key(self):
        return self.conjuncts


class SetExpr(Expr):
    """``( exp )`` over a set object (or signed: ``+(exp)`` / ``-(exp)``)."""

    __slots__ = ("inner", "sign")

    def __init__(self, inner, sign=None, loc=None):
        if sign not in SIGNS:
            raise ValueError(f"bad sign {sign!r}")
        self.inner = inner
        self.sign = sign
        self.loc = loc

    def variables(self):
        return self.inner.variables()

    def has_update(self):
        return self.sign is not None or self.inner.has_update()

    def children(self):
        return (self.inner,)

    def _key(self):
        return (self.inner, self.sign)


class Constraint(Expr):
    """A standalone comparison between terms: ``X = ource``, ``S != date``.

    The paper's footnote 7 admits this construct "very similar to the use
    in Datalog". Unlike :class:`AtomicExpr` it is evaluated against the
    substitution alone, not against an object; with ``=`` and one unbound
    side it binds that variable.
    """

    __slots__ = ("left", "op", "right")

    def __init__(self, left, op, right, loc=None):
        if not isinstance(left, Term) or not isinstance(right, Term):
            raise TypeError("constraints compare terms")
        self.left = left
        self.op = op
        self.right = right
        self.loc = loc

    def variables(self):
        return self.left.variables() | self.right.variables()

    def has_update(self):
        return False

    def _key(self):
        return (self.left, self.op, self.right)


class NegExpr(Expr):
    """``~exp`` — satisfied iff ``exp`` has no satisfying extension.

    Negation binds nothing; its free variables must be bound by the time
    it is evaluated (enforced by goal ordering, see ``safety``).
    """

    __slots__ = ("inner",)

    def __init__(self, inner, loc=None):
        if inner.has_update():
            raise ValueError("update expressions cannot be negated")
        self.inner = inner
        self.loc = loc

    def variables(self):
        return self.inner.variables()

    def has_update(self):
        return False

    def children(self):
        return (self.inner,)

    def _key(self):
        return (self.inner,)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Statement:
    """Abstract parsed statement (``loc`` as for :class:`Expr`)."""

    __slots__ = ("loc",)


class Query(Statement):
    """``? exp1, ..., expk`` — a query, or an update request when any
    conjunct carries a sign (Section 5.1)."""

    __slots__ = ("expr",)

    def __init__(self, expr, loc=None):
        if not isinstance(expr, TupleExpr):
            expr = TupleExpr([expr])
        self.expr = expr
        self.loc = loc if loc is not None else expr.loc

    @property
    def is_update_request(self):
        return self.expr.has_update()

    def variables(self):
        return self.expr.variables()

    def __eq__(self, other):
        return isinstance(other, Query) and self.expr == other.expr

    def __hash__(self):
        return hash((Query, self.expr))

    def __repr__(self):
        from repro.core.pretty import to_source

        return f"<Query ?{to_source(self.expr)}>"


class Rule(Statement):
    """``head <- body`` — a (possibly higher-order) view definition.

    The head must be a *simple tuple expression* (Section 6): a path of
    attribute steps ending in a set-plus-like insertion pattern; every
    head variable must occur in the body. Validation happens in
    ``rules.analyze_rule`` so the parser stays purely syntactic.
    """

    __slots__ = ("head", "body")

    def __init__(self, head, body, loc=None):
        self.head = head if isinstance(head, TupleExpr) else TupleExpr([head])
        self.body = body if isinstance(body, TupleExpr) else TupleExpr([body])
        self.loc = loc if loc is not None else self.head.loc

    def variables(self):
        return self.head.variables() | self.body.variables()

    def __eq__(self, other):
        return (
            isinstance(other, Rule)
            and self.head == other.head
            and self.body == other.body
        )

    def __hash__(self):
        return hash((Rule, self.head, self.body))

    def __repr__(self):
        from repro.core.pretty import to_source

        return f"<Rule {to_source(self.head)} <- {to_source(self.body)}>"


class UpdateClause(Statement):
    """``head -> body`` — one clause of an update program (Section 7).

    The head names the program and declares its parameters; the body is
    an update request executed with the parameters bound top-down.
    """

    __slots__ = ("head", "body")

    def __init__(self, head, body, loc=None):
        self.head = head if isinstance(head, TupleExpr) else TupleExpr([head])
        self.body = body if isinstance(body, TupleExpr) else TupleExpr([body])
        self.loc = loc if loc is not None else self.head.loc

    def variables(self):
        return self.head.variables() | self.body.variables()

    def __eq__(self, other):
        return (
            isinstance(other, UpdateClause)
            and self.head == other.head
            and self.body == other.body
        )

    def __hash__(self):
        return hash((UpdateClause, self.head, self.body))

    def __repr__(self):
        from repro.core.pretty import to_source

        return f"<UpdateClause {to_source(self.head)} -> {to_source(self.body)}>"


def conjuncts_of(expr):
    """Flatten an expression into its top-level conjunct list."""
    if isinstance(expr, TupleExpr):
        return list(expr.conjuncts)
    return [expr]
