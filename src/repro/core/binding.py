"""Binding signatures for update programs (paper Section 7.1).

An update program clause like insStk is only defined for calls that bind
every variable its ``+`` expressions need: "if any of the argument is
not given then the plus expressions are not defined. This can be used to
define the necessary bindings for which a given update program is
defined. Such compile time analysis can be used to check the validity of
the 'call'."

We implement exactly that: :func:`clause_signature` computes, per
clause, which parameter subsets admit a safe evaluation order of the
body; :func:`check_call_binding` validates a concrete call against a
clause before execution.
"""

from __future__ import annotations

from itertools import combinations

from repro.core import ast
from repro.core.safety import order_conjuncts
from repro.errors import BindingError, SafetyError


def body_executable(body, bound_params):
    """Is the clause body safely orderable with ``bound_params`` bound?"""
    try:
        order_conjuncts(ast.conjuncts_of(body), frozenset(bound_params))
        return True
    except SafetyError:
        return False


def minimal_signatures(param_names, body):
    """The minimal parameter subsets under which ``body`` is executable.

    Returns a list of frozensets; a call is valid iff its given
    parameters are a superset of one of them. Exponential in the number
    of parameters, which is small by construction (a program head lists
    them explicitly).
    """
    params = tuple(sorted(param_names))
    valid = []
    for size in range(len(params) + 1):
        for subset in combinations(params, size):
            candidate = frozenset(subset)
            if any(existing <= candidate for existing in valid):
                continue  # already implied by a smaller signature
            if body_executable(body, candidate):
                valid.append(candidate)
    return valid


def check_call_binding(clause_name, param_names, body, given):
    """Raise :class:`BindingError` unless ``body`` is executable when
    exactly the ``given`` parameters are bound."""
    given = frozenset(given) & frozenset(param_names)
    if not body_executable(body, given):
        missing_hint = ", ".join(sorted(frozenset(param_names) - given))
        raise BindingError(
            f"update program {clause_name!r} is not defined for the given "
            f"bindings {sorted(given)}; unbound parameters: {missing_hint or 'none'}"
        )


def describe_signatures(param_names, body):
    """Human-readable binding signatures, e.g. ``['stk+date', 'stk']``.

    Used by the engine's introspection API and the examples.
    """
    signatures = minimal_signatures(param_names, body)
    rendered = []
    for signature in sorted(signatures, key=lambda s: (len(s), sorted(s))):
        rendered.append("+".join(sorted(signature)) if signature else "(none)")
    return rendered
