"""Pretty-printer: AST -> IDL source text.

``parse(to_source(x))`` reproduces ``x`` for every expression and
statement (round-trip property, tested with hypothesis). Output follows
the paper's concrete style: ``?.euter.r(.stkCode=hp, .clsPrice>60)``.
"""

from __future__ import annotations

import re

from repro.core import ast
from repro.core.terms import Arith, Const, Var

_BARE_NAME = re.compile(r"[a-z_][A-Za-z0-9_]*$")
_DATE_LITERAL = re.compile(r"\d+/\d+/\d+$")


def _quote(text):
    escaped = text.replace("\\", "\\\\").replace("'", "\\'")
    return f"'{escaped}'"


def name_to_source(name):
    """Render an attribute name, quoting unless it lexes as a bare word."""
    if _BARE_NAME.match(name):
        return name
    return _quote(name)


def term_to_source(term):
    if isinstance(term, Const):
        value = term.value
        if isinstance(value, bool):
            return _quote(str(value))
        if isinstance(value, (int, float)):
            return repr(value)
        if _BARE_NAME.match(value) or _DATE_LITERAL.match(value):
            return value
        return _quote(value)
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Arith):
        return f"{_term_operand(term.left)}{term.op}{_term_operand(term.right)}"
    raise TypeError(f"not a term: {term!r}")


def _term_operand(term):
    # The term grammar has no parentheses; nested Arith is rendered flat,
    # which is only correct left-to-right — keep builders left-nested.
    return term_to_source(term)


def to_source(node):
    """Render an expression or statement to IDL source text."""
    if isinstance(node, ast.Epsilon):
        return ""
    if isinstance(node, ast.AtomicExpr):
        sign = node.sign or ""
        rendered = term_to_source(node.term)
        if node.op == "<" and rendered.startswith("-"):
            rendered = " " + rendered  # avoid lexing "<-" as a rule arrow
        return f"{sign}{node.op}{rendered}"
    if isinstance(node, ast.AttrStep):
        sign = node.sign or ""
        attr = (
            node.attr.name
            if isinstance(node.attr, Var)
            else name_to_source(node.attr.value)
        )
        return f"{sign}.{attr}{to_source(node.expr)}"
    if isinstance(node, ast.SetExpr):
        sign = node.sign or ""
        return f"{sign}({to_source(node.inner)})"
    if isinstance(node, ast.NegExpr):
        return f"~{to_source(node.inner)}"
    if isinstance(node, ast.Constraint):
        return (
            f"{term_to_source(node.left)} {node.op} {term_to_source(node.right)}"
        )
    if isinstance(node, ast.TupleExpr):
        return ", ".join(to_source(conjunct) for conjunct in node.conjuncts)
    if isinstance(node, ast.Query):
        return f"?{to_source(node.expr)}"
    if isinstance(node, ast.Rule):
        return f"{to_source(node.head)} <- {to_source(node.body)}"
    if isinstance(node, ast.UpdateClause):
        body = to_source(node.body)
        return f"{to_source(node.head)} -> {body}".rstrip()
    raise TypeError(f"cannot render {type(node).__name__}")


def program_to_source(statements):
    """Render a list of statements, one per line."""
    return "\n".join(to_source(statement) for statement in statements)
