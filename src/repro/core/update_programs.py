"""Top-down execution of update programs and view updates (Section 7).

The :class:`UpdateExecutor` processes an update request conjunct by
conjunct, left to right. Each conjunct is classified:

* a **program call** — ``.dbU.delStk(.stk=hp)`` where the program
  registry has clauses for ``(dbU, delStk, None)``: parameters are
  evaluated (unbound arguments mean "not given"), each binding-compatible
  clause executes its body with the parameters bound top-down, and the
  call succeeds when at least one clause body succeeded. Programs return
  only success or failure — no bindings escape;
* a **view update** — ``.dbX.p+(...)`` where ``(dbX, p)`` is a derived
  view target: dispatched to the administrator's registered view-update
  program (same key with the sign; a wildcard ``.dbO.S+(...)`` program
  serves a higher-order view's whole relation family). An unregistered
  view update raises — base ``+``/``-`` on derived objects is illegal
  (Section 7.1: updates "have been allowed only on extensional
  objects");
* anything else — an ordinary query/update conjunct, executed by
  :mod:`repro.core.updates` against the base universe.

Clause selection honours binding signatures: clauses whose head
parameters are constants act as pattern-matching alternatives, clauses
whose body is not executable under the given bindings are skipped, and a
call no clause accepts raises :class:`BindingError` (the paper's
compile-time validity check, applied at call time).
"""

from __future__ import annotations

from repro.core import ast
from repro.core.binding import body_executable
from repro.core.evaluator import EvalContext, _as_substitution
from repro.core.program import parse_call_shape
from repro.core.substitution import Substitution
from repro.core.terms import Const, Var, evaluate_term
from repro.core.updates import UpdateContext, UpdateResult, apply_conjunct
from repro.errors import BindingError, UpdateError
from repro.objects.atom import Atom

_MAX_CALL_DEPTH = 32


class CallOutcome:
    """Result of one program call (success flag + per-clause summary)."""

    __slots__ = ("succeeded", "clauses_run", "clauses_succeeded")

    def __init__(self, succeeded, clauses_run, clauses_succeeded):
        self.succeeded = succeeded
        self.clauses_run = clauses_run
        self.clauses_succeeded = clauses_succeeded


class UpdateExecutor:
    """Executes update requests with program-call and view dispatch."""

    def __init__(self, program, universe, eval_ctx=None):
        self.program = program
        self.universe = universe
        self.eval_ctx = eval_ctx or EvalContext()

    # -- request processing --------------------------------------------------

    def execute_request(self, request, bindings=None, uctx=None):
        """Run an update request (Query statement or TupleExpr)."""
        expr = request.expr if isinstance(request, ast.Query) else request
        if not isinstance(expr, ast.TupleExpr):
            expr = ast.TupleExpr([expr])
        substitutions = [_as_substitution(bindings)]
        if uctx is None:
            uctx = UpdateContext(self.eval_ctx)
        substitutions = self._run_conjuncts(
            ast.conjuncts_of(expr), substitutions, uctx, depth=0
        )
        return UpdateResult(substitutions, uctx.inserted, uctx.deleted,
                            uctx.modified, uctx.touched, delta=uctx.delta)

    def _run_conjuncts(self, conjuncts, substitutions, uctx, depth):
        if depth > _MAX_CALL_DEPTH:
            raise UpdateError("update program call depth exceeded")
        for conjunct in conjuncts:
            if not substitutions:
                break
            dispatch = self._classify(conjunct)
            if dispatch is None:
                substitutions, _ = apply_conjunct(
                    conjunct, self.universe, substitutions, uctx
                )
                continue
            db, name, sign, args_expr, clauses, wildcard_name = dispatch
            surviving = []
            for current in substitutions:
                outcome = self._call(
                    db, name, sign, args_expr, current, clauses,
                    wildcard_name, uctx, depth,
                )
                if outcome.succeeded:
                    surviving.append(current)
            substitutions = surviving
        return substitutions

    # -- classification --------------------------------------------------------

    def _classify(self, conjunct):
        """Return dispatch info for program calls/view updates, else None."""
        shape = parse_call_shape(conjunct)
        if shape is None:
            if self._hits_derived_view(conjunct):
                raise UpdateError(
                    "updates are only legal on extensional objects; define "
                    "a view-update program for this derived view"
                )
            return None
        db, name, sign, args_expr = shape

        clauses, wildcard_name = self.program.clauses_for(db, name, sign)
        if clauses:
            return (db, name, sign, args_expr, clauses, wildcard_name)

        if sign is not None and self.program.is_derived((db, name)):
            raise UpdateError(
                f"view .{db}.{name} is not updatable: no "
                f"'{sign}' update program is registered for it"
            )
        if conjunct.has_update() and self._hits_derived_view(conjunct):
            raise UpdateError(
                "updates are only legal on extensional objects; define "
                "a view-update program for this derived view"
            )
        return None

    def _hits_derived_view(self, conjunct):
        """Does a signed part of this conjunct address a derived target?"""
        if not conjunct.has_update():
            return False
        path = []
        node = conjunct
        while isinstance(node, ast.AttrStep) and isinstance(node.attr, Const):
            if node.sign is not None:
                break
            path.append(node.attr.value)
            if len(path) >= 2:
                break
            node = node.expr
        return len(path) >= 2 and self.program.is_derived(tuple(path))

    # -- program calls -----------------------------------------------------------

    def _call(self, db, name, sign, args_expr, subst, clauses, wildcard_name, uctx, depth):
        args = self._evaluate_args(args_expr, subst, db, name)
        if wildcard_name is not None:
            args = dict(args)
            args["__relation__"] = Atom(wildcard_name)

        compatible = []
        for clause in clauses:
            params = self._match_clause(clause, args)
            if params is None:
                continue
            if not body_executable(clause.body, params.domain()):
                continue
            compatible.append((clause, params))

        if not compatible:
            raise BindingError(
                f"no clause of .{db}.{name or wildcard_name}{sign or ''} "
                f"accepts the given bindings {sorted(args)}"
            )

        clauses_succeeded = 0
        for clause, params in compatible:
            result_substs = self._run_conjuncts(
                ast.conjuncts_of(clause.body), [params], uctx, depth + 1
            )
            if result_substs:
                clauses_succeeded += 1
        return CallOutcome(clauses_succeeded > 0, len(compatible), clauses_succeeded)

    def _evaluate_args(self, args_expr, subst, db, name):
        """Evaluate call arguments; unbound variables mean "not given"."""
        args = {}
        for item in ast.conjuncts_of(args_expr):
            if isinstance(item, ast.Epsilon):
                continue
            if (
                not isinstance(item, ast.AttrStep)
                or item.sign is not None
                or not isinstance(item.attr, Const)
                or not isinstance(item.expr, ast.AtomicExpr)
                or item.expr.op != "="
                or item.expr.sign is not None
            ):
                raise UpdateError(
                    f"program call arguments are '.name=value' items; "
                    f"got {item!r} in call to .{db}.{name}"
                )
            attr = item.attr.value
            term = item.expr.term
            if isinstance(term, Var) and not subst.binds(term.name):
                continue  # parameter intentionally not given
            args[attr] = evaluate_term(term, subst)
        return args

    def _match_clause(self, clause, args):
        """Parameter substitution for a clause, or None if incompatible."""
        unknown = set(args) - set(clause.param_terms)
        if unknown:
            return None
        params = Substitution.empty()
        for attr, value in args.items():
            term = clause.param_terms[attr]
            if isinstance(term, Const):
                # Constant head parameter: pattern-match the argument.
                if not value.is_atom or not Atom(term.value).compare("=", value.value):
                    return None
                continue
            params = params.bind(term.name, value)
        return params
