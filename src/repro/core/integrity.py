"""Key and type constraints over the universe.

The paper models relation and attribute names only, noting "it is easy
to extend this to other metadata such as keys, types, authorization,
etc." (Section 2) and lists the extension as future work (Section 8).
This module is that extension:

* **key constraints** — the listed attributes functionally determine
  the element within a relation; violated by duplicate key values,
  missing key attributes or null keys;
* **type constraints** — an attribute's atoms must belong to a type
  class (``str`` / ``num`` / ``bool``); non-atomic objects violate;
* constraints may target **higher-order families**: a key declared for
  relation pattern ``dbO.*`` covers every relation of the data-dependent
  dbO view family.

Constraints are themselves *metadata represented as data*: a
ConstraintSet renders to relations, so IDL programs can query which
keys exist — the same reflective move the paper makes for names.

``IdlEngine`` integration: declare through ``engine.declare_key`` /
``engine.declare_type``; every atomic update validates the post-state
and rolls back with :class:`IntegrityError` on violation.
"""

from __future__ import annotations

from repro.errors import IntegrityError
from repro.objects.base import same_value

TYPE_CLASSES = ("str", "num", "bool")


class Violation:
    """One constraint violation, with enough context to act on."""

    __slots__ = ("kind", "db", "rel", "detail")

    def __init__(self, kind, db, rel, detail):
        self.kind = kind  # 'duplicate-key' | 'incomplete-key' | 'bad-type'
        self.db = db
        self.rel = rel
        self.detail = detail

    def __repr__(self):
        return f"<Violation {self.kind} at {self.db}.{self.rel}: {self.detail}>"


class KeyConstraint:
    """``columns`` determine the element within matching relations.

    ``rel`` may be ``"*"`` to cover every relation of the database — the
    higher-order family case.
    """

    __slots__ = ("db", "rel", "columns")

    def __init__(self, db, rel, columns):
        if not columns:
            raise ValueError("a key needs at least one column")
        self.db = db
        self.rel = rel
        self.columns = tuple(columns)

    def matches(self, db, rel):
        return db == self.db and (self.rel == "*" or rel == self.rel)

    def check(self, db, rel, relation):
        violations = []
        seen = {}
        for element in relation:
            if not element.is_tuple:
                continue
            key = []
            complete = True
            for column in self.columns:
                if not element.has(column):
                    violations.append(
                        Violation(
                            "incomplete-key", db, rel,
                            f"element lacks key attribute {column!r}",
                        )
                    )
                    complete = False
                    break
                value = element.get(column)
                if value.is_atom and value.is_null:
                    violations.append(
                        Violation(
                            "incomplete-key", db, rel,
                            f"null key attribute {column!r}",
                        )
                    )
                    complete = False
                    break
                key.append(value.value_key())
            if not complete:
                continue
            key = tuple(key)
            prior = seen.get(key)
            if prior is not None and not same_value(prior, element):
                violations.append(
                    Violation(
                        "duplicate-key", db, rel,
                        f"two elements share key {self.columns}={key}",
                    )
                )
            else:
                seen[key] = element
        return violations


class TypeConstraint:
    """Attribute ``attr`` of matching relations holds atoms of a class."""

    __slots__ = ("db", "rel", "attr", "type_class", "nullable")

    def __init__(self, db, rel, attr, type_class, nullable=True):
        if type_class not in TYPE_CLASSES:
            raise ValueError(f"unknown type class {type_class!r}")
        self.db = db
        self.rel = rel
        self.attr = attr
        self.type_class = type_class
        self.nullable = nullable

    def matches(self, db, rel):
        return db == self.db and (self.rel == "*" or rel == self.rel)

    def check(self, db, rel, relation):
        violations = []
        for element in relation:
            if not element.is_tuple or not element.has(self.attr):
                continue
            value = element.get(self.attr)
            if not value.is_atom:
                violations.append(
                    Violation(
                        "bad-type", db, rel,
                        f"{self.attr!r} holds a {value.category} object",
                    )
                )
                continue
            if value.is_null:
                if not self.nullable:
                    violations.append(
                        Violation(
                            "bad-type", db, rel,
                            f"{self.attr!r} is null but declared not null",
                        )
                    )
                continue
            if not _in_class(value.value, self.type_class):
                violations.append(
                    Violation(
                        "bad-type", db, rel,
                        f"{self.attr!r} holds {value.value!r}, "
                        f"expected {self.type_class}",
                    )
                )
        return violations


def _in_class(value, type_class):
    if type_class == "bool":
        return isinstance(value, bool)
    if type_class == "num":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    return isinstance(value, str)


class ConstraintSet:
    """All declared constraints, validated against a universe."""

    def __init__(self):
        self.keys = []
        self.types = []

    def declare_key(self, db, rel, columns):
        constraint = KeyConstraint(db, rel, columns)
        self.keys.append(constraint)
        return constraint

    def declare_type(self, db, rel, attr, type_class, nullable=True):
        constraint = TypeConstraint(db, rel, attr, type_class, nullable)
        self.types.append(constraint)
        return constraint

    def __len__(self):
        return len(self.keys) + len(self.types)

    def validate(self, universe):
        """All violations across the universe (empty list if consistent)."""
        violations = []
        for db in universe.attr_names():
            database = universe.get(db)
            if not database.is_tuple:
                continue
            for rel in database.attr_names():
                relation = database.get(rel)
                if not relation.is_set:
                    continue
                for constraint in self.keys:
                    if constraint.matches(db, rel):
                        violations.extend(constraint.check(db, rel, relation))
                for constraint in self.types:
                    if constraint.matches(db, rel):
                        violations.extend(constraint.check(db, rel, relation))
        return violations

    def enforce(self, universe):
        """Raise :class:`IntegrityError` listing all violations, if any."""
        violations = self.validate(universe)
        if violations:
            summary = "; ".join(
                f"{v.kind} at {v.db}.{v.rel} ({v.detail})" for v in violations[:5]
            )
            more = f" (+{len(violations) - 5} more)" if len(violations) > 5 else ""
            raise IntegrityError(f"integrity violation: {summary}{more}")

    # -- reflection: constraints as data -------------------------------------

    def as_relations(self):
        """Render the constraint catalog as relations (rows of dicts)."""
        return {
            "keys": [
                {"db": c.db, "rel": c.rel, "columns": ",".join(c.columns)}
                for c in self.keys
            ],
            "types": [
                {
                    "db": c.db,
                    "rel": c.rel,
                    "attr": c.attr,
                    "type": c.type_class,
                    "nullable": 1 if c.nullable else 0,
                }
                for c in self.types
            ],
        }
