"""Update expression evaluation (paper Section 5).

An update request ``? exp1, ..., expk`` mixes query and update
expressions. Query conjuncts enumerate substitutions; update conjuncts
apply, for each current substitution, the Section 5.2 semantics:

* **atomic plus** ``+=c`` replaces the atom's value with ``c``;
* **atomic minus** ``-=c`` nulls the atom if it satisfies ``=c``; with an
  unbound variable (``-=X``) it binds X to the old value first — the
  paper's delStk uses this;
* **tuple plus** ``+.a exp`` creates attribute ``a`` (overwriting any
  existing object with an empty one of the category ``exp`` needs) and
  recursively plus-evaluates ``exp`` on it;
* **tuple minus** ``-.a exp`` deletes attribute ``a`` when its object
  satisfies ``exp``;
* **set plus** ``+(exp)`` builds a new element from the simple ground
  expression ``exp`` and adds it (value-deduplicated);
* **set minus** ``-(exp)`` deletes every element satisfying ``exp``;
  following the paper's "series of delete expressions" reading, an inner
  expression with unbound variables yields one substitution per deleted
  match, so later conjuncts can use the old values.

Ordering rules (the paper makes update order significant):

* at the **request level**, conjuncts evaluate left-to-right; update
  conjuncts are barriers (only pure-query runs between them may be
  safety-reordered) — handled by ``safety.order_conjuncts``;
* **within a tuple expression that selects one object** (typically a set
  element), query items run first (selection), then update items in
  their original order — mirroring the paper's delStk clause
  ``.chwab.r(.S-=X, .date=D)``, where ``.date=D`` selects the tuple that
  ``.S-=X`` then mutates;
* when a *signed* item's attribute variable is unbound, it ranges over
  the attributes of the selected tuple **except** those named by sibling
  query items — the update-enumeration exclusion rule. Without it,
  delStk's ``.S-=X`` would also null the ``date`` attribute the sibling
  ``.date=D`` selected on; the paper's prose ("the closing price of all
  stocks for that date is deleted. But the structure of the database is
  not changed") makes the intended domain clear. Documented as a
  semantic clarification in DESIGN.md.

Mutations happen in place on the base universe; the engine wraps
requests in a snapshot-rollback transaction and reindexes sets whose
elements were mutated.
"""

from __future__ import annotations

from repro.core import ast
from repro.core.evaluator import EvalContext, _as_substitution, _satisfy
from repro.core.safety import order_conjuncts
from repro.core.terms import NOT_A_NAME, Const, Var, evaluate_term, term_name
from repro.errors import UpdateError
from repro.objects.atom import Atom
from repro.objects.set import SetObject
from repro.objects.tuple import TupleObject


class UpdateDelta:
    """Concrete per-path record of what one update request changed.

    ``touched`` names the ``(db, rel)`` prefixes an update *may* have
    affected; this records exactly *which elements* were inserted into
    and deleted from each mutated set, so the engine can repair a
    materialized view stratum in place instead of rebuilding it
    (:func:`repro.core.fixpoint.maintain_stratum`). Elements are copied
    at record time — a later in-place mutation of the live object cannot
    retroactively change the log.

    Mutations that are not expressible as set-level insert/delete pairs
    — creating or dropping an attribute, nulling an atom that is not
    inside a set element — are recorded as *symbolic* paths: the delta
    for them is unknown and any stratum reading those paths must fall
    back to a full rebuild.

    The log is chronological so a caller can roll a suffix back:
    the update evaluator rewrites the deep records produced while
    mutating a set element in place into one whole-element
    delete+insert pair at the owning set's path (see
    ``_update_set_expr``).
    """

    __slots__ = ("_log",)

    def __init__(self):
        self._log = []

    def record_insert(self, path, element):
        self._log.append(("+", tuple(path), element.copy()))

    def record_delete(self, path, element):
        self._log.append(("-", tuple(path), element.copy()))

    def mark_symbolic(self, path):
        self._log.append(("?", tuple(path), None))

    def mark(self):
        """A rollback token for the current end of the log."""
        return len(self._log)

    def rollback(self, mark):
        del self._log[mark:]

    @property
    def changed(self):
        return bool(self._log)

    def fold(self):
        """Net changes: ``(inserts, deletes, symbolic)``.

        ``inserts``/``deletes`` map a path to ``{value_key: element}``;
        an insert and a delete of the same value at the same path cancel
        (in either order — the base set ends where it started).
        ``symbolic`` is the set of paths whose delta is unknown.
        """
        inserts, deletes, symbolic = {}, {}, set()
        for op, path, element in self._log:
            if op == "?":
                symbolic.add(path)
                continue
            gained, lost = (inserts, deletes) if op == "+" else (deletes, inserts)
            key = element.value_key()
            opposite = lost.get(path)
            if opposite is not None and opposite.pop(key, None) is not None:
                continue
            gained.setdefault(path, {})[key] = element
        inserts = {path: elems for path, elems in inserts.items() if elems}
        deletes = {path: elems for path, elems in deletes.items() if elems}
        return inserts, deletes, symbolic

    def __repr__(self):
        plus = sum(1 for op, _, _ in self._log if op == "+")
        minus = sum(1 for op, _, _ in self._log if op == "-")
        unknown = sum(1 for op, _, _ in self._log if op == "?")
        return f"UpdateDelta(+{plus}, -{minus}, ?{unknown})"


class UpdateResult:
    """Outcome of an update request.

    ``touched`` is the set of ``(db, rel)`` path prefixes whose contents
    were mutated — the engine's selective re-materialization uses it to
    rebuild only the affected view strata. ``delta`` (optional) is the
    :class:`UpdateDelta` of concrete element-level changes when the
    engine asked for capture; it drives incremental view maintenance.
    """

    __slots__ = ("substitutions", "inserted", "deleted", "modified", "touched",
                 "delta")

    def __init__(self, substitutions, inserted, deleted, modified,
                 touched=frozenset(), delta=None):
        self.substitutions = substitutions
        self.inserted = inserted
        self.deleted = deleted
        self.modified = modified
        self.touched = frozenset(touched)
        self.delta = delta

    @property
    def succeeded(self):
        """The request found at least one satisfying substitution."""
        return bool(self.substitutions)

    @property
    def changed(self):
        return bool(self.inserted or self.deleted or self.modified)

    def __repr__(self):
        return (
            f"UpdateResult(answers={len(self.substitutions)}, "
            f"inserted={self.inserted}, deleted={self.deleted}, "
            f"modified={self.modified})"
        )


class _UpdateContext:
    """Mutable evaluation state shared across one update request.

    ``delta`` (optional :class:`UpdateDelta`) turns on element-level
    change capture; with ``delta=None`` every capture hook is a cheap
    no-op, so updates that feed no materialized view pay nothing.
    """

    __slots__ = ("eval_ctx", "inserted", "deleted", "modified", "touched",
                 "delta", "_preimages")

    def __init__(self, eval_ctx=None, delta=None):
        self.eval_ctx = eval_ctx or EvalContext()
        self.inserted = 0
        self.deleted = 0
        self.modified = 0
        self.touched = set()  # (db, rel) prefixes of mutated paths
        self.delta = delta
        # Stack of [element, copy-or-None] cells for set elements being
        # mutated in place; ``fire_preimages`` copies each element the
        # moment the first real mutation beneath it is about to happen.
        self._preimages = []

    def touch(self, path):
        self.touched.add(tuple(path[:2]))

    # -- delta capture hooks (all no-ops when ``delta`` is None) -------------

    def record_insert(self, path, element):
        if self.delta is not None:
            self.delta.record_insert(path, element)

    def record_delete(self, path, element):
        if self.delta is not None:
            self.delta.record_delete(path, element)

    def mark_symbolic(self, path):
        if self.delta is not None:
            self.delta.mark_symbolic(path)

    def push_preimage(self, element):
        """Register a set element about to be (possibly) mutated in
        place; returns a token for :meth:`pop_preimage`."""
        self._preimages.append([element, None])
        return len(self._preimages) - 1

    def pop_preimage(self, token):
        """The pre-mutation copy of the element (None when nothing
        beneath it actually mutated)."""
        cell = self._preimages[token]
        del self._preimages[token:]
        return cell[1]

    def fire_preimages(self):
        """Snapshot every pending element before a mutation lands."""
        for cell in self._preimages:
            if cell[1] is None:
                cell[1] = cell[0].copy()


# Public alias: the executor threads one context across a whole request.
UpdateContext = _UpdateContext


def apply_request(request, universe, bindings=None, eval_ctx=None):
    """Execute an update request against ``universe`` (in place).

    ``request`` is a Query statement or a TupleExpr. Returns an
    :class:`UpdateResult`; raises :class:`UpdateError` on category
    mismatches (Section 5.2's "in error" cases). No transactional
    guarantees here — use ``IdlEngine.update`` for rollback on error.
    """
    expr = request.expr if isinstance(request, ast.Query) else request
    if not isinstance(expr, ast.TupleExpr):
        expr = ast.TupleExpr([expr])
    subst = _as_substitution(bindings)
    uctx = _UpdateContext(eval_ctx)

    conjuncts = order_conjuncts(list(expr.conjuncts), subst.domain())
    substitutions = [subst]
    for conjunct in conjuncts:
        next_substitutions = []
        for current in substitutions:
            for extended in _update_satisfy(conjunct, universe, current, uctx):
                next_substitutions.append(extended)
        substitutions = next_substitutions
        if not substitutions:
            break
    return UpdateResult(substitutions, uctx.inserted, uctx.deleted,
                        uctx.modified, uctx.touched, delta=uctx.delta)


def apply_conjunct(conjunct, universe, substitutions, uctx=None):
    """Apply one request conjunct for each current substitution.

    Used by the update-program executor, which dispatches conjunct by
    conjunct (program calls in between). Returns ``(next_substitutions,
    update_context)``.
    """
    if uctx is None:
        uctx = _UpdateContext()
    next_substitutions = []
    for current in substitutions:
        for extended in _update_satisfy(conjunct, universe, current, uctx):
            next_substitutions.append(extended)
    return next_substitutions, uctx


# ---------------------------------------------------------------------------
# Mixed query/update satisfaction
# ---------------------------------------------------------------------------


def _update_satisfy(expr, obj, subst, uctx, excluded=frozenset(), path=()):
    """Like ``evaluator._satisfy`` but applies signed subexpressions.

    ``path`` tracks the attribute names navigated from the universe root
    so mutations can report which ``(db, rel)`` prefix they touched.
    """
    if not expr.has_update():
        for extended in _satisfy(expr, obj, subst, uctx.eval_ctx):
            yield extended
        return

    if isinstance(expr, ast.AtomicExpr):
        for extended in _apply_atomic_update(expr, obj, subst, uctx, path):
            yield extended
        return

    if isinstance(expr, ast.AttrStep):
        for extended in _update_attr_step(expr, obj, subst, uctx, excluded, path):
            yield extended
        return

    if isinstance(expr, ast.SetExpr):
        for extended in _update_set_expr(expr, obj, subst, uctx, path):
            yield extended
        return

    if isinstance(expr, ast.TupleExpr):
        for extended in _update_tuple_expr(expr, obj, subst, uctx, path):
            yield extended
        return

    raise UpdateError(f"cannot apply update through {type(expr).__name__}")


def _update_tuple_expr(expr, obj, subst, uctx, path=()):
    """Query items first (selection), then update items in order."""
    query_items = [c for c in expr.conjuncts if not c.has_update()]
    update_items = [c for c in expr.conjuncts if c.has_update()]
    ordered_queries = order_conjuncts(query_items, subst.domain()) if query_items else []

    # The exclusion rule: attribute names fixed by sibling query items.
    excluded = set()
    for item in query_items:
        if isinstance(item, ast.AttrStep) and isinstance(item.attr, Const):
            excluded.add(item.attr.value)

    def run_updates(index, current):
        if index == len(update_items):
            yield current
            return
        for extended in _update_satisfy(
            update_items[index], obj, current, uctx, frozenset(excluded), path
        ):
            for final in run_updates(index + 1, extended):
                yield final

    def run_queries(index, current):
        if index == len(ordered_queries):
            for final in run_updates(0, current):
                yield final
            return
        for extended in _satisfy(ordered_queries[index], obj, current, uctx.eval_ctx):
            for final in run_queries(index + 1, extended):
                yield final

    for result in run_queries(0, subst):
        yield result


def _update_attr_step(expr, obj, subst, uctx, excluded, path=()):
    if not obj.is_tuple:
        raise UpdateError(
            f"tuple update applied to a {obj.category} object: {expr!r}"
        )
    if not isinstance(obj, TupleObject):
        raise UpdateError("updates are only legal on extensional (base) objects")

    if expr.sign == ast.PLUS:
        name = term_name(expr.attr, subst)
        if name is None or name is NOT_A_NAME:
            raise UpdateError(f"tuple plus needs a known attribute name: {expr!r}")
        uctx.fire_preimages()
        obj.set(name, _empty_for(expr.expr))
        uctx.modified += 1
        uctx.touch(path + (name,))
        uctx.mark_symbolic(path + (name,))
        for extended in _apply_plus(expr.expr, obj, name, subst, uctx,
                                    path + (name,)):
            yield extended
        return

    if expr.sign == ast.MINUS:
        for extended in _tuple_minus(expr, obj, subst, uctx, excluded, path):
            yield extended
        return

    # Unsigned navigation step whose subexpression carries updates. A
    # missing attribute makes the conjunct fail, query-style — so e.g.
    # delStk's chwab clause simply fails when the stock has no column.
    name = term_name(expr.attr, subst)
    if name is NOT_A_NAME:
        return
    if name is not None:
        if not obj.has(name):
            return
        for extended in _update_satisfy(
            expr.expr, obj.get(name), subst, uctx, frozenset(), path + (name,)
        ):
            yield extended
        return
    var = expr.attr.name
    for attr_name in obj.attr_names():
        if attr_name in excluded:
            continue
        bound = subst.bind(var, Atom(attr_name))
        for extended in _update_satisfy(
            expr.expr, obj.get(attr_name), bound, uctx, frozenset(),
            path + (attr_name,)
        ):
            yield extended


def _tuple_minus(expr, obj, subst, uctx, excluded, path=()):
    """``-.a exp``: delete attribute(s) whose object satisfies exp."""
    name = term_name(expr.attr, subst)
    if name is NOT_A_NAME:
        return
    ground = not _has_unbound_vars(expr, subst)
    matches = []
    if name is not None:
        if obj.has(name):
            for extended in _satisfy(expr.expr, obj.get(name), subst, uctx.eval_ctx):
                matches.append((name, extended))
    else:
        var = expr.attr.name
        for attr_name in obj.attr_names():
            if attr_name in excluded:
                continue
            bound = subst.bind(var, Atom(attr_name))
            for extended in _satisfy(expr.expr, obj.get(attr_name), bound, uctx.eval_ctx):
                matches.append((attr_name, extended))

    removed = set()
    for attr_name, _ in matches:
        if attr_name not in removed and obj.has(attr_name):
            uctx.fire_preimages()
            obj.remove(attr_name)
            removed.add(attr_name)
            uctx.deleted += 1
            uctx.touch(path + (attr_name,))
            uctx.mark_symbolic(path + (attr_name,))

    if ground:
        yield subst
    else:
        seen = set()
        for _, extended in matches:
            key = extended.signature()
            if key not in seen:
                seen.add(key)
                yield extended


def _update_set_expr(expr, obj, subst, uctx, path=()):
    if not obj.is_set:
        raise UpdateError(f"set update applied to a {obj.category} object: {expr!r}")
    if not isinstance(obj, SetObject):
        raise UpdateError("updates are only legal on extensional (base) objects")

    if expr.sign == ast.PLUS:
        if not isinstance(expr.inner, ast.Epsilon):
            element = build_object(expr.inner, subst)
            uctx.fire_preimages()
            if obj.add(element):
                uctx.inserted += 1
                uctx.touch(path)
                uctx.record_insert(path, element)
        yield subst
        return

    if expr.sign == ast.MINUS:
        ground = not _has_unbound_vars(expr, subst)
        matches = []
        for element in obj.elements():
            for extended in _satisfy(expr.inner, element, subst, uctx.eval_ctx):
                matches.append((element, extended))
        removed = set()
        for element, _ in matches:
            key = element.value_key()
            if key not in removed:
                removed.add(key)
                uctx.fire_preimages()
                obj.discard_value(element)
                uctx.deleted += 1
                uctx.touch(path)
                uctx.record_delete(path, element)
        if ground:
            yield subst
        else:
            seen = set()
            for _, extended in matches:
                key = extended.signature()
                if key not in seen:
                    seen.add(key)
                    yield extended
        return

    # Unsigned set expression with inner updates: select elements, mutate
    # them in place, then re-index the set (elements are value-keyed).
    results = []
    delta = uctx.delta
    for element in obj.elements():
        before = (uctx.inserted, uctx.deleted, uctx.modified)
        if delta is not None:
            mark = delta.mark()
            token = uctx.push_preimage(element)
        for extended in _update_satisfy(expr.inner, element, subst, uctx,
                                        frozenset(), path):
            results.append(extended)
        preimage = uctx.pop_preimage(token) if delta is not None else None
        if (uctx.inserted, uctx.deleted, uctx.modified) != before:
            obj.refresh(element)
            uctx.touch(path)
            if delta is not None:
                # The records made while mutating the element describe
                # positions inside it; rewrite them as one whole-element
                # delete+insert at the owning set's path.
                delta.rollback(mark)
                if preimage is None:
                    delta.mark_symbolic(path)
                else:
                    delta.record_delete(path, preimage)
                    delta.record_insert(path, element)
    for extended in results:
        yield extended


def _apply_atomic_update(expr, obj, subst, uctx, path=()):
    if not obj.is_atom:
        raise UpdateError(f"atomic update applied to a {obj.category} object: {expr!r}")
    if not isinstance(obj, Atom):
        raise UpdateError("updates are only legal on extensional (base) objects")

    if expr.sign == ast.PLUS:
        value_obj = evaluate_term(expr.term, subst)
        if not value_obj.is_atom:
            raise UpdateError("atomic plus requires an atomic value")
        uctx.fire_preimages()
        obj.value = value_obj.value
        uctx.modified += 1
        uctx.touch(path)
        uctx.mark_symbolic(path)
        yield subst
        return

    # Atomic minus.
    term = expr.term
    if isinstance(term, Var) and not subst.binds(term.name):
        if obj.is_null:
            return  # nothing to bind: the null atom satisfies no expression
        bound = subst.bind(term.name, Atom(obj.value))
        uctx.fire_preimages()
        obj.value = None
        uctx.modified += 1
        uctx.touch(path)
        uctx.mark_symbolic(path)
        yield bound
        return
    value_obj = evaluate_term(term, subst)
    if obj.is_atom and value_obj.is_atom and not obj.is_null:
        if obj.compare("=", value_obj.value):
            uctx.fire_preimages()
            obj.value = None
            uctx.modified += 1
            uctx.touch(path)
            uctx.mark_symbolic(path)
    yield subst


# ---------------------------------------------------------------------------
# Object construction (plus-evaluation, Section 5.2)
# ---------------------------------------------------------------------------


def build_object(expr, subst):
    """Construct a fresh object from a simple expression, ground under
    ``subst`` (the constructor reading of plus expressions)."""
    if isinstance(expr, ast.Epsilon):
        return Atom(None)
    if isinstance(expr, ast.AtomicExpr):
        if expr.op != "=":
            raise UpdateError("constructors use '=' only (simple expressions)")
        value_obj = evaluate_term(expr.term, subst)
        return value_obj.copy() if not isinstance(value_obj, Atom) else value_obj
    if isinstance(expr, ast.AttrStep):
        return build_object(ast.TupleExpr([expr]), subst)
    if isinstance(expr, ast.TupleExpr):
        built = TupleObject()
        for item in expr.conjuncts:
            if not isinstance(item, ast.AttrStep) or item.sign is not None:
                raise UpdateError(f"not a simple constructor item: {item!r}")
            name = term_name(item.attr, subst)
            if name is None or name is NOT_A_NAME:
                raise UpdateError(f"constructor attribute name is unbound: {item!r}")
            if built.has(name):
                raise UpdateError(f"duplicate attribute {name!r} in constructor")
            built.set(name, build_object(item.expr, subst))
        return built
    if isinstance(expr, ast.SetExpr):
        fresh = SetObject()
        if not isinstance(expr.inner, ast.Epsilon):
            fresh.add(build_object(expr.inner, subst))
        return fresh
    raise UpdateError(f"cannot construct an object from {type(expr).__name__}")


def _apply_plus(expr, parent, name, subst, uctx, path=()):
    """Plus-evaluate ``expr`` onto the freshly-emptied attribute ``name``."""
    target = parent.get(name)
    if isinstance(expr, ast.Epsilon):
        yield subst
        return
    if isinstance(expr, ast.AtomicExpr):
        plused = ast.AtomicExpr("=", expr.term, sign=ast.PLUS)
        for extended in _apply_atomic_update(plused, target, subst, uctx, path):
            yield extended
        return
    if isinstance(expr, ast.SetExpr):
        plused = ast.SetExpr(expr.inner, sign=ast.PLUS)
        for extended in _update_set_expr(plused, target, subst, uctx, path):
            yield extended
        return
    if isinstance(expr, (ast.AttrStep, ast.TupleExpr)):
        items = ast.conjuncts_of(expr) if isinstance(expr, ast.TupleExpr) else [expr]

        def run(index, current):
            if index == len(items):
                yield current
                return
            item = items[index]
            if not isinstance(item, ast.AttrStep):
                raise UpdateError(f"not a simple constructor item: {item!r}")
            plused = ast.AttrStep(item.attr, item.expr, sign=ast.PLUS)
            for extended in _update_attr_step(
                plused, target, current, uctx, frozenset(), path
            ):
                for final in run(index + 1, extended):
                    yield final

        for extended in run(0, subst):
            yield extended
        return
    raise UpdateError(f"cannot plus-evaluate {type(expr).__name__}")


def _empty_for(expr):
    """The empty object whose category matches what ``expr`` expects."""
    if isinstance(expr, ast.SetExpr):
        return SetObject()
    if isinstance(expr, (ast.TupleExpr, ast.AttrStep)):
        return TupleObject()
    return Atom(None)


def _has_unbound_vars(expr, subst):
    return any(not subst.binds(name) for name in expr.variables())
