"""The IDL language core: syntax, semantics, views, update programs.

Most applications only need :class:`IdlEngine`; the submodules expose
the full pipeline for tools and tests:

* :mod:`repro.core.lexer` / :mod:`repro.core.parser` / :mod:`repro.core.pretty`
* :mod:`repro.core.terms` / :mod:`repro.core.ast` / :mod:`repro.core.substitution`
* :mod:`repro.core.safety` / :mod:`repro.core.evaluator` — queries (Section 4)
* :mod:`repro.core.updates` — update expressions (Section 5)
* :mod:`repro.core.rules` / :mod:`repro.core.stratify` / :mod:`repro.core.fixpoint`
  — higher-order views (Section 6)
* :mod:`repro.core.program` / :mod:`repro.core.binding` /
  :mod:`repro.core.update_programs` — update programs (Section 7)
* :mod:`repro.core.engine` — the facade
"""

from repro.core.engine import IdlEngine, QueryAnswer
from repro.core.evaluator import EvalContext, answers, holds, satisfy
from repro.core.parser import (
    parse_expression,
    parse_program,
    parse_query,
    parse_rule,
    parse_update_clause,
)
from repro.core.pretty import program_to_source, to_source
from repro.core.program import IdlProgram
from repro.core.substitution import Substitution
from repro.core.updates import UpdateResult, apply_request

__all__ = [
    "EvalContext",
    "IdlEngine",
    "IdlProgram",
    "QueryAnswer",
    "Substitution",
    "UpdateResult",
    "answers",
    "apply_request",
    "holds",
    "parse_expression",
    "parse_program",
    "parse_query",
    "parse_rule",
    "parse_update_clause",
    "program_to_source",
    "satisfy",
    "to_source",
]
