"""Fixpoint evaluation of stratified rule programs.

Two strategies:

* **naive** — every rule of a stratum re-evaluates against the full
  (base + overlay) view each round until no change;
* **semi-naive** (default) — after the first full round, recursive rules
  re-evaluate once per same-stratum body conjunct, with that conjunct
  redirected at the *delta* (facts new in the previous round). The
  redirection works syntactically: conjunct ``.dbI.p(...)`` becomes
  ``.__delta__.dbI.p(...)`` and the evaluation view gains a ``__delta__``
  member mirroring the overlay paths of last round's new facts. Rules
  whose same-stratum references are not top-level conjuncts (or that use
  merge semantics) fall back to full re-evaluation, preserving
  correctness.

Both strategies produce identical overlays (property-tested); benchmark
B3 measures the difference on recursive workloads.
"""

from __future__ import annotations

from repro.core import ast
from repro.core.rules import (
    body_references,
    derive_once,
    make_true,
    patterns_overlap,
)
from repro.core.evaluator import satisfy
from repro.core.stratify import is_recursive_stratum, stratify
from repro.core.terms import Const
from repro.obs.trace import NOOP_SPAN
from repro.objects.merged import MergedTuple
from repro.objects.tuple import TupleObject

DELTA_ROOT = "__delta__"


class FixpointStats:
    """Instrumentation for one materialization run."""

    __slots__ = ("rounds", "rule_firings", "derivations", "strategy",
                 "reused_strata")

    def __init__(self, strategy):
        self.strategy = strategy
        self.rounds = 0
        self.rule_firings = 0
        self.derivations = 0
        self.reused_strata = 0

    def __repr__(self):
        return (
            f"FixpointStats({self.strategy}, rounds={self.rounds}, "
            f"firings={self.rule_firings}, derivations={self.derivations}, "
            f"reused={self.reused_strata})"
        )


def materialize(analyzed_rules, universe, method="seminaive", context=None):
    """Materialize all derived views over ``universe``.

    Returns ``(overlay, stats)``: a TupleObject holding every derived
    fact (the base universe is untouched) and run statistics.
    """
    strata_overlays, stats = materialize_strata(
        analyzed_rules, universe, method=method, context=context
    )
    return combine_overlays(
        [overlay for _, _, overlay in strata_overlays]
    ), stats


def materialize_strata(analyzed_rules, universe, method="seminaive",
                       context=None, reuse=None):
    """Materialize per-stratum overlays, reusing clean cached ones.

    Returns ``([(key, stratum, overlay), ...], stats)`` in evaluation
    order. ``reuse`` maps a stratum key (tuple of rule identities) to a
    previously-computed overlay known to still be valid — the engine's
    selective re-materialization passes the overlays of strata whose
    inputs were not touched by the last update.
    """
    if method not in ("naive", "seminaive"):
        raise ValueError(f"unknown fixpoint method {method!r}")
    tracer = context.tracer if context is not None else None
    metrics = context.metrics if context is not None else None
    stats = FixpointStats(method)
    overlays = []
    view_base = universe
    outer = (tracer.span("fixpoint.materialize", method=method)
             if tracer is not None else NOOP_SPAN)
    with outer:
        for index, stratum in enumerate(stratify(analyzed_rules)):
            key = tuple(id(analyzed) for analyzed in stratum)
            cached = reuse.get(key) if reuse else None
            span = (tracer.span("fixpoint.stratum", index=index,
                                rules=len(stratum))
                    if tracer is not None else NOOP_SPAN)
            with span:
                rounds = stats.rounds
                firings = stats.rule_firings
                derivations = stats.derivations
                if cached is not None:
                    overlay = cached
                    stats.reused_strata += 1
                    span.set("reused", True)
                else:
                    overlay = TupleObject()
                    if method == "seminaive":
                        _seminaive_stratum(stratum, view_base, overlay,
                                           stats, context)
                    else:
                        _naive_stratum(stratum, view_base, overlay, stats,
                                       context)
                    span.set("reused", False)
                    span.set("rounds", stats.rounds - rounds)
                    span.set("firings", stats.rule_firings - firings)
                    span.set("derivations", stats.derivations - derivations)
                if tracer is not None:
                    span.set("facts", count_overlay_facts(overlay))
            overlays.append((key, stratum, overlay))
            view_base = MergedTuple(view_base, overlay)
        outer.set("strata", len(overlays))
        outer.set("rounds", stats.rounds)
        outer.set("firings", stats.rule_firings)
        outer.set("derivations", stats.derivations)
        outer.set("reused_strata", stats.reused_strata)
    if metrics is not None:
        metrics.counter("fixpoint.runs").inc()
        metrics.counter("fixpoint.iterations").inc(stats.rounds)
        metrics.counter("fixpoint.rule_firings").inc(stats.rule_firings)
        metrics.counter("fixpoint.derivations").inc(stats.derivations)
        metrics.counter("fixpoint.reused_strata").inc(stats.reused_strata)
    return overlays, stats


def combine_overlays(overlays):
    """Deep-merge overlay tuples into one (sets union, tuples recurse)."""
    combined = TupleObject()
    for overlay in overlays:
        _merge_into(combined, overlay)
    return combined


def _merge_into(target, source):
    for name in source.attr_names():
        incoming = source.get(name)
        if not target.has(name):
            target.set(name, incoming.copy())
            continue
        existing = target.get(name)
        if existing.is_tuple and incoming.is_tuple:
            _merge_into(existing, incoming)
        elif existing.is_set and incoming.is_set:
            # incoming and existing are distinct objects (source overlays
            # are never the combined target), so the view iteration is
            # safe while existing mutates.
            for element in incoming:
                existing.add(element.copy())
        else:
            target.set(name, incoming.copy())


def _naive_stratum(stratum, universe, overlay, stats, context):
    recursive = is_recursive_stratum(stratum)
    while True:
        stats.rounds += 1
        changes = 0
        view = MergedTuple(universe, overlay)
        for analyzed in stratum:
            stats.rule_firings += 1
            changes += derive_once(analyzed, view, overlay, context)
        stats.derivations += changes
        if changes == 0 or not recursive:
            break


def _seminaive_stratum(stratum, universe, overlay, stats, context):
    recursive = is_recursive_stratum(stratum)
    targets = [analyzed.target for analyzed in stratum]

    # Round 0: full evaluation, recording new facts into the delta.
    delta = TupleObject()
    stats.rounds += 1
    view = MergedTuple(universe, overlay)
    for analyzed in stratum:
        stats.rule_firings += 1
        stats.derivations += _derive_tracking_delta(
            analyzed, view, overlay, delta, context
        )
    if not recursive:
        return

    variants = [_delta_variants(analyzed, targets) for analyzed in stratum]

    while _has_facts(delta):
        stats.rounds += 1
        next_delta = TupleObject()
        delta_view = MergedTuple(
            MergedTuple(universe, overlay), TupleObject({DELTA_ROOT: delta})
        )
        full_view = MergedTuple(universe, overlay)
        for analyzed, rule_variants in zip(stratum, variants):
            if rule_variants is None:
                # Fallback: full re-evaluation for this rule.
                stats.rule_firings += 1
                stats.derivations += _derive_tracking_delta(
                    analyzed, full_view, overlay, next_delta, context
                )
                continue
            for variant_body in rule_variants:
                stats.rule_firings += 1
                for subst in satisfy(variant_body, delta_view, None, context):
                    changed = make_true(analyzed, subst, overlay)
                    if changed is not None:
                        stats.derivations += 1
                        make_true(analyzed, subst, next_delta)
        delta = next_delta


def _derive_tracking_delta(analyzed, view, overlay, delta, context):
    changes = 0
    for subst in satisfy(analyzed.body, view, None, context):
        if make_true(analyzed, subst, overlay) is not None:
            changes += 1
            make_true(analyzed, subst, delta)
    return changes


def _delta_variants(analyzed, stratum_targets):
    """Delta-rewritten bodies for a rule, or None to force full re-eval.

    One variant per top-level body conjunct that references a
    same-stratum target: that conjunct is redirected under the delta
    root. Returns None when the rule needs the fallback (merge
    semantics, or a same-stratum reference below the top level).
    """
    if analyzed.merge_on:
        return None

    conjuncts = ast.conjuncts_of(analyzed.body)
    recursive_positions = []
    for index, conjunct in enumerate(conjuncts):
        if not isinstance(conjunct, ast.AttrStep):
            continue
        if _references_targets(conjunct, stratum_targets):
            recursive_positions.append(index)

    if not recursive_positions:
        # References exist (the stratum is recursive) but none are
        # rewritable top-level conjuncts for this rule; check whether this
        # rule references the stratum at all.
        for pattern, _ in analyzed.references:
            for target in stratum_targets:
                if patterns_overlap(pattern, target):
                    return None
        return []  # rule is non-recursive: nothing to do after round 0

    variants = []
    for position in recursive_positions:
        redirected = list(conjuncts)
        redirected[position] = ast.AttrStep(
            Const(DELTA_ROOT), redirected[position]
        )
        variants.append(ast.TupleExpr(redirected))
    return variants


def _references_targets(conjunct, targets):
    for pattern, _ in body_references(ast.TupleExpr([conjunct])):
        for target in targets:
            if patterns_overlap(pattern, target):
                return True
    return False


def _has_facts(overlay):
    """Does the overlay contain any relation element or any relation?"""
    for name in overlay.attr_names():
        obj = overlay.get(name)
        if obj.is_set:
            if len(obj):
                return True
        elif obj.is_tuple:
            if _has_facts(obj):
                return True
        else:
            return True
    return False


def count_overlay_facts(overlay):
    """Total derived elements (for tests and reporting)."""
    total = 0
    for name in overlay.attr_names():
        obj = overlay.get(name)
        if obj.is_set:
            total += len(obj)
        elif obj.is_tuple:
            total += count_overlay_facts(obj)
    return total
