"""Fixpoint evaluation of stratified rule programs.

Two strategies:

* **naive** — every rule of a stratum re-evaluates against the full
  (base + overlay) view each round until no change;
* **semi-naive** (default) — after the first full round, recursive rules
  re-evaluate once per same-stratum body conjunct, with that conjunct
  redirected at the *delta* (facts new in the previous round). The
  redirection works syntactically: conjunct ``.dbI.p(...)`` becomes
  ``.__delta__.dbI.p(...)`` and the evaluation view gains a ``__delta__``
  member mirroring the overlay paths of last round's new facts. Rules
  whose same-stratum references are not top-level conjuncts (or that use
  merge semantics) fall back to full re-evaluation, preserving
  correctness.

Both strategies produce identical overlays (property-tested); benchmark
B3 measures the difference on recursive workloads.
"""

from __future__ import annotations

import time

from repro.core import ast
from repro.core.rules import (
    body_references,
    derive_once,
    make_true,
    patterns_overlap,
    resolve_target,
)
from repro.core.evaluator import satisfy
from repro.core.stratify import is_recursive_stratum, stratify
from repro.core.substitution import Substitution
from repro.core.terms import Const, Var
from repro.core.updates import build_object
from repro.obs.trace import NOOP_SPAN
from repro.objects.atom import Atom
from repro.objects.base import same_value
from repro.objects.merged import MergedTuple
from repro.objects.set import SetObject
from repro.objects.tuple import TupleObject

DELTA_ROOT = "__delta__"


class FixpointStats:
    """Instrumentation for one materialization run.

    The ``maintain_*`` counters accumulate across the incremental
    repairs (:func:`maintain_stratum`) applied to this materialization
    after updates: strata repaired in place, concrete delta facts
    seeded, facts over-deleted and re-derived by the DRed pass, and
    strata that had to fall back to a full rebuild.
    """

    __slots__ = ("rounds", "rule_firings", "derivations", "strategy",
                 "reused_strata", "maintained_strata", "maintain_seeded",
                 "maintain_overdeleted", "maintain_rederived",
                 "maintain_fallbacks")

    def __init__(self, strategy):
        self.strategy = strategy
        self.rounds = 0
        self.rule_firings = 0
        self.derivations = 0
        self.reused_strata = 0
        self.maintained_strata = 0
        self.maintain_seeded = 0
        self.maintain_overdeleted = 0
        self.maintain_rederived = 0
        self.maintain_fallbacks = 0

    def __repr__(self):
        rendered = (
            f"FixpointStats({self.strategy}, rounds={self.rounds}, "
            f"firings={self.rule_firings}, derivations={self.derivations}, "
            f"reused={self.reused_strata}"
        )
        if self.maintained_strata or self.maintain_fallbacks:
            rendered += (
                f", maintained={self.maintained_strata}, "
                f"overdeleted={self.maintain_overdeleted}, "
                f"rederived={self.maintain_rederived}, "
                f"fallbacks={self.maintain_fallbacks}"
            )
        return rendered + ")"


def materialize(analyzed_rules, universe, method="seminaive", context=None):
    """Materialize all derived views over ``universe``.

    Returns ``(overlay, stats)``: a TupleObject holding every derived
    fact (the base universe is untouched) and run statistics.
    """
    strata_overlays, stats = materialize_strata(
        analyzed_rules, universe, method=method, context=context
    )
    return combine_overlays(
        [overlay for _, _, overlay in strata_overlays]
    ), stats


def materialize_strata(analyzed_rules, universe, method="seminaive",
                       context=None, reuse=None):
    """Materialize per-stratum overlays, reusing clean cached ones.

    Returns ``([(key, stratum, overlay), ...], stats)`` in evaluation
    order. ``reuse`` maps a stratum key (tuple of rule identities) to a
    previously-computed overlay known to still be valid — the engine's
    selective re-materialization passes the overlays of strata whose
    inputs were not touched by the last update.
    """
    if method not in ("naive", "seminaive"):
        raise ValueError(f"unknown fixpoint method {method!r}")
    tracer = context.tracer if context is not None else None
    metrics = context.metrics if context is not None else None
    started = time.perf_counter() if metrics is not None else None
    stats = FixpointStats(method)
    overlays = []
    view_base = universe
    outer = (tracer.span("fixpoint.materialize", method=method)
             if tracer is not None else NOOP_SPAN)
    with outer:
        for index, stratum in enumerate(stratify(analyzed_rules)):
            key = tuple(id(analyzed) for analyzed in stratum)
            cached = reuse.get(key) if reuse else None
            span = (tracer.span("fixpoint.stratum", index=index,
                                rules=len(stratum))
                    if tracer is not None else NOOP_SPAN)
            with span:
                rounds = stats.rounds
                firings = stats.rule_firings
                derivations = stats.derivations
                if cached is not None:
                    overlay = cached
                    stats.reused_strata += 1
                    span.set("reused", True)
                else:
                    overlay = TupleObject()
                    if method == "seminaive":
                        _seminaive_stratum(stratum, view_base, overlay,
                                           stats, context)
                    else:
                        _naive_stratum(stratum, view_base, overlay, stats,
                                       context)
                    span.set("reused", False)
                    span.set("rounds", stats.rounds - rounds)
                    span.set("firings", stats.rule_firings - firings)
                    span.set("derivations", stats.derivations - derivations)
                if tracer is not None:
                    span.set("facts", count_overlay_facts(overlay))
            overlays.append((key, stratum, overlay))
            view_base = MergedTuple(view_base, overlay)
        outer.set("strata", len(overlays))
        outer.set("rounds", stats.rounds)
        outer.set("firings", stats.rule_firings)
        outer.set("derivations", stats.derivations)
        outer.set("reused_strata", stats.reused_strata)
    if metrics is not None:
        metrics.counter("fixpoint.runs").inc()
        metrics.counter("fixpoint.iterations").inc(stats.rounds)
        metrics.counter("fixpoint.rule_firings").inc(stats.rule_firings)
        metrics.counter("fixpoint.derivations").inc(stats.derivations)
        metrics.counter("fixpoint.reused_strata").inc(stats.reused_strata)
        metrics.histogram("fixpoint.materialize.ms").observe(
            (time.perf_counter() - started) * 1000.0
        )
    return overlays, stats


def combine_overlays(overlays):
    """Deep-merge overlay tuples into one (sets union, tuples recurse)."""
    combined = TupleObject()
    for overlay in overlays:
        _merge_into(combined, overlay)
    return combined


def _merge_into(target, source):
    for name in source.attr_names():
        incoming = source.get(name)
        if not target.has(name):
            target.set(name, incoming.copy())
            continue
        existing = target.get(name)
        if existing.is_tuple and incoming.is_tuple:
            _merge_into(existing, incoming)
        elif existing.is_set and incoming.is_set:
            # incoming and existing are distinct objects (source overlays
            # are never the combined target), so the view iteration is
            # safe while existing mutates.
            for element in incoming:
                existing.add(element.copy())
        else:
            target.set(name, incoming.copy())


def _naive_stratum(stratum, universe, overlay, stats, context):
    recursive = is_recursive_stratum(stratum)
    while True:
        stats.rounds += 1
        changes = 0
        view = MergedTuple(universe, overlay)
        for analyzed in stratum:
            stats.rule_firings += 1
            changes += derive_once(analyzed, view, overlay, context)
        stats.derivations += changes
        if changes == 0 or not recursive:
            break


def _seminaive_stratum(stratum, universe, overlay, stats, context):
    recursive = is_recursive_stratum(stratum)
    targets = [analyzed.target for analyzed in stratum]

    # Round 0: full evaluation, recording new facts into the delta.
    delta = TupleObject()
    stats.rounds += 1
    view = MergedTuple(universe, overlay)
    for analyzed in stratum:
        stats.rule_firings += 1
        stats.derivations += _derive_tracking_delta(
            analyzed, view, overlay, delta, context
        )
    if not recursive:
        return

    variants = [_delta_variants(analyzed, targets) for analyzed in stratum]

    while _has_facts(delta):
        stats.rounds += 1
        next_delta = TupleObject()
        delta_view = MergedTuple(
            MergedTuple(universe, overlay), TupleObject({DELTA_ROOT: delta})
        )
        full_view = MergedTuple(universe, overlay)
        for analyzed, rule_variants in zip(stratum, variants):
            if rule_variants is None:
                # Fallback: full re-evaluation for this rule.
                stats.rule_firings += 1
                stats.derivations += _derive_tracking_delta(
                    analyzed, full_view, overlay, next_delta, context
                )
                continue
            for variant_body in rule_variants:
                stats.rule_firings += 1
                for subst in satisfy(variant_body, delta_view, None, context):
                    changed = make_true(analyzed, subst, overlay)
                    if changed is not None:
                        stats.derivations += 1
                        make_true(analyzed, subst, next_delta)
        delta = next_delta


def _derive_tracking_delta(analyzed, view, overlay, delta, context):
    changes = 0
    for subst in satisfy(analyzed.body, view, None, context):
        if make_true(analyzed, subst, overlay) is not None:
            changes += 1
            make_true(analyzed, subst, delta)
    return changes


def _delta_variants(analyzed, stratum_targets):
    """Delta-rewritten bodies for a rule, or None to force full re-eval.

    One variant per top-level body conjunct that references a
    same-stratum target: that conjunct is redirected under the delta
    root. Returns None when the rule needs the fallback (merge
    semantics, or a same-stratum reference below the top level).
    """
    if analyzed.merge_on:
        return None

    conjuncts = ast.conjuncts_of(analyzed.body)
    recursive_positions = []
    for index, conjunct in enumerate(conjuncts):
        if not isinstance(conjunct, ast.AttrStep):
            continue
        if _references_targets(conjunct, stratum_targets):
            recursive_positions.append(index)

    if not recursive_positions:
        # References exist (the stratum is recursive) but none are
        # rewritable top-level conjuncts for this rule; check whether this
        # rule references the stratum at all.
        for pattern, _ in analyzed.references:
            for target in stratum_targets:
                if patterns_overlap(pattern, target):
                    return None
        return []  # rule is non-recursive: nothing to do after round 0

    variants = []
    for position in recursive_positions:
        redirected = list(conjuncts)
        redirected[position] = ast.AttrStep(
            Const(DELTA_ROOT), redirected[position]
        )
        variants.append(ast.TupleExpr(redirected))
    return variants


def _references_targets(conjunct, targets):
    for pattern, _ in body_references(ast.TupleExpr([conjunct])):
        for target in targets:
            if patterns_overlap(pattern, target):
                return True
    return False


def _has_facts(overlay):
    """Does the overlay contain any relation element or any relation?"""
    for name in overlay.attr_names():
        obj = overlay.get(name)
        if obj.is_set:
            if len(obj):
                return True
        elif obj.is_tuple:
            if _has_facts(obj):
                return True
        else:
            return True
    return False


def count_overlay_facts(overlay):
    """Total derived elements (for tests and reporting)."""
    total = 0
    for name in overlay.attr_names():
        obj = overlay.get(name)
        if obj.is_set:
            total += len(obj)
        elif obj.is_tuple:
            total += count_overlay_facts(obj)
    return total


# ---------------------------------------------------------------------------
# Incremental maintenance (delta-driven repair of a materialized stratum)
# ---------------------------------------------------------------------------
#
# After an update, the engine knows the concrete per-path insert/delete
# deltas (see repro.core.updates.UpdateDelta). Instead of discarding a
# dirty stratum's overlay, maintenance_plan() decides whether the
# stratum can be repaired in place, and maintain_stratum() repairs it:
#
# * deletions run delete-and-rederive (DRed): over-delete every overlay
#   fact with a derivation through a deleted input (evaluating against
#   the *old* view, reconstructed by merging the deleted facts back in),
#   then re-derive the over-deleted facts that still have a derivation
#   from the surviving view;
# * insertions seed the semi-naive delta loop: the update delta is the
#   round-0 delta, so rules only fire on substitutions that touch new
#   facts — the full round-0 evaluation of _seminaive_stratum never
#   happens, which is where the speedup comes from.
#
# The plan is conservative: any shape whose repair could diverge from a
# from-scratch rebuild (merge semantics, relation-only heads, negation
# over a changed relation, a conjunct spanning several relations, a
# same-stratum reference that cannot be redirected at the delta) forces
# the caller back to a full stratum rebuild.


def maintenance_plan(stratum, changed_patterns):
    """Delta-rewrite plan for repairing ``stratum``, or a fallback reason.

    ``changed_patterns`` are Const/Var term tuples covering every path
    whose contents changed (base updates plus the targets of already
    repaired upstream strata). Returns ``(variants, reason)``: on
    success ``variants`` aligns with the stratum — one list of
    delta-redirected bodies per rule (empty when the rule reads nothing
    that changed) — and ``reason`` is None; on refusal ``variants`` is
    None and ``reason`` names the conservative fallback condition.
    """
    targets = [analyzed.target for analyzed in stratum]
    patterns = list(changed_patterns) + targets
    variants = []
    for analyzed in stratum:
        if analyzed.merge_on:
            return None, "merge-rule"
        if analyzed.constructor is None:
            return None, "relation-rule"
        for pattern, positive in analyzed.references:
            if not positive and any(
                patterns_overlap(pattern, changed) for changed in patterns
            ):
                return None, "negation"
        for conjunct in ast.conjuncts_of(analyzed.body):
            if _conjunct_spans_relations(conjunct, patterns):
                return None, "multi-relation-conjunct"
        rule_variants = _delta_variants(analyzed, patterns)
        if rule_variants is None:
            return None, "unrewritable"
        variants.append(rule_variants)
    return variants, None


def _conjunct_spans_relations(conjunct, changed):
    """Does this conjunct read several distinct relations, one changed?

    Redirecting such a conjunct at the delta would require *all* its
    relations to appear there, missing derivations that pair a new fact
    with an old one — so the plan refuses it.
    """
    refs = [pattern for pattern, _ in body_references(ast.TupleExpr([conjunct]))]
    if not any(
        patterns_overlap(ref, pattern) for ref in refs for pattern in changed
    ):
        return False
    for ref in refs:
        for other in refs:
            if not patterns_overlap(ref[:2], other[:2]):
                return True
    return False


class MaintenanceAborted(Exception):
    """A repair bailed out mid-flight on a cost guard; the stratum's
    overlay is partially mutated and must be dropped (the caller treats
    this exactly like a planned fallback)."""

    def __init__(self, reason):
        super().__init__(reason)
        self.reason = reason


#: Over-deletion budget floor: a cascade this small is always repaired.
_OVERDELETE_MIN = 16
#: Over-deletion budget fraction of the stratum's overlay size. DRed's
#: re-derivation phase costs a body evaluation per over-deleted fact,
#: so once a cascade swallows a sizable share of the view, rebuilding
#: from scratch is cheaper than repairing.
_OVERDELETE_SHARE = 8


def maintain_stratum(stratum, variants, view_base, overlay, insert_delta,
                     delete_delta, stats, context):
    """Repair one stratum's overlay in place after an update.

    ``insert_delta``/``delete_delta`` are overlay-shaped universes of
    the concrete facts inserted into / deleted from the stratum's
    inputs (base relations and already repaired upstream strata);
    ``variants`` comes from :func:`maintenance_plan`. Returns
    ``(added, removed)`` — the net changes to this stratum's own
    overlay as ``{path: {value_key: element}}`` dicts, for seeding
    downstream strata and patching the combined overlay. Raises
    :class:`MaintenanceAborted` when the delete cascade exceeds the
    cost budget (the overlay is then partially mutated and unusable).
    """
    budget = max(_OVERDELETE_MIN,
                 count_overlay_facts(overlay) // _OVERDELETE_SHARE)
    removed = _maintain_overdelete(stratum, variants, view_base, overlay,
                                   delete_delta, stats, context, budget)
    _maintain_rederive(stratum, view_base, overlay, removed, stats, context)
    added = _maintain_insert(stratum, variants, view_base, overlay,
                             insert_delta, stats, context)
    # A fact deleted and re-added in the same repair is no net change.
    for names, elements in list(added.items()):
        lost = removed.get(names)
        if not lost:
            continue
        for key in list(elements):
            if lost.pop(key, None) is not None:
                del elements[key]
    # A from-scratch build never creates a relation it derives nothing
    # into — drop relations (and parent tuples) the repair left empty.
    for names in removed:
        prune_empty_path(overlay, names)
    added = {names: elements for names, elements in added.items() if elements}
    removed = {names: elements for names, elements in removed.items() if elements}
    return added, removed


def _maintain_overdelete(stratum, variants, view_base, overlay, delete_delta,
                         stats, context, budget):
    """DRed phase 1: remove every overlay fact with a derivation through
    a deleted input, transitively. Conservative — phase 2 restores the
    facts that still have an independent derivation. Aborts once the
    cascade exceeds ``budget`` facts — re-deriving that many would cost
    more than rebuilding the stratum."""
    removed = {}
    if not _has_facts(delete_delta):
        return removed
    cascade = 0
    deleted_all = TupleObject()
    _merge_into(deleted_all, delete_delta)
    delta = delete_delta
    while _has_facts(delta):
        # The *old* view: current base+overlay with the deleted facts
        # merged back in (a superset of the pre-update view, which keeps
        # the over-deletion conservative).
        old_view = MergedTuple(MergedTuple(view_base, overlay), deleted_all)
        delta_view = MergedTuple(old_view, TupleObject({DELTA_ROOT: delta}))
        next_delta = TupleObject()
        for analyzed, rule_variants in zip(stratum, variants):
            for variant_body in rule_variants:
                stats.rule_firings += 1
                for subst in satisfy(variant_body, delta_view, None, context):
                    names = tuple(resolve_target(analyzed.target, subst))
                    element = build_object(analyzed.constructor, subst)
                    relation = overlay_relation(overlay, names)
                    if relation is None or not relation.discard_value(element):
                        continue
                    stats.maintain_overdeleted += 1
                    cascade += 1
                    if cascade > budget:
                        raise MaintenanceAborted("delete-cascade")
                    removed.setdefault(names, {})[element.value_key()] = element
                    set_path_fact(next_delta, names, element)
                    set_path_fact(deleted_all, names, element)
        delta = next_delta
    return removed


def _maintain_rederive(stratum, view_base, overlay, removed, stats, context):
    """DRed phase 2: restore over-deleted facts that still have a
    derivation from the surviving view, to fixpoint (a restored fact can
    re-justify another)."""
    progress = True
    while progress and any(removed.values()):
        progress = False
        view = MergedTuple(view_base, overlay)
        for names, elements in removed.items():
            for key, element in list(elements.items()):
                if _rederivable(stratum, names, element, view, stats, context):
                    relation = ensure_relation(overlay, names)
                    relation.add(element)
                    del elements[key]
                    stats.maintain_rederived += 1
                    progress = True


def _rederivable(stratum, names, element, view, stats, context):
    """Does any rule of the stratum still derive exactly this fact?"""
    for analyzed in stratum:
        if analyzed.constructor is None or len(analyzed.target) != len(names):
            continue
        target_subst = _match_target_names(analyzed.target, names)
        if target_subst is None:
            continue
        for candidate in _constructor_candidates(
            analyzed.constructor, element, target_subst
        ):
            stats.rule_firings += 1
            for body_subst in satisfy(analyzed.body, view, candidate, context):
                built = build_object(analyzed.constructor, body_subst)
                if same_value(built, element):
                    return True
    return False


def _maintain_insert(stratum, variants, view_base, overlay, insert_delta,
                     stats, context):
    """Semi-naive insertion seeded with the update delta as round 0."""
    added = {}
    if not _has_facts(insert_delta):
        return added
    delta = insert_delta
    while _has_facts(delta):
        next_delta = TupleObject()
        delta_view = MergedTuple(
            MergedTuple(view_base, overlay), TupleObject({DELTA_ROOT: delta})
        )
        for analyzed, rule_variants in zip(stratum, variants):
            for variant_body in rule_variants:
                stats.rule_firings += 1
                for subst in satisfy(variant_body, delta_view, None, context):
                    names = tuple(resolve_target(analyzed.target, subst))
                    element = build_object(analyzed.constructor, subst)
                    relation = ensure_relation(overlay, names)
                    if not relation.add(element):
                        continue
                    stats.derivations += 1
                    added.setdefault(names, {})[element.value_key()] = element
                    set_path_fact(next_delta, names, element)
        delta = next_delta
    return added


def _match_target_names(target, names):
    """Unify a head target pattern against a ground name path."""
    subst = Substitution.empty()
    for term, name in zip(target, names):
        if isinstance(term, Const):
            if term.value != name:
                return None
        else:
            subst = subst.unify(term.name, Atom(name))
            if subst is None:
                return None
    return subst


def _constructor_candidates(expr, element, subst):
    """Substitutions under which ``expr`` could have built ``element``.

    A pruning pre-match for re-derivation: it binds what the element's
    structure determines and gives up (returning the unextended
    substitution) on shapes it cannot invert, e.g. arithmetic terms —
    the caller always verifies by rebuilding and comparing values.
    """
    if isinstance(expr, ast.Epsilon):
        return [subst] if element.is_atom and element.is_null else []
    if isinstance(expr, ast.AtomicExpr):
        if not element.is_atom:
            return []
        term = expr.term
        if isinstance(term, Var):
            extended = subst.unify(term.name, element.copy())
            return [extended] if extended is not None else []
        if isinstance(term, Const):
            return [subst] if same_value(Atom(term.value), element) else []
        return [subst]
    if isinstance(expr, ast.AttrStep):
        return _constructor_candidates(ast.TupleExpr([expr]), element, subst)
    if isinstance(expr, ast.TupleExpr):
        if not element.is_tuple:
            return []
        candidates = [subst]
        for item in ast.conjuncts_of(expr):
            if not isinstance(item, ast.AttrStep):
                return candidates
            next_candidates = []
            for current in candidates:
                next_candidates.extend(
                    _constructor_item_candidates(item, element, current)
                )
            if not next_candidates:
                return []
            candidates = next_candidates
        return candidates
    if isinstance(expr, ast.SetExpr):
        if not element.is_set:
            return []
        if isinstance(expr.inner, ast.Epsilon):
            return [subst] if len(element) == 0 else []
        if len(element) != 1:
            return []
        return _constructor_candidates(expr.inner, element.elements()[0], subst)
    return [subst]


def _constructor_item_candidates(item, element, subst):
    attr = item.attr
    if isinstance(attr, Const):
        if not element.has(attr.value):
            return []
        return _constructor_candidates(item.expr, element.get(attr.value), subst)
    out = []
    for name in element.attr_names():
        extended = subst.unify(attr.name, Atom(name))
        if extended is None:
            continue
        out.extend(_constructor_candidates(item.expr, element.get(name), extended))
    return out


# -- path/overlay plumbing shared with the engine ---------------------------


def paths_overlay(path_elements):
    """Build an overlay-shaped universe from ``{path: {key: element}}``."""
    overlay = TupleObject()
    for names, elements in path_elements.items():
        for element in elements.values():
            set_path_fact(overlay, names, element)
    return overlay


def set_path_fact(overlay, names, element):
    """Add a copy of ``element`` to the relation at ``names``."""
    ensure_relation(overlay, names).add(element.copy())


def ensure_relation(overlay, names):
    """Navigate to the set at ``names``, creating tuples/set en route."""
    parent = overlay
    for name in names[:-1]:
        if not parent.has(name):
            parent.set(name, TupleObject())
        parent = parent.get(name)
    leaf = names[-1]
    if not parent.has(leaf):
        parent.set(leaf, SetObject())
    return parent.get(leaf)


def overlay_relation(overlay, names):
    """The set at ``names``, or None when the path does not exist."""
    obj = overlay
    for name in names:
        if not obj.is_tuple or not obj.has(name):
            return None
        obj = obj.get(name)
    return obj if obj.is_set else None


def prune_empty_path(overlay, names):
    """Remove the relation at ``names`` if empty, and any parent tuples
    the removal leaves empty."""
    parents = []
    obj = overlay
    for name in names[:-1]:
        if not obj.is_tuple or not obj.has(name):
            return
        parents.append((obj, name))
        obj = obj.get(name)
    leaf = names[-1]
    if not obj.is_tuple or not obj.has(leaf):
        return
    relation = obj.get(leaf)
    if not relation.is_set or len(relation):
        return
    obj.remove(leaf)
    for parent, name in reversed(parents):
        child = parent.get(name)
        if child.is_tuple and not child.attr_names():
            parent.remove(name)
        else:
            break


def apply_path_deltas(overlay, added, removed):
    """Patch a combined overlay with per-path net changes (the cheap
    alternative to re-running :func:`combine_overlays`)."""
    for names, elements in removed.items():
        relation = overlay_relation(overlay, names)
        if relation is None:
            continue
        for element in elements.values():
            relation.discard_value(element)
        if not len(relation):
            prune_empty_path(overlay, names)
    for names, elements in added.items():
        relation = ensure_relation(overlay, names)
        for element in elements.values():
            relation.add(element.copy())
