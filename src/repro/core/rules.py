"""Rule (view definition) analysis and derivation (paper Section 6).

A rule ``head <- body`` defines derived facts: for each grounding
substitution σ satisfying the body on the universe, the object
``head σ`` is *made true* in the derived overlay. A rule whose head
contains a higher-order variable (e.g. ``.dbO.S(...)``) is a **higher
order view**: it defines a data-dependent number of relations.

This module provides:

* :func:`analyze_rule` — structural validation and extraction of the
  head *target pattern* (the attribute-term path down to the defined
  relation) and the constructor expression;
* :func:`body_references` — the (possibly higher-order) target patterns
  the body reads, each tagged positive or negative, used by
  stratification;
* :func:`make_true` — insert ``head σ`` into an overlay universe.

Make-true semantics. The paper defines making the head true recursively
(the full definition is in its companion memo [KLK90]); we implement:
navigate the head path, creating missing tuples/sets, and if no element
of the target set already satisfies the constructor, insert a freshly
built element. For views that *widen* tuples (chwab-style: one tuple per
date carrying one attribute per stock) insertion alone cannot merge
facts into a single tuple; a rule may therefore declare ``merge_on``
attributes — facts agreeing on those attributes extend the same element.
This reconstructs the paper's dbC customized view; the choice of merge
keys is the schema administrator's, exactly like the paper's
reconciliation choices.
"""

from __future__ import annotations

from repro.core import ast
from repro.core.evaluator import satisfy
from repro.core.safety import order_conjuncts
from repro.core.terms import Const, Var, term_name
from repro.core.updates import build_object
from repro.errors import SafetyError, SemanticError
from repro.objects.base import same_value
from repro.objects.set import SetObject
from repro.objects.tuple import TupleObject


class AnalyzedRule:
    """A validated rule with its extracted head structure."""

    __slots__ = ("rule", "target", "constructor", "merge_on", "references")

    def __init__(self, rule, target, constructor, merge_on, references):
        self.rule = rule
        self.target = target  # tuple of Const/Var terms (path to relation)
        self.constructor = constructor  # element constructor expr (or None)
        self.merge_on = merge_on  # tuple of attribute names, possibly empty
        self.references = references  # list of (pattern, positive: bool)

    @property
    def head(self):
        return self.rule.head

    @property
    def body(self):
        return self.rule.body

    @property
    def is_higher_order(self):
        return any(isinstance(term, Var) for term in self.target)

    def __repr__(self):
        return f"<AnalyzedRule {self.rule!r}>"


def analyze_rule(rule, merge_on=()):
    """Validate ``rule`` and extract its head target and constructor.

    Head requirements (Section 6): a *simple tuple expression* — a single
    chain of unsigned attribute steps ending in a set expression whose
    inner part is a simple constructor (only ``=`` atomics, no negation,
    no signs); every head variable must occur in the body.
    """
    head_conjuncts = ast.conjuncts_of(rule.head)
    if len(head_conjuncts) != 1:
        raise SemanticError("a rule head must be a single expression")
    target, constructor = _head_structure(head_conjuncts[0])
    _check_simple(constructor)

    head_vars = rule.head.variables()
    body_vars = rule.body.variables()
    missing = head_vars - body_vars
    if missing:
        raise SemanticError(
            "head variables must occur in the body: " + ", ".join(sorted(missing))
        )
    # The body must be safely evaluable from scratch.
    try:
        order_conjuncts(ast.conjuncts_of(rule.body), frozenset())
    except SafetyError as exc:
        raise SafetyError(
            f"unsafe rule body in {_describe_rule(rule)}: {exc}"
        ) from exc

    if merge_on:
        constructor_attrs = _constructor_attr_names(constructor)
        for key in merge_on:
            if constructor_attrs is not None and key not in constructor_attrs:
                raise SemanticError(
                    f"merge_on attribute {key!r} does not appear in the head"
                )

    references = body_references(rule.body)
    return AnalyzedRule(rule, target, constructor, tuple(merge_on), references)


def _describe_rule(rule):
    """``'head <- body' (at line:column)`` for error messages."""
    from repro.core.pretty import to_source

    rendered = f"rule '{to_source(rule)}'"
    if rule.loc is not None:
        rendered += f" (at {ast.format_loc(rule.loc)})"
    return rendered


def _head_structure(expr):
    """Walk the head chain; return (target path terms, constructor)."""
    path = []
    current = expr
    while isinstance(current, ast.AttrStep):
        if current.sign is not None:
            raise SemanticError("rule heads cannot carry update signs")
        path.append(current.attr)
        current = current.expr
    if not path:
        raise SemanticError("a rule head must start with an attribute step")
    if isinstance(current, ast.SetExpr):
        if current.sign is not None:
            raise SemanticError("rule heads cannot carry update signs")
        inner = current.inner
        constructor = None if isinstance(inner, ast.Epsilon) else inner
        return tuple(path), constructor
    if isinstance(current, ast.Epsilon):
        # ``.db.rel`` with no parentheses: defines an (empty) relation.
        return tuple(path), None
    raise SemanticError(
        "a rule head must end in a set expression naming the derived relation"
    )


def _check_simple(expr):
    """Constructors must be simple: '=' atomics only, no negation/signs."""
    if expr is None:
        return
    for node in expr.walk():
        if isinstance(node, ast.NegExpr):
            raise SemanticError("rule heads cannot contain negation")
        if isinstance(node, ast.Constraint):
            raise SemanticError("rule heads cannot contain constraints")
        if isinstance(node, ast.AtomicExpr) and node.op != "=":
            raise SemanticError("rule heads use '=' comparisons only")
        if node.has_update():
            raise SemanticError("rule heads cannot carry update signs")


def _constructor_attr_names(constructor):
    """Constant attribute names of a constructor's top level, or None if
    any attribute is variable (higher-order element shape)."""
    if constructor is None:
        return ()
    names = []
    for item in ast.conjuncts_of(constructor):
        if not isinstance(item, ast.AttrStep):
            return None
        if isinstance(item.attr, Var):
            return None
        names.append(item.attr.value)
    return tuple(names)


# ---------------------------------------------------------------------------
# Body references (for stratification)
# ---------------------------------------------------------------------------


def body_references(body):
    """Collect the universe paths the body reads.

    Returns a list of ``(pattern, positive)`` pairs, where a pattern is a
    tuple of Const/Var terms descending from the universe. Collection
    stops at set expressions (their contents address data, not catalog
    structure). Patterns under negation are tagged negative.
    """
    references = []
    for conjunct in ast.conjuncts_of(body):
        _collect_refs(conjunct, (), True, references)
    return references


def _collect_refs(expr, prefix, positive, out):
    if isinstance(expr, ast.AttrStep):
        pattern = prefix + (expr.attr,)
        inner = expr.expr
        while isinstance(inner, ast.NegExpr):
            positive = not positive  # e.g. ``.dbI.p~( ... )``
            inner = inner.inner
        if isinstance(inner, ast.AttrStep):
            _collect_refs(inner, pattern, positive, out)
        elif isinstance(inner, ast.TupleExpr):
            recorded = False
            for conjunct in inner.conjuncts:
                if isinstance(conjunct, (ast.AttrStep, ast.NegExpr)):
                    _collect_refs(conjunct, pattern, positive, out)
                    recorded = True
            if not recorded:
                out.append((pattern, positive))
        else:
            out.append((pattern, positive))
        return
    if isinstance(expr, ast.NegExpr):
        _collect_refs(expr.inner, prefix, False, out)
        return
    if isinstance(expr, ast.TupleExpr):
        for conjunct in expr.conjuncts:
            _collect_refs(conjunct, prefix, positive, out)
        return
    # Atomic / constraint / epsilon conjuncts reference no catalog path,
    # but a bare expression at a prefix still reads that prefix.
    if prefix:
        out.append((prefix, positive))


def patterns_overlap(reference, target):
    """Could a body reference pattern read a head target pattern?

    Conservative positional unification on the shared prefix: a variable
    matches anything; constants must be equal. A shorter pattern matches
    any extension of itself (reading ``.dbO`` reads every dbO relation).
    """
    for ref_term, target_term in zip(reference, target):
        if isinstance(ref_term, Const) and isinstance(target_term, Const):
            if ref_term.value != target_term.value:
                return False
    return True


# ---------------------------------------------------------------------------
# Derivation
# ---------------------------------------------------------------------------


def resolve_target(target, subst):
    """Ground a head target pattern to a name path under σ."""
    names = []
    for term in target:
        name = term_name(term, subst)
        if name is None or not isinstance(name, str):
            raise SemanticError(
                f"head target variable {term!r} is unbound or bound to a "
                "non-name object"
            )
        names.append(name)
    return names


def make_true(analyzed, subst, overlay):
    """Insert ``head σ`` into the overlay universe.

    Returns the inserted (or extended) element when the overlay changed,
    else None. Creating a previously-missing relation counts as a change
    even when no element is inserted (higher-order views make the *set of
    relations* data-dependent).
    """
    names = resolve_target(analyzed.target, subst)
    parent = overlay
    created = False
    for name in names[:-1]:
        if not parent.has(name):
            parent.set(name, TupleObject())
            created = True
        parent = parent.get(name)
        if not parent.is_tuple:
            raise SemanticError(
                f"derived path {'.'.join(names)} collides with a "
                f"{parent.category} object"
            )
    leaf = names[-1]
    if not parent.has(leaf):
        parent.set(leaf, SetObject())
        created = True
    relation = parent.get(leaf)
    if not relation.is_set:
        raise SemanticError(
            f"derived relation {'.'.join(names)} collides with a "
            f"{relation.category} object"
        )

    if analyzed.constructor is None:
        return relation if created else None

    element = build_object(analyzed.constructor, subst)

    if analyzed.merge_on:
        merged = _merge_element(relation, element, analyzed.merge_on)
        if merged is not None:
            return merged
        return element if created else None

    if relation.add(element):
        return element
    return relation if created else None


def _merge_element(relation, element, merge_on):
    """Fold ``element`` into an existing element sharing the merge keys.

    Returns the changed element, or None when nothing changed. Elements
    lacking one of the merge attributes never merge.
    """
    if not element.is_tuple:
        relation.add(element)
        return element

    keys = []
    for key in merge_on:
        if not element.has(key):
            return element if relation.add(element) else None
        keys.append((key, element.get(key)))

    for existing in relation.elements():
        if not existing.is_tuple:
            continue
        if all(
            existing.has(key) and same_value(existing.get(key), value)
            for key, value in keys
        ):
            changed = False
            for name in element.attr_names():
                obj = element.get(name)
                if not existing.has(name) or not same_value(existing.get(name), obj):
                    existing.set(name, obj)
                    changed = True
            if changed:
                relation.refresh(existing)
                return existing
            return None
    return element if relation.add(element) else None


def derive_once(analyzed, universe_view, overlay, context=None):
    """Apply one rule exhaustively against ``universe_view``.

    Returns the number of changes made to the overlay.
    """
    changes = 0
    for subst in satisfy(analyzed.body, universe_view, None, context):
        if make_true(analyzed, subst, overlay) is not None:
            changes += 1
    return changes
