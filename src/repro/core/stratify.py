"""Stratification of rule programs (paper Section 6).

"This requires the definition of the view to be stratified." We build
the rule dependency graph at the granularity of head target patterns:
rule R depends on rule S when some body reference of R could read S's
head target (conservative pattern overlap — higher-order variables
match anything). Negated references create negative edges.

The strongly connected components of the graph, in reverse topological
order, are the evaluation strata; a negative edge inside a component
means negation through recursion, which is rejected with
:class:`StratificationError`.
"""

from __future__ import annotations

from repro.core.ast import format_loc
from repro.core.rules import patterns_overlap
from repro.core.terms import Const
from repro.errors import StratificationError


def _functor(pattern):
    """The ground ``(db, rel)`` head of a pattern, or None if the first
    two positions are not both constants."""
    if (
        len(pattern) >= 2
        and isinstance(pattern[0], Const)
        and isinstance(pattern[1], Const)
    ):
        return (pattern[0].value, pattern[1].value)
    return None


def dependency_edges(analyzed_rules):
    """Yield ``(from_index, to_index, positive)`` rule dependencies.

    Writers are indexed by their ground head functor ``(db, rel)``, so a
    ground reference probes one bucket instead of overlap-testing every
    rule (the full O(rules²) sweep is kept only for higher-order heads
    and higher-order references, which can match anything).
    """
    ground_writers = {}  # (db, rel) -> [rule index]
    open_writers = []  # higher-order or short heads: match conservatively
    for index, writer in enumerate(analyzed_rules):
        functor = _functor(writer.target)
        if functor is None:
            open_writers.append(index)
        else:
            ground_writers.setdefault(functor, []).append(index)

    all_indices = range(len(analyzed_rules))
    for from_index, reader in enumerate(analyzed_rules):
        for pattern, positive in reader.references:
            functor = _functor(pattern)
            if functor is None:
                candidates = all_indices
            else:
                candidates = ground_writers.get(functor, ())
                if open_writers:
                    candidates = list(candidates) + open_writers
            for to_index in candidates:
                if patterns_overlap(pattern, analyzed_rules[to_index].target):
                    yield (from_index, to_index, positive)


def stratify(analyzed_rules):
    """Partition rules into evaluation strata.

    Returns a list of lists of AnalyzedRule; every rule's (positive or
    negative) dependencies live in the same or an earlier stratum, and
    negative dependencies live strictly earlier.
    """
    count = len(analyzed_rules)
    positive_edges = [set() for _ in range(count)]
    negative_edges = [set() for _ in range(count)]
    for from_index, to_index, positive in dependency_edges(analyzed_rules):
        if positive:
            positive_edges[from_index].add(to_index)
        else:
            negative_edges[from_index].add(to_index)

    components = _tarjan_scc(count, positive_edges, negative_edges)
    component_of = {}
    for component_index, members in enumerate(components):
        for member in members:
            component_of[member] = component_index

    # Negative edge within a component => not stratifiable.
    for from_index in range(count):
        for to_index in negative_edges[from_index]:
            if component_of[from_index] == component_of[to_index]:
                raise _negative_cycle_error(
                    analyzed_rules,
                    from_index,
                    to_index,
                    components[component_of[from_index]],
                    positive_edges,
                    negative_edges,
                )

    # Order components topologically (dependencies first) and merge
    # consecutive components when no negative edge separates them — fewer
    # fixpoint rounds with identical semantics.
    order = _component_order(components, component_of, positive_edges, negative_edges)
    strata = []
    for component_index in order:
        strata.append([analyzed_rules[member] for member in components[component_index]])
    return strata


def _rule_label(analyzed):
    """Pretty-printed rule source plus its position, for diagnostics."""
    from repro.core.pretty import to_source

    label = f"'{to_source(analyzed.rule)}'"
    if analyzed.rule.loc is not None:
        label += f" (at {format_loc(analyzed.rule.loc)})"
    return label


def _negative_cycle_error(analyzed_rules, from_index, to_index, members,
                          positive_edges, negative_edges):
    """Build a StratificationError with a human-readable cycle trace.

    The negative edge reads ``from -> to``; the trace walks dependency
    edges from ``to`` back to ``from`` inside the offending component,
    so the message shows the full negation-through-recursion loop. The
    rule cycle is attached to the exception as ``.cycle``.
    """
    member_set = set(members)
    parents = {to_index: None}
    frontier = [to_index]
    while frontier and from_index not in parents:
        node = frontier.pop(0)
        for successor in sorted(positive_edges[node] | negative_edges[node]):
            if successor in member_set and successor not in parents:
                parents[successor] = node
                frontier.append(successor)

    path = []  # to_index ... from_index along dependency edges
    node = from_index if from_index in parents else to_index
    while node is not None:
        path.append(node)
        node = parents[node]
    path.reverse()

    trace = [from_index] + path
    lines = [
        "negation through recursion: "
        f"{_rule_label(analyzed_rules[from_index])} negatively reads the "
        "target of a rule that (transitively) depends back on it; cycle:"
    ]
    lines.append(f"  {_rule_label(analyzed_rules[trace[0]])}")
    for step_index, member in enumerate(trace[1:]):
        arrow = "--~-->" if step_index == 0 else "----->"
        lines.append(f"  {arrow} {_rule_label(analyzed_rules[member])}")
    if trace[-1] != from_index:
        lines.append(f"  -----> {_rule_label(analyzed_rules[from_index])}")

    error = StratificationError("\n".join(lines))
    error.cycle = [analyzed_rules[index] for index in trace]
    return error


def _tarjan_scc(count, positive_edges, negative_edges):
    """Tarjan's SCC over the union graph; iterative to avoid deep stacks."""
    graph = [positive_edges[i] | negative_edges[i] for i in range(count)]
    index_counter = [0]
    indices = [None] * count
    lowlinks = [0] * count
    on_stack = [False] * count
    stack = []
    components = []

    for root in range(count):
        if indices[root] is not None:
            continue
        work = [(root, iter(sorted(graph[root])))]
        indices[root] = lowlinks[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, edge_iter = work[-1]
            advanced = False
            for successor in edge_iter:
                if indices[successor] is None:
                    indices[successor] = lowlinks[successor] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(successor)
                    on_stack[successor] = True
                    work.append((successor, iter(sorted(graph[successor]))))
                    advanced = True
                    break
                if on_stack[successor]:
                    lowlinks[node] = min(lowlinks[node], indices[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indices[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))
    return components


def _component_order(components, component_of, positive_edges, negative_edges):
    """Topological order of components (dependencies before dependents)."""
    count = len(components)
    successors = [set() for _ in range(count)]
    indegree = [0] * count
    for from_index in range(len(component_of)):
        for to_index in positive_edges[from_index] | negative_edges[from_index]:
            from_component = component_of[from_index]
            to_component = component_of[to_index]
            if from_component != to_component and (
                from_component not in successors[to_component]
            ):
                successors[to_component].add(from_component)
                indegree[from_component] += 1

    ready = sorted(i for i in range(count) if indegree[i] == 0)
    order = []
    while ready:
        component = ready.pop(0)
        order.append(component)
        for dependent in sorted(successors[component]):
            indegree[dependent] -= 1
            if indegree[dependent] == 0:
                ready.append(dependent)
        ready.sort()
    if len(order) != count:
        raise StratificationError("dependency cycle detection failed")
    return order


def is_recursive_stratum(stratum, analyzed_rules=None):
    """Does any rule in the stratum read a target defined in the stratum?"""
    for reader in stratum:
        for pattern, _ in reader.references:
            for writer in stratum:
                if patterns_overlap(pattern, writer.target):
                    return True
    return False
