"""Substitutions (paper Section 4.2).

A substitution is a finite mapping from variable names to objects, "a
mapping on variables that is the identity almost everywhere". The
evaluator extends substitutions one binding at a time while backtracking,
so :class:`Substitution` is a persistent (immutable) structure: extension
returns a new substitution sharing its parent, making extension O(1) and
lookup O(depth). Binding chains stay short (a handful of variables per
query), so the walk is cheap in practice.
"""

from __future__ import annotations

from repro.objects.base import IdlObject, same_value

EMPTY = None  # set below, after the class definition


class Substitution:
    """An immutable variable -> IdlObject mapping."""

    __slots__ = ("_var", "_value", "_parent", "_size")

    def __init__(self, var=None, value=None, parent=None):
        self._var = var
        self._value = value
        self._parent = parent
        self._size = (parent._size + 1) if parent is not None else (1 if var else 0)

    @classmethod
    def empty(cls):
        return _EMPTY

    @classmethod
    def of(cls, bindings):
        """Build a substitution from a ``{name: IdlObject}`` dict."""
        subst = _EMPTY
        for name, obj in bindings.items():
            subst = subst.bind(name, obj)
        return subst

    # -- queries ------------------------------------------------------------

    def lookup(self, name):
        """The binding of variable ``name``, or None if unbound."""
        node = self
        while node is not None and node._var is not None:
            if node._var == name:
                return node._value
            node = node._parent
        return None

    def binds(self, name):
        return self.lookup(name) is not None

    def domain(self):
        """The set of bound variable names."""
        names = set()
        node = self
        while node is not None and node._var is not None:
            names.add(node._var)
            node = node._parent
        return names

    def as_dict(self):
        """Materialize to a plain dict (innermost binding wins)."""
        out = {}
        node = self
        while node is not None and node._var is not None:
            out.setdefault(node._var, node._value)
            node = node._parent
        return out

    def __len__(self):
        return len(self.domain())

    # -- extension ------------------------------------------------------------

    def bind(self, name, obj):
        """Extend with ``name -> obj``; rebinding to an equal value is a
        no-op, rebinding to a different value raises (the evaluator must
        check-and-compare instead)."""
        if not isinstance(obj, IdlObject):
            raise TypeError(f"bindings are IdlObjects, got {type(obj).__name__}")
        existing = self.lookup(name)
        if existing is not None:
            if same_value(existing, obj):
                return self
            raise ValueError(f"variable {name} already bound to a different value")
        return Substitution(name, obj, self)

    def unify(self, name, obj):
        """Bind ``name`` to ``obj`` or check consistency with an existing
        binding. Returns the (possibly extended) substitution, or None if
        inconsistent."""
        existing = self.lookup(name)
        if existing is not None:
            return self if same_value(existing, obj) else None
        return Substitution(name, obj, self)

    # -- misc ------------------------------------------------------------

    def restrict(self, names):
        """A new substitution keeping only the given variable names."""
        kept = {k: v for k, v in self.as_dict().items() if k in names}
        return Substitution.of(kept)

    def signature(self, names=None):
        """A hashable key of the bindings (for answer deduplication)."""
        bindings = self.as_dict()
        if names is not None:
            bindings = {k: v for k, v in bindings.items() if k in names}
        return frozenset((name, obj.value_key()) for name, obj in bindings.items())

    def __eq__(self, other):
        if not isinstance(other, Substitution):
            return NotImplemented
        return self.signature() == other.signature()

    def __hash__(self):
        return hash(self.signature())

    def __repr__(self):
        inner = ", ".join(
            f"{name}/{obj!r}" for name, obj in sorted(self.as_dict().items())
        )
        return f"{{{inner}}}"


_EMPTY = Substitution()
EMPTY = _EMPTY
