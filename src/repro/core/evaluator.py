"""Query expression evaluation (paper Sections 4.2 and 4.3).

The central routine, :func:`satisfy`, lazily enumerates the grounding
substitutions under which an object satisfies an expression:

* an atomic expression compares an atomic object against a term
  (binding its variable on ``=``; the null atom fails everything);
* a tuple item ``.A exp`` descends into attribute ``A`` — when ``A`` is
  an unbound *higher-order variable* it ranges over the attribute names
  of the tuple (Section 4.3), binding the variable to the *name*, which
  is how metadata joins with data;
* a set expression succeeds on any element of the set;
* a conjunction threads one substitution through its conjuncts, after
  safety reordering (see :mod:`repro.core.safety`);
* a negation succeeds iff no satisfying extension exists, and binds
  nothing.

The answer to a query is the set of grounding substitutions satisfying
it (deduplicated by binding signature); a variable-free query evaluates
to a boolean.
"""

from __future__ import annotations

from repro.core import ast
from repro.core.safety import order_conjuncts
from repro.core.substitution import Substitution
from repro.core.terms import NOT_A_NAME, Const, Var, evaluate_term, term_name
from repro.errors import EvaluationError
from repro.objects.atom import Atom, compare_values
from repro.objects.base import same_value
from repro.objects.set import SetObject

#: Bound on the per-context caches (safety orderings and probe plans).
#: Long-lived engines and federations evaluate an unbounded stream of
#: distinct (expression, domain) pairs — delta-rewritten rule variants
#: are freshly allocated every materialization — so both caches evict
#: their least-recently-used entry past this size.
ORDER_CACHE_LIMIT = 1024
PROBE_CACHE_LIMIT = 1024


class EvalContext:
    """Evaluation options and per-evaluation caches.

    ``reorder``     — apply safety goal reordering (default True; the B3
                      ablation turns it off for already-ordered programs).
    ``use_indexes`` — probe per-set hash indexes when a set expression
                      carries a ground ``=`` selection on a known
                      attribute (default True; the B13 ablation turns it
                      off to measure the scan baseline).
    ``trace``       — optional callable receiving (expr, obj, subst) on
                      every satisfaction attempt; used by the debug tools.
    ``profile``     — collect node-visit counters into ``self.counters``
                      (off by default: it costs in the hot path). The
                      engine's observed query path turns it on and folds
                      the counters into the ``engine.evaluate`` span, so
                      they reach callers on the result objects.
    ``tracer``      — optional :class:`repro.obs.trace.Tracer`; the
                      fixpoint hangs its per-stratum spans off it. None
                      (the default) keeps the hot path branch-free.
    ``metrics``     — optional :class:`repro.obs.metrics.MetricsRegistry`
                      receiving coarse counters (reorderings computed,
                      index builds/hits/misses/fallbacks, cache
                      evictions, fixpoint totals). Guarded by
                      ``is not None`` everywhere it is touched.
    """

    __slots__ = ("reorder", "use_indexes", "trace", "counters", "tracer",
                 "metrics", "_order_cache", "_probe_cache")

    def __init__(self, reorder=True, trace=None, profile=False, tracer=None,
                 metrics=None, use_indexes=True):
        self.reorder = reorder
        self.use_indexes = use_indexes
        self.trace = trace
        self.counters = {} if profile else None
        self.tracer = tracer
        self.metrics = metrics
        self._order_cache = {}
        self._probe_cache = {}

    def count(self, kind):
        if self.counters is not None:
            self.counters[kind] = self.counters.get(kind, 0) + 1

    def ordered(self, expr, domain):
        """Cached safety ordering of a TupleExpr for a binding domain.

        Keyed by object identity for speed, but the expression itself is
        pinned in the cache entry — otherwise a garbage-collected
        expression's id could be reused by a different one and serve it a
        stale ordering. The cache is LRU-bounded at
        :data:`ORDER_CACHE_LIMIT` entries (pop-and-reinsert marks
        recency) so long-lived contexts cannot grow without limit.
        """
        if not self.reorder:
            return expr.conjuncts
        cache = self._order_cache
        key = (id(expr), frozenset(domain))
        cached = cache.pop(key, None)
        if cached is not None and cached[0] is expr:
            cache[key] = cached
            return cached[1]
        ordering = tuple(order_conjuncts(list(expr.conjuncts), domain))
        cache[key] = (expr, ordering)
        if self.metrics is not None:
            self.metrics.counter("evaluator.reorder.applied").inc()
        if len(cache) > ORDER_CACHE_LIMIT:
            cache.pop(next(iter(cache)))
            if self.metrics is not None:
                self.metrics.counter("evaluator.order_cache.evictions").inc()
        return ordering

    def probe_plans(self, expr):
        """Cached pushdown analysis of a SetExpr (see
        :func:`_analyze_probe_plans`); LRU-bounded like the order cache."""
        cache = self._probe_cache
        key = id(expr)
        cached = cache.pop(key, None)
        if cached is not None and cached[0] is expr:
            cache[key] = cached
            return cached[1]
        plans = _analyze_probe_plans(expr.inner)
        cache[key] = (expr, plans)
        if len(cache) > PROBE_CACHE_LIMIT:
            cache.pop(next(iter(cache)))
            if self.metrics is not None:
                self.metrics.counter("evaluator.probe_cache.evictions").inc()
        return plans


_DEFAULT_CONTEXT = EvalContext()


def satisfy(expr, obj, subst=None, context=None):
    """Yield every extension of ``subst`` under which ``obj`` satisfies
    ``expr``. Substitutions are persistent; callers may consume lazily."""
    if subst is None:
        subst = Substitution.empty()
    if context is None:
        context = _DEFAULT_CONTEXT
    if expr.has_update():
        raise EvaluationError(
            "update expression evaluated in a query context; use the "
            "update evaluator (repro.core.updates)"
        )
    return _satisfy(expr, obj, subst, context)


def _satisfy(expr, obj, subst, context):
    if context.trace is not None:
        context.trace(expr, obj, subst)
    if context.counters is not None:
        context.count("visits")
        context.count(type(expr).__name__)

    if isinstance(expr, ast.Epsilon):
        yield subst
        return

    if isinstance(expr, ast.AtomicExpr):
        result = _satisfy_atomic(expr, obj, subst)
        if result is not None:
            yield result
        return

    if isinstance(expr, ast.AttrStep):
        if not obj.is_tuple:
            return
        name = term_name(expr.attr, subst)
        if name is NOT_A_NAME:
            return  # bound to a non-name: the step matches nothing
        if name is not None:
            if obj.has(name):
                for extended in _satisfy(expr.expr, obj.get(name), subst, context):
                    yield extended
            return
        # Higher-order quantification: the variable ranges over the
        # attribute names of this tuple.
        var = expr.attr.name
        for attr_name in obj.attr_names():
            bound = subst.bind(var, Atom(attr_name))
            for extended in _satisfy(expr.expr, obj.get(attr_name), bound, context):
                yield extended
        return

    if isinstance(expr, ast.SetExpr):
        if not obj.is_set:
            return
        if context.use_indexes:
            candidates = _index_candidates(expr, obj, subst, context)
            if candidates is not None:
                for element in candidates:
                    for extended in _satisfy(expr.inner, element, subst, context):
                        yield extended
                return
        # Full scan over a snapshot: elements() copies, so an update
        # request mutating this set while an outer query generator is
        # suspended keeps seeing the state at scan start.
        for element in obj.elements():
            for extended in _satisfy(expr.inner, element, subst, context):
                yield extended
        return

    if isinstance(expr, ast.TupleExpr):
        conjuncts = context.ordered(expr, subst.domain())
        for extended in _satisfy_conjunction(conjuncts, 0, obj, subst, context):
            yield extended
        return

    if isinstance(expr, ast.Constraint):
        result = _satisfy_constraint(expr, subst)
        if result is not None:
            yield result
        return

    if isinstance(expr, ast.NegExpr):
        for _ in _satisfy(expr.inner, obj, subst, context):
            return  # a witness exists: the negation fails
        yield subst
        return

    raise EvaluationError(f"cannot evaluate {type(expr).__name__}")


def _satisfy_conjunction(conjuncts, index, obj, subst, context):
    if index == len(conjuncts):
        yield subst
        return
    for extended in _satisfy(conjuncts[index], obj, subst, context):
        for final in _satisfy_conjunction(conjuncts, index + 1, obj, extended, context):
            yield final


def _satisfy_atomic(expr, obj, subst):
    """Return the (possibly extended) substitution, or None."""
    term = expr.term
    if expr.op == "=" and isinstance(term, Var):
        existing = subst.lookup(term.name)
        if existing is not None:
            # Null fails even self-equality for atoms (Section 5.2).
            if obj.is_atom and obj.is_null:
                return None
            return subst if same_value(existing, obj) else None
        if obj.is_atom and obj.is_null:
            return None
        # The aggregate-variable extension: X may bind a tuple or set.
        return subst.bind(term.name, obj)

    value_obj = evaluate_term(term, subst)
    if not obj.is_atom:
        if expr.op == "=":
            return subst if same_value(obj, value_obj) else None
        if expr.op == "!=":
            if value_obj.is_atom and value_obj.is_null:
                return None
            return None if same_value(obj, value_obj) else subst
        return None
    if not value_obj.is_atom:
        if expr.op == "=":
            return None
        if expr.op == "!=":
            return subst if not obj.is_null else None
        return None
    if compare_values(obj.value, expr.op, value_obj.value):
        return subst
    return None


def _satisfy_constraint(expr, subst):
    """Evaluate a standalone term comparison against the substitution."""
    left_unbound = any(not subst.binds(name) for name in expr.left.variables())
    right_unbound = any(not subst.binds(name) for name in expr.right.variables())
    if expr.op == "=" and left_unbound != right_unbound:
        # One side is ground: with '=', bind the other side's variable.
        ground_term, open_term = (
            (expr.right, expr.left) if left_unbound else (expr.left, expr.right)
        )
        if isinstance(open_term, Var):
            value = evaluate_term(ground_term, subst)
            return subst.unify(open_term.name, value)
        return None  # cannot solve arithmetic for its variable
    left = evaluate_term(expr.left, subst)
    right = evaluate_term(expr.right, subst)
    if not left.is_atom or not right.is_atom:
        if expr.op == "=":
            return subst if same_value(left, right) else None
        if expr.op == "!=":
            return None if same_value(left, right) else subst
        return None
    if compare_values(left.value, expr.op, right.value):
        return subst
    return None


# ---------------------------------------------------------------------------
# Selection pushdown (per-set hash indexes)
# ---------------------------------------------------------------------------

# (profile counter key, metrics counter name) pairs, precomputed so the
# hot path never concatenates strings.
_IDX_BUILDS = ("index.builds", "evaluator.index.builds")
_IDX_HITS = ("index.hits", "evaluator.index.hits")
_IDX_MISSES = ("index.misses", "evaluator.index.misses")
_IDX_FALLBACKS = ("index.fallbacks", "evaluator.index.fallbacks")


def _count_index(context, pair):
    if context.counters is not None:
        context.count(pair[0])
    if context.metrics is not None:
        context.metrics.counter(pair[1]).inc()


def _analyze_probe_plans(inner):
    """The static half of pushdown: which conjuncts of a set expression's
    inner expression could drive an index probe?

    A conjunct qualifies when it is an unsigned attribute step whose
    subexpression is an unsigned atomic ``=`` comparison — the shape
    ``.attr = term``. The attribute may be a string constant or a
    variable (usable at probe time only once bound to a name — the
    "already-bound higher-order attribute" case); the compared term may
    be a constant (its bucket key is precomputed here) or a variable
    (ground-checked at probe time). Everything else — negation,
    inequalities, arithmetic terms, nested patterns, higher-order
    variables still unbound at probe time — falls back to the scan.

    Returns a tuple of ``(attr_term, attr_name, value_term, const_key)``
    plans; ``attr_name``/``const_key`` are the precomputed constant
    halves (None when runtime resolution is needed).
    """
    if isinstance(inner, ast.TupleExpr):
        conjuncts = inner.conjuncts
    else:
        conjuncts = (inner,)
    plans = []
    for conjunct in conjuncts:
        if not isinstance(conjunct, ast.AttrStep) or conjunct.sign is not None:
            continue
        attr = conjunct.attr
        if isinstance(attr, Const):
            if not isinstance(attr.value, str):
                continue  # the scan path raises the proper error
            attr_name = attr.value
        else:
            attr_name = None  # variable: resolve against the substitution
        comparison = conjunct.expr
        if (
            not isinstance(comparison, ast.AtomicExpr)
            or comparison.op != "="
            or comparison.sign is not None
        ):
            continue
        term = comparison.term
        if isinstance(term, Const):
            const_key = Atom(term.value).value_key()
            plans.append((attr, attr_name, None, const_key))
        elif isinstance(term, Var):
            plans.append((attr, attr_name, term, None))
    return tuple(plans)


def _index_candidates(expr, obj, subst, context):
    """Resolve a set-expression probe, or None to fall back to the scan.

    Tries each cached plan in order; the first one whose attribute name
    and compared value are ground under ``subst`` (and atomic) probes the
    set's hash index and returns the matching bucket plus the residual
    of unclassifiable elements. The index is a pure pre-filter — the
    caller still evaluates the inner expression against every candidate
    — so a probe can only drop elements that provably fail the ``=``
    selection.
    """
    if not isinstance(obj, SetObject):
        _count_index(context, _IDX_FALLBACKS)
        return None
    plans = context.probe_plans(expr)
    if not plans:
        _count_index(context, _IDX_FALLBACKS)
        return None
    for attr_term, attr_name, value_term, const_key in plans:
        if attr_name is None:
            bound = subst.lookup(attr_term.name)
            if bound is None or not bound.is_atom or not isinstance(bound.value, str):
                continue  # unbound or non-name: not usable as a probe
            name = bound.value
        else:
            name = attr_name
        if const_key is None:
            value = subst.lookup(value_term.name)
            if value is None or not value.is_atom:
                continue  # unbound or non-atomic comparison: no pushdown
            key = value.value_key()
        else:
            key = const_key
        index = obj.peek_index(name)
        if index is None:
            index = obj.index_on(name)
            _count_index(context, _IDX_MISSES)
            _count_index(context, _IDX_BUILDS)
        else:
            _count_index(context, _IDX_HITS)
        return index.candidates(key)
    _count_index(context, _IDX_FALLBACKS)
    return None


# ---------------------------------------------------------------------------
# Query answering
# ---------------------------------------------------------------------------


def answers(query, universe, bindings=None, context=None):
    """All answers to a query against ``universe``.

    Returns a deduplicated list of substitutions restricted to the
    query's variables. ``bindings`` pre-binds parameters (a
    ``{name: IdlObject}`` dict or a Substitution).
    """
    expr = query.expr if isinstance(query, ast.Query) else query
    subst = _as_substitution(bindings)
    names = expr.variables()
    seen = set()
    results = []
    for solution in satisfy(expr, universe, subst, context):
        restricted = solution.restrict(names)
        key = restricted.signature()
        if key not in seen:
            seen.add(key)
            results.append(restricted)
    return results


def holds(query, universe, bindings=None, context=None):
    """Boolean satisfaction: does at least one answer exist?"""
    expr = query.expr if isinstance(query, ast.Query) else query
    subst = _as_substitution(bindings)
    for _ in satisfy(expr, universe, subst, context):
        return True
    return False


def _as_substitution(bindings):
    if bindings is None:
        return Substitution.empty()
    if isinstance(bindings, Substitution):
        return bindings
    converted = {}
    for name, value in bindings.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            converted[name] = Atom(value)
        else:
            converted[name] = value
    return Substitution.of(converted)
