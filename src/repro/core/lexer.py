"""Tokenizer for IDL source text.

The concrete syntax follows the paper as closely as ASCII allows:

* ``?.euter.r(.stkCode=hp, .clsPrice>60)`` — queries;
* ``~`` for the paper's ``¬`` (the Unicode character is also accepted);
* ``<-`` and ``->`` for rules and update programs;
* ``+`` / ``-`` update signs, ``+=`` / ``-=`` atomic update shorthands;
* ``3/3/85`` date literals lex as the string constant ``"3/3/85"`` —
  the paper writes dates this way; quoted strings are also accepted;
* ``%`` and ``#`` start comments running to end of line;
* newlines terminate statements except inside parentheses or after a
  token that syntactically requires a continuation (``,``, ``<-``, ...);
  ``;`` is an explicit separator.

Identifiers beginning with a capital letter are variables; all other
words are constants (paper Section 4.1).
"""

from __future__ import annotations

import re

from repro.errors import LexError

# Token types
DOT = "DOT"
COMMA = "COMMA"
LPAREN = "LPAREN"
RPAREN = "RPAREN"
QUESTION = "QUESTION"
PLUS = "PLUS"
MINUS = "MINUS"
STAR = "STAR"
SLASH = "SLASH"
NEG = "NEG"
COMPARE = "COMPARE"  # value is one of < <= = != > >=
LARROW = "LARROW"
RARROW = "RARROW"
SEP = "SEP"  # statement separator (newline or ;)
IDENT = "IDENT"
VAR = "VAR"
NUMBER = "NUMBER"
STRING = "STRING"
EOF = "EOF"

# Tokens after which a newline cannot end a statement.
_CONTINUATION_TYPES = frozenset(
    (COMMA, LARROW, RARROW, LPAREN, PLUS, MINUS, STAR, SLASH, NEG, QUESTION,
     DOT, COMPARE, SEP)
)

_TOKEN_SPEC = [
    ("WS", r"[ \t\r]+"),
    ("COMMENT", r"[%#][^\n]*"),
    ("NEWLINE", r"\n"),
    ("DATE", r"\d+/\d+/\d+"),
    ("NUMBER", r"\d+\.\d+|\d+"),
    ("LARROW", r"<-"),
    ("RARROW", r"->"),
    ("COMPARE", r"<=|>=|!=|≠|<|>|="),
    ("NEG", r"~|¬"),
    ("DOT", r"\."),
    ("COMMA", r","),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("QUESTION", r"\?"),
    ("PLUS", r"\+"),
    ("MINUS", r"-"),
    ("STAR", r"\*"),
    ("SLASH", r"/"),
    ("SEMI", r";"),
    ("WORD", r"[A-Za-z_][A-Za-z0-9_]*"),
    ("STRING", r"'(?:[^'\\]|\\.)*'|\"(?:[^\"\\]|\\.)*\""),
]

_MASTER = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))

_ESCAPES = {"\\\\": "\\", "\\'": "'", '\\"': '"', "\\n": "\n", "\\t": "\t"}


class Token:
    """One lexical token with its source position."""

    __slots__ = ("type", "value", "line", "column")

    def __init__(self, type_, value, line, column):
        self.type = type_
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self):
        return f"Token({self.type}, {self.value!r}, {self.line}:{self.column})"

    def __eq__(self, other):
        return (
            isinstance(other, Token)
            and self.type == other.type
            and self.value == other.value
        )

    def __hash__(self):
        return hash((self.type, self.value))


def _unescape(text):
    body = text[1:-1]
    out = []
    index = 0
    while index < len(body):
        pair = body[index : index + 2]
        if pair in _ESCAPES:
            out.append(_ESCAPES[pair])
            index += 2
        else:
            out.append(body[index])
            index += 1
    return "".join(out)


def tokenize(source):
    """Tokenize IDL source text into a list of Tokens ending with EOF.

    Newlines become SEP tokens only where they can terminate a statement
    (paren depth zero and the previous token does not demand a
    continuation); consecutive separators collapse.
    """
    tokens = []
    depth = 0
    line = 1
    line_start = 0
    position = 0
    length = len(source)

    def emit(type_, value, column):
        tokens.append(Token(type_, value, line, column))

    while position < length:
        match = _MASTER.match(source, position)
        if match is None:
            column = position - line_start + 1
            raise LexError(
                f"unexpected character {source[position]!r}", line, column
            )
        kind = match.lastgroup
        text = match.group()
        column = position - line_start + 1
        position = match.end()

        if kind == "WS" or kind == "COMMENT":
            continue
        if kind == "NEWLINE":
            last = tokens[-1].type if tokens else SEP
            if depth == 0 and last not in _CONTINUATION_TYPES and tokens:
                emit(SEP, "\n", column)
            line += 1
            line_start = position
            continue
        if kind == "SEMI":
            if tokens and tokens[-1].type != SEP:
                emit(SEP, ";", column)
            continue
        if kind == "LPAREN":
            depth += 1
            emit(LPAREN, text, column)
            continue
        if kind == "RPAREN":
            depth -= 1
            if depth < 0:
                raise LexError("unbalanced ')'", line, column)
            emit(RPAREN, text, column)
            continue
        if kind == "DATE":
            emit(STRING, text, column)
            continue
        if kind == "NUMBER":
            value = float(text) if "." in text else int(text)
            emit(NUMBER, value, column)
            continue
        if kind == "STRING":
            emit(STRING, _unescape(text), column)
            continue
        if kind == "WORD":
            if text[0].isupper():
                emit(VAR, text, column)
            else:
                emit(IDENT, text, column)
            continue
        if kind == "COMPARE":
            emit(COMPARE, "!=" if text == "≠" else text, column)
            continue
        # Fixed-shape single tokens map 1:1 from spec name to token type.
        emit(kind, text, column)

    if tokens and tokens[-1].type != SEP:
        tokens.append(Token(SEP, "\n", line, position - line_start + 1))
    tokens.append(Token(EOF, None, line, position - line_start + 1))
    return tokens
