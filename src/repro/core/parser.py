"""Recursive-descent parser for IDL.

Grammar (statements are newline- or ``;``-separated)::

    statement   := '?' conjunction                    -- query / update request
                 | conjunction '<-' conjunction       -- rule (view definition)
                 | conjunction '->' [conjunction]     -- update program clause
    conjunction := expr { ',' expr }
    expr        := '~' expr                           -- negation
                 | '+' target | '-' target            -- update signs
                 | '.' attr expr                      -- tuple item (AttrStep)
                 | '(' [conjunction] ')'              -- set expression
                 | compare term                       -- atomic expression
                 | epsilon                            -- empty expression
    target      := '(' [conjunction] ')'              -- set plus/minus
                 | '.' attr expr                      -- tuple plus/minus
                 | '=' term                           -- atomic plus/minus
    attr        := IDENT | VAR | STRING
    term        := factor { ('+'|'-'|'*'|'/') factor }
    factor      := NUMBER | STRING | IDENT | VAR | '-' factor

plus the shorthand ``.a += t`` / ``.a -= t`` from Section 5.2 (the sign
read *after* the attribute applies to the atomic expression).

The parser is purely syntactic; semantic validation (safety, head
simplicity, stratification, binding signatures) happens in later passes.
"""

from __future__ import annotations

from repro.core import ast
from repro.core import lexer as lx
from repro.core.terms import Arith, Const, Var
from repro.errors import ParseError

_FACTOR_STARTS = frozenset((lx.NUMBER, lx.STRING, lx.IDENT, lx.VAR, lx.MINUS))

# Tokens that may legally follow an (epsilon) expression.
_EXPR_FOLLOW = frozenset((lx.COMMA, lx.RPAREN, lx.SEP, lx.LARROW, lx.RARROW, lx.EOF))


class _TokenStream:
    """Cursor over the token list with positioned error reporting."""

    __slots__ = ("tokens", "index")

    def __init__(self, tokens):
        self.tokens = tokens
        self.index = 0

    def peek(self, offset=0):
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self):
        token = self.tokens[self.index]
        if token.type != lx.EOF:
            self.index += 1
        return token

    def expect(self, type_):
        token = self.peek()
        if token.type != type_:
            raise ParseError(
                f"expected {type_}, found {token.type} ({token.value!r})",
                token.line,
                token.column,
            )
        return self.next()

    def at(self, *types):
        return self.peek().type in types

    def error(self, message):
        token = self.peek()
        raise ParseError(message, token.line, token.column)


def parse_program(source):
    """Parse IDL source into a list of Statements."""
    stream = _TokenStream(lx.tokenize(source))
    statements = []
    while not stream.at(lx.EOF):
        if stream.at(lx.SEP):
            stream.next()
            continue
        statements.append(_parse_statement(stream))
    return statements


def parse_query(source):
    """Parse a single query (the leading ``?`` is optional)."""
    statements = parse_program(source if source.lstrip().startswith("?") else "?" + source)
    if len(statements) != 1 or not isinstance(statements[0], ast.Query):
        raise ParseError("expected exactly one query")
    return statements[0]


def parse_expression(source):
    """Parse a bare conjunction (no statement marker) into a TupleExpr."""
    return parse_query(source).expr


def parse_rule(source):
    """Parse a single rule ``head <- body``."""
    statements = parse_program(source)
    if len(statements) != 1 or not isinstance(statements[0], ast.Rule):
        raise ParseError("expected exactly one rule")
    return statements[0]


def parse_update_clause(source):
    """Parse a single update program clause ``head -> body``."""
    statements = parse_program(source)
    if len(statements) != 1 or not isinstance(statements[0], ast.UpdateClause):
        raise ParseError("expected exactly one update program clause")
    return statements[0]


# ---------------------------------------------------------------------------
# Statement level
# ---------------------------------------------------------------------------


def _loc(token):
    return (token.line, token.column)


def _parse_statement(stream):
    start = stream.peek()
    if stream.at(lx.QUESTION):
        stream.next()
        expr = _parse_conjunction(stream)
        _end_statement(stream)
        return ast.Query(expr, loc=_loc(start))

    head = _parse_conjunction(stream)
    if stream.at(lx.LARROW):
        stream.next()
        body = _parse_conjunction(stream)
        _end_statement(stream)
        return ast.Rule(head, body, loc=_loc(start))
    if stream.at(lx.RARROW):
        stream.next()
        if stream.at(lx.SEP, lx.EOF):
            body = ast.TupleExpr([])
        else:
            body = _parse_conjunction(stream)
        _end_statement(stream)
        return ast.UpdateClause(head, body, loc=_loc(start))
    stream.error("expected '<-' or '->' after expression (or '?' before it)")


def _end_statement(stream):
    if stream.at(lx.SEP):
        stream.next()
    elif not stream.at(lx.EOF):
        stream.error("expected end of statement")


# ---------------------------------------------------------------------------
# Expression level
# ---------------------------------------------------------------------------


def _parse_conjunction(stream):
    conjuncts = [_parse_expr(stream, allow_epsilon=False)]
    while stream.at(lx.COMMA):
        stream.next()
        conjuncts.append(_parse_expr(stream, allow_epsilon=False))
    return ast.TupleExpr(conjuncts)


def _parse_expr(stream, allow_epsilon=True):
    token = stream.peek()

    if token.type == lx.NEG:
        stream.next()
        return ast.NegExpr(
            _parse_expr(stream, allow_epsilon=False), loc=_loc(token)
        )

    if token.type == lx.PLUS:
        stream.next()
        return _parse_signed_target(stream, ast.PLUS, start=token)

    if token.type == lx.MINUS:
        # ``-5 = X`` is a constraint with a negative literal, not a minus
        # update sign (which is always followed by '(', '.' or '=').
        if stream.peek(1).type == lx.NUMBER:
            left = _parse_term(stream)
            op_token = stream.expect(lx.COMPARE)
            right = _parse_term(stream)
            return ast.Constraint(left, op_token.value, right, loc=_loc(token))
        stream.next()
        return _parse_signed_target(stream, ast.MINUS, start=token)

    if token.type == lx.DOT:
        return _parse_attr_step(stream, sign=None)

    if token.type == lx.LPAREN:
        return _parse_set_expr(stream, sign=None)

    if token.type == lx.COMPARE:
        op = stream.next().value
        term = _parse_term(stream)
        return ast.AtomicExpr(op, term, loc=_loc(token))

    # Standalone constraint: ``X = ource``, ``S != date``, ``P > 2*Q``
    # (paper footnote 7). Recognized by a term followed by a comparison.
    if token.type in (lx.VAR, lx.NUMBER) or (
        token.type in (lx.IDENT, lx.STRING) and stream.peek(1).type == lx.COMPARE
    ):
        left = _parse_term(stream)
        op_token = stream.expect(lx.COMPARE)
        right = _parse_term(stream)
        return ast.Constraint(left, op_token.value, right, loc=_loc(token))

    if allow_epsilon and token.type in _EXPR_FOLLOW:
        return ast.Epsilon(loc=_loc(token))

    stream.error(f"unexpected {token.type} ({token.value!r}) in expression")


def _parse_signed_target(stream, sign, start=None):
    """Parse the target after a '+' or '-' update sign."""
    token = stream.peek()
    loc = _loc(start if start is not None else token)
    if token.type == lx.LPAREN:
        return _parse_set_expr(stream, sign=sign, start=start)
    if token.type == lx.DOT:
        return _parse_attr_step(stream, sign=sign, start=start)
    if token.type == lx.COMPARE and token.value == "=":
        stream.next()
        term = _parse_term(stream)
        return ast.AtomicExpr("=", term, sign=sign, loc=loc)
    stream.error(f"expected '(', '.' or '=' after update sign {sign!r}")


def _parse_attr_step(stream, sign, start=None):
    dot = stream.expect(lx.DOT)
    loc = _loc(start if start is not None else dot)
    attr = _parse_attr_name(stream)
    # Shorthand: ``.a += t`` / ``.a -= t`` (atomic update on the a-object).
    if stream.at(lx.PLUS, lx.MINUS) and stream.peek(1).type == lx.COMPARE and (
        stream.peek(1).value == "="
    ):
        sign_token = stream.next()
        inner_sign = ast.PLUS if sign_token.type == lx.PLUS else ast.MINUS
        stream.expect(lx.COMPARE)
        term = _parse_term(stream)
        atomic = ast.AtomicExpr("=", term, sign=inner_sign, loc=_loc(sign_token))
        return ast.AttrStep(attr, atomic, sign=sign, loc=loc)
    expr = _parse_expr(stream, allow_epsilon=True)
    return ast.AttrStep(attr, expr, sign=sign, loc=loc)


def _parse_attr_name(stream):
    token = stream.peek()
    if token.type == lx.IDENT or token.type == lx.STRING:
        stream.next()
        return Const(token.value)
    if token.type == lx.VAR:
        stream.next()
        return Var(token.value)
    stream.error("expected an attribute name or variable after '.'")


def _parse_set_expr(stream, sign, start=None):
    lparen = stream.expect(lx.LPAREN)
    loc = _loc(start if start is not None else lparen)
    if stream.at(lx.RPAREN):
        stream.next()
        return ast.SetExpr(ast.Epsilon(loc=loc), sign=sign, loc=loc)
    inner = _parse_conjunction(stream)
    stream.expect(lx.RPAREN)
    return ast.SetExpr(inner, sign=sign, loc=loc)


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


def _parse_term(stream):
    term = _parse_factor(stream)
    while stream.at(lx.PLUS, lx.MINUS, lx.STAR, lx.SLASH):
        # Only continue as arithmetic when an operand follows; ``, +.a``
        # style continuations belong to the surrounding conjunction.
        if stream.peek(1).type not in _FACTOR_STARTS:
            break
        op_token = stream.next()
        op = {lx.PLUS: "+", lx.MINUS: "-", lx.STAR: "*", lx.SLASH: "/"}[op_token.type]
        right = _parse_factor(stream)
        term = Arith(op, term, right)
    return term


def _parse_factor(stream):
    token = stream.peek()
    if token.type == lx.NUMBER:
        stream.next()
        return Const(token.value)
    if token.type == lx.STRING or token.type == lx.IDENT:
        stream.next()
        return Const(token.value)
    if token.type == lx.VAR:
        stream.next()
        return Var(token.value)
    if token.type == lx.MINUS:
        stream.next()
        inner = _parse_factor(stream)
        if isinstance(inner, Const) and isinstance(inner.value, (int, float)):
            return Const(-inner.value)
        return Arith("-", Const(0), inner)
    stream.error("expected a constant, variable or number")
