"""IDL programs: named collections of rules and update programs.

An :class:`IdlProgram` aggregates the schema administrator's artifacts:

* **rules** (Section 6) — view definitions, possibly higher order,
  optionally with merge keys (see ``rules.make_true``);
* **update programs** (Section 7) — named, parameterized clauses keyed
  by ``(db, name, sign)``; ``sign`` is None for ordinary programs like
  delStk and ``'+'``/``'-'`` for view-update programs like
  ``.dbX.p+(exp) -> ...``.

Nonrecursion of update programs (Section 7.1: "we disallow any recursive
call to update program") is enforced at registration time over the call
graph.
"""

from __future__ import annotations

from repro.core import ast
from repro.core.parser import parse_program
from repro.core.rules import analyze_rule
from repro.core.terms import Const, Var
from repro.errors import RecursionError_, SemanticError


class ProgramClause:
    """One analyzed update program clause."""

    __slots__ = ("key", "param_names", "param_terms", "body", "clause_source")

    def __init__(self, key, param_names, param_terms, body, clause_source=None):
        self.key = key  # (db, name_or_None, sign)
        self.param_names = param_names  # tuple of attribute names
        self.param_terms = param_terms  # {attr_name: Var/Const term}
        self.body = body
        self.clause_source = clause_source  # the UpdateClause statement

    @property
    def db(self):
        return self.key[0]

    @property
    def name(self):
        return self.key[1]

    @property
    def sign(self):
        return self.key[2]

    def __repr__(self):
        sign = self.key[2] or ""
        return f"<ProgramClause .{self.key[0]}.{self.key[1] or 'REL'}{sign}>"


def analyze_clause(clause):
    """Validate an UpdateClause head and extract its key and parameters.

    Head shapes accepted::

        .dbU.delStk(.stk=S, .date=D)        -- key (dbU, delStk, None)
        .dbX.p+(.date=D, .stk=S, .price=P)  -- key (dbX, p, '+')
        .dbO.S+(.date=D, .clsPrice=P)       -- key (dbO, None, '+'), the
                                               relation name is the extra
                                               parameter S (wildcard form
                                               for higher-order views)
    """
    head_conjuncts = ast.conjuncts_of(clause.head)
    if len(head_conjuncts) != 1:
        raise SemanticError("an update program head must be a single expression")
    step = head_conjuncts[0]
    if not isinstance(step, ast.AttrStep) or not isinstance(step.attr, Const):
        raise SemanticError("an update program head starts with a database name")
    db = step.attr.value

    inner = step.expr
    if not isinstance(inner, ast.AttrStep):
        raise SemanticError("an update program head names a program or relation")
    if isinstance(inner.attr, Const):
        name = inner.attr.value
        rel_var = None
    else:
        name = None
        rel_var = inner.attr.name

    params_expr = inner.expr
    sign = None
    if isinstance(params_expr, ast.SetExpr):
        sign = params_expr.sign
        params_expr = params_expr.inner
    elif isinstance(params_expr, ast.Epsilon):
        params_expr = ast.TupleExpr([])
    else:
        raise SemanticError(
            "an update program head ends with a parameter list '( ... )'"
        )
    if name is None and sign is None:
        raise SemanticError(
            "a wildcard (higher-order) program head requires a '+' or '-' sign"
        )

    param_names = []
    param_terms = {}
    for item in ast.conjuncts_of(params_expr):
        if isinstance(item, ast.Epsilon):
            continue
        if (
            not isinstance(item, ast.AttrStep)
            or item.sign is not None
            or not isinstance(item.attr, Const)
            or not isinstance(item.expr, ast.AtomicExpr)
            or item.expr.op != "="
            or item.expr.sign is not None
        ):
            raise SemanticError(
                f"program parameters are '.name=Var' items, got {item!r}"
            )
        attr = item.attr.value
        if attr in param_terms:
            raise SemanticError(f"duplicate parameter {attr!r}")
        param_names.append(attr)
        param_terms[attr] = item.expr.term

    if rel_var is not None:
        if any(
            isinstance(term, Var) and term.name == rel_var
            for term in param_terms.values()
        ):
            raise SemanticError(
                f"the relation variable {rel_var} cannot also be a parameter"
            )
        param_terms["__relation__"] = Var(rel_var)

    return ProgramClause(
        (db, name, sign), tuple(param_names), param_terms, clause.body,
        clause_source=clause,
    )


class IdlProgram:
    """A mutable collection of rules and update program clauses."""

    def __init__(self):
        self.rules = []  # list of AnalyzedRule
        self.clauses = {}  # key -> list of ProgramClause

    # -- registration -----------------------------------------------------

    def add_rule(self, rule, merge_on=()):
        """Register a view definition (a Rule statement or source text)."""
        if isinstance(rule, str):
            statements = parse_program(rule)
            added = []
            for statement in statements:
                if not isinstance(statement, ast.Rule):
                    raise SemanticError(f"not a rule: {statement!r}")
                added.append(self.add_rule(statement, merge_on=merge_on))
            return added if len(added) != 1 else added[0]
        analyzed = analyze_rule(rule, merge_on=merge_on)
        self.rules.append(analyzed)
        return analyzed

    def add_update_clause(self, clause):
        """Register an update program clause (statement or source text)."""
        if isinstance(clause, str):
            statements = parse_program(clause)
            added = []
            for statement in statements:
                if not isinstance(statement, ast.UpdateClause):
                    raise SemanticError(f"not an update clause: {statement!r}")
                added.append(self.add_update_clause(statement))
            return added if len(added) != 1 else added[0]
        analyzed = analyze_clause(clause)
        self.clauses.setdefault(analyzed.key, []).append(analyzed)
        self._check_nonrecursive()
        return analyzed

    def load(self, source):
        """Load a program text of rules and update clauses."""
        added = []
        for statement in parse_program(source):
            if isinstance(statement, ast.Rule):
                added.append(self.add_rule(statement))
            elif isinstance(statement, ast.UpdateClause):
                added.append(self.add_update_clause(statement))
            else:
                raise SemanticError(
                    "programs contain rules and update clauses only; "
                    f"got {statement!r}"
                )
        return added

    # -- lookup -------------------------------------------------------------

    def clauses_for(self, db, name, sign):
        """Clauses matching a call: exact name first, then wildcard."""
        exact = self.clauses.get((db, name, sign))
        if exact:
            return exact, None
        if sign is not None:
            wildcard = self.clauses.get((db, None, sign))
            if wildcard:
                return wildcard, name
        return [], None

    def program_names(self):
        return sorted(
            f".{db}.{name or '<REL>'}{sign or ''}" for db, name, sign in self.clauses
        )

    def derived_targets(self):
        return [analyzed.target for analyzed in self.rules]

    def is_derived(self, path_names):
        """Could a concrete path address a derived relation?"""
        from repro.core.rules import patterns_overlap

        path_terms = tuple(Const(name) for name in path_names)
        return any(
            patterns_overlap(path_terms, target) and len(path_terms) == len(target)
            for target in self.derived_targets()
        )

    # -- nonrecursion check --------------------------------------------------

    def _check_nonrecursive(self):
        """Reject direct or mutual recursion among update programs."""
        graph = {}
        for key, clause_list in self.clauses.items():
            callees = set()
            for clause in clause_list:
                for callee_key in self._called_keys(clause.body):
                    callees.add(callee_key)
            graph[key] = callees

        visiting, done = set(), set()

        def visit(node, trail):
            if node in done:
                return
            if node in visiting:
                cycle = " -> ".join(str(k) for k in trail + [node])
                raise RecursionError_(f"recursive update program call: {cycle}")
            visiting.add(node)
            for callee in graph.get(node, ()):
                visit(callee, trail + [node])
            visiting.discard(node)
            done.add(node)

        for node in graph:
            visit(node, [])

    def _called_keys(self, body):
        """Keys of update programs a body's conjuncts may call."""
        called = []
        for conjunct in ast.conjuncts_of(body):
            parsed = parse_call_shape(conjunct)
            if parsed is None:
                continue
            db, name, sign, _ = parsed
            if (db, name, sign) in self.clauses:
                called.append((db, name, sign))
            elif sign is not None and (db, None, sign) in self.clauses:
                called.append((db, None, sign))
        return called


def parse_call_shape(conjunct):
    """Deconstruct a conjunct shaped like a program call.

    Returns ``(db, name, sign, args_expr)`` for ``.db.name(args)`` /
    ``.db.name+(args)`` shapes with constant db and name, else None.
    ``sign`` is the sign of the argument set expression.
    """
    if not isinstance(conjunct, ast.AttrStep) or conjunct.sign is not None:
        return None
    if not isinstance(conjunct.attr, Const):
        return None
    inner = conjunct.expr
    if not isinstance(inner, ast.AttrStep) or inner.sign is not None:
        return None
    if not isinstance(inner.attr, Const):
        return None
    args = inner.expr
    if isinstance(args, ast.SetExpr):
        return (conjunct.attr.value, inner.attr.value, args.sign, args.inner)
    if isinstance(args, ast.Epsilon):
        return (conjunct.attr.value, inner.attr.value, None, ast.TupleExpr([]))
    return None
