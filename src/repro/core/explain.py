"""Query explanation: what will the evaluator actually do?

``explain_query`` performs the static analyses the engine runs before
evaluation and renders them for humans: the normalized form, the
variable classification (which variables are *higher order* — the
paper's headline feature), the safety-reordered conjunct schedule with
produced/consumed variables, and the catalog paths each conjunct reads.
Used by the REPL's ``:explain`` and handy when a query is unexpectedly
unsafe or slow.
"""

from __future__ import annotations

from repro.core import ast
from repro.core.parser import parse_query
from repro.core.pretty import to_source
from repro.core.rules import body_references
from repro.core.safety import order_conjuncts, produced_vars
from repro.core.terms import Var
from repro.errors import SafetyError


class ConjunctPlan:
    """One scheduled conjunct with its static facts."""

    __slots__ = ("source", "produces", "consumes", "reads", "negated", "is_update")

    def __init__(self, source, produces, consumes, reads, negated, is_update):
        self.source = source
        self.produces = produces
        self.consumes = consumes
        self.reads = reads
        self.negated = negated
        self.is_update = is_update


class ExplainReport:
    """The full explanation of one query."""

    __slots__ = ("source", "variables", "higher_order", "schedule", "safe",
                 "safety_error")

    def __init__(self, source, variables, higher_order, schedule, safe,
                 safety_error):
        self.source = source
        self.variables = variables
        self.higher_order = higher_order
        self.schedule = schedule
        self.safe = safe
        self.safety_error = safety_error

    def render(self):
        lines = [f"query    : ?{self.source}"]
        lines.append(
            "variables: "
            + (", ".join(sorted(self.variables)) if self.variables else "(none)")
        )
        if self.higher_order:
            lines.append(
                "higher-order (range over names): "
                + ", ".join(sorted(self.higher_order))
            )
        if not self.safe:
            lines.append(f"UNSAFE   : {self.safety_error}")
            return "\n".join(lines)
        lines.append("schedule :")
        for index, plan in enumerate(self.schedule, start=1):
            flags = []
            if plan.is_update:
                flags.append("update")
            if plan.negated:
                flags.append("negation")
            suffix = f"  [{', '.join(flags)}]" if flags else ""
            lines.append(f"  {index}. {plan.source}{suffix}")
            if plan.reads:
                lines.append("       reads    " + ", ".join(plan.reads))
            if plan.produces:
                lines.append(
                    "       produces " + ", ".join(sorted(plan.produces))
                )
            if plan.consumes:
                lines.append(
                    "       consumes " + ", ".join(sorted(plan.consumes))
                )
        return "\n".join(lines)


def higher_order_variables(expr):
    """Variables occurring in an attribute (name) position."""
    names = set()
    for node in expr.walk():
        if isinstance(node, ast.AttrStep) and isinstance(node.attr, Var):
            names.add(node.attr.name)
    return names


def profile_query(source, universe, bindings=None):
    """Evaluate a query with node-visit counters; returns
    ``(answers, counters)``. Counters key on AST node kinds plus the
    total ``visits`` — a cheap way to see where a query spends its
    enumeration."""
    from repro.core.evaluator import EvalContext, answers as evaluate

    query = source if isinstance(source, ast.Query) else parse_query(source)
    context = EvalContext(profile=True)
    results = evaluate(query, universe, bindings, context)
    return results, dict(context.counters)


def explain_query(source, bound=frozenset()):
    """Build an :class:`ExplainReport` for a query (source or Query)."""
    query = source if isinstance(source, ast.Query) else parse_query(source)
    expr = query.expr
    conjuncts = ast.conjuncts_of(expr)

    try:
        ordered = order_conjuncts(list(conjuncts), frozenset(bound))
        safe, safety_error = True, None
    except SafetyError as exc:
        ordered, safe, safety_error = [], False, str(exc)

    schedule = []
    bound_so_far = set(bound)
    for conjunct in ordered:
        produces = set(produced_vars(conjunct)) - bound_so_far
        consumes = conjunct.variables() & bound_so_far
        reads = [
            "." + ".".join(
                term.name if isinstance(term, Var) else str(term.value)
                for term in pattern
            )
            + ("" if positive else " (negated)")
            for pattern, positive in body_references(ast.TupleExpr([conjunct]))
        ]
        schedule.append(
            ConjunctPlan(
                to_source(conjunct),
                produces,
                consumes,
                reads,
                isinstance(conjunct, ast.NegExpr)
                or any(isinstance(n, ast.NegExpr) for n in conjunct.walk()),
                conjunct.has_update(),
            )
        )
        bound_so_far |= produces

    return ExplainReport(
        to_source(expr),
        expr.variables(),
        higher_order_variables(expr),
        schedule,
        safe,
        safety_error,
    )
