"""``repro.analysis`` — the ``idlcheck`` static analyzer.

Ahead-of-time, whole-program analysis of IDL multidatabase programs:
schema-aware name resolution against member catalogs, safety and
stratification, update-program coverage, dead-code detection, and a
type-and-effect system (:mod:`repro.analysis.types` /
:mod:`repro.analysis.effects`) whose inferred read/write sets also
drive the engine's member pruning and the federation's narrowed
journal intents. See ``docs/static_analysis.md`` for the diagnostic
code reference and the inference rules.
"""

from repro.analysis.catalog import Catalog
from repro.analysis.checker import (
    CallShape,
    ProgramChecker,
    check_engine,
    check_source,
    check_statements,
)
from repro.analysis.diagnostics import (
    CODES,
    ERROR,
    WARNING,
    Diagnostic,
    DiagnosticReport,
)
from repro.analysis.effects import EffectAnalysis, Effects, EffectSet
from repro.analysis.types import TypeInference

__all__ = [
    "CODES",
    "ERROR",
    "WARNING",
    "CallShape",
    "Catalog",
    "Diagnostic",
    "DiagnosticReport",
    "EffectAnalysis",
    "EffectSet",
    "Effects",
    "ProgramChecker",
    "TypeInference",
    "check_engine",
    "check_source",
    "check_statements",
]
