"""``repro.analysis`` — the ``idlcheck`` static analyzer.

Ahead-of-time, whole-program analysis of IDL multidatabase programs:
schema-aware name resolution against member catalogs, safety and
stratification, update-program coverage, and dead-code detection. See
``docs/static_analysis.md`` for the diagnostic code reference.
"""

from repro.analysis.catalog import Catalog
from repro.analysis.checker import (
    CallShape,
    ProgramChecker,
    check_engine,
    check_source,
    check_statements,
)
from repro.analysis.diagnostics import (
    CODES,
    ERROR,
    WARNING,
    Diagnostic,
    DiagnosticReport,
)

__all__ = [
    "CODES",
    "ERROR",
    "WARNING",
    "CallShape",
    "Catalog",
    "Diagnostic",
    "DiagnosticReport",
    "ProgramChecker",
    "check_engine",
    "check_source",
    "check_statements",
]
