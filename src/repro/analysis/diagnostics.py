"""Structured diagnostics for the ``idlcheck`` static analyzer.

Every finding carries a **stable code** (``IDL0xx``), a severity, a
message, an optional ``(line, column)`` source location and an optional
context string (usually the pretty-printed statement the finding is
about). Codes are stable across releases so CI pipelines and editors can
filter or suppress them; the human-readable slug and default severity
live in :data:`CODES`.

See ``docs/static_analysis.md`` for the full code reference.
"""

from __future__ import annotations

from repro.core.ast import format_loc

ERROR = "error"
WARNING = "warning"

#: code -> (slug, default severity, one-line description)
CODES = {
    "IDL000": (
        "syntax-error",
        ERROR,
        "the source does not lex or parse as IDL",
    ),
    "IDL001": (
        "unsafe-variable",
        ERROR,
        "a variable cannot be grounded by enumeration before it is "
        "consumed (no safe evaluation order exists)",
    ),
    "IDL002": (
        "unrestricted-name-variable",
        WARNING,
        "a higher-order head variable names a relation/attribute but is "
        "never bound in a name position by the body, so it may resolve "
        "to a non-name value at run time",
    ),
    "IDL003": (
        "malformed-statement",
        ERROR,
        "a statement violates a structural rule (bad rule head, bad "
        "update program head, invalid parameter list, ...)",
    ),
    "IDL010": (
        "unstratifiable",
        ERROR,
        "the rule program has negation through recursion (Section 6 "
        "requires view definitions to be stratified)",
    ),
    "IDL011": (
        "recursive-update-program",
        ERROR,
        "update programs call each other recursively (disallowed by "
        "Section 7.1)",
    ),
    "IDL020": (
        "unknown-relation",
        ERROR,
        "a ground .db.rel reference resolves to no member catalog "
        "relation and no derived view target",
    ),
    "IDL021": (
        "unknown-attribute",
        WARNING,
        "a constant attribute name does not occur in the referenced "
        "catalog relation (the conjunct can never match)",
    ),
    "IDL030": (
        "uncovered-view-update",
        ERROR,
        "a view update or program call has no translator clause whose "
        "binding signature covers the call shape",
    ),
    "IDL031": (
        "uncallable-clause",
        WARNING,
        "no call binding can execute the clause body safely — the "
        "clause can never run",
    ),
    "IDL040": (
        "dead-rule",
        WARNING,
        "the rule can never derive a fact (a positive body reference "
        "has no producer, e.g. recursion with no base case)",
    ),
    "IDL041": (
        "shadowed-clause",
        WARNING,
        "a rule or update clause exactly duplicates an earlier one; the "
        "later copy adds nothing (and doubles update effects)",
    ),
    "IDL050": (
        "type-clash",
        ERROR,
        "unification forces a variable (or constant) to be both a number "
        "and a name/string across discrepant schemata — the conjunction "
        "can never be satisfied",
    ),
    "IDL051": (
        "unsatisfiable-selection",
        WARNING,
        "a ground selection can never hold (a variable equated to two "
        "distinct constants, or contradictory constant comparisons on "
        "one attribute of one tuple)",
    ),
    "IDL060": (
        "write-outside-footprint",
        ERROR,
        "an update program's inferred write effects reach a database "
        "outside its statically declared footprint",
    ),
}


class Diagnostic:
    """One analyzer finding."""

    __slots__ = ("code", "severity", "message", "loc", "context")

    def __init__(self, code, message, loc=None, context=None, severity=None):
        if code not in CODES:
            raise ValueError(f"unknown diagnostic code {code!r}")
        self.code = code
        self.severity = severity if severity is not None else CODES[code][1]
        self.message = message
        self.loc = loc
        self.context = context

    @property
    def slug(self):
        return CODES[self.code][0]

    @property
    def is_error(self):
        return self.severity == ERROR

    def render(self):
        location = f" at {format_loc(self.loc)}" if self.loc else ""
        context = f"\n    in: {self.context}" if self.context else ""
        return (
            f"{self.severity} {self.code} ({self.slug}){location}: "
            f"{self.message}{context}"
        )

    def _sort_key(self):
        line, column = self.loc if self.loc else (1 << 30, 1 << 30)
        return (0 if self.is_error else 1, line, column, self.code)

    def __repr__(self):
        return f"<Diagnostic {self.code} {self.slug} {self.message!r}>"


class DiagnosticReport:
    """The ordered collection of diagnostics one analysis produced."""

    def __init__(self, diagnostics=()):
        self.diagnostics = list(diagnostics)

    def add(self, code, message, loc=None, context=None, severity=None):
        diagnostic = Diagnostic(code, message, loc, context, severity)
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, other):
        self.diagnostics.extend(other.diagnostics)
        return self

    # -- access --------------------------------------------------------------

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self):
        return len(self.diagnostics)

    @property
    def errors(self):
        return [d for d in self.diagnostics if d.is_error]

    @property
    def warnings(self):
        return [d for d in self.diagnostics if not d.is_error]

    @property
    def has_errors(self):
        return any(d.is_error for d in self.diagnostics)

    def by_code(self, code):
        return [d for d in self.diagnostics if d.code == code]

    @property
    def codes(self):
        return sorted({d.code for d in self.diagnostics})

    # -- rendering -----------------------------------------------------------

    def summary(self):
        n_errors, n_warnings = len(self.errors), len(self.warnings)
        return (
            f"{n_errors} error{'s' if n_errors != 1 else ''}, "
            f"{n_warnings} warning{'s' if n_warnings != 1 else ''}"
        )

    def render(self):
        if not self.diagnostics:
            return "ok: no diagnostics"
        lines = [
            diagnostic.render()
            for diagnostic in sorted(
                self.diagnostics, key=Diagnostic._sort_key
            )
        ]
        lines.append(self.summary())
        return "\n".join(lines)

    def __repr__(self):
        return f"<DiagnosticReport {self.summary()}>"
