"""Read/write effect inference for IDL programs.

The paper's central claim is that one IDL program can range over data
*and* metadata across discrepant schemata; the flip side is that a
program's **footprint** — which ``(database, relation)`` pairs its
evaluation can ever read or write — is statically derivable from the
same higher-order binding structure. This module computes it:

* every top-level conjunct contributes *access patterns* — the path
  references of :func:`repro.core.rules.body_references`, here
  additionally tagged with whether an update sign (``+``/``-`` on an
  attribute step, a set expression, or an atomic ``+=``/``-=``) occurs
  at or below the reference, which makes the access a **write**;
* a conjunct that dispatches to a registered update program (per
  :func:`repro.core.program.IdlProgram.clauses_for`, including the
  wildcard higher-order form ``.dbO.S+(...)``) contributes the callee
  program's effects instead — closed interprocedurally over the
  (acyclic, Section 7.1) call graph;
* a *read* of a derived view expands transitively through the rules
  that define it (:meth:`EffectAnalysis.rules_needed`), so a query's
  read set covers everything its materialization would consult.

Patterns are ``(db, rel)`` pairs where either component may be ``None``
— *symbolic*: a higher-order variable in that position at analysis
time, e.g. ``(ource, None)`` for "some relation of member ``ource``".
A symbolic *database* makes the footprint unbounded
(:attr:`EffectSet.bounded` is False); consumers must then fall back to
"touches everything".

Consumers:

* :class:`~repro.analysis.checker.ProgramChecker` — IDL060, an update
  program writing outside its declared footprint;
* :meth:`repro.core.engine.IdlEngine.query` — **member pruning**: only
  the rules a query's read set needs are materialized;
* :meth:`repro.multidb.federation.Federation._flush_if_changed` —
  **narrowed journal intents**: only members in the update's write set
  are staged and journaled.

See ``docs/static_analysis.md`` for the formal rules.
"""

from __future__ import annotations

from repro.core import ast
from repro.core.rules import patterns_overlap
from repro.core.terms import Const, Var


class EffectSet:
    """An immutable set of ``(db, rel)`` footprint patterns.

    ``None`` in either position is symbolic ("any"). The empty set is
    the effect of a program that touches nothing.
    """

    __slots__ = ("patterns",)

    def __init__(self, patterns=()):
        self.patterns = frozenset(patterns)

    def __iter__(self):
        return iter(self.patterns)

    def __len__(self):
        return len(self.patterns)

    def __bool__(self):
        return bool(self.patterns)

    def __eq__(self, other):
        return isinstance(other, EffectSet) and self.patterns == other.patterns

    def __hash__(self):
        return hash(self.patterns)

    def __or__(self, other):
        return EffectSet(self.patterns | other.patterns)

    @property
    def bounded(self):
        """True when every pattern names a concrete database — the
        footprint's database set is then exactly :attr:`dbs`."""
        return all(db is not None for db, _rel in self.patterns)

    @property
    def dbs(self):
        """The concrete databases named by the patterns."""
        return {db for db, _rel in self.patterns if db is not None}

    def touches_db(self, name):
        """Could evaluation touch database ``name``? (Symbolic database
        patterns touch everything.)"""
        return any(db is None or db == name for db, _rel in self.patterns)

    def describe(self):
        """``.db.rel, .db.*, ...`` — stable, human-readable rendering."""
        if not self.patterns:
            return "(none)"
        rendered = sorted(
            f".{db if db is not None else '*'}.{rel if rel is not None else '*'}"
            for db, rel in self.patterns
        )
        return ", ".join(rendered)

    def __repr__(self):
        return f"EffectSet({self.describe()})"


class Effects:
    """The read and write :class:`EffectSet` of one program unit."""

    __slots__ = ("reads", "writes")

    def __init__(self, reads, writes):
        self.reads = reads
        self.writes = writes

    def __repr__(self):
        return (f"Effects(reads={self.reads.describe()}, "
                f"writes={self.writes.describe()})")


# ---------------------------------------------------------------------------
# Access-pattern extraction
# ---------------------------------------------------------------------------


def collect_accesses(expr, prefix=(), signed=False, out=None):
    """Collect ``(pattern, written, loc)`` accesses of one conjunct.

    ``pattern`` is a tuple of Const/Var attribute terms descending from
    the universe (mirroring :func:`repro.core.rules._collect_refs`);
    ``written`` is True when an update sign occurs at or below the
    reference; ``loc`` is the position of the innermost step that
    anchored the access (for diagnostics).
    """
    if out is None:
        out = []
    if isinstance(expr, ast.AttrStep):
        signed = signed or expr.sign is not None
        pattern = prefix + (expr.attr,)
        loc = expr.loc
        inner = expr.expr
        while isinstance(inner, ast.NegExpr):
            inner = inner.inner
        if isinstance(inner, ast.AttrStep):
            collect_accesses(inner, pattern, signed, out)
        elif isinstance(inner, ast.TupleExpr):
            recorded = False
            for conjunct in inner.conjuncts:
                if isinstance(conjunct, (ast.AttrStep, ast.NegExpr)):
                    collect_accesses(conjunct, pattern, signed, out)
                    recorded = True
            if not recorded:
                out.append((pattern, signed or inner.has_update(), loc))
        else:
            # Set expressions and atomics terminate the path; signs
            # inside them (``+(exp)``, ``.S-=X``, ``+.S=P``) are writes
            # of the relation the path addressed.
            out.append((pattern, signed or inner.has_update(), loc))
        return out
    if isinstance(expr, ast.NegExpr):
        collect_accesses(expr.inner, prefix, signed, out)
        return out
    if isinstance(expr, ast.TupleExpr):
        for conjunct in expr.conjuncts:
            collect_accesses(conjunct, prefix, signed, out)
        return out
    if prefix:
        out.append((prefix, signed, None))
    return out


def _normalize(pattern):
    """A term-path pattern as a ``(db, rel)`` pair (None = symbolic)."""
    parts = []
    for term in pattern[:2]:
        parts.append(term.value if isinstance(term, Const) else None)
    while len(parts) < 2:
        parts.append(None)
    return tuple(parts)


def _terms(pattern):
    """A ``(db, rel)`` pair back as Const/Var terms for overlap tests."""
    return tuple(
        Const(part) if part is not None else Var("_") for part in pattern
    )


# ---------------------------------------------------------------------------
# The analysis
# ---------------------------------------------------------------------------


class EffectAnalysis:
    """Interprocedural effect inference over one
    :class:`~repro.core.program.IdlProgram`.

    The analysis is purely static — nothing is evaluated — and cached
    per update-program key; build one instance per program version
    (:meth:`repro.core.engine.IdlEngine.effect_analysis` does exactly
    that).
    """

    def __init__(self, program):
        self.program = program
        self._program_cache = {}  # (db, name, sign) -> (reads, writes)
        self._in_progress = set()

    # -- program calls ------------------------------------------------------

    def call_key(self, conjunct):
        """The update-program key a conjunct dispatches to, or None.

        Unlike :func:`repro.core.program.parse_call_shape` this also
        recognizes the higher-order call form ``.dbO.S+(...)`` (variable
        relation name resolved by a wildcard clause). Only shapes that
        resolve to registered clauses count — anything else is a plain
        relation access.
        """
        if not isinstance(conjunct, ast.AttrStep) or conjunct.sign is not None:
            return None
        if not isinstance(conjunct.attr, Const):
            return None
        inner = conjunct.expr
        if not isinstance(inner, ast.AttrStep) or inner.sign is not None:
            return None
        db = conjunct.attr.value
        name = inner.attr.value if isinstance(inner.attr, Const) else None
        args = inner.expr
        if isinstance(args, ast.SetExpr):
            sign = args.sign
        elif isinstance(args, ast.Epsilon):
            sign = None
        else:
            return None
        clauses, wildcard_name = self.program.clauses_for(db, name, sign)
        if not clauses:
            return None
        if name is not None and wildcard_name is not None:
            return (db, None, sign)
        return (db, name, sign)

    def program_effects(self, key):
        """``(reads, writes)`` frozensets of one update program,
        closed over the programs it calls. Recursive programs (already
        an IDL011 error) contribute their non-recursive part."""
        cached = self._program_cache.get(key)
        if cached is not None:
            return cached
        if key in self._in_progress:
            return frozenset(), frozenset()
        self._in_progress.add(key)
        try:
            reads, writes = set(), set()
            clauses, _ = self.program.clauses_for(*key)
            for clause in clauses:
                clause_reads, clause_writes = self.expr_effects(clause.body)
                reads |= clause_reads
                writes |= clause_writes
        finally:
            self._in_progress.discard(key)
        result = (frozenset(reads), frozenset(writes))
        self._program_cache[key] = result
        return result

    def program_footprint(self, key):
        """:class:`Effects` of one update program key."""
        reads, writes = self.program_effects(key)
        return Effects(EffectSet(reads), EffectSet(writes))

    # -- expressions ---------------------------------------------------------

    def expr_effects(self, expr):
        """``(reads, writes)`` pattern sets of one body/request
        expression, with program call sites resolved."""
        reads, writes = set(), set()
        for conjunct in ast.conjuncts_of(expr):
            key = self.call_key(conjunct)
            if key is not None:
                callee_reads, callee_writes = self.program_effects(key)
                reads |= callee_reads
                writes |= callee_writes
                # Dispatch itself consults the called key (wildcard
                # dispatch enumerates the database's relation names).
                reads.add((key[0], key[1]))
                continue
            for pattern, written, _loc in collect_accesses(conjunct):
                normalized = _normalize(pattern)
                reads.add(normalized)
                if written:
                    writes.add(normalized)
        return reads, writes

    def request_footprint(self, statement):
        """:class:`Effects` of one update request (a signed query)."""
        reads, writes = self.expr_effects(statement.expr)
        return Effects(EffectSet(reads), EffectSet(writes))

    # -- view closure ---------------------------------------------------------

    def rules_needed(self, read_patterns):
        """The rules a query reading ``read_patterns`` must materialize.

        Transitive: a rule is needed when its head target could satisfy
        a needed pattern, and its own body references (positive *and*
        negative — negation still consults the referenced view) become
        needed in turn. The result is a dependency-downward-closed
        subset, so materializing exactly these rules yields the same
        derived facts for the read patterns as the full program.
        """
        needed, needed_ids = [], set()
        frontier = [_terms(pattern) for pattern in read_patterns]
        changed = True
        while changed:
            changed = False
            for analyzed in self.program.rules:
                if id(analyzed) in needed_ids:
                    continue
                if any(
                    patterns_overlap(pattern, analyzed.target)
                    for pattern in frontier
                ):
                    needed_ids.add(id(analyzed))
                    needed.append(analyzed)
                    frontier.append(analyzed.target)
                    frontier.extend(
                        pattern for pattern, _positive in analyzed.references
                    )
                    changed = True
        return needed

    def query_footprint(self, statement):
        """``(reads, needed_rules)`` of one query statement.

        ``reads`` is the :class:`EffectSet` closed through views — every
        base or derived pattern the answer can depend on; ``needed_rules``
        is the (dependency-closed) rule subset that must be materialized.
        """
        direct, _writes = self.expr_effects(statement.expr)
        needed = self.rules_needed(direct)
        closed = set(direct)
        for analyzed in needed:
            closed.add(_normalize(analyzed.target))
            for pattern, _positive in analyzed.references:
                closed.add(_normalize(pattern))
        return EffectSet(closed), needed
