"""``idlcheck`` — whole-program static analysis of IDL programs.

The checker takes parsed statements (rules, update program clauses,
queries) plus an optional member :class:`~repro.analysis.catalog.Catalog`
and produces a :class:`~repro.analysis.diagnostics.DiagnosticReport`
instead of raising on the first problem. It promotes every check the
engine performs lazily at query/call time to *install time*:

* **safety** (IDL001) — every rule body, clause body and query must
  admit a safe evaluation order (range restriction), reusing
  :mod:`repro.core.safety` without executing anything;
* **name range restriction** (IDL002) — higher-order head variables
  must be produced in a *name position* by the body, or they may be
  bound to non-name values at run time;
* **structure** (IDL003, IDL041) — malformed heads/parameter lists and
  exact duplicate statements;
* **stratification** (IDL010) and **update-program nonrecursion**
  (IDL011) — whole-program, with the negative-cycle trace from
  :mod:`repro.core.stratify`;
* **schema resolution** (IDL020, IDL021) — every ground ``.db.rel``
  reference must resolve against the member catalogs or a derived view
  target; constant attribute names are checked against catalog schemas;
* **update coverage** (IDL030, IDL031) — every program call site and
  every declared entry point (:class:`CallShape`) must be covered by a
  clause whose binding signature (:mod:`repro.core.binding`) accepts the
  call, promoting the call-time :class:`~repro.errors.BindingError` to
  install time;
* **liveness** (IDL040) — rules that can never derive a fact (their
  positive references have no producer, e.g. recursion without a base
  case) are flagged;
* **types** (IDL050, IDL051) — the type-signature lattice of
  :mod:`repro.analysis.types` is solved to a fixpoint across rules,
  clauses and queries; unification clashes (a variable forced to be
  both a number and a name/string) and unsatisfiable ground selections
  are flagged;
* **footprints** (IDL060) — for every required :class:`CallShape` that
  declares a ``writes`` footprint, the inferred write effect set
  (:mod:`repro.analysis.effects`) of the covering clauses must stay
  inside the declared databases.
"""

from __future__ import annotations

from itertools import combinations

from repro.analysis.catalog import Catalog
from repro.analysis.diagnostics import DiagnosticReport
from repro.analysis.effects import EffectAnalysis, collect_accesses
from repro.analysis.types import TypeInference
from repro.core import ast
from repro.core.binding import body_executable
from repro.core.parser import parse_program
from repro.core.pretty import to_source
from repro.core.program import IdlProgram, analyze_clause, parse_call_shape
from repro.core.rules import analyze_rule, patterns_overlap
from repro.core.safety import order_conjuncts
from repro.core.stratify import stratify
from repro.core.terms import Const, Var
from repro.errors import (
    IdlSyntaxError,
    RecursionError_,
    SafetyError,
    SemanticError,
    StratificationError,
)


class CallShape:
    """A declared update entry point the program must cover.

    ``db`` / ``name`` / ``sign`` address the program (``name=None`` with
    a sign is the wildcard higher-order form); ``params`` is the set of
    parameter names a caller will supply; ``origin`` says who requires
    the shape (used in diagnostics); ``writes``, when not None, is the
    set of database names the program is *allowed* to write — its
    declared footprint, enforced by IDL060 against the inferred write
    effects (:mod:`repro.analysis.effects`).
    """

    __slots__ = ("db", "name", "sign", "params", "origin", "writes")

    def __init__(self, db, name, sign=None, params=(), origin=None,
                 writes=None):
        self.db = db
        self.name = name
        self.sign = sign
        self.params = frozenset(params)
        self.origin = origin
        self.writes = frozenset(writes) if writes is not None else None

    def describe(self):
        name = self.name if self.name is not None else "<REL>"
        params = ", ".join(sorted(self.params)) or "none"
        return f".{self.db}.{name}{self.sign or ''} (given: {params})"

    def __repr__(self):
        return f"<CallShape {self.describe()}>"


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def check_source(source, catalog=None, required=()):
    """Parse and check IDL source text; never raises on bad programs."""
    report = DiagnosticReport()
    try:
        statements = parse_program(source)
    except IdlSyntaxError as exc:
        loc = (exc.line, exc.column) if exc.line is not None else None
        report.add("IDL000", str(exc), loc=loc)
        return report
    return check_statements(
        statements, catalog=catalog, required=required, report=report
    )


def check_statements(statements, catalog=None, required=(), report=None):
    """Check a list of parsed statements."""
    checker = ProgramChecker(catalog=catalog, required=required)
    return checker.check(statements, report=report)


def check_engine(engine, catalog=None, required=()):
    """Check the program already loaded on an :class:`IdlEngine`.

    The catalog defaults to the engine's base universe, so every member
    snapshot the engine holds doubles as schema ground truth.
    """
    statements = [analyzed.rule for analyzed in engine.program.rules]
    for clause_list in engine.program.clauses.values():
        for clause in clause_list:
            if clause.clause_source is not None:
                statements.append(clause.clause_source)
    if catalog is None:
        catalog = Catalog.from_universe(engine.universe)
    return check_statements(statements, catalog=catalog, required=required)


# ---------------------------------------------------------------------------
# The checker
# ---------------------------------------------------------------------------


class ProgramChecker:
    """One whole-program analysis run."""

    def __init__(self, catalog=None, required=()):
        self.catalog = catalog
        self.required = list(required)
        self.program = IdlProgram()
        self.rules = []  # AnalyzedRule, in statement order
        self.rule_stmts = []  # the Rule statements, parallel to self.rules
        self.clauses = []  # (ProgramClause, UpdateClause statement)
        self.queries = []  # Query statements
        self._rules_with_unknown_refs = set()  # indices with an IDL020

    # -- drive ---------------------------------------------------------------

    def check(self, statements, report=None):
        report = report if report is not None else DiagnosticReport()
        self._collect(statements, report)
        self._check_recursion(report)
        self._check_stratification(report)
        self._check_name_restriction(report)
        self._check_clause_callability(report)
        self._check_schema(report)
        self._check_productivity(report)
        self._check_update_coverage(report)
        self._check_types(report)
        self._check_footprints(report)
        return report

    # -- phase 1: per-statement analysis ------------------------------------

    def _collect(self, statements, report):
        seen = {}
        for statement in statements:
            duplicate_of = seen.get(statement)
            if duplicate_of is not None:
                report.add(
                    "IDL041",
                    "statement exactly duplicates the one at "
                    + ast.format_loc(duplicate_of),
                    loc=statement.loc,
                    context=to_source(statement),
                )
            else:
                seen[statement] = statement.loc

            if isinstance(statement, ast.Rule):
                self._collect_rule(statement, report)
            elif isinstance(statement, ast.UpdateClause):
                self._collect_clause(statement, report)
            elif isinstance(statement, ast.Query):
                self._collect_query(statement, report)
            else:
                report.add(
                    "IDL003",
                    f"cannot analyze a {type(statement).__name__} statement",
                    loc=getattr(statement, "loc", None),
                )

    def _collect_rule(self, statement, report):
        try:
            analyzed = analyze_rule(statement)
        except SafetyError as exc:
            report.add(
                "IDL001", str(exc), loc=statement.loc,
                context=to_source(statement),
            )
            return
        except SemanticError as exc:
            report.add(
                "IDL003", str(exc), loc=statement.loc,
                context=to_source(statement),
            )
            return
        self.rules.append(analyzed)
        self.rule_stmts.append(statement)
        self.program.rules.append(analyzed)

    def _collect_clause(self, statement, report):
        try:
            clause = analyze_clause(statement)
        except SemanticError as exc:
            report.add(
                "IDL003", str(exc), loc=statement.loc,
                context=to_source(statement),
            )
            return
        self.clauses.append((clause, statement))
        self.program.clauses.setdefault(clause.key, []).append(clause)

    def _collect_query(self, statement, report):
        self.queries.append(statement)
        try:
            order_conjuncts(ast.conjuncts_of(statement.expr), frozenset())
        except SafetyError as exc:
            report.add(
                "IDL001", str(exc), loc=statement.loc,
                context=to_source(statement),
            )

    # -- phase 2: whole-program checks ---------------------------------------

    def _check_recursion(self, report):
        try:
            self.program._check_nonrecursive()
        except RecursionError_ as exc:
            report.add("IDL011", str(exc))

    def _check_stratification(self, report):
        try:
            stratify(self.rules)
        except StratificationError as exc:
            cycle = getattr(exc, "cycle", None)
            loc = cycle[0].rule.loc if cycle else None
            report.add("IDL010", str(exc), loc=loc)

    def _check_name_restriction(self, report):
        """IDL002: higher-order head variables must be enumeration-bound.

        A variable used as a relation/attribute name in the head must be
        *produced by enumeration* somewhere in the body — matched in a
        name position (``.member.S(...)``) or against stored values
        (``.stk=S``). A name variable that is only computed (e.g. bound
        by an arithmetic constraint) may range over non-name values.
        """
        for analyzed, statement in zip(self.rules, self.rule_stmts):
            if not analyzed.is_higher_order:
                continue
            name_vars = {
                term.name for term in analyzed.target if isinstance(term, Var)
            }
            enumerated = set()
            for node in analyzed.body.walk():
                if isinstance(node, ast.AttrStep) and isinstance(node.attr, Var):
                    enumerated.add(node.attr.name)
                elif (
                    isinstance(node, ast.AtomicExpr)
                    and node.op == "="
                    and node.sign is None
                    and isinstance(node.term, Var)
                ):
                    enumerated.add(node.term.name)
            for name in sorted(name_vars - enumerated):
                report.add(
                    "IDL002",
                    f"head variable {name} names a relation/attribute but "
                    "the body never produces it by enumeration (in a name "
                    "or value position); it may be bound to a non-name "
                    "value at run time",
                    loc=statement.loc,
                    context=to_source(statement),
                )

    def _check_clause_callability(self, report):
        """IDL031: a clause no binding can execute is dead weight."""
        for clause, statement in self.clauses:
            bound = {
                term.name
                for term in clause.param_terms.values()
                if isinstance(term, Var)
            }
            if not body_executable(clause.body, bound):
                report.add(
                    "IDL031",
                    "no call binding can execute this clause safely, even "
                    "with every parameter given",
                    loc=statement.loc,
                    context=to_source(statement),
                )

    # -- schema resolution ----------------------------------------------------

    def _known_sources(self):
        """Target patterns a reference may legally resolve against."""
        sources = [analyzed.target for analyzed in self.rules]
        if self.catalog is not None:
            for db, rel in self.catalog.paths():
                sources.append((Const(db), Const(rel)))
            for db in self.catalog.opaque:
                sources.append((Const(db),))
        return sources

    def _check_schema(self, report):
        if self.catalog is None:
            return
        sources = self._known_sources()
        for index, (analyzed, statement) in enumerate(
            zip(self.rules, self.rule_stmts)
        ):
            for conjunct in ast.conjuncts_of(analyzed.body):
                if self._check_conjunct_schema(
                    conjunct, statement, sources, report
                ):
                    self._rules_with_unknown_refs.add(index)
        for clause, statement in self.clauses:
            for conjunct in ast.conjuncts_of(clause.body):
                if self._is_program_call(conjunct):
                    continue  # program calls are not relation references
                self._check_conjunct_schema(conjunct, statement, sources, report)
        for statement in self.queries:
            for conjunct in ast.conjuncts_of(statement.expr):
                if self._is_program_call(conjunct):
                    continue
                self._check_conjunct_schema(conjunct, statement, sources, report)

    def _is_program_call(self, conjunct):
        """Does this conjunct dispatch to a registered update program?

        ``parse_call_shape`` matches any ``.db.rel(...)`` step, so only
        shapes that resolve to actual clauses count — everything else is
        an ordinary relation reference.
        """
        shape = parse_call_shape(conjunct)
        if shape is None:
            return False
        db, name, sign, _ = shape
        clauses, _ = self.program.clauses_for(db, name, sign)
        return bool(clauses)

    def _check_conjunct_schema(self, conjunct, statement, sources, report):
        """IDL020/IDL021 for one top-level conjunct; True if IDL020 fired."""
        fired = False
        refs = []
        _collect_path_refs(conjunct, (), False, refs)
        for pattern, under_plus in refs:
            if under_plus:
                continue  # a '+' along the path may create the structure
            if any(not isinstance(term, Const) for term in pattern[:2]):
                continue  # higher-order reference: can match anything
            if any(patterns_overlap(pattern, source) for source in sources):
                continue
            db = pattern[0].value
            loc = conjunct.loc if conjunct.loc else statement.loc
            if not self.catalog.has_database(db) and not any(
                patterns_overlap((pattern[0],), source) for source in sources
            ):
                message = f"unknown database .{db}"
            else:
                message = (
                    f"unknown relation .{db}.{pattern[1].value}: not in the "
                    "member catalogs and no rule derives it"
                )
            report.add(
                "IDL020", message, loc=loc, context=to_source(statement)
            )
            fired = True
        self._check_attrs(conjunct, statement, report)
        return fired

    def _check_attrs(self, conjunct, statement, report):
        """IDL021: constant attributes must occur in catalog relations."""
        node = conjunct
        path = []
        while isinstance(node, ast.AttrStep) and isinstance(node.attr, Const):
            if node.sign is not None:
                return
            path.append(node.attr.value)
            node = node.expr
            while isinstance(node, ast.NegExpr):
                node = node.inner
            if len(path) == 2:
                break
        if len(path) != 2 or not isinstance(node, ast.SetExpr):
            return
        if node.sign == ast.PLUS:
            return  # inserts may introduce fresh attributes
        db, rel = path
        if self.catalog.is_opaque(db) or not self.catalog.has_relation(db, rel):
            return
        pattern = (Const(db), Const(rel))
        if any(
            patterns_overlap(pattern, analyzed.target)
            for analyzed in self.rules
        ):
            return  # also derived: the rule may add attributes
        attrs = self.catalog.attributes(db, rel)
        if attrs is None:
            return
        for item in ast.conjuncts_of(node.inner):
            if (
                isinstance(item, ast.AttrStep)
                and isinstance(item.attr, Const)
                and item.sign is None
                and item.attr.value not in attrs
            ):
                report.add(
                    "IDL021",
                    f"relation .{db}.{rel} has no attribute "
                    f"{item.attr.value!r}; this conjunct can never match",
                    loc=item.loc if item.loc else statement.loc,
                    context=to_source(statement),
                )

    # -- liveness -------------------------------------------------------------

    def _check_productivity(self, report):
        """IDL040: rules whose positive references have no producer."""
        if self.catalog is None:
            return
        base_sources = []
        for db, rel in self.catalog.paths():
            base_sources.append((Const(db), Const(rel)))
        for db in self.catalog.opaque:
            base_sources.append((Const(db),))

        productive = set()
        changed = True
        while changed:
            changed = False
            for index, analyzed in enumerate(self.rules):
                if index in productive:
                    continue
                if self._rule_feedable(analyzed, base_sources, productive):
                    productive.add(index)
                    changed = True
        for index, analyzed in enumerate(self.rules):
            if index in productive or index in self._rules_with_unknown_refs:
                continue
            report.add(
                "IDL040",
                "rule can never fire: a positive body reference has no "
                "producer (no catalog relation, and no productive rule, "
                "derives it)",
                loc=self.rule_stmts[index].loc,
                context=to_source(self.rule_stmts[index]),
            )

    def _rule_feedable(self, analyzed, base_sources, productive):
        for pattern, positive in analyzed.references:
            if not positive:
                continue
            if any(patterns_overlap(pattern, source) for source in base_sources):
                continue
            if any(
                patterns_overlap(pattern, self.rules[j].target)
                for j in productive
            ):
                continue
            return False
        return True

    # -- update coverage -------------------------------------------------------

    def _check_update_coverage(self, report):
        for clause, statement in self.clauses:
            for conjunct in ast.conjuncts_of(clause.body):
                self._check_call_site(conjunct, statement, report)
        for statement in self.queries:
            for conjunct in ast.conjuncts_of(statement.expr):
                self._check_call_site(conjunct, statement, report)
        for shape in self.required:
            self._check_required_shape(shape, report)

    def _check_call_site(self, conjunct, statement, report):
        shape = parse_call_shape(conjunct)
        if shape is None:
            return
        db, name, sign, args_expr = shape
        clauses, wildcard_name = self.program.clauses_for(db, name, sign)
        if not clauses:
            if sign is not None and self.program.is_derived((db, name)):
                report.add(
                    "IDL030",
                    f"view .{db}.{name} is updated here but no {sign!r} "
                    "view-update program is registered for it",
                    loc=conjunct.loc if conjunct.loc else statement.loc,
                    context=to_source(statement),
                )
            return
        given = _call_arg_names(args_expr)
        if given is None:
            return  # malformed argument list; the executor reports at run time
        if not self._covered(clauses, given, wildcard_name is not None):
            report.add(
                "IDL030",
                f"call .{db}.{name or '<REL>'}{sign or ''} with bindings "
                f"({', '.join(sorted(given)) or 'none'}) is not covered by "
                "any clause; accepted signatures: "
                + self._signatures_hint(clauses),
                loc=conjunct.loc if conjunct.loc else statement.loc,
                context=to_source(statement),
            )

    def _check_required_shape(self, shape, report):
        clauses, wildcard_name = self.program.clauses_for(
            shape.db, shape.name, shape.sign
        )
        origin = f" (required by {shape.origin})" if shape.origin else ""
        if not clauses:
            report.add(
                "IDL030",
                f"update entry point {shape.describe()} has no translator "
                f"clause{origin}",
            )
            return
        wildcard = wildcard_name is not None or shape.name is None
        if not self._covered(clauses, shape.params, wildcard):
            report.add(
                "IDL030",
                f"no clause covers the call shape {shape.describe()}"
                f"{origin}; accepted signatures: "
                + self._signatures_hint(clauses),
            )

    # -- types and effects ----------------------------------------------------

    def _check_types(self, report):
        """IDL050/IDL051: solve the type lattice over the whole program."""
        inference = TypeInference()
        for statement in self.rule_stmts:
            inference.add_rule(statement)
        for clause, statement in self.clauses:
            inference.add_clause(clause, origin=statement)
        for statement in self.queries:
            inference.add_query(statement)
        for finding in inference.run():
            statement = finding.origin
            loc = finding.loc
            if loc is None and statement is not None:
                loc = statement.loc
            report.add(
                finding.code,
                finding.message,
                loc=loc,
                context=to_source(statement) if statement is not None else None,
            )

    def _check_footprints(self, report):
        """IDL060: inferred writes must stay inside declared footprints."""
        shapes = [shape for shape in self.required if shape.writes is not None]
        if not shapes:
            return
        analysis = EffectAnalysis(self.program)
        stmt_of = {id(clause): stmt for clause, stmt in self.clauses}
        for shape in shapes:
            clauses, _ = self.program.clauses_for(
                shape.db, shape.name, shape.sign
            )
            for clause in clauses:
                self._check_clause_footprint(
                    analysis, shape, clause, stmt_of.get(id(clause)), report
                )

    def _check_clause_footprint(self, analysis, shape, clause, statement,
                                report):
        origin = f" (declared by {shape.origin})" if shape.origin else ""
        allowed = ", ".join(sorted(shape.writes)) or "none"
        context = to_source(statement) if statement is not None else None

        def offend(conjunct_loc, what):
            report.add(
                "IDL060",
                f"program {shape.describe()} writes {what}, outside its "
                f"declared footprint [{allowed}]{origin}",
                loc=conjunct_loc if conjunct_loc else getattr(
                    statement, "loc", None),
                context=context,
            )

        for conjunct in ast.conjuncts_of(clause.body):
            key = analysis.call_key(conjunct)
            if key is not None:
                _reads, writes = analysis.program_effects(key)
                for db, rel in sorted(
                    writes, key=lambda p: (p[0] or "", p[1] or "")
                ):
                    if self._exempt_write(db, rel, shape.writes):
                        continue
                    target = (f".{db or '<DB>'}.{rel or '<REL>'}"
                              f" (via .{key[0]}.{key[1] or '<REL>'})")
                    offend(conjunct.loc, target)
                continue
            for pattern, written, loc in collect_accesses(conjunct):
                if not written:
                    continue
                db = (pattern[0].value
                      if pattern and isinstance(pattern[0], Const) else None)
                rel = (pattern[1].value
                       if len(pattern) > 1 and isinstance(pattern[1], Const)
                       else None)
                if self._exempt_write(db, rel, shape.writes):
                    continue
                offend(loc, f".{db or '<DB>'}.{rel or '<REL>'}")

    def _exempt_write(self, db, rel, allowed):
        """Is a ``(db, rel)`` write inside the declared footprint?

        Derived view targets are exempt: a signed view reference routes
        through its view-update programs (checked at their own call
        sites, and by IDL030 when missing), not to a member database.
        """
        if db is None:
            return False  # symbolic database: unverifiable, report it
        if db in allowed:
            return True
        path = (Const(db),
                Const(rel) if rel is not None else Var("_"))
        return any(
            patterns_overlap(path, analyzed.target) for analyzed in self.rules
        )

    def _covered(self, clauses, given, wildcard):
        """Does some clause accept a call giving exactly ``given`` params?"""
        given = set(given)
        for clause in clauses:
            if given - set(clause.param_terms):
                continue  # unknown argument names: the clause rejects
            bound = {
                clause.param_terms[attr].name
                for attr in given
                if isinstance(clause.param_terms.get(attr), Var)
            }
            relation_term = clause.param_terms.get("__relation__")
            if isinstance(relation_term, Var):
                bound.add(relation_term.name)
            if body_executable(clause.body, bound):
                return True
        return False

    def _signatures_hint(self, clauses):
        """Minimal acceptable parameter sets, in call-argument terms.

        Like :func:`repro.core.binding.minimal_signatures` but mapping
        each parameter's attribute name to the body variable it binds,
        which is what actually matters for safety.
        """
        rendered = set()
        for clause in clauses:
            var_of = {
                attr: term.name
                for attr, term in clause.param_terms.items()
                if attr != "__relation__" and isinstance(term, Var)
            }
            always = set()
            relation_term = clause.param_terms.get("__relation__")
            if isinstance(relation_term, Var):
                always.add(relation_term.name)
            attrs = tuple(sorted(var_of))
            minimal = []
            for size in range(len(attrs) + 1):
                for subset in combinations(attrs, size):
                    candidate = frozenset(subset)
                    if any(existing <= candidate for existing in minimal):
                        continue
                    bound = always | {var_of[attr] for attr in candidate}
                    if body_executable(clause.body, bound):
                        minimal.append(candidate)
            for signature in minimal:
                rendered.add(
                    "+".join(sorted(signature)) if signature else "(none)"
                )
        return ", ".join(sorted(rendered)) if rendered else "(none)"


# ---------------------------------------------------------------------------
# Reference extraction (schema-aware variant of rules.body_references)
# ---------------------------------------------------------------------------


def _collect_path_refs(expr, prefix, under_plus, out):
    """Collect ``(pattern, under_plus)`` path references of a conjunct.

    Mirrors :func:`repro.core.rules._collect_refs` but tracks whether a
    ``+`` sign occurs along the path — such writes may *create* the
    referenced structure, so they are exempt from unknown-relation
    checks.
    """
    if isinstance(expr, ast.AttrStep):
        under_plus = under_plus or expr.sign == ast.PLUS
        pattern = prefix + (expr.attr,)
        inner = expr.expr
        while isinstance(inner, ast.NegExpr):
            inner = inner.inner
        if isinstance(inner, ast.AttrStep):
            _collect_path_refs(inner, pattern, under_plus, out)
        elif isinstance(inner, ast.TupleExpr):
            recorded = False
            for conjunct in inner.conjuncts:
                if isinstance(conjunct, (ast.AttrStep, ast.NegExpr)):
                    _collect_path_refs(conjunct, pattern, under_plus, out)
                    recorded = True
            if not recorded:
                out.append((pattern, under_plus))
        elif isinstance(inner, ast.SetExpr):
            out.append((pattern, under_plus or inner.sign == ast.PLUS))
        else:
            out.append((pattern, under_plus))
        return
    if isinstance(expr, ast.NegExpr):
        _collect_path_refs(expr.inner, prefix, under_plus, out)
        return
    if isinstance(expr, ast.TupleExpr):
        for conjunct in expr.conjuncts:
            _collect_path_refs(conjunct, prefix, under_plus, out)
        return
    if prefix:
        out.append((prefix, under_plus))


def _call_arg_names(args_expr):
    """Attribute names of a ``.name=term`` call argument list, or None."""
    names = []
    for item in ast.conjuncts_of(args_expr):
        if isinstance(item, ast.Epsilon):
            continue
        if (
            not isinstance(item, ast.AttrStep)
            or item.sign is not None
            or not isinstance(item.attr, Const)
            or not isinstance(item.expr, ast.AtomicExpr)
            or item.expr.op != "="
            or item.expr.sign is not None
        ):
            return None
        names.append(item.attr.value)
    return names
