"""Member schema catalogs for schema-aware static analysis.

A :class:`Catalog` is the analyzer's picture of what the federation's
members actually expose: database names, relation names, and (when
enumerable) attribute names per relation. It is deliberately a plain
value object — built from a live :class:`~repro.objects.universe.Universe`,
from ``{db: {rel: rows}}`` snapshots a connector scanned, or by hand in
tests — so ``idlcheck`` never needs to touch a member to validate a
program against it.

A database may be marked **opaque**: it is known to exist but its
relations cannot be enumerated (e.g. the member is quarantined behind a
failing connector). References into opaque databases are never reported
as unknown — the analyzer cannot prove them wrong.
"""

from __future__ import annotations

#: Stop sampling attribute names after this many elements per relation;
#: schemas repeat long before data does.
_ATTR_SAMPLE_LIMIT = 500


class Catalog:
    """What databases/relations/attributes the analyzed program may read."""

    def __init__(self):
        self.databases = {}  # db -> {rel -> frozenset(attr names) | None}
        self.opaque = set()  # dbs that exist but cannot be enumerated

    # -- construction --------------------------------------------------------

    def add_database(self, name):
        self.databases.setdefault(name, {})
        return self

    def add_relation(self, db, rel, attrs=None):
        self.add_database(db)
        self.databases[db][rel] = (
            None if attrs is None else frozenset(attrs)
        )
        return self

    def mark_opaque(self, db):
        """``db`` exists, but what it contains is unknowable right now."""
        self.add_database(db)
        self.opaque.add(db)
        return self

    def update(self, other):
        """Merge another catalog into this one (attrs union per relation)."""
        for db, relations in other.databases.items():
            self.add_database(db)
            for rel, attrs in relations.items():
                existing = self.databases[db].get(rel)
                if existing is None or attrs is None:
                    merged = existing if attrs is None else attrs
                    if rel in self.databases[db] and existing is None:
                        merged = None
                else:
                    merged = existing | attrs
                self.databases[db][rel] = merged
        self.opaque |= other.opaque
        return self

    @classmethod
    def from_relations(cls, databases):
        """Build from ``{db: {rel: [row dicts]}}`` connector snapshots."""
        catalog = cls()
        for db, relations in (databases or {}).items():
            catalog.add_database(db)
            for rel, rows in (relations or {}).items():
                attrs = set()
                for row in list(rows)[:_ATTR_SAMPLE_LIMIT]:
                    if isinstance(row, dict):
                        attrs.update(
                            key for key in row if isinstance(key, str)
                        )
                catalog.add_relation(db, rel, attrs)
        return catalog

    @classmethod
    def from_universe(cls, universe):
        """Build from a live universe of IDL objects."""
        catalog = cls()
        for db_name in universe.attr_names():
            db = universe.get(db_name)
            catalog.add_database(db_name)
            if not db.is_tuple:
                catalog.mark_opaque(db_name)
                continue
            for rel_name in db.attr_names():
                rel = db.get(rel_name)
                if not rel.is_set:
                    continue
                attrs = set()
                for index, element in enumerate(rel.elements()):
                    if index >= _ATTR_SAMPLE_LIMIT:
                        break
                    if element.is_tuple:
                        attrs.update(element.attr_names())
                catalog.add_relation(db_name, rel_name, attrs)
        return catalog

    # -- queries -------------------------------------------------------------

    def has_database(self, db):
        return db in self.databases

    def is_opaque(self, db):
        return db in self.opaque

    def relations(self, db):
        return sorted(self.databases.get(db, ()))

    def has_relation(self, db, rel):
        return rel in self.databases.get(db, {})

    def attributes(self, db, rel):
        """Attribute names of ``db.rel``, or None when not enumerable."""
        return self.databases.get(db, {}).get(rel)

    def paths(self):
        """Every known ``(db, rel)`` pair (opaque databases excluded)."""
        return [
            (db, rel)
            for db, relations in self.databases.items()
            if db not in self.opaque
            for rel in relations
        ]

    def __repr__(self):
        sizes = {
            db: ("?" if db in self.opaque else len(rels))
            for db, rels in self.databases.items()
        }
        return f"Catalog({sizes})"
