"""Type-signature inference for IDL programs.

IDL variables range over *data* and *metadata*: the same variable can
carry a closing price in one member and a relation name in another
(the paper's Section 4 examples). That freedom is still typed — every
use site constrains a variable to a point in a small lattice::

            top
             |
            atom
           /    \\
         num    str
                 |
           name{db,rel,attr}
                 |
                bot

``name`` carries the set of *roles* the variable plays (database,
relation, or attribute position); role evidence accumulates rather than
clashing, because flowing a value between a data position and a name
position is exactly the feature the paper adds. What *does* clash is
arithmetic against names: ``meet(num, name) = bot``, surfaced as
**IDL050** (type-clash). Ground selections that can never hold — a
variable equated to two distinct constants, or contradictory constant
comparisons on one attribute of one tuple — surface as **IDL051**
(unsatisfiable-selection).

Inference is interprocedural: each rule head exports per-attribute
types for its target predicate (joined across rules), and every body
or query reference of that predicate imports them by unification
(meet), iterated to a fixpoint. :class:`TypeInference` is driven by
:class:`~repro.analysis.checker.ProgramChecker` but is usable
standalone — feed it statements, call :meth:`run`, read
:attr:`findings` and :meth:`signature`.
"""

from __future__ import annotations

from repro.core import ast
from repro.core.terms import Arith, Const, Var

_ORDER = {"bot": 0, "name": 1, "str": 2, "num": 2, "atom": 3, "top": 4}

#: Path-depth -> the name role a variable in that attribute position plays.
ROLES = ("db", "rel", "attr")


class AbstractType:
    """One point of the type lattice. Immutable; compare with ``==``."""

    __slots__ = ("kind", "roles")

    def __init__(self, kind, roles=frozenset()):
        self.kind = kind
        self.roles = frozenset(roles)

    def __eq__(self, other):
        return (isinstance(other, AbstractType)
                and self.kind == other.kind and self.roles == other.roles)

    def __hash__(self):
        return hash((self.kind, self.roles))

    def render(self):
        if self.kind == "name" and self.roles:
            return "name[%s]" % ",".join(
                role for role in ROLES if role in self.roles)
        return self.kind

    def __repr__(self):
        return f"AbstractType({self.render()})"


TOP = AbstractType("top")
ATOM = AbstractType("atom")
STR = AbstractType("str")
NUM = AbstractType("num")
BOT = AbstractType("bot")


def name_type(*roles):
    return AbstractType("name", frozenset(roles))


def meet(left, right):
    """Greatest lower bound — unification of two evidence sources."""
    if left.kind == "top" or right.kind == "bot":
        return right
    if right.kind == "top" or left.kind == "bot":
        return left
    if left.kind == "atom":
        return right
    if right.kind == "atom":
        return left
    if left.kind == "name" and right.kind == "name":
        return AbstractType("name", left.roles | right.roles)
    if {left.kind, right.kind} == {"str", "name"}:
        return left if left.kind == "name" else right
    if left.kind == right.kind:
        return left
    return BOT  # num vs str, num vs name


def join(left, right):
    """Least upper bound — merging alternatives across rules."""
    if left.kind == "bot" or right.kind == "top":
        return right
    if right.kind == "bot" or left.kind == "top":
        return left
    if left.kind == "name" and right.kind == "name":
        return AbstractType("name", left.roles | right.roles)
    if left == right:
        return left
    if {left.kind, right.kind} == {"str", "name"}:
        return STR
    if left.kind == "atom" or right.kind == "atom":
        return ATOM
    return ATOM  # num vs str, num vs name


def type_of_constant(value):
    if isinstance(value, bool):
        return ATOM
    if isinstance(value, (int, float)):
        return NUM
    if isinstance(value, str):
        return STR
    return ATOM


class _VarState:
    __slots__ = ("type", "values", "loc", "clashed")

    def __init__(self):
        self.type = TOP
        self.values = []  # distinct constants equated via `=`
        self.loc = None  # position of the latest evidence
        self.clashed = False


class _Scope:
    """Union-find over one statement's variables."""

    def __init__(self):
        self._parent = {}
        self._state = {}

    def find(self, name):
        if name not in self._parent:
            self._parent[name] = name
            self._state[name] = _VarState()
        root = name
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[name] != root:
            self._parent[name], name = root, self._parent[name]
        return root

    def state(self, name):
        return self._state[self.find(name)]

    def union(self, left, right):
        lroot, rroot = self.find(left), self.find(right)
        if lroot == rroot:
            return self._state[lroot]
        merged, absorbed = self._state[lroot], self._state[rroot]
        self._parent[rroot] = lroot
        merged.type = meet(merged.type, absorbed.type)
        for value in absorbed.values:
            if value not in merged.values:
                merged.values.append(value)
        merged.loc = merged.loc or absorbed.loc
        merged.clashed = merged.clashed or absorbed.clashed
        return merged

    def variables(self):
        return list(self._parent)


class Finding:
    """One raw type finding — the checker turns these into Diagnostics."""

    __slots__ = ("code", "message", "loc", "origin")

    def __init__(self, code, message, loc, origin=None):
        self.code = code
        self.message = message
        self.loc = loc
        self.origin = origin


class TypeInference:
    """Infer per-variable and per-predicate types over statements.

    Feed statements with :meth:`add_rule` / :meth:`add_clause` /
    :meth:`add_query`, then :meth:`run`. Findings accumulate in
    :attr:`findings`; per-predicate signatures are available through
    :meth:`signature`.
    """

    MAX_ROUNDS = 8

    def __init__(self):
        self._units = []  # (kind, head_expr|None, body_exprs, origin_loc)
        self._signatures = {}  # (db, rel) -> {attr: AbstractType}
        self.findings = []

    # -- feeding -------------------------------------------------------------

    def add_rule(self, rule):
        self._units.append(("rule", rule.head, [rule.body], rule))

    def add_clause(self, clause, origin=None):
        # Parameters unify with body occurrences through the shared
        # scope; the head itself carries no path context.
        self._units.append(("clause", None, [clause.body], origin))

    def add_query(self, query):
        self._units.append(("query", None, [query.expr], query))

    # -- solving -------------------------------------------------------------

    def run(self):
        """Iterate local solving and signature export to a fixpoint."""
        for _round in range(self.MAX_ROUNDS):
            exports = {}
            for _kind, head, bodies, _origin in self._units:
                scope = _Scope()
                if head is not None:
                    self._walk(head, (), scope, None, report=None)
                for body in bodies:
                    self._walk(body, (), scope, None, report=None)
                if head is not None:
                    self._export(head, scope, exports)
            signatures = {
                key: attrs for key, attrs in exports.items()
            }
            if signatures == self._signatures:
                break
            self._signatures = signatures
        # Final reporting pass against the stable signatures.
        self.findings = []
        for _kind, head, bodies, origin in self._units:
            unit_findings = []
            scope = _Scope()
            selections = {}
            if head is not None:
                self._walk(head, (), scope, selections, report=unit_findings)
            for body in bodies:
                self._walk(body, (), scope, selections, report=unit_findings)
            self._report_values(scope, unit_findings)
            self._report_selections(selections, unit_findings)
            for finding in unit_findings:
                finding.origin = origin
            self.findings.extend(unit_findings)
        return self.findings

    def signature(self, db, rel):
        """``{attr: AbstractType}`` inferred for a derived predicate."""
        return dict(self._signatures.get((db, rel), {}))

    def variable_types(self, expr):
        """``{var: AbstractType}`` for one standalone expression, using
        the already-computed signatures (REPL ``:footprint`` helper)."""
        scope = _Scope()
        self._walk(expr, (), scope, None, report=None)
        return {
            name: scope.state(name).type
            for name in scope.variables()
        }

    # -- the walker ----------------------------------------------------------

    def _meet_var(self, scope, name, newtype, loc, report):
        state = scope.state(name)
        state.loc = loc or state.loc
        old = state.type
        state.type = meet(old, newtype)
        if state.type == BOT and old != BOT and not state.clashed:
            state.clashed = True
            if report is not None:
                report.append(Finding(
                    "IDL050",
                    f"variable {name} cannot be both {old.render()} and "
                    f"{newtype.render()} (metadata/data type clash)",
                    loc or state.loc,
                ))

    def _term(self, scope, term, expected, loc, report):
        """Constrain one term occurrence to ``expected``."""
        if isinstance(term, Var):
            self._meet_var(scope, term.name, expected, loc, report)
        elif isinstance(term, Arith):
            self._term(scope, term.left, NUM, loc, report)
            self._term(scope, term.right, NUM, loc, report)
        elif isinstance(term, Const) and report is not None:
            if meet(type_of_constant(term.value), expected) == BOT:
                report.append(Finding(
                    "IDL050",
                    f"constant {term.value!r} used where "
                    f"{expected.render()} is required",
                    loc,
                ))

    def _walk(self, expr, path, scope, selections, report, scope_id=None):
        if isinstance(expr, ast.AttrStep):
            attr = expr.attr
            depth = len(path)
            role = ROLES[min(depth, 2)]
            if isinstance(attr, Var):
                self._meet_var(scope, attr.name, name_type(role),
                               attr.loc if hasattr(attr, "loc") else expr.loc,
                               report)
            elif report is not None and not isinstance(attr.value, str):
                report.append(Finding(
                    "IDL050",
                    f"constant {attr.value!r} used as a {role} name "
                    "(names are strings)",
                    expr.loc,
                ))
            self._walk(expr.expr, path + (attr,), scope, selections,
                       report, scope_id)
            return
        if isinstance(expr, ast.NegExpr):
            self._walk(expr.inner, path, scope, selections, report, scope_id)
            return
        if isinstance(expr, ast.TupleExpr):
            for conjunct in expr.conjuncts:
                self._walk(conjunct, path, scope, selections, report,
                           scope_id)
            return
        if isinstance(expr, ast.SetExpr):
            # One set expression builds one tuple at a time: constant
            # selections inside it must be jointly satisfiable.
            self._walk(expr.inner, path, scope, selections, report, id(expr))
            return
        if isinstance(expr, ast.AtomicExpr):
            self._atomic(expr, path, scope, selections, report, scope_id)
            return
        if isinstance(expr, ast.Constraint):
            self._constraint(expr, scope, report)
            return
        # Epsilon and future leaves: nothing to constrain.

    def _atomic(self, expr, path, scope, selections, report,
                scope_id=None):
        term = expr.term
        if isinstance(term, Arith):
            self._term(scope, term, NUM, expr.loc, report)
            return
        if isinstance(term, Var):
            state = scope.state(term.name)
            state.loc = state.loc or expr.loc
            self._meet_var(scope, term.name, ATOM, expr.loc, report)
            # Imported signature types flow into the bound variable.
            imported = self._lookup_signature(path)
            if imported is not None:
                self._meet_var(scope, term.name, imported, expr.loc, report)
            return
        if isinstance(term, Const):
            imported = self._lookup_signature(path)
            if imported is not None:
                self._term(scope, term, imported, expr.loc, report)
            if (selections is not None and expr.op in ("=", "<", "<=",
                                                       ">", ">=")
                    and len(path) >= 3 and isinstance(path[-1], Const)):
                key = (scope_id, tuple(
                    part.value if isinstance(part, Const) else None
                    for part in path))
                selections.setdefault(key, []).append(
                    (expr.op, term.value, expr.loc))

    def _constraint(self, expr, scope, report):
        left, op, right = expr.left, expr.op, expr.right
        if op == "=":
            if isinstance(left, Var) and isinstance(right, Var):
                scope.union(left.name, right.name)
                return
            for var_side, other in ((left, right), (right, left)):
                if not isinstance(var_side, Var):
                    continue
                if isinstance(other, Const):
                    self._meet_var(scope, var_side.name,
                                   type_of_constant(other.value),
                                   expr.loc, report)
                    state = scope.state(var_side.name)
                    if other.value not in state.values:
                        state.values.append(other.value)
                    state.loc = expr.loc or state.loc
                elif isinstance(other, Arith):
                    self._meet_var(scope, var_side.name, NUM, expr.loc,
                                   report)
        for side in (left, right):
            if isinstance(side, Arith):
                self._term(scope, side, NUM, expr.loc, report)

    # -- signatures ----------------------------------------------------------

    def _lookup_signature(self, path):
        if len(path) < 3:
            return None
        db, rel, attr = path[0], path[1], path[-1]
        if not all(isinstance(part, Const) for part in (db, rel, attr)):
            return None
        attrs = self._signatures.get((db.value, rel.value))
        if attrs is None:
            return None
        return attrs.get(attr.value)

    def _export(self, head, scope, exports):
        """Join this rule's head attribute types into ``exports``."""
        for key, attr, term in _head_bindings(head):
            if isinstance(term, Var):
                inferred = scope.state(term.name).type
            elif isinstance(term, Const):
                inferred = type_of_constant(term.value)
            else:
                inferred = NUM  # Arith heads compute numbers
            if inferred == BOT:
                continue  # clashes are reported, not propagated
            attrs = exports.setdefault(key, {})
            attrs[attr] = join(attrs.get(attr, BOT), inferred)

    # -- reporting -----------------------------------------------------------

    def _report_values(self, scope, findings):
        seen = set()
        for name in scope.variables():
            root = scope.find(name)
            if root in seen:
                continue
            seen.add(root)
            state = scope.state(root)
            if len(state.values) > 1:
                first, second = state.values[0], state.values[1]
                findings.append(Finding(
                    "IDL051",
                    f"variable {name} is equated to distinct constants "
                    f"{first!r} and {second!r}; the selection can never "
                    "hold",
                    state.loc,
                ))

    def _report_selections(self, selections, findings):
        for (_scope_id, pattern), constraints in selections.items():
            conflict = _ground_conflict(constraints)
            if conflict is not None:
                (op1, val1, _loc1), (op2, val2, loc2) = conflict
                attr = pattern[-1]
                findings.append(Finding(
                    "IDL051",
                    f"attribute {attr} constrained by `{op1} {val1!r}` and "
                    f"`{op2} {val2!r}` in one tuple; the selection can "
                    "never hold",
                    loc2,
                ))


def _head_bindings(head):
    """``((db, rel), attr, term)`` triples exported by a rule head."""
    bindings = []

    def descend(expr, path):
        if isinstance(expr, ast.AttrStep):
            descend(expr.expr, path + (expr.attr,))
        elif isinstance(expr, (ast.SetExpr,)):
            descend(expr.inner, path)
        elif isinstance(expr, ast.TupleExpr):
            for conjunct in expr.conjuncts:
                descend(conjunct, path)
        elif isinstance(expr, ast.NegExpr):
            descend(expr.inner, path)
        elif isinstance(expr, ast.AtomicExpr):
            if (len(path) >= 3
                    and all(isinstance(p, Const) for p in path[:2])
                    and isinstance(path[-1], Const)):
                key = (path[0].value, path[1].value)
                bindings.append((key, path[-1].value, expr.term))

    descend(head, ())
    return bindings


def _comparable(left, right):
    try:
        left < right  # noqa: B015 — probing comparability only
    except TypeError:
        return False
    return True


def _ground_conflict(constraints):
    """The first contradictory pair of ``(op, value, loc)`` constraints
    over one attribute of one tuple, or None."""
    for i, (op1, val1, loc1) in enumerate(constraints):
        for op2, val2, loc2 in constraints[i + 1:]:
            if not _comparable(val1, val2):
                continue
            pair = ((op1, val1, loc1), (op2, val2, loc2))
            if op1 == "=" and op2 == "=" and val1 != val2:
                return pair
            for (eq_op, eq_val, _), (cmp_op, cmp_val, _) in (
                    (pair[0], pair[1]), (pair[1], pair[0])):
                if eq_op != "=" or cmp_op == "=":
                    continue
                holds = {
                    "<": eq_val < cmp_val,
                    "<=": eq_val <= cmp_val,
                    ">": eq_val > cmp_val,
                    ">=": eq_val >= cmp_val,
                }[cmp_op]
                if not holds:
                    return pair
            if op1 in (">", ">=") and op2 in ("<", "<="):
                if val1 > val2 or (val1 == val2
                                   and (op1 == ">" or op2 == "<")):
                    return pair
            if op2 in (">", ">=") and op1 in ("<", "<="):
                if val2 > val1 or (val2 == val1
                                   and (op2 == ">" or op1 == "<")):
                    return pair
    return None
