"""Synthetic workload generators (substitute for the paper's real-world
stock feeds, per the reproduction's substitution rule).

* :mod:`repro.workloads.stocks` — the running example in all three
  schema styles, scalable in stocks/days, with optional name conflicts
  and the Section 6 mapping relations;
* :mod:`repro.workloads.empdept` — the Section 2 emp/dept view-update
  workload;
* :mod:`repro.workloads.generators` — seeded primitives.
"""

from repro.workloads.budgets import BudgetWorkload
from repro.workloads.budgets import UNIFIED_RULES as BUDGET_UNIFIED_RULES
from repro.workloads.empdept import (
    CHANGE_DEPT_MGR_PROGRAM,
    EMP_MGR_RULE,
    MOVE_EMPLOYEE_PROGRAM,
)
from repro.workloads.empdept import build_universe as empdept_universe
from repro.workloads.generators import (
    random_walk_prices,
    rng,
    ticker_symbols,
    trading_days,
)
from repro.workloads.stocks import STYLES, StockWorkload, paper_universe

__all__ = [
    "BUDGET_UNIFIED_RULES",
    "BudgetWorkload",
    "CHANGE_DEPT_MGR_PROGRAM",
    "EMP_MGR_RULE",
    "MOVE_EMPLOYEE_PROGRAM",
    "STYLES",
    "StockWorkload",
    "empdept_universe",
    "paper_universe",
    "random_walk_prices",
    "rng",
    "ticker_symbols",
    "trading_days",
]
