"""The paper's stock-market workload, in all three schema styles.

The running example (paper Section 1): three databases record the same
information — the closing price of each stock on each day — under
schematically discrepant schemata:

* **euter**: one relation ``r(date, stkCode, clsPrice)`` — stocks are
  plain data;
* **chwab**: one relation ``r(date, stk1, stk2, ...)`` — stocks are
  attribute names;
* **ource**: one relation per stock, ``stkN(date, clsPrice)`` — stocks
  are relation names.

:class:`StockWorkload` generates a seeded quote stream and renders it in
any of the styles, optionally with per-database stock/date subsets (the
paper: "they may deal with different stocks, dates, or closing prices")
and optionally with per-database *naming conventions* plus the
``mapCE``/``mapOE`` name-mapping relations of Section 6.
"""

from __future__ import annotations

from repro.objects.universe import Universe
from repro.workloads.generators import (
    pick_subset,
    random_walk_prices,
    rng,
    ticker_symbols,
    trading_days,
)

STYLES = ("euter", "chwab", "ource")


class StockWorkload:
    """A deterministic quote universe, renderable per schema style."""

    def __init__(self, n_stocks=8, n_days=10, seed=1985, overlap=1.0,
                 start_price=100.0, volatility=0.03):
        if n_stocks < 1 or n_days < 1:
            raise ValueError("need at least one stock and one day")
        self.n_stocks = n_stocks
        self.n_days = n_days
        self.seed = seed
        self.overlap = overlap
        self.symbols = ticker_symbols(n_stocks, seed=seed)
        self.days = trading_days(n_days)
        generator = rng((seed, "prices"))
        self.prices = {}
        for symbol in self.symbols:
            walk = random_walk_prices(
                generator, n_days, start=start_price, volatility=volatility
            )
            for day, price in zip(self.days, walk):
                self.prices[(day, symbol)] = price

    # -- quote access ----------------------------------------------------

    def quotes(self, symbols=None, days=None):
        """``(day, symbol, price)`` triples, restricted if asked."""
        symbols = self.symbols if symbols is None else symbols
        days = self.days if days is None else days
        return [
            (day, symbol, self.prices[(day, symbol)])
            for day in days
            for symbol in symbols
        ]

    def price(self, day, symbol):
        return self.prices[(day, symbol)]

    def member_symbols(self, db_name):
        """The stock subset a member database carries (overlap < 1 makes
        members disagree, as autonomous databases do)."""
        if self.overlap >= 1.0:
            return list(self.symbols)
        generator = rng((self.seed, "membership", db_name))
        return pick_subset(generator, self.symbols, self.overlap)

    # -- schema styles ----------------------------------------------------

    def euter_relations(self, symbols=None):
        """``{"r": rows}`` in the euter style (stocks as data)."""
        rows = [
            {"date": day, "stkCode": symbol, "clsPrice": price}
            for day, symbol, price in self.quotes(symbols)
        ]
        return {"r": rows}

    def chwab_relations(self, symbols=None):
        """``{"r": rows}`` in the chwab style (stocks as attributes)."""
        symbols = self.symbols if symbols is None else symbols
        rows = []
        for day in self.days:
            row = {"date": day}
            for symbol in symbols:
                row[symbol] = self.prices[(day, symbol)]
            rows.append(row)
        return {"r": rows}

    def ource_relations(self, symbols=None):
        """``{symbol: rows}`` in the ource style (stocks as relations)."""
        symbols = self.symbols if symbols is None else symbols
        return {
            symbol: [
                {"date": day, "clsPrice": self.prices[(day, symbol)]}
                for day in self.days
            ]
            for symbol in symbols
        }

    def relations_for(self, style, symbols=None):
        if style == "euter":
            return self.euter_relations(symbols)
        if style == "chwab":
            return self.chwab_relations(symbols)
        if style == "ource":
            return self.ource_relations(symbols)
        raise ValueError(f"unknown schema style {style!r}")

    # -- universes ----------------------------------------------------------

    def universe(self, members=None):
        """A universe with one member database per schema style.

        ``members`` maps database name -> style, defaulting to the
        paper's euter/chwab/ource trio. With ``overlap < 1`` each member
        carries its own stock subset.
        """
        members = members or {style: style for style in STYLES}
        universe = Universe()
        for db_name, style in members.items():
            symbols = self.member_symbols(db_name)
            universe.add_database(db_name)
            for rel_name, rows in self.relations_for(style, symbols).items():
                universe.add_relation(db_name, rel_name, rows)
        return universe

    def universe_with_name_conflicts(self):
        """The Section 6 ending: member databases use their own stock
        codes; ``mapCE`` / ``mapOE`` map chwab/ource names to euter's.

        chwab prefixes codes with ``c_`` and ource with ``o_``, so no
        name is shared across members — queries must go through the
        mapping relations.
        """
        universe = Universe()
        universe.add_database("euter")
        for rel_name, rows in self.euter_relations().items():
            universe.add_relation("euter", rel_name, rows)

        chwab_names = {symbol: f"c_{symbol}" for symbol in self.symbols}
        ource_names = {symbol: f"o_{symbol}" for symbol in self.symbols}

        universe.add_database("chwab")
        rows = []
        for day in self.days:
            row = {"date": day}
            for symbol in self.symbols:
                row[chwab_names[symbol]] = self.prices[(day, symbol)]
            rows.append(row)
        universe.add_relation("chwab", "r", rows)

        universe.add_database("ource")
        for symbol in self.symbols:
            universe.add_relation(
                "ource",
                ource_names[symbol],
                [
                    {"date": day, "clsPrice": self.prices[(day, symbol)]}
                    for day in self.days
                ],
            )

        universe.add_database("dbU")
        universe.add_relation(
            "dbU",
            "mapCE",
            [{"c": chwab_names[s], "e": s} for s in self.symbols],
        )
        universe.add_relation(
            "dbU",
            "mapOE",
            [{"o": ource_names[s], "e": s} for s in self.symbols],
        )
        return universe


def paper_universe():
    """The tiny hand-written universe used throughout the paper's text."""
    return Universe.from_python(
        {
            "euter": {
                "r": [
                    {"date": "3/3/85", "stkCode": "hp", "clsPrice": 50},
                    {"date": "3/4/85", "stkCode": "hp", "clsPrice": 65},
                    {"date": "3/3/85", "stkCode": "ibm", "clsPrice": 160},
                    {"date": "3/4/85", "stkCode": "ibm", "clsPrice": 155},
                ]
            },
            "chwab": {
                "r": [
                    {"date": "3/3/85", "hp": 50, "ibm": 160},
                    {"date": "3/4/85", "hp": 65, "ibm": 155},
                ]
            },
            "ource": {
                "hp": [
                    {"date": "3/3/85", "clsPrice": 50},
                    {"date": "3/4/85", "clsPrice": 65},
                ],
                "ibm": [
                    {"date": "3/3/85", "clsPrice": 160},
                    {"date": "3/4/85", "clsPrice": 155},
                ],
            },
        }
    )
