"""The employee/department workload (paper Section 2).

The paper's view-update discussion uses the classic

    empMgr(Name, Mgr) <- emp(Name, Dno), dept(Dno, Mgr)

view to show why update translation is ambiguous (change the employee's
department, or change the department's manager?). This workload
generates the two base relations and provides both administrator-chosen
translations as update programs, so tests and benchmarks can exercise
each policy.
"""

from __future__ import annotations

from repro.objects.universe import Universe
from repro.workloads.generators import rng

EMP_MGR_RULE = (
    ".hr.empMgr(.name=N, .mgr=M) <- "
    ".hr.emp(.name=N, .dno=D), .hr.dept(.dno=D, .mgr=M)"
)

# Policy A (paper: "the Dno of the employee can be changed"): move the
# employee into some department the new manager runs.
MOVE_EMPLOYEE_PROGRAM = (
    ".hr.setMgr(.name=N, .mgr=M) -> "
    ".hr.dept(.dno=D, .mgr=M), "
    ".hr.emp-(.name=N), .hr.emp+(.name=N, .dno=D)"
)

# Policy B ("or the Mgr in the dept relation can be changed"): promote
# the new manager over the employee's current department.
CHANGE_DEPT_MGR_PROGRAM = (
    ".hr.setDeptMgr(.name=N, .mgr=M) -> "
    ".hr.emp(.name=N, .dno=D), "
    ".hr.dept-(.dno=D), .hr.dept+(.dno=D, .mgr=M)"
)


def employee_names(count, seed=11):
    generator = rng((seed, "emp"))
    first = ["ana", "bo", "cy", "dee", "ed", "flo", "gus", "hal", "ida", "jo"]
    names = []
    index = 0
    while len(names) < count:
        base = first[index % len(first)]
        suffix = index // len(first)
        names.append(base if suffix == 0 else f"{base}{suffix}")
        index += 1
    generator.shuffle(names)
    return names


def build_universe(n_employees=20, n_departments=4, seed=11):
    """An ``hr`` database with emp(name, dno) and dept(dno, mgr).

    Managers are employees of the same department where possible, which
    produces the join ambiguity the paper discusses.
    """
    if n_departments < 1 or n_employees < n_departments:
        raise ValueError("need at least one employee per department")
    generator = rng((seed, "assign"))
    names = employee_names(n_employees, seed=seed)
    departments = [f"d{index + 1}" for index in range(n_departments)]

    emp_rows = []
    by_department = {dno: [] for dno in departments}
    for index, name in enumerate(names):
        dno = departments[index % n_departments]
        emp_rows.append({"name": name, "dno": dno})
        by_department[dno].append(name)

    dept_rows = []
    for dno in departments:
        members = by_department[dno]
        manager = members[generator.randrange(len(members))]
        dept_rows.append({"dno": dno, "mgr": manager})

    return Universe.from_python({"hr": {"emp": emp_rows, "dept": dept_rows}})
