"""A second schematic-discrepancy domain: departmental budgets.

The classic pivot discrepancy (later literature's favourite SchemaSQL
example): one agency records budgets *long* —

    fin:  budget(dept, year, amount)

another *wide*, with one column per fiscal year —

    plan: budget(dept, y1990, y1991, ...)

and a third keeps one relation per department —

    acct: <dept>(year, amount)

Same information; the year lives in data, attribute names, or the rows
of per-department relations. Everything the stock federation does —
higher-order queries, unifying rules, update programs — applies
unchanged, which is the point: the machinery is domain-agnostic.
"""

from __future__ import annotations

from repro.objects.universe import Universe
from repro.workloads.generators import rng

DEPARTMENTS = ("sales", "eng", "ops", "hr", "legal")

# The wide rule joins the yearName mapping: the higher-order variable YL
# ranges over plan.budget's column names; the join both filters out the
# 'dept' column and translates labels ('y1990') to numeric years.
UNIFIED_RULES = """
.dbB.b(.dept=D, .year=Y, .amount=A) <- .fin.budget(.dept=D, .year=Y, .amount=A)
.dbB.b(.dept=D, .year=Y, .amount=A) <- .plan.budget(.dept=D, .YL=A), .dbU.yearName(.label=YL, .year=Y)
.dbB.b(.dept=D, .year=Y, .amount=A) <- .acct.D(.year=Y, .amount=A)
"""


class BudgetWorkload:
    """Deterministic budgets for n departments x n years, per style."""

    def __init__(self, n_departments=4, n_years=5, first_year=1988, seed=7):
        if not (1 <= n_departments <= len(DEPARTMENTS)):
            raise ValueError(f"1..{len(DEPARTMENTS)} departments supported")
        self.departments = list(DEPARTMENTS[:n_departments])
        self.years = [first_year + offset for offset in range(n_years)]
        generator = rng((seed, "budget"))
        self.amounts = {
            (dept, year): round(generator.uniform(50, 500), 1)
            for dept in self.departments
            for year in self.years
        }

    def entries(self):
        return [
            (dept, year, self.amounts[(dept, year)])
            for dept in self.departments
            for year in self.years
        ]

    @staticmethod
    def year_label(year):
        return f"y{year}"

    # -- the three styles ----------------------------------------------------

    def fin_relations(self):
        """Long form: years are data."""
        return {
            "budget": [
                {"dept": dept, "year": year, "amount": amount}
                for dept, year, amount in self.entries()
            ]
        }

    def plan_relations(self):
        """Wide form: years are attribute names (labels like 'y1990')."""
        rows = []
        for dept in self.departments:
            row = {"dept": dept}
            for year in self.years:
                row[self.year_label(year)] = self.amounts[(dept, year)]
            rows.append(row)
        return {"budget": rows}

    def acct_relations(self):
        """Relation-per-department form: departments are relation names."""
        return {
            dept: [
                {"year": year, "amount": self.amounts[(dept, year)]}
                for year in self.years
            ]
            for dept in self.departments
        }

    def year_name_rows(self):
        """The label <-> year mapping relation the wide rule joins on."""
        return [
            {"label": self.year_label(year), "year": year}
            for year in self.years
        ]

    def universe(self):
        return Universe.from_python(
            {
                "fin": self.fin_relations(),
                "plan": self.plan_relations(),
                "acct": self.acct_relations(),
                "dbU": {"yearName": self.year_name_rows()},
            }
        )
