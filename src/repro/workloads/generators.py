"""Shared generator utilities for synthetic workloads.

Everything is deterministic under a seed — benchmarks and property tests
depend on reproducible data. No wall-clock access anywhere.
"""

from __future__ import annotations

import random
import string
from datetime import date, timedelta

_CONSONANTS = "bcdfghjklmnpqrstvwz"
_VOWELS = "aeiou"


def rng(seed):
    """A dedicated Random instance (never the global one).

    Accepts any hashable seed; composites (tuples) are stringified so
    call sites can namespace streams: ``rng((seed, "prices"))``.
    """
    if not isinstance(seed, (int, float, str, bytes, bytearray, type(None))):
        seed = repr(seed)
    return random.Random(seed)


def ticker_symbols(count, seed=7):
    """``count`` distinct lowercase ticker-like symbols.

    The first symbols are the paper's own examples (hp, ibm, ...) so tiny
    workloads read like the paper; the rest are generated pronounceable
    strings, deduplicated.
    """
    named = ["hp", "ibm", "sun", "dec", "att", "xerox", "intel", "apple"]
    symbols = list(named[:count])
    generator = rng(seed)
    seen = set(symbols)
    while len(symbols) < count:
        length = generator.randint(2, 4)
        word = "".join(
            generator.choice(_CONSONANTS if index % 2 == 0 else _VOWELS)
            for index in range(length)
        )
        suffix = generator.choice(string.ascii_lowercase)
        candidate = word + suffix
        if candidate not in seen:
            seen.add(candidate)
            symbols.append(candidate)
    return symbols


def trading_days(count, start=(1985, 3, 1)):
    """``count`` consecutive weekday dates as ``m/d/yy`` strings.

    The paper writes dates like ``3/3/85``; we follow suit (they lex as
    string literals).
    """
    current = date(*start)
    days = []
    while len(days) < count:
        if current.weekday() < 5:
            days.append(f"{current.month}/{current.day}/{current.year % 100:02d}")
        current += timedelta(days=1)
    return days


def random_walk_prices(generator, count, start=100.0, volatility=0.03,
                       minimum=1.0):
    """A seeded geometric-ish random walk, rounded to cents."""
    prices = []
    price = start
    for _ in range(count):
        price = max(minimum, price * (1.0 + generator.uniform(-volatility, volatility)))
        prices.append(round(price, 2))
    return prices


def pick_subset(generator, items, fraction):
    """A stable-order random subset containing ~``fraction`` of items."""
    kept = [item for item in items if generator.random() < fraction]
    if not kept and items:
        kept = [items[generator.randrange(len(items))]]
    return kept
