"""Live telemetry exposition over HTTP (stdlib only).

A :class:`TelemetryServer` binds a ``ThreadingHTTPServer`` on a daemon
thread and serves the observability state of one federation:

* ``/metrics`` — the registry in Prometheus text format (version
  0.0.4): counters, per-window rate gauges, histogram summaries with
  ``quantile`` labels, plus SLO burn-rate gauges when an SLO tracker is
  attached. Point a Prometheus ``scrape_config`` at it.
* ``/health`` — the federation's ``health_report()`` (per-member
  attempt/failure/breaker state and the journal's status) as JSON.
* ``/slo`` — the :class:`~repro.obs.slo.SLOTracker` report.
* ``/traces/recent`` — the last kept root spans as JSON trees.
* ``/traces/slow`` — the slow-query log entries.

Start it explicitly (``TelemetryServer(obs, federation).start()``),
through ``FederationConfig(telemetry_port=...)``, or from the command
line via ``python -m repro.tools.telemetry``. ``port=0`` binds an
ephemeral port; read it back from ``server.port`` / ``server.url``.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99"))


def _metric_name(name):
    """Sanitize an instrument name for Prometheus (dots become
    underscores: ``connector.pool.latency`` →
    ``connector_pool_latency``)."""
    sanitized = _NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _escape_label(value):
    return (str(value)
            .replace("\\", r"\\")
            .replace("\n", r"\n")
            .replace('"', r'\"'))


def _labels(tags, extra=()):
    pairs = [(key, tags[key]) for key in sorted(tags)] + list(extra)
    if not pairs:
        return ""
    inner = ",".join(
        f'{_metric_name(key)}="{_escape_label(value)}"'
        for key, value in pairs
    )
    return "{" + inner + "}"


def _format_number(value):
    if value is None:
        return "NaN"
    return repr(float(value))


def render_prometheus(registry, slo=None):
    """The registry (and optionally an SLO tracker) as Prometheus text
    exposition format, one ``# TYPE``-introduced family per instrument
    name."""
    lines = []
    by_name = {}
    for (name, _), counter in sorted(registry._counters.items()):
        by_name.setdefault(name, []).append(counter)
    for name, counters in by_name.items():
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        for counter in counters:
            lines.append(
                f"{metric}{_labels(counter.tags)} {counter.value}"
            )
        if any(counter.window is not None for counter in counters):
            lines.append(f"# TYPE {metric}_rate gauge")
            for counter in counters:
                if counter.window is None:
                    continue
                lines.append(
                    f"{metric}_rate{_labels(counter.tags)} "
                    f"{_format_number(counter.window.rate())}"
                )
    by_name = {}
    for (name, _), histogram in sorted(registry._histograms.items()):
        by_name.setdefault(name, []).append(histogram)
    for name, histograms in by_name.items():
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} summary")
        for histogram in histograms:
            summary = histogram.as_dict()
            for quantile, key in _QUANTILES:
                if key not in summary:
                    continue
                labels = _labels(histogram.tags,
                                 extra=[("quantile", quantile)])
                lines.append(
                    f"{metric}{labels} {_format_number(summary[key])}"
                )
            lines.append(
                f"{metric}_count{_labels(histogram.tags)} {summary['count']}"
            )
            lines.append(
                f"{metric}_sum{_labels(histogram.tags)} "
                f"{_format_number(summary['sum'])}"
            )
        lines.append(f"# TYPE {metric}_max gauge")
        for histogram in histograms:
            lines.append(
                f"{metric}_max{_labels(histogram.tags)} "
                f"{_format_number(histogram.maximum)}"
            )
    if slo is not None:
        report = slo.report()
        lines.append("# TYPE slo_burn_rate gauge")
        lines.append("# TYPE slo_availability gauge")
        for section, kind in (("operations", "operation"),
                              ("members", "member")):
            for name, status in report[section].items():
                for window, stats in status["windows"].items():
                    labels = _labels({
                        "kind": kind, "name": name, "window": window,
                    })
                    lines.append(
                        f"slo_burn_rate{labels} "
                        f"{_format_number(stats['burn_rate'])}"
                    )
                    lines.append(
                        f"slo_availability{labels} "
                        f"{_format_number(stats['availability'])}"
                    )
    return "\n".join(lines) + "\n"


class _TelemetryHandler(BaseHTTPRequestHandler):
    """Routes one request against the owning server's federation/obs.

    ``ThreadingHTTPServer`` instantiates one handler per request on its
    worker thread; all shared state lives on ``self.server``."""

    server_version = "IdlTelemetry/1.0"
    protocol_version = "HTTP/1.1"

    def do_GET(self):  # noqa: N802 (http.server naming)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if path == "/metrics":
                obs = self.server.obs
                body = render_prometheus(obs.metrics, getattr(obs, "slo", None))
                self._reply(200, body, "text/plain; version=0.0.4")
            elif path == "/health":
                self._reply_json(self._health())
            elif path == "/slo":
                slo = getattr(self.server.obs, "slo", None)
                self._reply_json(slo.report() if slo is not None else {})
            elif path == "/traces/recent":
                self._reply_json(self.server.obs.recent_traces())
            elif path == "/traces/slow":
                log = getattr(self.server.obs, "slow_log", None)
                self._reply_json(log.entries() if log is not None else [])
            elif path == "/":
                self._reply_json({"endpoints": [
                    "/metrics", "/health", "/slo",
                    "/traces/recent", "/traces/slow",
                ]})
            else:
                self._reply(404, "not found\n", "text/plain")
        except Exception as error:  # pragma: no cover - defensive
            self._reply_json({"error": type(error).__name__,
                              "detail": str(error)}, status=500)

    def _health(self):
        federation = self.server.federation
        if federation is None:
            return {"status": "standalone", "members": {}}
        report = federation.health_report()
        statuses = {member: entry.get("status")
                    for member, entry in report.items()
                    if isinstance(entry, dict) and "status" in entry}
        degraded = [member for member, status in statuses.items()
                    if status not in ("ok", "untried")]
        report["status"] = "degraded" if degraded else "ok"
        return report

    def _reply_json(self, payload, status=200):
        body = json.dumps(payload, indent=2, sort_keys=True, default=str)
        self._reply(status, body + "\n", "application/json")

    def _reply(self, status, body, content_type):
        encoded = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def log_message(self, format, *args):
        """Silenced — scrapes every few seconds would spam stderr."""


class TelemetryServer:
    """Serves one Observability (and optionally its Federation) over
    HTTP on a daemon thread."""

    __slots__ = ("obs", "federation", "host", "_port", "_server", "_thread")

    def __init__(self, obs, federation=None, host="127.0.0.1", port=0):
        self.obs = obs
        self.federation = federation
        self.host = host
        self._port = port
        self._server = None
        self._thread = None

    def start(self):
        if self._server is not None:
            return self
        server = ThreadingHTTPServer(
            (self.host, self._port), _TelemetryHandler
        )
        server.daemon_threads = True
        server.obs = self.obs
        server.federation = self.federation
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever,
            name="idl-telemetry",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self):
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    @property
    def running(self):
        return self._server is not None

    @property
    def port(self):
        """The bound port (resolves ``port=0`` to the ephemeral one)."""
        if self._server is not None:
            return self._server.server_address[1]
        return self._port

    @property
    def url(self):
        return f"http://{self.host}:{self.port}"

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False

    def __repr__(self):
        state = self.url if self.running else "stopped"
        return f"TelemetryServer({state})"
