"""Per-query profiles: the trace rendered as an EXPLAIN-style tree.

A :class:`QueryProfile` wraps the root span of one ``Federation.query``
/ ``update`` / ``call`` and exposes the numbers a user asks for first:
the evaluator's node-visit counters (finally reachable from the result
object instead of dying inside ``EvalContext``), the fixpoint work per
stratum, and a rendering that reads like a database EXPLAIN plan::

    federation.query  [answers=12 on_unavailable=fail]  (2.31 ms)
    ├─ engine.query  [answers=12]  (2.20 ms)
    │  ├─ fixpoint.materialize  [method=seminaive strata=2]  (1.61 ms)
    │  │  ├─ fixpoint.stratum  [index=0 rounds=1 ...]  (0.90 ms)
    │  │  └─ fixpoint.stratum  [index=1 rounds=1 ...]  (0.62 ms)
    │  └─ engine.evaluate  [answers=12 visits=345 ...]  (0.48 ms)
    └─ ...
"""

from __future__ import annotations


class QueryProfile:
    """The profile of one query/update, built from its root span."""

    __slots__ = ("trace",)

    def __init__(self, trace):
        self.trace = trace

    @property
    def counters(self):
        """Evaluator node-visit counters, merged across every
        ``engine.evaluate`` span of the trace (``{}`` when profiling
        was off)."""
        merged = {}
        if self.trace is None:
            return merged
        for span in self.trace.find_all("engine.evaluate"):
            for kind, count in span.attributes.get("counters", {}).items():
                merged[kind] = merged.get(kind, 0) + count
        return merged

    @property
    def index_stats(self):
        """Selection-pushdown counters of this query, as a plain dict:
        ``{"builds": n, "hits": n, "misses": n, "fallbacks": n}``. Zeros
        when the evaluation never reached a set expression (or profiling
        was off); see ``docs/performance.md`` for how to read them."""
        counters = self.counters
        prefix = "index."
        stats = {"builds": 0, "hits": 0, "misses": 0, "fallbacks": 0}
        for kind, count in counters.items():
            if kind.startswith(prefix):
                stats[kind[len(prefix):]] = count
        return stats

    @property
    def strata(self):
        """Attribute dicts of every ``fixpoint.stratum`` span, in
        evaluation order (empty when the materialization was cached)."""
        if self.trace is None:
            return []
        return [
            dict(span.attributes)
            for span in self.trace.find_all("fixpoint.stratum")
        ]

    @property
    def maintenance(self):
        """Attribute dicts of every ``fixpoint.maintain`` span — one per
        in-place view repair in this trace (empty when no update was
        maintained). Each carries ``strata``/``repaired``/``fallbacks``
        /``seeded``/``overdeleted``/``rederived``."""
        if self.trace is None:
            return []
        return [
            dict(span.attributes)
            for span in self.trace.find_all("fixpoint.maintain")
        ]

    @property
    def duration_ms(self):
        return self.trace.duration_ms if self.trace is not None else None

    def render(self):
        """The EXPLAIN-style tree (see the module docstring)."""
        if self.trace is None:
            return "(no trace recorded)"
        return self.trace.render()

    def __repr__(self):
        root = self.trace.name if self.trace is not None else None
        return f"QueryProfile(root={root!r}, counters={self.counters!r})"
