"""Sliding-window aggregation behind the metrics registry.

Cumulative counters answer "how many, ever"; operating the federation
needs "how many, *lately*" — request rates, latency percentiles over
the last minute, burn rates against an SLO. This module provides the
shared ring-buffer machinery: a window of ``buckets`` slots, each
covering ``width / buckets`` seconds, indexed by
``int(now // bucket_width) % buckets``. A slot remembers which bucket
epoch last wrote it; a reader (or the next writer) that finds a stale
stamp treats the slot as empty, so expiry is lazy and O(1) — no
background thread, no timer.

Windows take an injectable ``clock`` (seconds, monotonic) so tests
drive time explicitly with a fake clock. Writes take the window lock
once; reads merge at most ``buckets`` slots. Histogram windows keep a
bounded reservoir per bucket (cyclic overwrite beyond
``samples_per_bucket``) for nearest-rank percentiles, plus exact
per-bucket count/total/max so rates and maxima never lose precision to
sampling.
"""

from __future__ import annotations

import math
import threading
import time


class WindowConfig:
    """Shape of every sliding window a registry hands out.

    ``width``
        Seconds of history a window covers (default: one minute).
    ``buckets``
        Ring slots the width is divided into — more buckets means
        smoother expiry at slightly more merge work per read.
    ``samples_per_bucket``
        Reservoir capacity per histogram bucket; beyond it new samples
        overwrite the oldest in cyclic order.
    ``clock``
        Monotonic seconds; injectable for tests.
    """

    __slots__ = ("width", "buckets", "samples_per_bucket", "clock")

    def __init__(self, width=60.0, buckets=12, samples_per_bucket=64,
                 clock=None):
        if width <= 0:
            raise ValueError(f"window width must be positive, got {width!r}")
        if buckets < 1:
            raise ValueError(f"window needs >= 1 bucket, got {buckets!r}")
        if samples_per_bucket < 1:
            raise ValueError(
                f"samples_per_bucket must be >= 1, got {samples_per_bucket!r}"
            )
        self.width = float(width)
        self.buckets = int(buckets)
        self.samples_per_bucket = int(samples_per_bucket)
        self.clock = clock if clock is not None else time.monotonic

    @property
    def bucket_width(self):
        return self.width / self.buckets

    def __repr__(self):
        return (f"WindowConfig(width={self.width}, buckets={self.buckets}, "
                f"samples_per_bucket={self.samples_per_bucket})")


class _WindowBase:
    """Ring-slot bookkeeping shared by counter and histogram windows."""

    __slots__ = ("config", "_stamps", "_lock", "_started")

    def __init__(self, config):
        self.config = config
        self._stamps = [None] * config.buckets
        self._lock = threading.Lock()
        self._started = config.clock()

    def _slot(self, now):
        """(index, epoch) of the bucket covering ``now``; the caller
        resets the slot when its stamp is from an older epoch."""
        epoch = int(now // self.config.bucket_width)
        return epoch % self.config.buckets, epoch

    def _live_epochs(self, now):
        """Epochs still inside the window ending at ``now``."""
        newest = int(now // self.config.bucket_width)
        return set(range(newest - self.config.buckets + 1, newest + 1))

    def _span_seconds(self, now):
        """Effective denominator for rates: the window width, except
        early in the window's life when less history exists."""
        alive = now - self._started
        return min(self.config.width,
                   max(alive, self.config.bucket_width))


class CounterWindow(_WindowBase):
    """Windowed event count backing per-window rates."""

    __slots__ = ("_counts",)

    def __init__(self, config):
        super().__init__(config)
        self._counts = [0] * config.buckets

    def add(self, amount=1):
        now = self.config.clock()
        index, epoch = self._slot(now)
        with self._lock:
            if self._stamps[index] != epoch:
                self._stamps[index] = epoch
                self._counts[index] = 0
            self._counts[index] += amount

    def total(self, now=None):
        """Events inside the window ending at ``now``."""
        if now is None:
            now = self.config.clock()
        live = self._live_epochs(now)
        with self._lock:
            return sum(
                count
                for stamp, count in zip(self._stamps, self._counts)
                if stamp in live
            )

    def rate(self, now=None):
        """Events per second over the window (or the window's lifetime
        when younger than the width)."""
        if now is None:
            now = self.config.clock()
        return self.total(now) / self._span_seconds(now)


class HistogramWindow(_WindowBase):
    """Windowed distribution: exact count/sum/max per bucket plus a
    bounded cyclic reservoir for percentile estimation."""

    __slots__ = ("_counts", "_totals", "_maxima", "_samples")

    def __init__(self, config):
        super().__init__(config)
        buckets = config.buckets
        self._counts = [0] * buckets
        self._totals = [0.0] * buckets
        self._maxima = [None] * buckets
        self._samples = [[] for _ in range(buckets)]

    def observe(self, value):
        now = self.config.clock()
        index, epoch = self._slot(now)
        cap = self.config.samples_per_bucket
        with self._lock:
            if self._stamps[index] != epoch:
                self._stamps[index] = epoch
                self._counts[index] = 0
                self._totals[index] = 0.0
                self._maxima[index] = None
                self._samples[index] = []
            samples = self._samples[index]
            if len(samples) < cap:
                samples.append(value)
            else:
                samples[self._counts[index] % cap] = value
            self._counts[index] += 1
            self._totals[index] += value
            maximum = self._maxima[index]
            if maximum is None or value > maximum:
                self._maxima[index] = value

    def snapshot(self, now=None):
        """Merged view of the live buckets:
        ``{count, sum, max, rate, p50, p90, p99}`` (percentiles from
        the reservoir, None when the window is empty)."""
        if now is None:
            now = self.config.clock()
        live = self._live_epochs(now)
        count = 0
        total = 0.0
        maximum = None
        merged = []
        with self._lock:
            for index, stamp in enumerate(self._stamps):
                if stamp not in live:
                    continue
                count += self._counts[index]
                total += self._totals[index]
                bucket_max = self._maxima[index]
                if bucket_max is not None and (
                        maximum is None or bucket_max > maximum):
                    maximum = bucket_max
                merged.extend(self._samples[index])
        merged.sort()
        return {
            "count": count,
            "sum": total,
            "max": maximum,
            "rate": count / self._span_seconds(now),
            "p50": percentile(merged, 0.50),
            "p90": percentile(merged, 0.90),
            "p99": percentile(merged, 0.99),
        }


def percentile(sorted_values, fraction):
    """Nearest-rank percentile of an already-sorted list (None when
    empty): the smallest value with at least ``fraction`` of the mass
    at or below it."""
    if not sorted_values:
        return None
    rank = max(0, math.ceil(fraction * len(sorted_values)) - 1)
    return sorted_values[rank]
