"""Federation-wide metrics: counters and histograms with tags.

A :class:`MetricsRegistry` is a flat namespace of named instruments,
optionally qualified by tags (``counter("connector.scan.retries",
member="chwab")``). Instruments are created on first use and accumulate
for the registry's lifetime — one registry per
:class:`~repro.obs.Observability`, shared by every layer it is threaded
through (federation, engine, fixpoint, connectors).

Increments are a dict lookup plus an integer add, cheap enough to stay
on even when tracing is disabled; the hot evaluator loop still guards
behind ``metrics is not None`` so an engine without observability pays
nothing.

Instruments are thread-safe: the scatter-gather executor (see
:mod:`repro.multidb.executor`) increments connector and pool counters
from worker threads, so every mutation happens under a per-instrument
lock and instrument creation is serialized by the registry.
"""

from __future__ import annotations

import threading


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "tags", "value", "_lock")

    def __init__(self, name, tags):
        self.name = name
        self.tags = tags
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount=1):
        with self._lock:
            self.value += amount
        return self

    def __repr__(self):
        return f"Counter({_render_key(self.name, self.tags)}={self.value})"


class Histogram:
    """Summary statistics of an observed distribution (count, sum,
    min, max, mean) — enough for latency reporting without keeping
    every sample."""

    __slots__ = ("name", "tags", "count", "total", "minimum", "maximum",
                 "_lock")

    def __init__(self, name, tags):
        self.name = name
        self.tags = tags
        self.count = 0
        self.total = 0.0
        self.minimum = None
        self.maximum = None
        self._lock = threading.Lock()

    def observe(self, value):
        with self._lock:
            self.count += 1
            self.total += value
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value
        return self

    @property
    def mean(self):
        return self.total / self.count if self.count else None

    def as_dict(self):
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
        }

    def __repr__(self):
        return (f"Histogram({_render_key(self.name, self.tags)}, "
                f"count={self.count}, mean={self.mean})")


def _tag_key(tags):
    return tuple(sorted(tags.items()))


def _render_key(name, tags):
    if not tags:
        return name
    inner = ",".join(f"{key}={value}" for key, value in sorted(tags.items()))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Named counters and histograms, created on first use."""

    __slots__ = ("_counters", "_histograms", "_lock")

    def __init__(self):
        self._counters = {}
        self._histograms = {}
        self._lock = threading.Lock()

    # -- instruments ---------------------------------------------------

    def counter(self, name, **tags):
        key = (name, _tag_key(tags))
        instrument = self._counters.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(
                    key, Counter(name, dict(tags))
                )
        return instrument

    def histogram(self, name, **tags):
        key = (name, _tag_key(tags))
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    key, Histogram(name, dict(tags))
                )
        return instrument

    # -- reading -------------------------------------------------------

    def counter_value(self, name, **tags):
        """Current value of a counter, 0 when it never fired."""
        instrument = self._counters.get((name, _tag_key(tags)))
        return instrument.value if instrument is not None else 0

    def counter_total(self, name):
        """Sum of a counter across every tag combination."""
        return sum(
            instrument.value
            for (counter_name, _), instrument in self._counters.items()
            if counter_name == name
        )

    def snapshot(self):
        """A point-in-time, JSON-ready copy of every instrument:
        ``{"counters": {key: int}, "histograms": {key: summary}}``."""
        return {
            "counters": {
                _render_key(name, instrument.tags): instrument.value
                for (name, _), instrument in sorted(self._counters.items())
            },
            "histograms": {
                _render_key(name, instrument.tags): instrument.as_dict()
                for (name, _), instrument in sorted(self._histograms.items())
            },
        }

    def render(self):
        """Aligned plain-text listing (the REPL's ``:metrics``)."""
        snapshot = self.snapshot()
        if not snapshot["counters"] and not snapshot["histograms"]:
            return "(no metrics recorded)"
        width = max(
            (len(key) for section in snapshot.values() for key in section),
            default=0,
        )
        lines = []
        for key, value in snapshot["counters"].items():
            lines.append(f"{key:<{width}}  {value}")
        for key, summary in snapshot["histograms"].items():
            mean = summary["mean"]
            rendered_mean = f"{mean:.6g}" if mean is not None else "-"
            lines.append(
                f"{key:<{width}}  count={summary['count']} "
                f"mean={rendered_mean} min={summary['min']} "
                f"max={summary['max']}"
            )
        return "\n".join(lines)

    def reset(self):
        self._counters.clear()
        self._histograms.clear()

    def __repr__(self):
        return (f"MetricsRegistry(counters={len(self._counters)}, "
                f"histograms={len(self._histograms)})")
