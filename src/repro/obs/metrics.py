"""Federation-wide metrics: counters and histograms with tags.

A :class:`MetricsRegistry` is a flat namespace of named instruments,
optionally qualified by tags (``counter("connector.scan.retries",
member="chwab")``). Instruments are created on first use and accumulate
for the registry's lifetime — one registry per
:class:`~repro.obs.Observability`, shared by every layer it is threaded
through (federation, engine, fixpoint, connectors).

Increments are a dict lookup plus an integer add, cheap enough to stay
on even when tracing is disabled; the hot evaluator loop still guards
behind ``metrics is not None`` so an engine without observability pays
nothing.

Beyond the cumulative values, every instrument feeds a sliding window
(:mod:`repro.obs.window`) so :meth:`MetricsRegistry.snapshot` reports
per-window rates and latency percentiles (p50/p90/p99/max) — what the
``/metrics`` exposition and the SLO layer scrape. Pass
``MetricsRegistry(window=False)`` to keep only the cumulative values.

Two concurrent requests must not report each other's increments, so a
request wraps its work in :meth:`MetricsRegistry.request`: a
thread-local *accumulator* that records the deltas this request (and,
via :meth:`adopt_requests`, its executor worker threads) produced.
``QueryResult.metrics`` carries that delta snapshot; the cumulative
registry stays reachable as ``Observability.metrics``.

Instruments are thread-safe: the scatter-gather executor (see
:mod:`repro.multidb.executor`) increments connector and pool counters
from worker threads, so every mutation happens under a per-instrument
lock and instrument creation is serialized by the registry.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from repro.obs.window import (
    CounterWindow,
    HistogramWindow,
    WindowConfig,
    percentile,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "tags", "key", "value", "window", "_lock",
                 "_registry")

    def __init__(self, name, tags, window=None, registry=None):
        self.name = name
        self.tags = tags
        self.key = _render_key(name, tags)
        self.value = 0
        self.window = window
        self._registry = registry
        self._lock = threading.Lock()

    def inc(self, amount=1):
        with self._lock:
            self.value += amount
        if self.window is not None:
            self.window.add(amount)
        registry = self._registry
        if registry is not None:
            for accumulator in registry.active_requests():
                accumulator.count(self.key, amount)
        return self

    def __repr__(self):
        return f"Counter({self.key}={self.value})"


class Histogram:
    """Summary statistics of an observed distribution (count, sum,
    min, max, mean) plus a sliding window for percentiles — enough for
    latency reporting without keeping every sample forever."""

    __slots__ = ("name", "tags", "key", "count", "total", "minimum",
                 "maximum", "window", "_lock", "_registry")

    def __init__(self, name, tags, window=None, registry=None):
        self.name = name
        self.tags = tags
        self.key = _render_key(name, tags)
        self.count = 0
        self.total = 0.0
        self.minimum = None
        self.maximum = None
        self.window = window
        self._registry = registry
        self._lock = threading.Lock()

    def observe(self, value):
        with self._lock:
            self.count += 1
            self.total += value
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value
        if self.window is not None:
            self.window.observe(value)
        registry = self._registry
        if registry is not None:
            for accumulator in registry.active_requests():
                accumulator.observe(self.key, value)
        return self

    @property
    def mean(self):
        return self.total / self.count if self.count else None

    def as_dict(self):
        summary = {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
        }
        if self.window is not None:
            windowed = self.window.snapshot()
            summary["p50"] = windowed["p50"]
            summary["p90"] = windowed["p90"]
            summary["p99"] = windowed["p99"]
            summary["rate"] = windowed["rate"]
            summary["window_max"] = windowed["max"]
        return summary

    def __repr__(self):
        return (f"Histogram({self.key}, "
                f"count={self.count}, mean={self.mean})")


def _tag_key(tags):
    return tuple(sorted(tags.items()))


def _render_key(name, tags):
    if not tags:
        return name
    inner = ",".join(f"{key}={value}" for key, value in sorted(tags.items()))
    return f"{name}{{{inner}}}"


class MetricsSnapshot(dict):
    """A point-in-time, JSON-ready, *immutable* metrics view.

    Behaves like the plain dict it always was
    (``snapshot["counters"][key]``) but refuses mutation, so a snapshot
    stored on a result object cannot drift after the fact."""

    __slots__ = ()

    def _frozen(self, *args, **kwargs):
        raise TypeError("MetricsSnapshot is immutable")

    __setitem__ = _frozen
    __delitem__ = _frozen
    clear = _frozen
    pop = _frozen
    popitem = _frozen
    setdefault = _frozen
    update = _frozen

    def __repr__(self):
        return (f"MetricsSnapshot(counters={len(self.get('counters', ()))}, "
                f"histograms={len(self.get('histograms', ()))})")


class _RequestAccumulator:
    """Per-request metric deltas: every increment and observation made
    while the request is active (on its thread or an adopted worker)
    lands here too. ``snapshot()`` summarizes exactly this request."""

    __slots__ = ("_counters", "_values", "_lock")

    def __init__(self):
        self._counters = {}
        self._values = {}
        self._lock = threading.Lock()

    def count(self, key, amount):
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + amount

    def observe(self, key, value):
        with self._lock:
            self._values.setdefault(key, []).append(value)

    def snapshot(self):
        """The request's delta as a :class:`MetricsSnapshot` —
        histogram percentiles are exact here (every sample of the
        request is retained)."""
        with self._lock:
            counters = dict(self._counters)
            values = {key: list(samples)
                      for key, samples in self._values.items()}
        histograms = {}
        for key in sorted(values):
            samples = sorted(values[key])
            histograms[key] = {
                "count": len(samples),
                "sum": sum(samples),
                "min": samples[0],
                "max": samples[-1],
                "mean": sum(samples) / len(samples),
                "p50": percentile(samples, 0.50),
                "p90": percentile(samples, 0.90),
                "p99": percentile(samples, 0.99),
            }
        return MetricsSnapshot({
            "counters": {key: counters[key] for key in sorted(counters)},
            "histograms": histograms,
        })


class MetricsRegistry:
    """Named counters and histograms, created on first use.

    ``window`` shapes the sliding windows every instrument feeds:
    ``None`` uses the default :class:`~repro.obs.window.WindowConfig`,
    a config instance overrides it, ``False`` disables windowing (no
    rates, no percentiles — the PR-3 behavior).
    """

    __slots__ = ("_counters", "_histograms", "_lock", "_window", "_local")

    def __init__(self, window=None):
        self._counters = {}
        self._histograms = {}
        self._lock = threading.Lock()
        if window is False:
            self._window = None
        elif window is None:
            self._window = WindowConfig()
        else:
            self._window = window
        self._local = threading.local()

    @property
    def window_config(self):
        """The active :class:`WindowConfig`, or None when disabled."""
        return self._window

    # -- instruments ---------------------------------------------------

    def counter(self, name, **tags):
        key = (name, _tag_key(tags))
        instrument = self._counters.get(key)
        if instrument is None:
            with self._lock:
                window = (CounterWindow(self._window)
                          if self._window is not None else None)
                instrument = self._counters.setdefault(
                    key, Counter(name, dict(tags), window=window,
                                 registry=self)
                )
        return instrument

    def histogram(self, name, **tags):
        key = (name, _tag_key(tags))
        instrument = self._histograms.get(key)
        if instrument is None:
            with self._lock:
                window = (HistogramWindow(self._window)
                          if self._window is not None else None)
                instrument = self._histograms.setdefault(
                    key, Histogram(name, dict(tags), window=window,
                                   registry=self)
                )
        return instrument

    # -- per-request deltas --------------------------------------------

    @contextmanager
    def request(self):
        """Scope one request: yields a :class:`_RequestAccumulator`
        that receives every delta recorded on this thread (and on
        worker threads that :meth:`adopt_requests` it) until the block
        exits. Nests — an inner request sees only its own deltas while
        the outer one keeps accumulating."""
        accumulator = _RequestAccumulator()
        stack = self._request_stack()
        stack.append(accumulator)
        try:
            yield accumulator
        finally:
            if accumulator in stack:
                stack.remove(accumulator)

    def active_requests(self):
        """The accumulators active on *this* thread (outermost first).
        The executor captures this on the dispatching thread and
        re-activates it on each worker via :meth:`adopt_requests`."""
        stack = getattr(self._local, "requests", None)
        return tuple(stack) if stack else ()

    @contextmanager
    def adopt_requests(self, accumulators):
        """Make another thread's active accumulators receive this
        thread's deltas for the duration of the block (the
        scatter-gather worker handshake, mirroring ``Tracer.adopt``)."""
        if not accumulators:
            yield
            return
        stack = self._request_stack()
        stack.extend(accumulators)
        try:
            yield
        finally:
            for accumulator in accumulators:
                if accumulator in stack:
                    stack.remove(accumulator)

    def _request_stack(self):
        stack = getattr(self._local, "requests", None)
        if stack is None:
            stack = self._local.requests = []
        return stack

    # -- reading -------------------------------------------------------

    def counter_value(self, name, **tags):
        """Current value of a counter, 0 when it never fired."""
        instrument = self._counters.get((name, _tag_key(tags)))
        return instrument.value if instrument is not None else 0

    def counter_total(self, name):
        """Sum of a counter across every tag combination."""
        return sum(
            instrument.value
            for (counter_name, _), instrument in self._counters.items()
            if counter_name == name
        )

    def snapshot(self):
        """A point-in-time, JSON-ready view of every instrument:
        ``{"counters": {key: int}, "rates": {key: events/s},
        "histograms": {key: summary}}`` (``rates`` only when windowing
        is on; histogram summaries then carry p50/p90/p99/rate too)."""
        counters = {}
        rates = {}
        for (name, _), instrument in sorted(self._counters.items()):
            counters[instrument.key] = instrument.value
            if instrument.window is not None:
                rates[instrument.key] = instrument.window.rate()
        histograms = {
            instrument.key: instrument.as_dict()
            for (name, _), instrument in sorted(self._histograms.items())
        }
        sections = {"counters": counters, "histograms": histograms}
        if self._window is not None:
            sections["rates"] = rates
        return MetricsSnapshot(sections)

    def render(self):
        """Aligned plain-text listing (the REPL's ``:metrics``)."""
        snapshot = self.snapshot()
        if not snapshot["counters"] and not snapshot["histograms"]:
            return "(no metrics recorded)"
        width = max(
            (len(key)
             for section in ("counters", "histograms")
             for key in snapshot[section]),
            default=0,
        )
        lines = []
        for key, value in snapshot["counters"].items():
            lines.append(f"{key:<{width}}  {value}")
        for key, summary in snapshot["histograms"].items():
            mean = summary["mean"]
            rendered_mean = f"{mean:.6g}" if mean is not None else "-"
            line = (
                f"{key:<{width}}  count={summary['count']} "
                f"mean={rendered_mean} min={summary['min']} "
                f"max={summary['max']}"
            )
            if summary.get("p99") is not None:
                line += (f" p50={summary['p50']:.6g}"
                         f" p99={summary['p99']:.6g}")
            lines.append(line)
        return "\n".join(lines)

    def reset(self):
        self._counters.clear()
        self._histograms.clear()

    def __repr__(self):
        return (f"MetricsRegistry(counters={len(self._counters)}, "
                f"histograms={len(self._histograms)})")
