"""Hierarchical span tracing for the federation pipeline.

A :class:`Span` is one timed step of answering a query or applying an
update — ``federation.query``, ``fixpoint.stratum``, ``connector.apply``
— with structured attributes (fact counts, strategy, member name),
point-in-time events (retries, circuit transitions) and child spans.
A :class:`Tracer` maintains the active-span stack so the layers of the
pipeline (federation facade, engine, fixpoint, connectors) nest their
spans without threading a context object through every call.

Tracing must be free when it is off: :data:`NOOP_SPAN` is a stateless
singleton whose every method is a no-op, and components guard their
instrumentation behind an ``is not None`` check on the tracer so the
disabled path costs a pointer comparison (benchmark B3 asserts the
overhead stays under 5%).

The active-span stack is *thread-local*: the engine still evaluates one
statement at a time, but the federation's scatter-gather executor (see
:mod:`repro.multidb.executor`) runs member I/O on worker threads, each
of which needs its own nesting context. A worker inherits the parent
span explicitly with :meth:`Tracer.adopt`, so connector spans opened on
a worker thread still land under the ``scatter-gather`` span that
dispatched them. Appending a child to a span shared across threads is
safe (list appends are atomic under the GIL); everything else about a
span is only touched by the thread that opened it.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager


class Span:
    """One timed, attributed step; a node of the trace tree.

    Use as a context manager::

        with tracer.span("fixpoint.stratum", index=0) as span:
            ...
            span.set("rounds", rounds)
            span.event("delta-drained", round=3)

    ``start``/``end`` come from the tracer's clock (``perf_counter``
    seconds); ``duration_ms`` is derived. Entering a span parents it
    under the tracer's current span and makes it current.
    """

    __slots__ = ("name", "attributes", "events", "children", "start",
                 "end", "_tracer")

    def __init__(self, name, attributes, tracer):
        self.name = name
        self.attributes = dict(attributes)
        self.events = []
        self.children = []
        self.start = None
        self.end = None
        self._tracer = tracer

    # -- lifecycle ----------------------------------------------------

    def __enter__(self):
        self._tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc is not None:
            self.attributes.setdefault("error", type(exc).__name__)
        self._tracer._exit(self)
        return False

    # -- recording ----------------------------------------------------

    def set(self, key, value):
        """Attach (or overwrite) one structured attribute."""
        self.attributes[key] = value
        return self

    def event(self, name, **attributes):
        """Record a point-in-time event inside this span."""
        self.events.append((name, attributes))
        return self

    # -- reading ------------------------------------------------------

    @property
    def duration(self):
        """Elapsed seconds, or None while the span is still open."""
        if self.start is None or self.end is None:
            return None
        return self.end - self.start

    @property
    def duration_ms(self):
        elapsed = self.duration
        return None if elapsed is None else elapsed * 1000.0

    def walk(self):
        """Yield this span and every descendant, depth first."""
        yield self
        for child in self.children:
            for span in child.walk():
                yield span

    def find(self, name):
        """First span (self included, depth first) with this name."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name):
        return [span for span in self.walk() if span.name == name]

    def tree(self):
        """The span tree as nested ``(name, [children])`` pairs — the
        shape golden tests pin down (no timings, no attributes)."""
        return (self.name, [child.tree() for child in self.children])

    def as_dict(self):
        """JSON-ready representation (used by the exporters)."""
        return {
            "name": self.name,
            "start": self.start,
            "duration_ms": self.duration_ms,
            "attributes": self.attributes,
            "events": [
                {"name": name, "attributes": attributes}
                for name, attributes in self.events
            ],
            "children": [child.as_dict() for child in self.children],
        }

    def render(self, indent=""):
        """EXPLAIN-style tree rendering of this span and its subtree."""
        lines = [indent + self._line()] if not indent else [self._line()]
        self._render_children(lines, indent)
        return "\n".join(lines)

    def _line(self):
        parts = [self.name]
        if self.attributes:
            rendered = " ".join(
                f"{key}={_format_value(value)}"
                for key, value in sorted(self.attributes.items())
            )
            parts.append(f"[{rendered}]")
        if self.duration is not None:
            parts.append(f"({self.duration_ms:.2f} ms)")
        return "  ".join(parts)

    def _render_children(self, lines, indent):
        entries = [("event", event) for event in self.events]
        entries += [("span", child) for child in self.children]
        for position, (kind, entry) in enumerate(entries):
            last = position == len(entries) - 1
            branch = "└─ " if last else "├─ "
            extension = "   " if last else "│  "
            if kind == "event":
                name, attributes = entry
                rendered = " ".join(
                    f"{key}={_format_value(value)}"
                    for key, value in sorted(attributes.items())
                )
                suffix = f"  [{rendered}]" if rendered else ""
                lines.append(f"{indent}{branch}* {name}{suffix}")
            else:
                lines.append(f"{indent}{branch}{entry._line()}")
                entry._render_children(lines, indent + extension)

    def __repr__(self):
        return (f"Span({self.name!r}, children={len(self.children)}, "
                f"attributes={self.attributes!r})")


def _format_value(value):
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, dict):
        inner = ", ".join(
            f"{key}={_format_value(item)}" for key, item in sorted(value.items())
        )
        return "{" + inner + "}"
    if isinstance(value, (set, frozenset)):
        value = sorted(value, key=str)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_format_value(item) for item in value) + "]"
    return str(value)


class _NoopSpan:
    """The disabled-tracing span: every operation is a no-op. A single
    stateless instance is shared by every caller (re-entrant)."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, key, value):
        return self

    def event(self, name, **attributes):
        return self

    @property
    def duration(self):
        return None

    duration_ms = duration

    def walk(self):
        return iter(())

    def find(self, name):
        return None

    def find_all(self, name):
        return []

    def tree(self):
        return None

    def as_dict(self):
        return {}

    def render(self, indent=""):
        return "(tracing disabled)"

    def __repr__(self):
        return "NoopSpan()"


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Creates spans and maintains the active-span stack.

    ``on_finish`` is called with every finished *root* span — the hook
    the exporters attach to. ``clock`` defaults to
    :func:`time.perf_counter`.
    """

    enabled = True

    def __init__(self, clock=None, on_finish=None):
        self.clock = clock if clock is not None else time.perf_counter
        self.on_finish = on_finish
        self._local = threading.local()

    @property
    def _stack(self):
        """This thread's active-span stack (created on first use)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name, **attributes):
        """A new span, parented under the current one when entered."""
        return Span(name, attributes, self)

    @contextmanager
    def adopt(self, span):
        """Make ``span`` (opened on another thread) this thread's
        current span for the duration of the block.

        The scatter-gather executor uses this so spans a worker thread
        opens nest under the dispatching span instead of becoming
        roots. The adopted span is not re-timed and ``on_finish`` never
        fires for it here — only the owning thread closes it.
        """
        if span is None:
            yield None
            return
        stack = self._stack
        stack.append(span)
        try:
            yield span
        finally:
            if stack and stack[-1] is span:
                stack.pop()

    @property
    def current(self):
        """The innermost open span, or None outside any span."""
        stack = self._stack
        return stack[-1] if stack else None

    # -- span lifecycle (called by Span) --------------------------------

    def _enter(self, span):
        parent = self.current
        if parent is not None:
            parent.children.append(span)
        self._stack.append(span)
        span.start = self.clock()

    def _exit(self, span):
        span.end = self.clock()
        # Tolerate mispaired exits rather than corrupting the stack.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        if not self._stack and self.on_finish is not None:
            self.on_finish(span)


class NoopTracer:
    """The disabled tracer: hands out :data:`NOOP_SPAN` and nothing
    else. Shared as :data:`NOOP_TRACER`."""

    enabled = False
    current = None

    def span(self, name, **attributes):
        return NOOP_SPAN

    @contextmanager
    def adopt(self, span):
        yield span


NOOP_TRACER = NoopTracer()
