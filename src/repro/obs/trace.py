"""Hierarchical span tracing for the federation pipeline.

A :class:`Span` is one timed step of answering a query or applying an
update — ``federation.query``, ``fixpoint.stratum``, ``connector.apply``
— with structured attributes (fact counts, strategy, member name),
point-in-time events (retries, circuit transitions) and child spans.
A :class:`Tracer` maintains the active-span stack so the layers of the
pipeline (federation facade, engine, fixpoint, connectors) nest their
spans without threading a context object through every call.

Tracing must be free when it is off: :data:`NOOP_SPAN` is a stateless
singleton whose every method is a no-op, and components guard their
instrumentation behind an ``is not None`` check on the tracer so the
disabled path costs a pointer comparison (benchmark B3 asserts the
overhead stays under 5%).

Production traffic cannot afford a full tree per request either, so an
enabled tracer *samples*: a head-based coin flip per root span
(``sample_rate``) decides whether the finished trace is exported, with
two tail escapes that always keep a trace regardless of the flip —
roots that saw an error, and roots slower than ``slow_threshold_ms``.
Spans are still *built* for sampled-out traces (the escapes need the
finished tree to decide, and the slow-query log wants the worst roots
either way); only the export is skipped, and ``obs.trace.dropped.*`` /
``obs.trace.kept.*`` counters account for every decision. A per-trace
:class:`TraceLimits` budget hard-caps spans, events and attributes so
one pathological request cannot balloon its trace (benchmark B18
guards the whole pipeline's overhead at < 5%).

The active-span stack is *thread-local*: the engine still evaluates one
statement at a time, but the federation's scatter-gather executor (see
:mod:`repro.multidb.executor`) runs member I/O on worker threads, each
of which needs its own nesting context. A worker inherits the parent
span explicitly with :meth:`Tracer.adopt`, so connector spans opened on
a worker thread still land under the ``scatter-gather`` span that
dispatched them. The executor pre-attaches those member spans on the
dispatching thread through :meth:`Tracer.child_span`, which charges the
trace's span budget and returns None once it is exhausted. Appending a
child to a span shared across threads is safe (list appends are atomic
under the GIL); everything else about a span is only touched by the
thread that opened it.
"""

from __future__ import annotations

import heapq
import random
import threading
import time
from contextlib import contextmanager


class TraceLimits:
    """Hard caps applied per trace (per root span): how many spans the
    whole tree may hold, and how many events / distinct attributes any
    single span may carry. Overflow is dropped silently at the data
    level and loudly at the metrics level (``obs.trace.dropped.*``)."""

    __slots__ = ("max_spans", "max_events", "max_attributes")

    def __init__(self, max_spans=512, max_events=128, max_attributes=64):
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans!r}")
        if max_events < 0 or max_attributes < 0:
            raise ValueError("max_events / max_attributes must be >= 0")
        self.max_spans = int(max_spans)
        self.max_events = int(max_events)
        self.max_attributes = int(max_attributes)

    def __repr__(self):
        return (f"TraceLimits(max_spans={self.max_spans}, "
                f"max_events={self.max_events}, "
                f"max_attributes={self.max_attributes})")


class _TraceBudget:
    """One trace's running totals against its :class:`TraceLimits`,
    plus the head-sampling verdict and the error flag the tail escapes
    read at root close. Shared by every span of the trace, including
    spans opened on executor worker threads — hence the lock."""

    __slots__ = ("limits", "sampled", "error", "spans", "_lock")

    def __init__(self, limits, sampled=True):
        self.limits = limits
        self.sampled = sampled
        self.error = False
        self.spans = 0
        self._lock = threading.Lock()

    def take_span(self):
        """Reserve room for one more span; False when the cap is hit."""
        with self._lock:
            if self.spans >= self.limits.max_spans:
                return False
            self.spans += 1
            return True


class Span:
    """One timed, attributed step; a node of the trace tree.

    Use as a context manager::

        with tracer.span("fixpoint.stratum", index=0) as span:
            ...
            span.set("rounds", rounds)
            span.event("delta-drained", round=3)

    ``start``/``end`` come from the tracer's clock (``perf_counter``
    seconds); ``duration_ms`` is derived. Entering a span parents it
    under the tracer's current span and makes it current.
    """

    __slots__ = ("name", "attributes", "events", "children", "start",
                 "end", "_tracer", "_budget")

    def __init__(self, name, attributes, tracer):
        self.name = name
        self.attributes = dict(attributes)
        self.events = []
        self.children = []
        self.start = None
        self.end = None
        self._tracer = tracer
        self._budget = None

    # -- lifecycle ----------------------------------------------------

    def __enter__(self):
        self._tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc is not None:
            self.attributes.setdefault("error", type(exc).__name__)
            if self._budget is not None:
                self._budget.error = True
        self._tracer._exit(self)
        return False

    # -- recording ----------------------------------------------------

    def set(self, key, value):
        """Attach (or overwrite) one structured attribute."""
        budget = self._budget
        if (budget is not None
                and key not in self.attributes
                and len(self.attributes) >= budget.limits.max_attributes):
            self._tracer._drop("attributes")
            return self
        self.attributes[key] = value
        if key == "error" and budget is not None:
            budget.error = True
        return self

    def event(self, name, **attributes):
        """Record a point-in-time event inside this span."""
        budget = self._budget
        if (budget is not None
                and len(self.events) >= budget.limits.max_events):
            self._tracer._drop("events")
            return self
        self.events.append((name, attributes))
        return self

    # -- reading ------------------------------------------------------

    @property
    def duration(self):
        """Elapsed seconds, or None while the span is still open."""
        if self.start is None or self.end is None:
            return None
        return self.end - self.start

    @property
    def duration_ms(self):
        elapsed = self.duration
        return None if elapsed is None else elapsed * 1000.0

    def walk(self):
        """Yield this span and every descendant, depth first."""
        yield self
        for child in self.children:
            for span in child.walk():
                yield span

    def find(self, name):
        """First span (self included, depth first) with this name."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name):
        return [span for span in self.walk() if span.name == name]

    def tree(self):
        """The span tree as nested ``(name, [children])`` pairs — the
        shape golden tests pin down (no timings, no attributes)."""
        return (self.name, [child.tree() for child in self.children])

    def as_dict(self):
        """JSON-ready representation (used by the exporters)."""
        return {
            "name": self.name,
            "start": self.start,
            "duration_ms": self.duration_ms,
            "attributes": self.attributes,
            "events": [
                {"name": name, "attributes": attributes}
                for name, attributes in self.events
            ],
            "children": [child.as_dict() for child in self.children],
        }

    def render(self, indent=""):
        """EXPLAIN-style tree rendering of this span and its subtree."""
        lines = [indent + self._line()] if not indent else [self._line()]
        self._render_children(lines, indent)
        return "\n".join(lines)

    def _line(self):
        parts = [self.name]
        if self.attributes:
            rendered = " ".join(
                f"{key}={_format_value(value)}"
                for key, value in sorted(self.attributes.items())
            )
            parts.append(f"[{rendered}]")
        if self.duration is not None:
            parts.append(f"({self.duration_ms:.2f} ms)")
        return "  ".join(parts)

    def _render_children(self, lines, indent):
        entries = [("event", event) for event in self.events]
        entries += [("span", child) for child in self.children]
        for position, (kind, entry) in enumerate(entries):
            last = position == len(entries) - 1
            branch = "└─ " if last else "├─ "
            extension = "   " if last else "│  "
            if kind == "event":
                name, attributes = entry
                rendered = " ".join(
                    f"{key}={_format_value(value)}"
                    for key, value in sorted(attributes.items())
                )
                suffix = f"  [{rendered}]" if rendered else ""
                lines.append(f"{indent}{branch}* {name}{suffix}")
            else:
                lines.append(f"{indent}{branch}{entry._line()}")
                entry._render_children(lines, indent + extension)

    def __repr__(self):
        return (f"Span({self.name!r}, children={len(self.children)}, "
                f"attributes={self.attributes!r})")


def _format_value(value):
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, dict):
        inner = ", ".join(
            f"{key}={_format_value(item)}" for key, item in sorted(value.items())
        )
        return "{" + inner + "}"
    if isinstance(value, (set, frozenset)):
        value = sorted(value, key=str)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_format_value(item) for item in value) + "]"
    return str(value)


class _NoopSpan:
    """The disabled-tracing span: every operation is a no-op. A single
    stateless instance is shared by every caller (re-entrant)."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, key, value):
        return self

    def event(self, name, **attributes):
        return self

    @property
    def duration(self):
        return None

    duration_ms = duration

    def walk(self):
        return iter(())

    def find(self, name):
        return None

    def find_all(self, name):
        return []

    def tree(self):
        return None

    def as_dict(self):
        return {}

    def render(self, indent=""):
        return "(tracing disabled)"

    def __repr__(self):
        return "NoopSpan()"


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Creates spans and maintains the active-span stack.

    ``on_finish`` is called with every finished, *kept* root span — the
    hook the exporters attach to. ``clock`` defaults to
    :func:`time.perf_counter`.

    Sampling and limits (all off by default, so a bare ``Tracer()``
    behaves exactly as before):

    * ``sample_rate`` — probability a root span is kept (head-based,
      decided when the root opens; ``rng`` injects the randomness for
      tests);
    * ``slow_threshold_ms`` — roots at least this slow are kept even
      when sampled out (tail escape), as are roots with an ``error``
      attribute anywhere in their handling;
    * ``limits`` — per-trace :class:`TraceLimits`;
    * ``on_drop`` — called with sampled-out finished roots (the
      observability layer routes them to the slow-query log and SLO
      tracker, which must see *every* request);
    * ``metrics`` — registry for the ``obs.trace.dropped.*`` /
      ``obs.trace.kept.*`` accounting.
    """

    enabled = True

    def __init__(self, clock=None, on_finish=None, sample_rate=1.0,
                 slow_threshold_ms=None, limits=None, metrics=None,
                 rng=None, on_drop=None):
        self.clock = clock if clock is not None else time.perf_counter
        self.on_finish = on_finish
        self.on_drop = on_drop
        self.sample_rate = float(sample_rate)
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate!r}"
            )
        self.slow_threshold_ms = slow_threshold_ms
        self.limits = limits if limits is not None else TraceLimits()
        self.metrics = metrics
        self.rng = rng if rng is not None else random.random
        self._local = threading.local()

    @property
    def _stack(self):
        """This thread's active-span stack (created on first use)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name, **attributes):
        """A new span, parented under the current one when entered."""
        return Span(name, attributes, self)

    def child_span(self, parent, name, **attributes):
        """A span pre-attached under ``parent`` without entering it —
        how the scatter-gather executor materializes one member span
        per task on the dispatching thread (deterministic tree order)
        before the workers time them. Charges the parent trace's span
        budget; returns None when the budget is exhausted, so callers
        must guard (the executor simply skips per-member tracing
        then)."""
        if parent is None or isinstance(parent, _NoopSpan):
            return None
        budget = parent._budget
        if budget is not None and not budget.take_span():
            self._drop("spans")
            return None
        span = Span(name, attributes, self)
        span._budget = budget
        parent.children.append(span)
        return span

    @contextmanager
    def adopt(self, span):
        """Make ``span`` (opened on another thread) this thread's
        current span for the duration of the block.

        The scatter-gather executor uses this so spans a worker thread
        opens nest under the dispatching span instead of becoming
        roots. The adopted span is not re-timed and ``on_finish`` never
        fires for it here — only the owning thread closes it.
        """
        if span is None:
            yield None
            return
        stack = self._stack
        stack.append(span)
        try:
            yield span
        finally:
            if stack and stack[-1] is span:
                stack.pop()

    @property
    def current(self):
        """The innermost open span, or None outside any span."""
        stack = self._stack
        return stack[-1] if stack else None

    # -- span lifecycle (called by Span) --------------------------------

    def _enter(self, span):
        parent = self.current
        if parent is None:
            span._budget = _TraceBudget(self.limits, sampled=self._sample())
            span._budget.take_span()
        else:
            budget = parent._budget
            span._budget = budget
            if budget is not None and not budget.take_span():
                # Over the span cap: keep the nesting context (the
                # stack) intact but leave the span out of the tree.
                self._drop("spans")
            else:
                parent.children.append(span)
        self._stack.append(span)
        span.start = self.clock()

    def _exit(self, span):
        span.end = self.clock()
        # Tolerate mispaired exits rather than corrupting the stack.
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        if not self._stack:
            self._finish_root(span)

    def _finish_root(self, span):
        budget = span._budget
        kept = True
        if budget is not None and not budget.sampled:
            duration = span.duration_ms
            if budget.error:
                self._count("obs.trace.kept.error")
            elif (self.slow_threshold_ms is not None and duration is not None
                    and duration >= self.slow_threshold_ms):
                self._count("obs.trace.kept.slow")
            else:
                kept = False
                self._count("obs.trace.dropped.sampled")
        if kept:
            if self.on_finish is not None:
                self.on_finish(span)
        elif self.on_drop is not None:
            self.on_drop(span)

    def _sample(self):
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        return self.rng() < self.sample_rate

    # -- accounting ----------------------------------------------------

    def _drop(self, kind):
        self._count(f"obs.trace.dropped.{kind}")

    def _count(self, name):
        if self.metrics is not None:
            self.metrics.counter(name).inc()


class NoopTracer:
    """The disabled tracer: hands out :data:`NOOP_SPAN` and nothing
    else. Shared as :data:`NOOP_TRACER`."""

    enabled = False
    current = None

    def span(self, name, **attributes):
        return NOOP_SPAN

    def child_span(self, parent, name, **attributes):
        return None

    @contextmanager
    def adopt(self, span):
        yield span


NOOP_TRACER = NoopTracer()


class SlowQueryLog:
    """Bounded log of the worst (slowest) finished root spans.

    A min-heap of ``capacity`` entries keyed by duration: a finished
    root only displaces the current fastest entry when it is slower, so
    the expensive part (rendering the trace tree) is skipped for the
    common fast request. ``threshold_ms`` optionally ignores roots
    faster than the bar entirely. Sees *every* root — sampled-out ones
    included — because the slowest requests are exactly the ones head
    sampling is most likely to have dropped.
    """

    __slots__ = ("capacity", "threshold_ms", "_heap", "_seq", "_lock")

    def __init__(self, capacity=16, threshold_ms=None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = int(capacity)
        self.threshold_ms = threshold_ms
        self._heap = []
        self._seq = 0
        self._lock = threading.Lock()

    def record(self, span):
        duration = span.duration_ms
        if duration is None:
            return False
        if self.threshold_ms is not None and duration < self.threshold_ms:
            return False
        with self._lock:
            if (len(self._heap) >= self.capacity
                    and duration <= self._heap[0][0]):
                return False
            self._seq += 1
            entry = (duration, self._seq, {
                "name": span.name,
                "duration_ms": duration,
                "attributes": dict(span.attributes),
                "spans": sum(1 for _ in span.walk()),
                "rendered": span.render(),
                "recorded_at": time.time(),
            })
            if len(self._heap) >= self.capacity:
                heapq.heapreplace(self._heap, entry)
            else:
                heapq.heappush(self._heap, entry)
        return True

    def entries(self):
        """The retained entries, slowest first (JSON-ready dicts)."""
        with self._lock:
            ordered = sorted(self._heap, reverse=True)
        return [entry for _, _, entry in ordered]

    def render(self):
        """Plain-text listing for the REPL's ``:slow``."""
        entries = self.entries()
        if not entries:
            return "(slow-query log is empty)"
        blocks = []
        for rank, entry in enumerate(entries, start=1):
            blocks.append(
                f"#{rank}  {entry['name']}  {entry['duration_ms']:.2f} ms  "
                f"({entry['spans']} spans)\n{entry['rendered']}"
            )
        return "\n\n".join(blocks)

    def clear(self):
        with self._lock:
            self._heap.clear()

    def __len__(self):
        return len(self._heap)

    def __repr__(self):
        return (f"SlowQueryLog({len(self._heap)}/{self.capacity} entries, "
                f"threshold_ms={self.threshold_ms})")
