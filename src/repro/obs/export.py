"""Trace exporters: where finished root spans go.

Exporters receive every finished *root* span (one per
``Federation.query``/``update``/``call``/``install``) from the tracer's
``on_finish`` hook:

* :class:`InMemoryCollector` keeps the span objects — what tests and
  the REPL use;
* :class:`JsonLinesExporter` appends one JSON document per span to a
  file or stream, ready for offline analysis (``jq``, pandas, a trace
  viewer).
"""

from __future__ import annotations

import json


class InMemoryCollector:
    """Collects finished root spans in memory."""

    __slots__ = ("spans",)

    def __init__(self):
        self.spans = []

    def export(self, span):
        self.spans.append(span)

    @property
    def last(self):
        return self.spans[-1] if self.spans else None

    def find(self, name):
        """Most recent root span with this name, or None."""
        for span in reversed(self.spans):
            if span.name == name:
                return span
        return None

    def clear(self):
        self.spans.clear()

    def __len__(self):
        return len(self.spans)

    def __iter__(self):
        return iter(self.spans)

    def __repr__(self):
        return f"InMemoryCollector({len(self.spans)} spans)"


class JsonLinesExporter:
    """Writes each finished root span as one JSON line.

    ``target`` is a path (opened in append mode, closed by
    :meth:`close`) or any object with a ``write`` method (left open —
    the caller owns it).
    """

    def __init__(self, target):
        if hasattr(target, "write"):
            self._stream = target
            self._owned = False
        else:
            self._stream = open(target, "a", encoding="utf-8")
            self._owned = True
        self.exported = 0

    def export(self, span):
        self._stream.write(json.dumps(span.as_dict(), sort_keys=True) + "\n")
        if hasattr(self._stream, "flush"):
            self._stream.flush()
        self.exported += 1

    def close(self):
        if self._owned:
            self._stream.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __repr__(self):
        return f"JsonLinesExporter(exported={self.exported})"
