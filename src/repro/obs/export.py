"""Trace exporters: where finished root spans go.

Exporters receive every finished *root* span (one per
``Federation.query``/``update``/``call``/``install``) from the tracer's
``on_finish`` hook:

* :class:`InMemoryCollector` keeps the span objects — what tests and
  the REPL use;
* :class:`JsonLinesExporter` appends one JSON document per span to a
  file or stream, ready for offline analysis (``jq``, pandas, a trace
  viewer).
"""

from __future__ import annotations

import json
import os
import threading


class InMemoryCollector:
    """Collects finished root spans in memory."""

    __slots__ = ("spans",)

    def __init__(self):
        self.spans = []

    def export(self, span):
        self.spans.append(span)

    @property
    def last(self):
        return self.spans[-1] if self.spans else None

    def find(self, name):
        """Most recent root span with this name, or None."""
        for span in reversed(self.spans):
            if span.name == name:
                return span
        return None

    def clear(self):
        self.spans.clear()

    def __len__(self):
        return len(self.spans)

    def __iter__(self):
        return iter(self.spans)

    def __repr__(self):
        return f"InMemoryCollector({len(self.spans)} spans)"


class JsonLinesExporter:
    """Writes each finished root span as one JSON line.

    ``target`` is a path (opened in append mode, closed by
    :meth:`close`) or any object with a ``write`` method (left open —
    the caller owns it).

    Exports are serialized under a lock: with ``parallel="on"`` (and
    under multi-threaded callers generally) root spans can finish on
    different threads concurrently, and interleaved ``write`` calls
    would corrupt the JSONL stream. ``flush_every`` batches flushes
    (flush once per N exports instead of per span); ``fsync=True``
    additionally forces the line to disk on each flush, for callers
    that treat the trace file as a durable audit log.
    """

    def __init__(self, target, flush_every=1, fsync=False):
        if flush_every < 1:
            raise ValueError(
                f"flush_every must be >= 1, got {flush_every!r}"
            )
        if hasattr(target, "write"):
            self._stream = target
            self._owned = False
        else:
            self._stream = open(target, "a", encoding="utf-8")
            self._owned = True
        self.exported = 0
        self.flush_every = int(flush_every)
        self.fsync = bool(fsync)
        self._lock = threading.Lock()

    def export(self, span):
        line = json.dumps(span.as_dict(), sort_keys=True) + "\n"
        with self._lock:
            self._stream.write(line)
            self.exported += 1
            if self.exported % self.flush_every == 0:
                self._flush()

    def _flush(self):
        if hasattr(self._stream, "flush"):
            self._stream.flush()
        if self.fsync and hasattr(self._stream, "fileno"):
            try:
                os.fsync(self._stream.fileno())
            except (OSError, ValueError):  # e.g. a StringIO "fileno"
                pass

    def close(self):
        with self._lock:
            self._flush()
            if self._owned:
                self._stream.close()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.close()
        return False

    def __repr__(self):
        return f"JsonLinesExporter(exported={self.exported})"
