"""Observability for the multidatabase federation.

The paper's two-level mapping (members → unified view → customized
views, Figure 1) means every answer is the product of a pipeline: name
mapping, higher-order rewriting, stratified fixpoint, connector scans.
This package makes that pipeline inspectable end to end:

* :mod:`repro.obs.trace` — hierarchical spans with wall time, fact
  counts and structured attributes; head-based sampling with
  error/slow tail escapes and per-trace limits; a no-op fast path when
  disabled;
* :mod:`repro.obs.metrics` — counters and histograms
  (``fixpoint.iterations``, ``connector.scan.retries``,
  ``circuit.state_changes``, ``evaluator.reorder.applied``, ...), each
  backed by a sliding window (:mod:`repro.obs.window`) for per-window
  rates and latency percentiles, plus per-request delta accumulators.
  The static effect analysis adds ``analysis.prune.skipped`` /
  ``analysis.prune.scanned`` — per-query counts of members whose scans
  the inferred read set avoided vs. required — and query/update spans
  carry ``member-pruning`` and ``intent-narrowed`` events describing
  each decision (see ``docs/static_analysis.md``);
* :mod:`repro.obs.slo` — per-operation and per-member objectives with
  multi-window burn rates;
* :mod:`repro.obs.server` — live ``/metrics`` (Prometheus text),
  ``/health``, ``/slo`` and ``/traces/*`` exposition over HTTP;
* :mod:`repro.obs.profile` — the per-query EXPLAIN-style profile tree;
* :mod:`repro.obs.export` — JSON-lines exporter and an in-memory
  collector.

:class:`Observability` bundles one tracer, one metrics registry, the
slow-query log, the SLO tracker and the exporters; a
:class:`~repro.multidb.federation.Federation` creates one by default
and threads it through its engine and every member connector, so
``federation.query(...)`` returns a
:class:`~repro.multidb.results.QueryResult` whose ``trace``/``profile``
/``metrics`` cover the whole pipeline. Pass
``Observability(enabled=False)`` (or build a bare ``IdlEngine`` with no
``obs``) to turn tracing off — benchmark B3 asserts the disabled path
costs under 5%, and benchmark B18 asserts the full telemetry pipeline
(sampling at 0.1, windows on) costs under 5% over the disabled path.
"""

from __future__ import annotations

from collections import deque

from repro.obs.export import InMemoryCollector, JsonLinesExporter
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.profile import QueryProfile
from repro.obs.server import TelemetryServer, render_prometheus
from repro.obs.slo import SLO, SLOTracker
from repro.obs.trace import (
    NOOP_SPAN,
    NOOP_TRACER,
    NoopTracer,
    SlowQueryLog,
    Span,
    TraceLimits,
    Tracer,
)
from repro.obs.window import CounterWindow, HistogramWindow, WindowConfig


class Observability:
    """One tracer + one metrics registry + slow-query log + SLO tracker
    + the exporters.

    ``enabled`` gates tracing and per-query profiling; metrics stay on
    either way (increments are cheap and only fire at coarse-grained
    points). ``profile_queries`` additionally controls whether query
    evaluation collects node-visit counters (on by default when
    enabled; it costs in the evaluator's hot loop, which is the point
    of profiling).

    The production knobs (all keep the debugging defaults when unset):

    * ``sample_rate`` — fraction of root traces exported (head-based;
      1.0 keeps everything). Errors and slow roots are kept regardless;
    * ``slow_threshold_ms`` — the tail-escape bar, also the slow-query
      log's threshold;
    * ``limits`` — per-trace :class:`TraceLimits` span/event/attribute
      caps;
    * ``window`` — a :class:`WindowConfig` for the metric windows
      (``False`` disables windowing, the PR-3 behavior);
    * ``slow_log`` — a :class:`SlowQueryLog` (``False`` disables it);
    * ``slo`` — an :class:`SLOTracker` (``False`` disables SLO
      tracking);
    * ``recent_traces`` — how many kept root spans ``/traces/recent``
      remembers;
    * ``rng`` — injectable sampling randomness for tests.
    """

    __slots__ = ("enabled", "profile_queries", "metrics", "exporters",
                 "tracer", "slow_log", "slo", "recent", "sample_rate",
                 "slow_threshold_ms")

    def __init__(self, enabled=True, profile_queries=None, exporters=(),
                 clock=None, sample_rate=1.0, slow_threshold_ms=None,
                 limits=None, window=None, slow_log=None, slo=None,
                 recent_traces=32, rng=None):
        self.enabled = bool(enabled)
        self.profile_queries = (
            self.enabled if profile_queries is None else bool(profile_queries)
        )
        self.metrics = MetricsRegistry(window=window)
        self.exporters = list(exporters)
        self.sample_rate = float(sample_rate)
        self.slow_threshold_ms = slow_threshold_ms
        if slow_log is False:
            self.slow_log = None
        elif slow_log is None:
            self.slow_log = (
                SlowQueryLog(threshold_ms=slow_threshold_ms)
                if self.enabled else None
            )
        else:
            self.slow_log = slow_log
        if slo is False:
            self.slo = None
        elif slo is None:
            self.slo = SLOTracker() if self.enabled else None
        else:
            self.slo = slo
        self.recent = deque(maxlen=max(1, int(recent_traces)))
        if self.enabled:
            self.tracer = Tracer(
                clock=clock,
                on_finish=self._export,
                on_drop=self._dropped,
                sample_rate=sample_rate,
                slow_threshold_ms=slow_threshold_ms,
                limits=limits,
                metrics=self.metrics,
                rng=rng,
            )
        else:
            self.tracer = NOOP_TRACER

    def span(self, name, **attributes):
        """A new span from this observability's tracer (no-op span when
        tracing is disabled)."""
        return self.tracer.span(name, **attributes)

    def add_exporter(self, exporter):
        self.exporters.append(exporter)
        return exporter

    def snapshot(self):
        """Point-in-time metrics snapshot (JSON-ready)."""
        return self.metrics.snapshot()

    def recent_traces(self):
        """The last kept root spans as JSON-ready trees (newest
        last) — the ``/traces/recent`` payload."""
        return [span.as_dict() for span in list(self.recent)]

    def _export(self, span):
        """A finished root span the sampler kept: feed the operational
        sinks, remember it, then fan out to the exporters."""
        self._observe_root(span)
        self.recent.append(span)
        for exporter in self.exporters:
            exporter.export(span)

    def _dropped(self, span):
        """A finished root span the sampler dropped: the slow-query log
        and the SLO tracker still see it (sampling must bias neither),
        but exporters and ``/traces/recent`` do not."""
        self._observe_root(span)

    def _observe_root(self, span):
        if self.slow_log is not None:
            self.slow_log.record(span)
        if self.slo is not None:
            self.slo.record_operation(
                span.name,
                span.duration_ms,
                ok="error" not in span.attributes,
            )

    def __repr__(self):
        return (f"Observability(enabled={self.enabled}, "
                f"sample_rate={self.sample_rate}, "
                f"exporters={len(self.exporters)}, metrics={self.metrics!r})")


__all__ = [
    "Counter",
    "CounterWindow",
    "Histogram",
    "HistogramWindow",
    "InMemoryCollector",
    "JsonLinesExporter",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NOOP_SPAN",
    "NOOP_TRACER",
    "NoopTracer",
    "Observability",
    "QueryProfile",
    "SLO",
    "SLOTracker",
    "SlowQueryLog",
    "Span",
    "TelemetryServer",
    "TraceLimits",
    "Tracer",
    "WindowConfig",
    "render_prometheus",
]
